//! Workload generators for the paper's Python pingpong tests.

use crate::object::{NdArray, PyObject};

/// Size of each array in the complex-object workload (the paper uses
/// multiple 128-KiB NumPy arrays).
pub const COMPLEX_CHUNK: usize = 128 * 1024;

/// Fig 8 workload: a single 1-D `float64` NumPy array of `nbytes`.
pub fn single_array(nbytes: usize) -> PyObject {
    let len = (nbytes / 8).max(1);
    PyObject::Array(NdArray::f64_1d(len, 0xC0FFEE))
}

/// Fig 9 workload: a complex user-defined object holding multiple 128-KiB
/// arrays summing to `total_bytes`, wrapped in realistic metadata.
pub fn complex_object(total_bytes: usize) -> PyObject {
    let n = (total_bytes / COMPLEX_CHUNK).max(1);
    let arrays: Vec<PyObject> = (0..n)
        .map(|i| PyObject::Array(NdArray::f64_1d(COMPLEX_CHUNK / 8, i as u64)))
        .collect();
    PyObject::Dict(vec![
        (
            PyObject::Str("class".into()),
            PyObject::Str("SimulationState".into()),
        ),
        (PyObject::Str("step".into()), PyObject::Int(12345)),
        (PyObject::Str("time".into()), PyObject::Float(6.5)),
        (
            PyObject::Str("meta".into()),
            PyObject::Dict(vec![
                (PyObject::Str("rank_of_origin".into()), PyObject::Int(0)),
                (PyObject::Str("compressed".into()), PyObject::Bool(false)),
            ]),
        ),
        (PyObject::Str("fields".into()), PyObject::List(arrays)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_array_sizes() {
        let obj = single_array(1 << 20);
        assert_eq!(obj.buffer_bytes(), 1 << 20);
        assert_eq!(obj.array_count(), 1);
    }

    #[test]
    fn complex_object_chunking() {
        let obj = complex_object(1 << 20); // 8 × 128 KiB
        assert_eq!(obj.array_count(), 8);
        assert_eq!(obj.buffer_bytes(), 1 << 20);
    }

    #[test]
    fn complex_object_minimum_one_chunk() {
        let obj = complex_object(1000);
        assert_eq!(obj.array_count(), 1);
        assert_eq!(obj.buffer_bytes(), COMPLEX_CHUNK);
    }
}
