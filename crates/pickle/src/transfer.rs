//! The three mpi4py-style transfer strategies of Figs 8–9.
//!
//! * **basic** — one message carrying the full in-band stream; the receiver
//!   probes for the size (mpi4py's `MPI_Mprobe` pattern), allocates, and
//!   deserializes with a copy per buffer.
//! * **oob** — the in-band header stream, a buffer-lengths message, and one
//!   message *per* out-of-band buffer, all on the same tag (this is the
//!   multi-message, tag-space-sharing approach whose thread-safety costs
//!   the paper criticizes).
//! * **oob-cdt** — a small lengths message, then **one** custom-datatype
//!   operation whose packed stream is the pickle header and whose regions
//!   are the out-of-band buffers ("a single pair of outer MPI messages with
//!   the MPI engine handling internally the pieces").

use crate::de::{loads, loads_oob};
use crate::error::{PickleError, PickleResult};
use crate::object::PyObject;
use crate::ser::{dumps, dumps_oob, OobBuffer};
use mpicd::datatype::{CustomPack, CustomUnpack, RecvRegion, SendRegion};
use mpicd::{Communicator, Result as MpiResult};

/// Encode the out-of-band shape header: stream length + buffer lengths.
fn encode_lengths(stream_len: usize, bufs: &[OobBuffer]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 8 * bufs.len());
    out.extend_from_slice(&(stream_len as u64).to_le_bytes());
    out.extend_from_slice(&(bufs.len() as u64).to_le_bytes());
    for b in bufs {
        out.extend_from_slice(&(b.len() as u64).to_le_bytes());
    }
    out
}

/// Decode the shape header.
fn decode_lengths(bytes: &[u8]) -> PickleResult<(usize, Vec<usize>)> {
    if bytes.len() < 16 {
        return Err(PickleError::Protocol("short lengths header"));
    }
    let stream_len = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
    let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    if bytes.len() != 16 + 8 * n {
        return Err(PickleError::Protocol("lengths header size mismatch"));
    }
    let lens = (0..n)
        .map(|i| {
            let at = 16 + 8 * i;
            u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize
        })
        .collect();
    Ok((stream_len, lens))
}

// ---- basic ------------------------------------------------------------------

/// `pickle-basic` send: serialize everything in-band, one message.
pub fn send_pickle_basic(
    comm: &Communicator,
    obj: &PyObject,
    dest: usize,
    tag: i32,
) -> PickleResult<()> {
    let stream = dumps(obj); // full-size intermediate allocation + copy
    comm.send(&stream, dest, tag)?;
    Ok(())
}

/// `pickle-basic` receive: matched-probe for the size (mpi4py's
/// `MPI_Mprobe` pattern — race-free under threads), allocate, receive,
/// load.
pub fn recv_pickle_basic(comm: &Communicator, source: i32, tag: i32) -> PickleResult<PyObject> {
    let (st, msg) = comm.mprobe(source, tag);
    let mut buf = vec![0u8; st.bytes];
    comm.mrecv(&mut buf, msg)?;
    loads(&buf)
}

// ---- oob (multi-message) ------------------------------------------------------

/// `pickle-oob` send: header stream + lengths message + one message per
/// buffer.
pub fn send_pickle_oob(
    comm: &Communicator,
    obj: &PyObject,
    dest: usize,
    tag: i32,
) -> PickleResult<()> {
    let (stream, bufs) = dumps_oob(obj);
    comm.send(&stream, dest, tag)?;
    let lens = encode_lengths(stream.len(), &bufs);
    comm.send(&lens, dest, tag)?;
    for b in &bufs {
        send_bytes_ref(comm, b.as_slice(), dest, tag)?;
    }
    Ok(())
}

/// `pickle-oob` receive.
pub fn recv_pickle_oob(comm: &Communicator, source: i32, tag: i32) -> PickleResult<PyObject> {
    let (st, msg) = comm.mprobe(source, tag);
    let mut stream = vec![0u8; st.bytes];
    comm.mrecv(&mut stream, msg)?;
    let (st2, msg2) = comm.mprobe(st.source as i32, st.tag);
    let mut lens_msg = vec![0u8; st2.bytes];
    comm.mrecv(&mut lens_msg, msg2)?;
    let (stream_len, lens) = decode_lengths(&lens_msg)?;
    if stream_len != stream.len() {
        return Err(PickleError::Protocol("stream length disagrees with header"));
    }
    let mut bufs = Vec::with_capacity(lens.len());
    for len in lens {
        let mut b = vec![0u8; len]; // receive-side allocation per buffer
        comm.recv(&mut b, st.source as i32, st.tag)?;
        bufs.push(b);
    }
    loads_oob(&stream, bufs)
}

fn send_bytes_ref(comm: &Communicator, bytes: &[u8], dest: usize, tag: i32) -> MpiResult<()> {
    comm.send(bytes, dest, tag).map(|_| ())
}

// ---- oob via custom datatype ---------------------------------------------------

/// Send context: pickle header stream packs in-band, array buffers ride as
/// zero-copy regions.
struct PickleCdtPack<'a> {
    stream: &'a [u8],
    bufs: &'a [OobBuffer],
}

impl CustomPack for PickleCdtPack<'_> {
    fn packed_size(&self) -> MpiResult<usize> {
        Ok(self.stream.len())
    }

    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> MpiResult<usize> {
        let n = dst.len().min(self.stream.len() - offset);
        dst[..n].copy_from_slice(&self.stream[offset..offset + n]);
        Ok(n)
    }

    fn regions(&mut self) -> MpiResult<Vec<SendRegion>> {
        Ok(self
            .bufs
            .iter()
            .map(|b| SendRegion::from_slice(b.as_slice()))
            .collect())
    }

    fn inorder(&self) -> bool {
        false
    }
}

/// Receive context: header stream lands in a scratch vec, regions land
/// directly in the preallocated buffers.
struct PickleCdtUnpack<'a> {
    stream: &'a mut Vec<u8>,
    bufs: &'a mut [Vec<u8>],
}

impl CustomUnpack for PickleCdtUnpack<'_> {
    fn packed_size(&self) -> MpiResult<usize> {
        Ok(self.stream.len())
    }

    fn unpack(&mut self, offset: usize, src: &[u8]) -> MpiResult<()> {
        if offset + src.len() > self.stream.len() {
            return Err(mpicd::Error::InvalidHeader("pickle stream overflow"));
        }
        self.stream[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }

    fn regions(&mut self) -> MpiResult<Vec<RecvRegion>> {
        Ok(self
            .bufs
            .iter_mut()
            .map(|b| RecvRegion::from_slice(b.as_mut_slice()))
            .collect())
    }
}

/// `pickle-oob-cdt` send: lengths message, then one custom-datatype
/// operation carrying header + all buffers.
pub fn send_pickle_oob_cdt(
    comm: &Communicator,
    obj: &PyObject,
    dest: usize,
    tag: i32,
) -> PickleResult<()> {
    let (stream, bufs) = dumps_oob(obj);
    let lens = encode_lengths(stream.len(), &bufs);
    comm.send(&lens, dest, tag)?;
    comm.send_custom(
        Box::new(PickleCdtPack {
            stream: &stream,
            bufs: &bufs,
        }),
        dest,
        tag,
    )?;
    Ok(())
}

/// `pickle-oob-cdt` receive.
pub fn recv_pickle_oob_cdt(comm: &Communicator, source: i32, tag: i32) -> PickleResult<PyObject> {
    let (st, msg) = comm.mprobe(source, tag);
    let mut lens_msg = vec![0u8; st.bytes];
    comm.mrecv(&mut lens_msg, msg)?;
    let (stream_len, lens) = decode_lengths(&lens_msg)?;
    let mut stream = vec![0u8; stream_len];
    let mut bufs: Vec<Vec<u8>> = lens.iter().map(|l| vec![0u8; *l]).collect();
    {
        let mut ctx = PickleCdtUnpack {
            stream: &mut stream,
            bufs: &mut bufs,
        };
        comm.recv_custom(&mut ctx, st.source as i32, st.tag)?;
    }
    loads_oob(&stream, bufs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use mpicd::World;

    fn exchange(
        send: impl FnOnce(&Communicator) -> PickleResult<()> + Send,
        recv: impl FnOnce(&Communicator) -> PickleResult<PyObject> + Send,
    ) -> (PyObject, mpicd::fabric::stats::StatsView) {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let got = std::thread::scope(|s| {
            let snd = s.spawn(move || send(&c0).unwrap());
            let rcv = s.spawn(move || recv(&c1).unwrap());
            snd.join().unwrap();
            rcv.join().unwrap()
        });
        (got, world.fabric().stats())
    }

    #[test]
    fn basic_roundtrip_is_one_message() {
        let obj = workload::complex_object(512 * 1024);
        let want = obj.clone();
        let (got, stats) = exchange(
            move |c| send_pickle_basic(c, &obj, 1, 0),
            |c| recv_pickle_basic(c, 0, 0),
        );
        assert_eq!(got, want);
        assert_eq!(stats.messages, 1);
    }

    #[test]
    fn oob_roundtrip_message_count_scales_with_buffers() {
        let obj = workload::complex_object(512 * 1024); // 4 × 128 KiB arrays
        let n = obj.array_count() as u64;
        let want = obj.clone();
        let (got, stats) = exchange(
            move |c| send_pickle_oob(c, &obj, 1, 0),
            |c| recv_pickle_oob(c, 0, 0),
        );
        assert_eq!(got, want);
        assert_eq!(stats.messages, 2 + n, "stream + lengths + one per buffer");
    }

    #[test]
    fn oob_cdt_roundtrip_is_two_messages() {
        let obj = workload::complex_object(512 * 1024);
        let n = obj.array_count();
        assert_eq!(n, 4);
        let want = obj.clone();
        let (got, stats) = exchange(
            move |c| send_pickle_oob_cdt(c, &obj, 1, 0),
            |c| recv_pickle_oob_cdt(c, 0, 0),
        );
        assert_eq!(got, want);
        assert_eq!(stats.messages, 2, "lengths + one custom message");
        // All four buffers rode as regions of the single custom message.
        assert!(stats.regions >= 5);
    }

    #[test]
    fn single_array_strategies_agree() {
        for strategy in 0..3 {
            let obj = workload::single_array(256 * 1024);
            let want = obj.clone();
            let (got, _) = exchange(
                move |c| match strategy {
                    0 => send_pickle_basic(c, &obj, 1, 0),
                    1 => send_pickle_oob(c, &obj, 1, 0),
                    _ => send_pickle_oob_cdt(c, &obj, 1, 0),
                },
                move |c| match strategy {
                    0 => recv_pickle_basic(c, 0, 0),
                    1 => recv_pickle_oob(c, 0, 0),
                    _ => recv_pickle_oob_cdt(c, 0, 0),
                },
            );
            assert_eq!(got, want, "strategy {strategy}");
        }
    }

    #[test]
    fn lengths_header_roundtrip() {
        let bufs: Vec<OobBuffer> = vec![];
        let enc = encode_lengths(7, &bufs);
        assert_eq!(decode_lengths(&enc).unwrap(), (7, vec![]));
        assert!(decode_lengths(&enc[..8]).is_err());
    }
}
