//! Serialization: in-band streams and protocol-5-style out-of-band buffers.
//!
//! The format is pickle-flavoured: tag bytes followed by little-endian
//! fields, with NumPy arrays carrying the same `_reconstruct`/`dtype`
//! metadata preamble real `ndarray.__reduce_ex__` emits — which is why a
//! 1-D array header lands at roughly the 120 bytes the paper quotes.

use crate::object::{NdArray, PyObject};
use std::sync::Arc;

// Value tags.
pub(crate) const TAG_NONE: u8 = 0x4E; // 'N'
pub(crate) const TAG_TRUE: u8 = 0x88;
pub(crate) const TAG_FALSE: u8 = 0x89;
pub(crate) const TAG_INT: u8 = 0x4A;
pub(crate) const TAG_FLOAT: u8 = 0x47;
pub(crate) const TAG_STR: u8 = 0x55;
pub(crate) const TAG_BYTES: u8 = 0x42;
pub(crate) const TAG_LIST: u8 = 0x5D;
pub(crate) const TAG_TUPLE: u8 = 0x28;
pub(crate) const TAG_DICT: u8 = 0x7D;
pub(crate) const TAG_ARRAY_INBAND: u8 = 0xA0;
pub(crate) const TAG_ARRAY_OOB: u8 = 0xA1;

/// The module/global references NumPy's `__reduce_ex__` pickles before the
/// array payload (framing opcodes elided). Emitted verbatim so in-band
/// array headers have realistic weight.
pub(crate) const ARRAY_PREAMBLE: &[u8] =
    b"\x8c\x15numpy.core.multiarray\x8c\x0c_reconstruct\x93\x8c\x05numpy\x8c\x07ndarray\x93K\x00\x85\x8c\x01b\x87R";

/// The `numpy.dtype` global reference preceding the dtype descriptor.
pub(crate) const DTYPE_PREAMBLE: &[u8] = b"\x8c\x05numpy\x8c\x05dtype\x93";

/// A zero-copy out-of-band buffer (PEP 574's `PickleBuffer`): shares the
/// array's storage, no bytes are copied at serialization time.
#[derive(Debug, Clone)]
pub struct OobBuffer(pub Arc<Vec<u8>>);

impl OobBuffer {
    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

struct Writer {
    out: Vec<u8>,
    oob: Option<Vec<OobBuffer>>,
    /// Memo: buffer identity (Arc data pointer) → out-of-band index, so an
    /// array storage shared within the object graph ships exactly once
    /// (pickle's memoization, applied to PEP 574 buffers).
    memo: std::collections::HashMap<*const u8, u32>,
}

impl Writer {
    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn array_header(&mut self, a: &NdArray) {
        self.out.extend_from_slice(ARRAY_PREAMBLE);
        self.out.extend_from_slice(DTYPE_PREAMBLE);
        let descr = a.dtype.descr().as_bytes();
        self.out.push(descr.len() as u8);
        self.out.extend_from_slice(descr);
        self.out.push(b'C'); // C (row-major) order, the only one we model
        self.out.push(a.shape.len() as u8);
        for d in &a.shape {
            self.u64(*d as u64);
        }
        self.u64(a.nbytes() as u64);
    }

    fn value(&mut self, obj: &PyObject) {
        match obj {
            PyObject::None => self.out.push(TAG_NONE),
            PyObject::Bool(true) => self.out.push(TAG_TRUE),
            PyObject::Bool(false) => self.out.push(TAG_FALSE),
            PyObject::Int(v) => {
                self.out.push(TAG_INT);
                self.out.extend_from_slice(&v.to_le_bytes());
            }
            PyObject::Float(v) => {
                self.out.push(TAG_FLOAT);
                self.out.extend_from_slice(&v.to_le_bytes());
            }
            PyObject::Str(s) => {
                self.out.push(TAG_STR);
                self.u64(s.len() as u64);
                self.out.extend_from_slice(s.as_bytes());
            }
            PyObject::Bytes(b) => {
                self.out.push(TAG_BYTES);
                self.u64(b.len() as u64);
                self.out.extend_from_slice(b);
            }
            PyObject::List(v) => {
                self.out.push(TAG_LIST);
                self.u64(v.len() as u64);
                v.iter().for_each(|x| self.value(x));
            }
            PyObject::Tuple(v) => {
                self.out.push(TAG_TUPLE);
                self.u64(v.len() as u64);
                v.iter().for_each(|x| self.value(x));
            }
            PyObject::Dict(kv) => {
                self.out.push(TAG_DICT);
                self.u64(kv.len() as u64);
                for (k, v) in kv {
                    self.value(k);
                    self.value(v);
                }
            }
            PyObject::Array(a) => {
                if self.oob.is_none() {
                    // In-band: header + raw buffer copied into the stream.
                    self.out.push(TAG_ARRAY_INBAND);
                    self.array_header(a);
                    self.out.extend_from_slice(&a.data);
                } else {
                    // Out-of-band: header + buffer index; storage is shared,
                    // not copied (PEP 574). Identical storage reuses its
                    // earlier index (memoization).
                    self.out.push(TAG_ARRAY_OOB);
                    self.array_header(a);
                    let key = a.data.as_ptr();
                    let idx = match self.memo.get(&key) {
                        Some(idx) => *idx,
                        None => {
                            let oob = self.oob.as_mut().expect("checked above");
                            let idx = oob.len() as u32;
                            oob.push(OobBuffer(Arc::clone(&a.data)));
                            self.memo.insert(key, idx);
                            idx
                        }
                    };
                    self.out.extend_from_slice(&idx.to_le_bytes());
                }
            }
        }
    }
}

/// Serialize fully in-band ("basic pickle"): one stream containing every
/// buffer. For large objects this allocates (and fills) a buffer as large
/// as the object itself — the memory-doubling cost the paper highlights.
pub fn dumps(obj: &PyObject) -> Vec<u8> {
    let mut w = Writer {
        out: Vec::new(),
        oob: None,
        memo: std::collections::HashMap::new(),
    };
    w.value(obj);
    w.out
}

/// Serialize with protocol-5 out-of-band buffers: the returned stream holds
/// only metadata headers; array storage comes back as zero-copy
/// [`OobBuffer`]s in graph order.
pub fn dumps_oob(obj: &PyObject) -> (Vec<u8>, Vec<OobBuffer>) {
    let mut w = Writer {
        out: Vec::new(),
        oob: Some(Vec::new()),
        memo: std::collections::HashMap::new(),
    };
    w.value(obj);
    (w.out, w.oob.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::DType;

    #[test]
    fn inband_stream_contains_buffer() {
        let a = PyObject::Array(NdArray::f64_1d(100, 3));
        let stream = dumps(&a);
        assert!(stream.len() > 800, "800 data bytes live in the stream");
    }

    #[test]
    fn oob_stream_is_small_and_shares_storage() {
        let arr = NdArray::f64_1d(100_000, 5);
        let data_ptr = arr.data.as_ptr();
        let obj = PyObject::Array(arr);
        let (stream, bufs) = dumps_oob(&obj);
        assert!(
            stream.len() < 200,
            "header-only stream, got {}",
            stream.len()
        );
        assert_eq!(bufs.len(), 1);
        assert_eq!(bufs[0].len(), 800_000);
        assert_eq!(bufs[0].as_slice().as_ptr(), data_ptr, "zero-copy");
    }

    #[test]
    fn single_array_header_weighs_about_120_bytes() {
        // The paper: "this metadata header weighs around 120 bytes".
        let obj = PyObject::Array(NdArray::f64_1d(1, 0));
        let (stream, _) = dumps_oob(&obj);
        assert!(
            (90..=150).contains(&stream.len()),
            "header bytes = {}",
            stream.len()
        );
    }

    #[test]
    fn oob_buffers_in_graph_order() {
        let obj = PyObject::List(vec![
            PyObject::Array(NdArray::new(vec![1], DType::U8, vec![1])),
            PyObject::Array(NdArray::new(vec![2], DType::U8, vec![2, 3])),
        ]);
        let (_, bufs) = dumps_oob(&obj);
        assert_eq!(bufs[0].as_slice(), &[1]);
        assert_eq!(bufs[1].as_slice(), &[2, 3]);
    }

    #[test]
    fn shared_storage_ships_once() {
        let arr = NdArray::f64_1d(1000, 9);
        // The same array (same Arc storage) appears twice in the graph.
        let obj = PyObject::List(vec![
            PyObject::Array(arr.clone()),
            PyObject::Array(arr.clone()),
        ]);
        let (stream, bufs) = dumps_oob(&obj);
        assert_eq!(bufs.len(), 1, "memoized: one buffer for two references");
        // And the receive side reconstructs the sharing.
        let received = vec![bufs[0].as_slice().to_vec()];
        let back = crate::de::loads_oob(&stream, received).unwrap();
        if let PyObject::List(items) = &back {
            let (PyObject::Array(a), PyObject::Array(b)) = (&items[0], &items[1]) else {
                panic!("arrays expected");
            };
            assert!(Arc::ptr_eq(&a.data, &b.data), "sharing preserved");
            assert_eq!(a.data.as_slice(), arr.data.as_slice());
        } else {
            panic!("list expected");
        }
    }

    #[test]
    fn scalars_serialize_compactly() {
        assert_eq!(dumps(&PyObject::None), vec![TAG_NONE]);
        assert_eq!(dumps(&PyObject::Bool(true)), vec![TAG_TRUE]);
        assert_eq!(dumps(&PyObject::Int(1)).len(), 9);
    }
}
