#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # mpicd-pickle — pickle-style object serialization over mpicd
//!
//! Reproduces the Python side of the paper's evaluation (§V-B) without
//! CPython: a [`PyObject`] model (including NumPy-style arrays with the
//! ~120-byte metadata headers the paper mentions), a pickle-like binary
//! format with both **in-band** serialization and **protocol-5 out-of-band
//! buffers** (PEP 574), and the three transfer strategies compared in
//! Figs 8–9:
//!
//! | strategy | wire traffic |
//! |---|---|
//! | `pickle-basic`   | one message carrying the full in-band stream (data copied through an intermediate buffer on both sides) |
//! | `pickle-oob`     | header-stream message + buffer-lengths message + one message **per** out-of-band buffer (mpi4py's approach) |
//! | `pickle-oob-cdt` | lengths message + **one** custom-datatype message whose regions are the out-of-band buffers (this paper's approach) |
//!
//! The costs the paper attributes to each strategy are all real here:
//! `pickle-basic` allocates and copies a full-size intermediate stream,
//! `pickle-oob` multiplies small messages, and every receive allocates its
//! buffers before data can land (the receive-side allocation the paper says
//! keeps all strategies below the raw roofline).

pub mod de;
pub mod error;
pub mod object;
pub mod ser;
pub mod transfer;
pub mod workload;

pub use de::{loads, loads_oob};
pub use error::{PickleError, PickleResult};
pub use object::{DType, NdArray, PyObject};
pub use ser::{dumps, dumps_oob, OobBuffer};
pub use transfer::{
    recv_pickle_basic, recv_pickle_oob, recv_pickle_oob_cdt, send_pickle_basic, send_pickle_oob,
    send_pickle_oob_cdt,
};
