//! Pickle (de)serialization errors.

use std::fmt;

/// Result alias for pickle operations.
pub type PickleResult<T> = Result<T, PickleError>;

/// Errors raised while serializing, deserializing or transferring objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PickleError {
    /// The stream ended in the middle of a value.
    Truncated {
        /// Byte position where input ran out.
        at: usize,
        /// Additional bytes required.
        needed: usize,
    },
    /// An unknown tag byte.
    BadTag {
        /// Byte position of the tag.
        at: usize,
        /// The unrecognized tag value.
        tag: u8,
    },
    /// An out-of-band buffer index with no corresponding buffer.
    MissingBuffer {
        /// The referenced buffer index.
        index: usize,
        /// How many buffers were provided.
        available: usize,
    },
    /// An out-of-band buffer has the wrong length for its array.
    BufferLength {
        /// The buffer index.
        index: usize,
        /// Bytes the array header demands.
        expected: usize,
        /// Bytes the buffer actually holds.
        got: usize,
    },
    /// A UTF-8 string failed to decode.
    BadUtf8 {
        /// Byte position of the string.
        at: usize,
    },
    /// Mixed protocol error: in-band stream contained an out-of-band marker
    /// (or vice versa).
    Protocol(&'static str),
    /// Transport failure, carried up from mpicd.
    Transport(String),
}

impl fmt::Display for PickleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { at, needed } => {
                write!(f, "stream truncated at byte {at} (needed {needed} more)")
            }
            Self::BadTag { at, tag } => write!(f, "unknown tag {tag:#04x} at byte {at}"),
            Self::MissingBuffer { index, available } => write!(
                f,
                "out-of-band buffer {index} requested but only {available} provided"
            ),
            Self::BufferLength {
                index,
                expected,
                got,
            } => write!(
                f,
                "out-of-band buffer {index}: expected {expected} bytes, got {got}"
            ),
            Self::BadUtf8 { at } => write!(f, "invalid UTF-8 in string at byte {at}"),
            Self::Protocol(what) => write!(f, "protocol violation: {what}"),
            Self::Transport(what) => write!(f, "transport: {what}"),
        }
    }
}

impl std::error::Error for PickleError {}

impl From<mpicd::Error> for PickleError {
    fn from(e: mpicd::Error) -> Self {
        Self::Transport(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PickleError::BufferLength {
            index: 2,
            expected: 100,
            got: 50,
        };
        let s = e.to_string();
        assert!(s.contains('2') && s.contains("100") && s.contains("50"));
    }

    #[test]
    fn transport_conversion() {
        let e: PickleError = mpicd::Error::Serialization(9).into();
        assert!(matches!(e, PickleError::Transport(_)));
    }
}
