//! A Python-ish object model, including NumPy-style arrays.

use std::sync::Arc;

/// Element type of an [`NdArray`] (NumPy dtype subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// `uint8`
    U8,
    /// `int32`
    I32,
    /// `int64`
    I64,
    /// `float32`
    F32,
    /// `float64`
    F64,
}

impl DType {
    /// Item size in bytes.
    pub const fn itemsize(self) -> usize {
        match self {
            Self::U8 => 1,
            Self::I32 | Self::F32 => 4,
            Self::I64 | Self::F64 => 8,
        }
    }

    /// NumPy-style descriptor string (little-endian).
    pub const fn descr(self) -> &'static str {
        match self {
            Self::U8 => "|u1",
            Self::I32 => "<i4",
            Self::I64 => "<i8",
            Self::F32 => "<f4",
            Self::F64 => "<f8",
        }
    }

    /// Stable byte code for wire headers.
    pub const fn code(self) -> u8 {
        match self {
            Self::U8 => 0,
            Self::I32 => 1,
            Self::I64 => 2,
            Self::F32 => 3,
            Self::F64 => 4,
        }
    }

    /// Inverse of [`Self::code`].
    pub fn from_code(c: u8) -> Option<Self> {
        Some(match c {
            0 => Self::U8,
            1 => Self::I32,
            2 => Self::I64,
            3 => Self::F32,
            4 => Self::F64,
            _ => return None,
        })
    }
}

/// A NumPy-style n-dimensional array: metadata plus one contiguous
/// (C-order) buffer, shared via `Arc` so out-of-band serialization is
/// genuinely zero-copy.
#[derive(Debug, Clone, PartialEq)]
pub struct NdArray {
    /// Dimension sizes.
    pub shape: Vec<usize>,
    /// Element type.
    pub dtype: DType,
    /// Raw buffer (row-major), `len == shape.product() * itemsize`.
    pub data: Arc<Vec<u8>>,
}

impl NdArray {
    /// Build an array, checking the buffer length.
    pub fn new(shape: Vec<usize>, dtype: DType, data: Vec<u8>) -> Self {
        let expect: usize = shape.iter().product::<usize>() * dtype.itemsize();
        assert_eq!(data.len(), expect, "buffer length must match shape × dtype");
        Self {
            shape,
            dtype,
            data: Arc::new(data),
        }
    }

    /// 1-D `float64` array with a deterministic fill (workload helper).
    pub fn f64_1d(len: usize, seed: u64) -> Self {
        let mut data = Vec::with_capacity(len * 8);
        for i in 0..len {
            let v = (seed as f64) + i as f64 * 0.001;
            data.extend_from_slice(&v.to_le_bytes());
        }
        Self::new(vec![len], DType::F64, data)
    }

    /// Total bytes of the buffer.
    pub fn nbytes(&self) -> usize {
        self.data.len()
    }
}

/// A Python-ish value.
#[derive(Debug, Clone, PartialEq)]
pub enum PyObject {
    /// `None`
    None,
    /// `bool`
    Bool(bool),
    /// `int` (bounded to i64 here)
    Int(i64),
    /// `float`
    Float(f64),
    /// `str`
    Str(String),
    /// `bytes`
    Bytes(Vec<u8>),
    /// `list`
    List(Vec<PyObject>),
    /// `tuple`
    Tuple(Vec<PyObject>),
    /// `dict` (association list; Python dicts preserve insertion order)
    Dict(Vec<(PyObject, PyObject)>),
    /// `numpy.ndarray`
    Array(NdArray),
}

impl PyObject {
    /// Sum of all array-buffer bytes in the object graph (what out-of-band
    /// pickling avoids copying).
    pub fn buffer_bytes(&self) -> usize {
        match self {
            Self::Array(a) => a.nbytes(),
            Self::List(v) | Self::Tuple(v) => v.iter().map(Self::buffer_bytes).sum(),
            Self::Dict(kv) => kv
                .iter()
                .map(|(k, v)| k.buffer_bytes() + v.buffer_bytes())
                .sum(),
            _ => 0,
        }
    }

    /// Number of arrays in the object graph.
    pub fn array_count(&self) -> usize {
        match self {
            Self::Array(_) => 1,
            Self::List(v) | Self::Tuple(v) => v.iter().map(Self::array_count).sum(),
            Self::Dict(kv) => kv
                .iter()
                .map(|(k, v)| k.array_count() + v.array_count())
                .sum(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F64.itemsize(), 8);
        assert_eq!(DType::U8.itemsize(), 1);
        assert_eq!(DType::F64.descr(), "<f8");
        for c in 0..5u8 {
            assert_eq!(DType::from_code(c).unwrap().code(), c);
        }
        assert!(DType::from_code(9).is_none());
    }

    #[test]
    fn ndarray_shape_check() {
        let a = NdArray::new(vec![2, 3], DType::I32, vec![0; 24]);
        assert_eq!(a.nbytes(), 24);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn ndarray_rejects_bad_length() {
        NdArray::new(vec![2, 3], DType::I32, vec![0; 10]);
    }

    #[test]
    fn buffer_accounting_recurses() {
        let obj = PyObject::Dict(vec![
            (
                PyObject::Str("xs".into()),
                PyObject::List(vec![
                    PyObject::Array(NdArray::f64_1d(10, 0)),
                    PyObject::Array(NdArray::f64_1d(20, 1)),
                ]),
            ),
            (PyObject::Str("flag".into()), PyObject::Bool(true)),
        ]);
        assert_eq!(obj.buffer_bytes(), 240);
        assert_eq!(obj.array_count(), 2);
    }
}
