//! Deserialization — including the receive-side allocation behaviour the
//! paper calls out: reconstructing an object **always** allocates its
//! buffers on the receiving process, which is why no pickle strategy
//! reaches the raw roofline in Figs 8–9.

use crate::error::{PickleError, PickleResult};
use crate::object::{DType, NdArray, PyObject};
use crate::ser::*;
use std::sync::Arc;

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Out-of-band buffers; the first reference adopts the storage into an
    /// `Arc`, later references (memoized sharing) clone the `Arc`.
    oob: Vec<OobSlot>,
}

enum OobSlot {
    Pending(Vec<u8>),
    Adopted(Arc<Vec<u8>>),
    Empty,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> PickleResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(PickleError::Truncated {
                at: self.pos,
                needed: self.pos + n - self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> PickleResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> PickleResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> PickleResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn expect(&mut self, lit: &'static [u8], what: &'static str) -> PickleResult<()> {
        let _ = what;
        let got = self.take(lit.len())?;
        if got != lit {
            return Err(PickleError::Protocol(what));
        }
        Ok(())
    }

    /// Array metadata (everything but the payload).
    fn array_header(&mut self) -> PickleResult<(Vec<usize>, DType, usize)> {
        self.expect(ARRAY_PREAMBLE, "bad ndarray reconstruct preamble")?;
        self.expect(DTYPE_PREAMBLE, "bad dtype preamble")?;
        let descr_len = self.u8()? as usize;
        let descr = self.take(descr_len)?;
        let dtype = match descr {
            b"|u1" => DType::U8,
            b"<i4" => DType::I32,
            b"<i8" => DType::I64,
            b"<f4" => DType::F32,
            b"<f8" => DType::F64,
            _ => return Err(PickleError::Protocol("unknown dtype descriptor")),
        };
        let order = self.u8()?;
        if order != b'C' {
            return Err(PickleError::Protocol("only C order supported"));
        }
        let ndim = self.u8()? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(self.u64()? as usize);
        }
        let nbytes = self.u64()? as usize;
        // Checked arithmetic: corrupted shapes must error, not overflow.
        let expect = shape
            .iter()
            .try_fold(dtype.itemsize(), |acc, d| acc.checked_mul(*d))
            .ok_or(PickleError::Protocol("shape product overflows"))?;
        if nbytes != expect {
            return Err(PickleError::Protocol("shape and byte count disagree"));
        }
        Ok((shape, dtype, nbytes))
    }

    fn value(&mut self) -> PickleResult<PyObject> {
        let at = self.pos;
        let tag = self.u8()?;
        Ok(match tag {
            TAG_NONE => PyObject::None,
            TAG_TRUE => PyObject::Bool(true),
            TAG_FALSE => PyObject::Bool(false),
            TAG_INT => PyObject::Int(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            TAG_FLOAT => PyObject::Float(f64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            TAG_STR => {
                let n = self.u64()? as usize;
                let s =
                    std::str::from_utf8(self.take(n)?).map_err(|_| PickleError::BadUtf8 { at })?;
                PyObject::Str(s.to_owned())
            }
            TAG_BYTES => {
                let n = self.u64()? as usize;
                PyObject::Bytes(self.take(n)?.to_vec())
            }
            TAG_LIST => {
                let n = self.u64()? as usize;
                let mut v = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    v.push(self.value()?);
                }
                PyObject::List(v)
            }
            TAG_TUPLE => {
                let n = self.u64()? as usize;
                let mut v = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    v.push(self.value()?);
                }
                PyObject::Tuple(v)
            }
            TAG_DICT => {
                let n = self.u64()? as usize;
                let mut kv = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let k = self.value()?;
                    let v = self.value()?;
                    kv.push((k, v));
                }
                PyObject::Dict(kv)
            }
            TAG_ARRAY_INBAND => {
                let (shape, dtype, nbytes) = self.array_header()?;
                // Receive-side allocation: the buffer is copied out of the
                // stream into fresh storage.
                let data = self.take(nbytes)?.to_vec();
                PyObject::Array(NdArray {
                    shape,
                    dtype,
                    data: Arc::new(data),
                })
            }
            TAG_ARRAY_OOB => {
                let (shape, dtype, nbytes) = self.array_header()?;
                let index = self.u32()? as usize;
                let slot = self.oob.get_mut(index).ok_or(PickleError::MissingBuffer {
                    index,
                    available: 0,
                })?;
                let data = match std::mem::replace(slot, OobSlot::Empty) {
                    OobSlot::Pending(v) => {
                        let arc = Arc::new(v);
                        *slot = OobSlot::Adopted(Arc::clone(&arc));
                        arc
                    }
                    OobSlot::Adopted(arc) => {
                        // Memoized sharing: later references clone the Arc.
                        *slot = OobSlot::Adopted(Arc::clone(&arc));
                        arc
                    }
                    OobSlot::Empty => {
                        return Err(PickleError::Protocol("corrupt out-of-band slot"))
                    }
                };
                if data.len() != nbytes {
                    return Err(PickleError::BufferLength {
                        index,
                        expected: nbytes,
                        got: data.len(),
                    });
                }
                PyObject::Array(NdArray { shape, dtype, data })
            }
            _ => return Err(PickleError::BadTag { at, tag }),
        })
    }
}

/// Deserialize an in-band stream.
pub fn loads(bytes: &[u8]) -> PickleResult<PyObject> {
    let mut r = Reader {
        buf: bytes,
        pos: 0,
        oob: Vec::new(),
    };
    // An in-band stream that references out-of-band buffers fails inside
    // value() with MissingBuffer (the reader was given none).
    let v = r.value()?;
    if r.pos != bytes.len() {
        return Err(PickleError::Protocol("trailing bytes after value"));
    }
    Ok(v)
}

/// Deserialize a protocol-5 stream, adopting `buffers` (each consumed
/// exactly once, zero further copies).
pub fn loads_oob(bytes: &[u8], buffers: Vec<Vec<u8>>) -> PickleResult<PyObject> {
    let available = buffers.len();
    let mut r = Reader {
        buf: bytes,
        pos: 0,
        oob: buffers.into_iter().map(OobSlot::Pending).collect(),
    };
    let v = r.value().map_err(|e| match e {
        PickleError::MissingBuffer { index, .. } => PickleError::MissingBuffer { index, available },
        other => other,
    })?;
    if r.pos != bytes.len() {
        return Err(PickleError::Protocol("trailing bytes after value"));
    }
    if r.oob.iter().any(|s| matches!(s, OobSlot::Pending(_))) {
        return Err(PickleError::Protocol("unused out-of-band buffers"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser::{dumps, dumps_oob};

    fn sample() -> PyObject {
        PyObject::Dict(vec![
            (PyObject::Str("name".into()), PyObject::Str("mesh".into())),
            (PyObject::Str("step".into()), PyObject::Int(42)),
            (PyObject::Str("dt".into()), PyObject::Float(0.125)),
            (PyObject::Str("ok".into()), PyObject::Bool(true)),
            (PyObject::Str("blob".into()), PyObject::Bytes(vec![1, 2, 3])),
            (
                PyObject::Str("fields".into()),
                PyObject::List(vec![
                    PyObject::Array(NdArray::f64_1d(64, 1)),
                    PyObject::Tuple(vec![
                        PyObject::None,
                        PyObject::Array(NdArray::f64_1d(32, 2)),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn inband_roundtrip() {
        let obj = sample();
        assert_eq!(loads(&dumps(&obj)).unwrap(), obj);
    }

    #[test]
    fn oob_roundtrip() {
        let obj = sample();
        let (stream, bufs) = dumps_oob(&obj);
        // Model the receive side: buffers arrive as fresh allocations.
        let received: Vec<Vec<u8>> = bufs.iter().map(|b| b.as_slice().to_vec()).collect();
        assert_eq!(loads_oob(&stream, received).unwrap(), obj);
    }

    #[test]
    fn truncated_stream_detected() {
        let obj = sample();
        let stream = dumps(&obj);
        let err = loads(&stream[..stream.len() - 3]).unwrap_err();
        assert!(matches!(err, PickleError::Truncated { .. }));
    }

    #[test]
    fn bad_tag_detected() {
        assert!(matches!(
            loads(&[0xFFu8]),
            Err(PickleError::BadTag { tag: 0xFF, .. })
        ));
    }

    #[test]
    fn wrong_buffer_length_detected() {
        let obj = PyObject::Array(NdArray::f64_1d(10, 0));
        let (stream, _) = dumps_oob(&obj);
        let err = loads_oob(&stream, vec![vec![0u8; 3]]).unwrap_err();
        assert!(matches!(err, PickleError::BufferLength { .. }));
    }

    #[test]
    fn missing_buffer_detected() {
        let obj = PyObject::Array(NdArray::f64_1d(10, 0));
        let (stream, _) = dumps_oob(&obj);
        let err = loads_oob(&stream, vec![]).unwrap_err();
        assert!(matches!(err, PickleError::MissingBuffer { .. }));
    }

    #[test]
    fn unused_buffers_detected() {
        let obj = PyObject::Int(5);
        let (stream, _) = dumps_oob(&obj);
        let err = loads_oob(&stream, vec![vec![1, 2]]).unwrap_err();
        assert!(matches!(err, PickleError::Protocol(_)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut stream = dumps(&PyObject::Int(1));
        stream.push(0);
        assert!(matches!(loads(&stream), Err(PickleError::Protocol(_))));
    }
}
