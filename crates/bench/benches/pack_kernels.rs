//! Criterion micro-benchmarks of the packing kernels themselves (no
//! transport): the CPU-side story behind Figs 5 and 10.
//!
//! * hand-written packing vs. the custom-API context vs. the derived-
//!   datatype engine (merged) vs. the convertor view (Open MPI model),
//! * loop-nest packing via offset arithmetic vs. the suspendable cursor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpicd::types::{pack_struct_simple, StructSimple};
use mpicd::Buffer;
use mpicd::LoopNest;

fn struct_simple_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack/struct-simple");
    for count in [64usize, 1024, 16 * 1024] {
        let elems: Vec<StructSimple> = (0..count).map(StructSimple::generate).collect();
        let bytes = 20 * count;
        g.throughput(Throughput::Bytes(bytes as u64));

        g.bench_with_input(BenchmarkId::new("manual", count), &elems, |b, e| {
            b.iter(|| pack_struct_simple(std::hint::black_box(e)));
        });

        g.bench_with_input(BenchmarkId::new("custom-ctx", count), &elems, |b, e| {
            let mut out = vec![0u8; bytes];
            b.iter(|| {
                let mut ctx = match e.send_view() {
                    mpicd::SendView::Custom(ctx) => ctx,
                    _ => unreachable!("struct-simple is custom"),
                };
                let mut off = 0;
                while off < out.len() {
                    off += ctx.pack(off, &mut out[off..]).expect("pack");
                }
                std::hint::black_box(&out);
            });
        });

        let merged = StructSimple::datatype().commit().expect("commit");
        g.bench_with_input(BenchmarkId::new("engine-merged", count), &elems, |b, e| {
            let src = mpicd::types::as_bytes(e);
            b.iter(|| {
                merged
                    .pack_slice(std::hint::black_box(src), count)
                    .expect("pack")
            });
        });

        let convertor = StructSimple::datatype().commit_convertor().expect("commit");
        g.bench_with_input(
            BenchmarkId::new("engine-convertor", count),
            &elems,
            |b, e| {
                let src = mpicd::types::as_bytes(e);
                b.iter(|| {
                    convertor
                        .pack_slice(std::hint::black_box(src), count)
                        .expect("pack")
                });
            },
        );
    }
    g.finish();
}

fn loop_nest_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack/loop-nest");
    // NAS_LU_y-flavoured nest: 2-deep, 40-byte runs.
    for runs in [256usize, 4096] {
        let nest = LoopNest::new(vec![runs / 32, 32], vec![32 * 160, 160], 40).expect("nest");
        let span = nest.span().1 as usize;
        let src: Vec<u8> = (0..span).map(|i| i as u8).collect();
        let bytes = nest.packed_size();
        g.throughput(Throughput::Bytes(bytes as u64));

        g.bench_with_input(BenchmarkId::new("offset-addressed", runs), &src, |b, s| {
            let mut out = vec![0u8; bytes];
            b.iter(|| {
                // SAFETY: src sized to the nest span.
                let n = unsafe { nest.pack_segment(s.as_ptr(), 0, &mut out) };
                std::hint::black_box(n);
            });
        });

        g.bench_with_input(
            BenchmarkId::new("suspendable-cursor", runs),
            &src,
            |b, s| {
                let mut out = vec![0u8; bytes];
                b.iter(|| {
                    let mut cur = nest.cursor();
                    // SAFETY: as above.
                    let n = unsafe { cur.pack_into(s.as_ptr(), &mut out) };
                    std::hint::black_box(n);
                });
            },
        );

        g.bench_with_input(BenchmarkId::new("fragmented-4KiB", runs), &src, |b, s| {
            let mut frag = vec![0u8; 4096];
            b.iter(|| {
                let mut off = 0usize;
                loop {
                    // SAFETY: as above.
                    let n = unsafe { nest.pack_segment(s.as_ptr(), off, &mut frag) };
                    if n == 0 {
                        break;
                    }
                    off += n;
                }
                std::hint::black_box(off);
            });
        });
    }
    g.finish();
}

fn pickle_serialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack/pickle");
    let obj = mpicd_pickle::workload::complex_object(1 << 20);
    g.throughput(Throughput::Bytes(obj.buffer_bytes() as u64));
    g.bench_function("dumps-inband-1MiB", |b| {
        b.iter(|| mpicd_pickle::dumps(std::hint::black_box(&obj)));
    });
    g.bench_function("dumps-oob-1MiB", |b| {
        b.iter(|| mpicd_pickle::dumps_oob(std::hint::black_box(&obj)));
    });
    let stream = mpicd_pickle::dumps(&obj);
    g.bench_function("loads-inband-1MiB", |b| {
        b.iter(|| mpicd_pickle::loads(std::hint::black_box(&stream)).expect("load"));
    });
    g.finish();
}

criterion_group!(
    benches,
    struct_simple_kernels,
    loop_nest_kernels,
    pickle_serialization
);
criterion_main!(benches);
