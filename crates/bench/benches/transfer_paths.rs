//! Criterion benchmarks of complete one-way transfers over the fabric —
//! the per-method end-to-end costs the figure binaries aggregate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpicd::types::{StructSimple, StructVec};
use mpicd::World;
use mpicd_bench::methods;
use std::sync::Arc;

fn transfers_64k(c: &mut Criterion) {
    let mut g = c.benchmark_group("transfer/64KiB");
    g.throughput(Throughput::Bytes(64 * 1024));

    let world = World::new(2);
    let (a, b) = world.pair();

    // Raw bytes.
    {
        let src = vec![0xB7u8; 64 * 1024];
        let mut dst = vec![0u8; 64 * 1024];
        g.bench_function("bytes", |bch| {
            bch.iter(|| methods::bytes_oneway(&a, &b, &src, &mut dst));
        });
    }

    // struct-simple: pure packing, 64 KiB of packed payload.
    {
        let count = 64 * 1024 / 20;
        let send: Vec<StructSimple> = (0..count).map(StructSimple::generate).collect();
        let mut rx = vec![StructSimple::default(); count];
        g.bench_function("struct-simple/custom", |bch| {
            bch.iter(|| methods::ss_custom(&a, &b, &send, &mut rx));
        });
        g.bench_function("struct-simple/manual", |bch| {
            bch.iter(|| methods::ss_manual(&a, &b, &send, &mut rx));
        });
        let ty = Arc::new(StructSimple::datatype().commit_convertor().expect("type"));
        g.bench_function("struct-simple/typed-convertor", |bch| {
            bch.iter(|| methods::ss_typed(&a, &b, &ty, &send, &mut rx));
        });
        let ty = Arc::new(StructSimple::datatype().commit().expect("type"));
        g.bench_function("struct-simple/typed-merged", |bch| {
            bch.iter(|| methods::ss_typed(&a, &b, &ty, &send, &mut rx));
        });
    }

    // struct-vec: packed fields + regions.
    {
        let count = 8; // 8 × 8212 ≈ 64 KiB
        let send: Vec<StructVec> = (0..count).map(StructVec::generate).collect();
        let mut rx = vec![StructVec::default(); count];
        g.bench_function("struct-vec/custom", |bch| {
            bch.iter(|| methods::sv_custom(&a, &b, &send, &mut rx));
        });
        g.bench_function("struct-vec/manual", |bch| {
            bch.iter(|| methods::sv_manual(&a, &b, &send, &mut rx));
        });
    }

    // double-vec with 1 KiB subvectors.
    {
        let send = methods::dv_workload(64 * 1024, 1024);
        let mut rx = methods::dv_recv_like(&send);
        g.bench_function("double-vec/custom", |bch| {
            bch.iter(|| methods::dv_custom(&a, &b, &send, &mut rx));
        });
        g.bench_function("double-vec/manual", |bch| {
            bch.iter(|| methods::dv_manual(&a, &b, &send, &mut rx));
        });
    }

    g.finish();
}

fn ddtbench_transfers(c: &mut Criterion) {
    use mpicd_bench::ddt::{one_way, DdtMethod, DdtScratch};
    let mut g = c.benchmark_group("transfer/ddtbench-64KiB");

    for name in ["LAMMPS", "MILC", "NAS_MG_y"] {
        let sender = mpicd_ddtbench::make(name, 64 * 1024);
        g.throughput(Throughput::Bytes(sender.bytes() as u64));
        for method in [
            DdtMethod::Manual,
            DdtMethod::TypedDirect,
            DdtMethod::CustomPack,
            DdtMethod::CustomRegion,
        ] {
            let world = World::new(2);
            let (a, b) = world.pair();
            let mut receiver = mpicd_ddtbench::make(name, 64 * 1024);
            let mut scratch = DdtScratch::new(sender.bytes());
            if !one_way(&a, &b, &*sender, &mut *receiver, &mut scratch, method) {
                continue;
            }
            g.bench_function(BenchmarkId::new(method.label(), name), |bch| {
                bch.iter(|| one_way(&a, &b, &*sender, &mut *receiver, &mut scratch, method));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, transfers_64k, ddtbench_transfers);
criterion_main!(benches);
