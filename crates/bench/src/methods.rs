//! The §V-A Rust transfer methods, as one-way building blocks the figure
//! binaries compose into pingpongs:
//!
//! * `*_custom` — the proposed custom datatype API,
//! * `*_manual` — manual packing into a fresh buffer, sent as bytes (with
//!   the matching receive-side allocation + unpack),
//! * `*_typed`  — classic derived datatypes through the engine (the
//!   rsmpi / Open MPI baseline),
//! * [`bytes_oneway`] — raw preallocated bytes (the `rsmpi-bytes-baseline`
//!   of Fig 1 and the roofline of Figs 8–9).

// Audited unsafe: typed-buffer byte views for benchmark drivers; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use mpicd::types::{
    as_bytes, pack_struct_simple, pack_struct_vec, unpack_struct_simple, unpack_struct_vec,
    StructSimple, StructSimpleNoGap, StructVec,
};
use mpicd::vecvec::{pack_double_vec, unpack_double_vec};
use mpicd::{transfer, transfer_typed, Communicator};
use mpicd_datatype::Committed;
use std::sync::Arc;

/// Raw byte transfer (no packing anywhere).
pub fn bytes_oneway(a: &Communicator, b: &Communicator, s: &[u8], r: &mut [u8]) {
    transfer(a, b, s, r, 0).expect("bytes transfer");
}

// ---- double-vec ---------------------------------------------------------------

/// Custom API: lengths packed, subvectors as regions, one message.
pub fn dv_custom(a: &Communicator, b: &Communicator, s: &[Vec<i32>], r: &mut [Vec<i32>]) {
    transfer(a, b, s, r, 0).expect("double-vec custom transfer");
}

/// Manual pack: serialize into one fresh buffer, send as bytes, allocate
/// and unpack on the receive side.
pub fn dv_manual(a: &Communicator, b: &Communicator, s: &[Vec<i32>], r: &mut [Vec<i32>]) {
    let packed = pack_double_vec(s);
    let mut rx = vec![0u8; packed.len()];
    transfer(a, b, &packed, &mut rx, 0).expect("double-vec manual transfer");
    unpack_double_vec(&rx, r).expect("double-vec manual unpack");
}

/// Build a double-vec of `total_bytes` split into `subvec_bytes` pieces
/// (the paper's sub-vector length parameter; a single smaller vector when
/// `total < subvec`).
pub fn dv_workload(total_bytes: usize, subvec_bytes: usize) -> Vec<Vec<i32>> {
    if total_bytes <= subvec_bytes {
        return mpicd::vecvec::generate(1, (total_bytes / 4).max(1));
    }
    let n = total_bytes / subvec_bytes;
    mpicd::vecvec::generate(n, subvec_bytes / 4)
}

/// Shape-matched empty receive buffer for a double-vec workload.
pub fn dv_recv_like(x: &[Vec<i32>]) -> Vec<Vec<i32>> {
    x.iter().map(|v| vec![0; v.len()]).collect()
}

// ---- struct-vec ------------------------------------------------------------------

/// Custom API: 20 packed bytes + one 8 KiB region per element.
pub fn sv_custom(a: &Communicator, b: &Communicator, s: &[StructVec], r: &mut [StructVec]) {
    transfer(a, b, s, r, 0).expect("struct-vec custom transfer");
}

/// Manual pack of fields + data into one buffer.
pub fn sv_manual(a: &Communicator, b: &Communicator, s: &[StructVec], r: &mut [StructVec]) {
    let packed = pack_struct_vec(s);
    let mut rx = vec![0u8; packed.len()];
    transfer(a, b, &packed, &mut rx, 0).expect("struct-vec manual transfer");
    unpack_struct_vec(&rx, r).expect("struct-vec manual unpack");
}

/// Derived datatype (possible only because `data` is a fixed array).
pub fn sv_typed(
    a: &Communicator,
    b: &Communicator,
    ty: &Arc<Committed>,
    s: &[StructVec],
    r: &mut [StructVec],
) {
    let count = s.len();
    let sb = as_bytes(s);
    // SAFETY: POD struct; the typemap writes only data bytes.
    let rb = unsafe { mpicd::types::as_bytes_mut(r) };
    transfer_typed(a, b, sb, rb, count, ty, 0).expect("struct-vec typed transfer");
}

// ---- struct-simple (and no-gap) -----------------------------------------------------

/// Custom API: pure packing, 20 bytes per element.
pub fn ss_custom(a: &Communicator, b: &Communicator, s: &[StructSimple], r: &mut [StructSimple]) {
    transfer(a, b, s, r, 0).expect("struct-simple custom transfer");
}

/// Manual pack into a fresh dense buffer.
pub fn ss_manual(a: &Communicator, b: &Communicator, s: &[StructSimple], r: &mut [StructSimple]) {
    let packed = pack_struct_simple(s);
    let mut rx = vec![0u8; packed.len()];
    transfer(a, b, &packed, &mut rx, 0).expect("struct-simple manual transfer");
    unpack_struct_simple(&rx, r).expect("struct-simple manual unpack");
}

/// Derived datatype: the gapped typemap path (slow in Open MPI — Fig 5).
pub fn ss_typed(
    a: &Communicator,
    b: &Communicator,
    ty: &Arc<Committed>,
    s: &[StructSimple],
    r: &mut [StructSimple],
) {
    let count = s.len();
    let sb = as_bytes(s);
    // SAFETY: POD struct; the typemap writes only data bytes.
    let rb = unsafe { mpicd::types::as_bytes_mut(r) };
    transfer_typed(a, b, sb, rb, count, ty, 0).expect("struct-simple typed transfer");
}

/// No-gap variants: the type is dense, so "custom" and the datatype path
/// both reduce to contiguous sends.
pub fn nsg_contig(
    a: &Communicator,
    b: &Communicator,
    s: &[StructSimpleNoGap],
    r: &mut [StructSimpleNoGap],
) {
    transfer(a, b, s, r, 0).expect("no-gap transfer");
}

/// No-gap through the datatype engine (detects contiguity — Fig 6's fast
/// baseline).
pub fn nsg_typed(
    a: &Communicator,
    b: &Communicator,
    ty: &Arc<Committed>,
    s: &[StructSimpleNoGap],
    r: &mut [StructSimpleNoGap],
) {
    let count = s.len();
    let sb = as_bytes(s);
    // SAFETY: POD, dense.
    let rb = unsafe { mpicd::types::as_bytes_mut(r) };
    transfer_typed(a, b, sb, rb, count, ty, 0).expect("no-gap typed transfer");
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpicd::World;

    #[test]
    fn all_struct_simple_methods_agree() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let ty = Arc::new(StructSimple::datatype().commit().unwrap());
        let send: Vec<StructSimple> = (0..200).map(StructSimple::generate).collect();

        let mut r1 = vec![StructSimple::default(); 200];
        ss_custom(&a, &b, &send, &mut r1);
        let mut r2 = vec![StructSimple::default(); 200];
        ss_manual(&a, &b, &send, &mut r2);
        let mut r3 = vec![StructSimple::default(); 200];
        ss_typed(&a, &b, &ty, &send, &mut r3);
        assert_eq!(r1, send);
        assert_eq!(r2, send);
        assert_eq!(r3, send);
    }

    #[test]
    fn all_struct_vec_methods_agree() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let ty = Arc::new(StructVec::datatype().commit().unwrap());
        let send: Vec<StructVec> = (0..3).map(StructVec::generate).collect();

        let mut r1 = vec![StructVec::default(); 3];
        sv_custom(&a, &b, &send, &mut r1);
        let mut r2 = vec![StructVec::default(); 3];
        sv_manual(&a, &b, &send, &mut r2);
        let mut r3 = vec![StructVec::default(); 3];
        sv_typed(&a, &b, &ty, &send, &mut r3);
        assert_eq!(r1, send);
        assert_eq!(r2, send);
        assert_eq!(r3, send);
    }

    #[test]
    fn double_vec_methods_agree() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = dv_workload(64 * 1024, 1024);
        assert_eq!(send.len(), 64);
        let mut r1 = dv_recv_like(&send);
        dv_custom(&a, &b, &send, &mut r1);
        let mut r2 = dv_recv_like(&send);
        dv_manual(&a, &b, &send, &mut r2);
        assert_eq!(r1, send);
        assert_eq!(r2, send);
    }

    #[test]
    fn dv_workload_small_sizes_single_subvector() {
        let w = dv_workload(256, 1024);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].len(), 64);
    }

    #[test]
    fn no_gap_methods_agree() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let ty = Arc::new(StructSimpleNoGap::datatype().commit().unwrap());
        let send: Vec<StructSimpleNoGap> = (0..100).map(StructSimpleNoGap::generate).collect();
        let mut r1 = vec![StructSimpleNoGap::default(); 100];
        nsg_contig(&a, &b, &send, &mut r1);
        let mut r2 = vec![StructSimpleNoGap::default(); 100];
        nsg_typed(&a, &b, &ty, &send, &mut r2);
        assert_eq!(r1, send);
        assert_eq!(r2, send);
        // Both paths were eager contiguous messages.
        assert_eq!(world.fabric().stats().eager, 2);
    }
}
