//! Health-snapshot stream analysis behind `mpicd-inspect health`.
//!
//! `MPICD_HEALTH_MS=N` makes the obs layer append one JSON object per
//! period to a JSONL file — gauges (value + high-water), windowed series
//! and sketch summaries, stamped with the capture time. This module reads
//! that stream back, summarizes how each instrument moved over the run,
//! and (optionally) joins the view with a sampled flight dump so one
//! report answers both "was the process healthy while it ran?" and "what
//! did the sampled transfers actually look like?".

use crate::flight::Analysis;
use crate::regress::{parse_json, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One parsed health snapshot (one line of the stream).
#[derive(Debug, Clone, Default)]
pub struct HealthSnap {
    /// Capture time (ns, monotonic process clock).
    pub t_ns: u64,
    /// Snapshot cadence recorded by the writer (ms).
    pub window_ms: u64,
    /// Gauge name → (value, high-water).
    pub gauges: BTreeMap<String, (u64, u64)>,
    /// Series name → (total count, total sum, last-window count, last-window sum).
    pub series: BTreeMap<String, (u64, u64, u64, u64)>,
    /// Sketch name → (count, sum, p50, p99, max).
    pub sketches: BTreeMap<String, (u64, u64, u64, u64, u64)>,
}

/// A parsed health stream: the snapshots in capture order plus every
/// line that failed to parse (nonempty means a defective stream and a
/// nonzero `mpicd-inspect` exit).
#[derive(Debug, Clone, Default)]
pub struct HealthLog {
    /// Snapshots in file order.
    pub snapshots: Vec<HealthSnap>,
    /// Unparseable or non-health lines, with reasons.
    pub bad_lines: Vec<String>,
}

fn num(v: Option<&Json>) -> u64 {
    v.and_then(Json::as_f64).unwrap_or(0.0) as u64
}

fn parse_snap(obj: &Json) -> Option<HealthSnap> {
    if obj.get("kind").and_then(Json::as_str) != Some("health") {
        return None;
    }
    let mut snap = HealthSnap {
        t_ns: num(obj.get("t_ns")),
        window_ms: num(obj.get("window_ms")),
        ..HealthSnap::default()
    };
    if let Some(Json::Obj(fields)) = obj.get("gauges") {
        for (name, g) in fields {
            snap.gauges
                .insert(name.clone(), (num(g.get("value")), num(g.get("hwm"))));
        }
    }
    if let Some(Json::Obj(fields)) = obj.get("series") {
        for (name, s) in fields {
            snap.series.insert(
                name.clone(),
                (
                    num(s.get("count")),
                    num(s.get("sum")),
                    num(s.get("window_count")),
                    num(s.get("window_sum")),
                ),
            );
        }
    }
    if let Some(Json::Obj(fields)) = obj.get("sketches") {
        for (name, s) in fields {
            snap.sketches.insert(
                name.clone(),
                (
                    num(s.get("count")),
                    num(s.get("sum")),
                    num(s.get("p50")),
                    num(s.get("p99")),
                    num(s.get("max")),
                ),
            );
        }
    }
    Some(snap)
}

/// Parse a health JSONL stream. Blank lines are skipped; anything else
/// that is not a `"kind":"health"` object lands in `bad_lines`.
pub fn parse_health(text: &str) -> HealthLog {
    let mut log = HealthLog::default();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_json(line) {
            Ok(obj) => match parse_snap(&obj) {
                Some(s) => log.snapshots.push(s),
                None => log
                    .bad_lines
                    .push(format!("line {}: not a health snapshot", i + 1)),
            },
            Err(e) => log.bad_lines.push(format!("line {}: {e}", i + 1)),
        }
    }
    log
}

/// Read and parse a health stream from disk.
pub fn read_health(path: &Path) -> Result<HealthLog, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(parse_health(&text))
}

/// Human report: per-gauge first/last/high-water, per-series and
/// per-sketch end-of-run summaries, and (when given) the joined flight
/// analysis so sampled timeline health sits next to the live gauges.
pub fn render_health(log: &HealthLog, flight: Option<&Analysis>, source: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "health snapshots — {source}");
    if log.snapshots.is_empty() {
        let _ = writeln!(out, "no snapshots parsed");
    } else {
        let first = &log.snapshots[0];
        let last = &log.snapshots[log.snapshots.len() - 1];
        let span_s = last.t_ns.saturating_sub(first.t_ns) as f64 / 1e9;
        let _ = writeln!(
            out,
            "snapshots: {} over {:.1}s (series window {} ms)",
            log.snapshots.len(),
            span_s,
            last.window_ms
        );
        if !last.gauges.is_empty() {
            let _ = writeln!(
                out,
                "{:<26} {:>8} {:>8} {:>8}",
                "gauge", "first", "last", "hwm"
            );
            for (name, &(lv, lh)) in &last.gauges {
                let fv = first.gauges.get(name).map_or(0, |&(v, _)| v);
                let _ = writeln!(out, "{name:<26} {fv:>8} {lv:>8} {lh:>8}");
            }
        }
        if !last.series.is_empty() {
            let _ = writeln!(
                out,
                "{:<26} {:>12} {:>12} {:>12}",
                "series", "count", "sum", "last-window"
            );
            for (name, &(c, s, wc, _)) in &last.series {
                let _ = writeln!(out, "{name:<26} {c:>12} {s:>12} {wc:>12}");
            }
        }
        if !last.sketches.is_empty() {
            let _ = writeln!(
                out,
                "{:<26} {:>10} {:>10} {:>10} {:>10}",
                "sketch", "count", "p50", "p99", "max"
            );
            for (name, &(c, _, p50, p99, max)) in &last.sketches {
                let _ = writeln!(out, "{name:<26} {c:>10} {p50:>10} {p99:>10} {max:>10}");
            }
        }
    }
    for b in &log.bad_lines {
        let _ = writeln!(out, "BAD {b}");
    }
    if let Some(a) = flight {
        let _ = writeln!(
            out,
            "sampled flight: {} completed, {} errored, {} pending, malformed timelines: {}",
            a.completed.len(),
            a.errored.len(),
            a.pending_sends + a.pending_recvs,
            a.malformed.len()
        );
    }
    out
}

/// Machine-readable rendering of [`render_health`]'s content.
pub fn render_health_json(log: &HealthLog, flight: Option<&Analysis>, source: &str) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"source\": \"{}\",", esc(source));
    let _ = writeln!(out, "  \"snapshots\": {},", log.snapshots.len());
    let _ = writeln!(out, "  \"bad_lines\": {},", log.bad_lines.len());
    if let Some(last) = log.snapshots.last() {
        let _ = writeln!(out, "  \"t_ns\": {},", last.t_ns);
        let _ = writeln!(out, "  \"gauges\": {{");
        for (i, (name, &(v, h))) in last.gauges.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {{\"value\": {v}, \"hwm\": {h}}}{}",
                esc(name),
                if i + 1 < last.gauges.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  }},");
    }
    match flight {
        Some(a) => {
            let _ = writeln!(
                out,
                "  \"flight\": {{\"completed\": {}, \"errored\": {}, \"malformed\": {}}}",
                a.completed.len(),
                a.errored.len(),
                a.malformed.len()
            );
        }
        None => {
            let _ = writeln!(out, "  \"flight\": null");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = r#"{"kind":"health","t_ns":1000,"window_ms":250,"gauges":{"fabric.bounce_pool":{"value":8,"hwm":9}},"series":{"fabric.traffic":{"count":3,"sum":300,"window_count":1,"window_sum":100}},"sketches":{"fabric.transfer_active_ns":{"count":3,"sum":900,"p50":300,"p99":400,"max":410}}}"#;

    #[test]
    fn parses_writer_format_lines() {
        let text = format!(
            "{LINE}\n{}\n",
            LINE.replace("\"t_ns\":1000", "\"t_ns\":2000")
        );
        let log = parse_health(&text);
        assert_eq!(log.snapshots.len(), 2);
        assert!(log.bad_lines.is_empty());
        let s = &log.snapshots[0];
        assert_eq!(s.t_ns, 1000);
        assert_eq!(s.window_ms, 250);
        assert_eq!(s.gauges["fabric.bounce_pool"], (8, 9));
        assert_eq!(s.series["fabric.traffic"], (3, 300, 1, 100));
        assert_eq!(
            s.sketches["fabric.transfer_active_ns"],
            (3, 900, 300, 400, 410)
        );
    }

    #[test]
    fn parses_live_renderer_output() {
        // Round-trip against the actual writer, not just a fixture.
        mpicd_obs::telemetry::gauge("healthview.test.gauge").observe_set(5);
        let line = mpicd_obs::telemetry::render_health_json();
        let log = parse_health(&line);
        assert!(
            log.bad_lines.is_empty(),
            "writer line parses: {:?}",
            log.bad_lines
        );
        assert_eq!(log.snapshots.len(), 1);
        assert!(log.snapshots[0]
            .gauges
            .contains_key("healthview.test.gauge"));
    }

    #[test]
    fn flags_bad_and_foreign_lines() {
        let log = parse_health("not json\n{\"kind\":\"other\"}\n\n");
        assert_eq!(log.snapshots.len(), 0);
        assert_eq!(log.bad_lines.len(), 2, "blank line skipped, two defects");
    }

    #[test]
    fn renders_first_last_hwm_rows() {
        let later = LINE
            .replace("\"t_ns\":1000", "\"t_ns\":2000000000")
            .replace("\"value\":8", "\"value\":6");
        let log = parse_health(&format!("{LINE}\n{later}\n"));
        let text = render_health(&log, None, "test.jsonl");
        assert!(text.contains("snapshots: 2"));
        // first=8, last=6, hwm=9 on one row.
        assert!(text.lines().any(|l| {
            l.contains("fabric.bounce_pool")
                && l.contains('8')
                && l.contains('6')
                && l.contains('9')
        }));
        let json = render_health_json(&log, None, "test.jsonl");
        let back = parse_json(&json).expect("render_health_json parses back");
        assert_eq!(back.get("snapshots").and_then(Json::as_f64), Some(2.0));
    }
}
