//! Record-stream soak harness behind the `mpicd-soak` binary.
//!
//! Streams batches of [`Register`] records — the traffic-telemetry schema
//! of the paper's motivating Rust application (detector id, lane, date,
//! time of day, GPS fix, speed, municipality, time band) — from many
//! simulated client ranks to a few aggregator ranks for a configurable
//! duration, and judges the run from the transport's **live** telemetry
//! rather than a post-mortem:
//!
//! * windowed ingest throughput and active-latency p50/p99, read from the
//!   `fabric.transfer_active_ns` sketch by differencing bucket-count
//!   snapshots one reporting window apart;
//! * the straggler count from `fabric.stragglers`, armed by the fabric's
//!   rolling-p99 gate while transfers are still in flight;
//! * every bounded-resource gauge, with a **zero-growth assertion** on the
//!   freelists across the steady-state window: the harness quiesces after
//!   warmup and again after the soak, and the bounce-buffer pool and
//!   scratch ring must return to exactly their baseline levels while the
//!   matching/unexpected/pipeline queues drain to zero — a leaked buffer
//!   or slab entry fails the run;
//! * the sampled flight recorder (`MPICD_FLIGHT=1 MPICD_FLIGHT_SAMPLE=N`),
//!   whose dump is re-analyzed in-process at the end: every sampled
//!   timeline must reconstruct cleanly (sampling records whole timelines
//!   or nothing, so "malformed" means a recorder defect, not bad luck).
//!
//! The warmup baseline is taken at a *fixed point*: after the timed warmup
//! the harness runs short quiesced bursts until two consecutive gauge
//! snapshots agree, so the steady-state comparison never races pool
//! warm-up.

use crate::flight::{analyze, read_dump};
use crate::harness::Sample;
use crate::report::Table;
use mpicd::types::as_bytes;
use mpicd::{transfer, transfer_typed, Communicator, World};
use mpicd_datatype::{Committed, Datatype};
use mpicd_obs::{flight, telemetry};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---- the Register workload --------------------------------------------------

/// Calendar date of a [`Register`] observation.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Date {
    /// Four-digit year.
    pub year: i16,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

/// Time of day of a [`Register`] observation.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Hour {
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
}

/// One traffic-detector record, shaped like the registers the paper's
/// motivating application streams to its aggregators: nested date/time
/// structs, mixed scalar widths, and interior padding the derived
/// datatype must skip (after `hora` and at the struct tail).
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Register {
    /// Detector station id.
    pub cod_detector: i32,
    /// Lane id within the station.
    pub id_carril: i32,
    /// Observation date.
    pub fecha: Date,
    /// Observation time of day.
    pub hora: Hour,
    /// Latitude of the fix.
    pub latitud: f32,
    /// Longitude of the fix.
    pub longitud: f32,
    /// Measured speed.
    pub velocidad: f32,
    /// Municipality code.
    pub municipio_id: u8,
    /// Time-band bucket.
    pub franja_horaria: u8,
}

impl Register {
    /// Deterministic workload record (index-derived, no RNG needed).
    pub fn generate(i: usize) -> Self {
        Self {
            cod_detector: (i % 4096) as i32,
            id_carril: (i % 4) as i32,
            fecha: Date {
                year: 2024,
                month: (i % 12 + 1) as u8,
                day: (i % 28 + 1) as u8,
            },
            hora: Hour {
                hour: (i % 24) as u8,
                minute: (i % 60) as u8,
                second: (i * 7 % 60) as u8,
            },
            latitud: 40.4 + (i % 100) as f32 * 1e-3,
            longitud: -3.7 - (i % 100) as f32 * 1e-3,
            velocidad: (i % 140) as f32,
            municipio_id: (i % 179) as u8,
            franja_horaria: (i % 3) as u8,
        }
    }

    /// The derived-datatype description: field triples over the gappy
    /// `repr(C)` layout, resized so the extent equals the Rust stride
    /// (the last field ends at byte 30; the struct is 32 bytes).
    pub fn datatype() -> Datatype {
        let fields = Datatype::structure(vec![
            (2, 0, Datatype::of::<i32>()),  // cod_detector, id_carril
            (1, 8, Datatype::of::<i16>()),  // fecha.year
            (2, 10, Datatype::of::<u8>()),  // fecha.month, fecha.day
            (3, 12, Datatype::of::<u8>()),  // hora (one pad byte follows)
            (3, 16, Datatype::of::<f32>()), // latitud, longitud, velocidad
            (2, 28, Datatype::of::<u8>()),  // municipio_id, franja_horaria
        ]);
        Datatype::resized(0, std::mem::size_of::<Register>(), fields)
    }
}

// ---- configuration ----------------------------------------------------------

/// Soak-run parameters (see `mpicd-soak --help`).
#[derive(Clone, Debug, PartialEq)]
pub struct SoakConfig {
    /// Steady-state (measured) duration.
    pub duration: Duration,
    /// Timed warmup before the baseline gauge snapshot.
    pub warmup: Duration,
    /// Number of client ranks streaming records.
    pub clients: usize,
    /// Number of aggregator ranks the clients share.
    pub aggregators: usize,
    /// Records per transfer.
    pub batch: usize,
    /// Live-report cadence.
    pub window: Duration,
    /// Where to write the machine-readable soak report (`-` disables).
    pub report: Option<PathBuf>,
}

impl SoakConfig {
    /// Full-length defaults, or the smoke-test shape under
    /// `MPICD_BENCH_QUICK=1`.
    pub fn defaults(quick: bool) -> Self {
        if quick {
            Self {
                duration: Duration::from_secs(2),
                warmup: Duration::from_millis(300),
                clients: 4,
                aggregators: 2,
                batch: 16,
                window: Duration::from_millis(500),
                report: None,
            }
        } else {
            Self {
                duration: Duration::from_secs(60),
                warmup: Duration::from_secs(2),
                clients: 8,
                aggregators: 2,
                batch: 64,
                window: Duration::from_secs(1),
                report: Some(PathBuf::from("mpicd-soak-report.json")),
            }
        }
    }
}

/// Parse a human duration: `90`/`90s` (seconds, fractions allowed),
/// `250ms`, `2m`.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let (num, scale) = if let Some(v) = s.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = s.strip_suffix('m') {
        (v, 60.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad duration `{s}` (try 60, 10s, 250ms)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("bad duration `{s}`"));
    }
    Ok(Duration::from_secs_f64(v * scale))
}

/// Apply command-line arguments on top of `base` defaults.
pub fn parse_args(
    args: impl Iterator<Item = String>,
    base: SoakConfig,
) -> Result<SoakConfig, String> {
    let mut cfg = base;
    let mut args = args;
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--duration" => cfg.duration = parse_duration(&val("--duration")?)?,
            "--warmup" => cfg.warmup = parse_duration(&val("--warmup")?)?,
            "--window" => cfg.window = parse_duration(&val("--window")?)?,
            "--clients" => {
                cfg.clients = val("--clients")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--clients needs an integer >= 1")?;
            }
            "--aggregators" => {
                cfg.aggregators = val("--aggregators")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--aggregators needs an integer >= 1")?;
            }
            "--batch" => {
                cfg.batch = val("--batch")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("--batch needs an integer >= 1")?;
            }
            "--report" => {
                let v = val("--report")?;
                cfg.report = if v == "-" {
                    None
                } else {
                    Some(PathBuf::from(v))
                };
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(cfg)
}

// ---- gauge snapshots --------------------------------------------------------

/// A point-in-time reading of every bounded-resource gauge the fabric
/// exports. Names must match `FabricMetrics` (the conformance test pins
/// them into `docs/ARCHITECTURE.md`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeLevels {
    /// `fabric.bounce_pool` — recycled eager bounce buffers parked.
    pub bounce_pool: u64,
    /// `fabric.scratch_free` — free pipeline scratch slots.
    pub scratch_free: u64,
    /// `fabric.match.live` — live posted/unexpected slab entries.
    pub match_live: u64,
    /// `fabric.match.tombstones` — cancelled entries awaiting lazy drain.
    pub match_tombstones: u64,
    /// `fabric.unexpected_depth` — unexpected-queue depth.
    pub unexpected: u64,
    /// `fabric.pipeline.queue` — fragment jobs waiting for a worker.
    pub pipeline_queue: u64,
}

impl GaugeLevels {
    /// Current values.
    pub fn read() -> Self {
        Self {
            bounce_pool: telemetry::gauge("fabric.bounce_pool").get(),
            scratch_free: telemetry::gauge("fabric.scratch_free").get(),
            match_live: telemetry::gauge("fabric.match.live").get(),
            match_tombstones: telemetry::gauge("fabric.match.tombstones").get(),
            unexpected: telemetry::gauge("fabric.unexpected_depth").get(),
            pipeline_queue: telemetry::gauge("fabric.pipeline.queue").get(),
        }
    }

    /// High-water marks.
    pub fn high_water() -> Self {
        Self {
            bounce_pool: telemetry::gauge("fabric.bounce_pool").high_water(),
            scratch_free: telemetry::gauge("fabric.scratch_free").high_water(),
            match_live: telemetry::gauge("fabric.match.live").high_water(),
            match_tombstones: telemetry::gauge("fabric.match.tombstones").high_water(),
            unexpected: telemetry::gauge("fabric.unexpected_depth").high_water(),
            pipeline_queue: telemetry::gauge("fabric.pipeline.queue").high_water(),
        }
    }

    /// Total growth of `self` (the quiesced end-of-soak levels) versus the
    /// quiesced post-warmup `baseline`. The bounce pool is a demand-grown
    /// freelist (hard-capped in the fabric), so a quiesced level *above*
    /// the baseline is late capacity warm-up — the first steady-state
    /// concurrency peak the warmup bursts happened to miss — while a
    /// level *below* it is a buffer checked out and never returned. The
    /// scratch ring is fixed-size, so it must return to its baseline
    /// exactly; queue-depth gauges must drain to zero outright.
    pub fn growth_from(&self, baseline: &Self) -> u64 {
        baseline.bounce_pool.saturating_sub(self.bounce_pool)
            + self.scratch_free.abs_diff(baseline.scratch_free)
            + self.match_tombstones.abs_diff(baseline.match_tombstones)
            + self.match_live
            + self.unexpected
            + self.pipeline_queue
    }
}

// ---- the run ----------------------------------------------------------------

/// One live-report window's worth of steady-state measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowStat {
    /// Seconds since steady-state start, at the window's end.
    pub t_s: f64,
    /// Completed transfers per second in this window.
    pub msg_per_s: f64,
    /// Windowed active-latency median (ns).
    pub p50_ns: u64,
    /// Windowed active-latency 99th percentile (ns).
    pub p99_ns: u64,
    /// Stragglers flagged during this window.
    pub stragglers: u64,
}

/// Everything a finished soak run learned.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Measured steady-state wall time (s).
    pub elapsed_s: f64,
    /// Transfers completed in the steady-state window.
    pub messages: u64,
    /// Records carried by those transfers.
    pub records: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Per-window transfer throughput (msg/s).
    pub throughput: Sample,
    /// Steady-state active-latency median (ns).
    pub p50_ns: u64,
    /// Steady-state active-latency 99th percentile (ns).
    pub p99_ns: u64,
    /// Stragglers flagged across the steady-state window.
    pub stragglers: u64,
    /// The live per-window measurements, in order.
    pub windows: Vec<WindowStat>,
    /// Quiesced gauge baseline after warmup.
    pub start: GaugeLevels,
    /// Quiesced gauge levels after the soak.
    pub end: GaugeLevels,
    /// Gauge high-water marks over the whole run.
    pub hwm: GaugeLevels,
    /// Total freelist growth ([`GaugeLevels::growth_from`]); 0 on a
    /// healthy run.
    pub growth: u64,
    /// Quiesced warmup bursts needed to reach the gauge fixed point.
    pub stabilize_rounds: usize,
    /// Sampled timelines reconstructed from the flight dump (0 when the
    /// recorder is off).
    pub sampled_timelines: usize,
    /// Malformed sampled timelines (must be 0).
    pub malformed: usize,
    /// Flight sample rate in effect (1 = every transfer).
    pub sample_rate: u64,
    /// Flight dump analyzed, if the recorder was on.
    pub flight_dump: Option<PathBuf>,
    /// Health-snapshot stream, if `MPICD_HEALTH_MS` armed it.
    pub health_path: Option<PathBuf>,
}

/// Transfers per client in each gauge-stabilization burst (covers two
/// full traffic-mix cycles, so every freelist is warm before the
/// baseline snapshot).
const STABILIZE_ITERS: usize = 2 * BULK_EVERY;
/// Upper bound on stabilization bursts before taking the baseline as-is.
const MAX_STABILIZE_ROUNDS: usize = 8;
/// Every `RAW_EVERY`th client transfer sends the batch as a contiguous
/// pre-serialized blob: posted before the receive, it lands unexpected
/// and exercises the eager bounce-buffer freelist.
const RAW_EVERY: usize = 4;
/// Every `BULK_EVERY`th client transfer is a bulk flush of
/// `BULK_FACTOR * batch` records — large enough for the rendezvous
/// protocol and the fragment pipeline's scratch ring.
const BULK_EVERY: usize = 32;
/// Batch multiplier for bulk flushes.
const BULK_FACTOR: usize = 64;

/// Let posted work fully retire before reading quiesced gauge levels.
fn settle() {
    std::thread::sleep(Duration::from_millis(20));
}

fn straggler_total() -> u64 {
    mpicd_obs::global().counter("fabric.stragglers").get()
}

/// Element-wise `now - then` over two cumulative bucket snapshots.
fn sub_counts(now: &[u64], then: &[u64]) -> Vec<u64> {
    now.iter()
        .zip(then)
        .map(|(a, b)| a.saturating_sub(*b))
        .collect()
}

/// The run-wide pieces every client thread shares: batch shape, the
/// committed datatype, the stop flag, the burst length and the record
/// counter.
struct ClientCtx<'a> {
    batch: usize,
    ty: &'a Arc<Committed>,
    stop: &'a AtomicBool,
    iters: usize,
    records: &'a AtomicU64,
}

/// Client send loop: stream batches until `ctx.stop`, or for `ctx.iters`
/// batches when nonzero (stabilization bursts). The traffic cycles a
/// fixed mix so every bounded resource sees steady use: typed eager
/// batches, a raw contiguous blob every [`RAW_EVERY`]th transfer (bounce
/// pool), and a [`BULK_FACTOR`]× bulk flush every [`BULK_EVERY`]th
/// (rendezvous + pipeline scratch ring). Adds every record streamed to
/// `ctx.records`.
fn client_loop(a: &Communicator, b: &Communicator, tag: i32, ctx: &ClientCtx<'_>) {
    let stride = std::mem::size_of::<Register>();
    let small: Vec<Register> = (0..ctx.batch).map(Register::generate).collect();
    let big: Vec<Register> = (0..ctx.batch * BULK_FACTOR)
        .map(Register::generate)
        .collect();
    let mut rsmall = vec![0u8; ctx.batch * stride];
    let mut rbig = vec![0u8; ctx.batch * BULK_FACTOR * stride];
    let mut done = 0usize;
    while !ctx.stop.load(Ordering::Relaxed) && (ctx.iters == 0 || done < ctx.iters) {
        let n = if (done + 1).is_multiple_of(BULK_EVERY) {
            transfer_typed(a, b, as_bytes(&big), &mut rbig, big.len(), ctx.ty, tag)
                .expect("soak bulk transfer");
            big.len()
        } else if (done + 1).is_multiple_of(RAW_EVERY) {
            transfer(a, b, as_bytes(&small), &mut rsmall[..], tag).expect("soak raw transfer");
            small.len()
        } else {
            transfer_typed(
                a,
                b,
                as_bytes(&small),
                &mut rsmall,
                small.len(),
                ctx.ty,
                tag,
            )
            .expect("soak typed transfer");
            small.len()
        };
        ctx.records.fetch_add(n as u64, Ordering::Relaxed);
        done += 1;
    }
}

/// Spawn the client threads and run them until `stop` (timed phases pass
/// `iters == 0` and flip `stop` from the caller via `body`).
fn drive(
    world: &World,
    cfg: &SoakConfig,
    ty: &Arc<Committed>,
    iters: usize,
    records: &AtomicU64,
    body: impl FnOnce(&AtomicBool),
) {
    let stop = AtomicBool::new(false);
    let ctx = ClientCtx {
        batch: cfg.batch,
        ty,
        stop: &stop,
        iters,
        records,
    };
    std::thread::scope(|s| {
        for c in 0..cfg.clients {
            let a = world.comm(cfg.aggregators + c);
            let b = world.comm(c % cfg.aggregators);
            let ctx = &ctx;
            s.spawn(move || client_loop(&a, &b, c as i32, ctx));
        }
        body(ctx.stop);
    });
}

/// Run the soak: timed warmup, gauge-fixed-point baseline, the measured
/// steady-state stream with live windowed reporting, quiesce, and the
/// end-of-run flight-dump self-check. Enables telemetry if the caller has
/// not already.
pub fn run(cfg: &SoakConfig) -> SoakReport {
    telemetry::set_enabled(true);
    // Arm the periodic health-snapshot thread if MPICD_HEALTH_MS asks
    // for one (no-op otherwise).
    mpicd_obs::health::ensure_started();
    let world = World::new(cfg.aggregators + cfg.clients);
    let ty = Arc::new(
        Register::datatype()
            .commit()
            .expect("Register datatype commits"),
    );
    let records = AtomicU64::new(0);

    // Timed warmup: warms the bounce pool, scratch ring, pack-plan cache
    // and autotuner so the baseline below is representative.
    let warmup = cfg.warmup;
    drive(&world, cfg, &ty, 0, &records, |stop| {
        std::thread::sleep(warmup);
        stop.store(true, Ordering::Relaxed);
    });
    settle();

    // Quiesced bursts until two consecutive gauge snapshots agree: the
    // baseline is a fixed point, so steady-state growth is attributable.
    let mut baseline = GaugeLevels::read();
    let mut stabilize_rounds = 0;
    for _ in 0..MAX_STABILIZE_ROUNDS {
        drive(&world, cfg, &ty, STABILIZE_ITERS, &records, |_| {});
        settle();
        stabilize_rounds += 1;
        let next = GaugeLevels::read();
        let stable = next == baseline;
        baseline = next;
        if stable {
            break;
        }
    }

    // Steady state: stream for `duration` while reporting live windows.
    let sketch = telemetry::sketch("fabric.transfer_active_ns");
    let stats0 = world.fabric().stats();
    let strag0 = straggler_total();
    let counts0 = sketch.bucket_counts();
    let records0 = records.load(Ordering::Relaxed);
    let mut windows = Vec::new();
    let t0 = Instant::now();
    drive(&world, cfg, &ty, 0, &records, |stop| {
        let mut prev_counts = counts0.clone();
        let mut prev_msgs = stats0.messages;
        let mut prev_strag = strag0;
        let mut prev_t = t0;
        loop {
            let elapsed = t0.elapsed();
            if elapsed >= cfg.duration {
                break;
            }
            std::thread::sleep((cfg.duration - elapsed).min(cfg.window));
            let now = Instant::now();
            let counts = sketch.bucket_counts();
            let stats = world.fabric().stats();
            let strag = straggler_total();
            let diff = sub_counts(&counts, &prev_counts);
            let w = WindowStat {
                t_s: (now - t0).as_secs_f64(),
                msg_per_s: (stats.messages - prev_msgs) as f64 / (now - prev_t).as_secs_f64(),
                p50_ns: telemetry::quantile_from_counts(&diff, 0.50),
                p99_ns: telemetry::quantile_from_counts(&diff, 0.99),
                stragglers: strag - prev_strag,
            };
            let g = GaugeLevels::read();
            println!(
                "[soak +{:6.1}s] ingest {:>9.0} msg/s | active p50 {:>8} p99 {:>8} | \
                 stragglers +{} | pool {} scratch {} live {} q {}",
                w.t_s,
                w.msg_per_s,
                fmt_ns(w.p50_ns),
                fmt_ns(w.p99_ns),
                w.stragglers,
                g.bounce_pool,
                g.scratch_free,
                g.match_live,
                g.pipeline_queue,
            );
            windows.push(w);
            prev_counts = counts;
            prev_msgs = stats.messages;
            prev_strag = strag;
            prev_t = now;
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    settle();

    let end = GaugeLevels::read();
    let stats = world.fabric().stats();
    let diff = sub_counts(&sketch.bucket_counts(), &counts0);
    let messages = stats.messages - stats0.messages;
    let rates: Vec<f64> = windows.iter().map(|w| w.msg_per_s).collect();

    // End-of-run observability flush (telemetry exposition, flight dump,
    // final health snapshot), then re-read our own dump: the soak is its
    // own first consumer.
    mpicd_obs::flush();
    let mut flight_dump = None;
    let mut sampled_timelines = 0;
    let mut malformed = 0;
    if flight::enabled() {
        let path = mpicd_obs::config::current().flight_path();
        match read_dump(&path) {
            Ok(dump) => {
                let a = analyze(&dump);
                sampled_timelines = a.completed.len() + a.errored.len();
                malformed = a.malformed.len();
                flight_dump = Some(path);
            }
            Err(e) => {
                eprintln!("mpicd-soak: could not re-read flight dump: {e}");
                malformed += 1;
            }
        }
    }
    let health_path =
        mpicd_obs::health::running().then(|| mpicd_obs::config::current().health_path());

    SoakReport {
        elapsed_s,
        messages,
        records: records.load(Ordering::Relaxed) - records0,
        bytes: stats.bytes - stats0.bytes,
        throughput: Sample::from_values(&rates),
        p50_ns: telemetry::quantile_from_counts(&diff, 0.50),
        p99_ns: telemetry::quantile_from_counts(&diff, 0.99),
        stragglers: straggler_total() - strag0,
        windows,
        start: baseline,
        end,
        hwm: GaugeLevels::high_water(),
        growth: end.growth_from(&baseline),
        stabilize_rounds,
        sampled_timelines,
        malformed,
        sample_rate: flight::sample().max(1),
        flight_dump,
        health_path,
    }
}

// ---- rendering --------------------------------------------------------------

/// Human-friendly nanosecond figure (`850ns`, `2.1us`, `18.4ms`).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The end-of-run summary, including the two greppable verdict lines CI
/// gates on (`soak: freelist growth …` and `soak: malformed sampled
/// timelines: …`).
pub fn render_report(r: &SoakReport, cfg: &SoakConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mpicd-soak — {} clients -> {} aggregators, batch {} ({:.1}s steady state, {} stabilization bursts)",
        cfg.clients, cfg.aggregators, cfg.batch, r.elapsed_s, r.stabilize_rounds
    );
    let _ = writeln!(
        out,
        "ingest: {} transfers, {} records, {:.1} MB — {:.0} msg/s mean per window (p50 {:.0}, worst {:.0})",
        r.messages,
        r.records,
        r.bytes as f64 / 1e6,
        r.throughput.mean,
        r.throughput.p50,
        r.windows
            .iter()
            .map(|w| w.msg_per_s)
            .fold(f64::INFINITY, f64::min),
    );
    let _ = writeln!(
        out,
        "active latency (steady window): p50 {}  p99 {}  stragglers {}",
        fmt_ns(r.p50_ns),
        fmt_ns(r.p99_ns),
        r.stragglers
    );
    let _ = writeln!(
        out,
        "{:<26} {:>8} {:>8} {:>8}",
        "gauge", "start", "end", "hwm"
    );
    for (name, s, e, h) in [
        (
            "fabric.bounce_pool",
            r.start.bounce_pool,
            r.end.bounce_pool,
            r.hwm.bounce_pool,
        ),
        (
            "fabric.scratch_free",
            r.start.scratch_free,
            r.end.scratch_free,
            r.hwm.scratch_free,
        ),
        (
            "fabric.match.live",
            r.start.match_live,
            r.end.match_live,
            r.hwm.match_live,
        ),
        (
            "fabric.match.tombstones",
            r.start.match_tombstones,
            r.end.match_tombstones,
            r.hwm.match_tombstones,
        ),
        (
            "fabric.unexpected_depth",
            r.start.unexpected,
            r.end.unexpected,
            r.hwm.unexpected,
        ),
        (
            "fabric.pipeline.queue",
            r.start.pipeline_queue,
            r.end.pipeline_queue,
            r.hwm.pipeline_queue,
        ),
    ] {
        let _ = writeln!(out, "{name:<26} {s:>8} {e:>8} {h:>8}");
    }
    let _ = writeln!(
        out,
        "soak: freelist growth {} (bounce_pool {}->{}, scratch_free {}->{}, \
         match_live {}, tombstones {}->{}, unexpected {}, pipeline_queue {})",
        r.growth,
        r.start.bounce_pool,
        r.end.bounce_pool,
        r.start.scratch_free,
        r.end.scratch_free,
        r.end.match_live,
        r.start.match_tombstones,
        r.end.match_tombstones,
        r.end.unexpected,
        r.end.pipeline_queue,
    );
    if r.flight_dump.is_some() {
        let _ = writeln!(
            out,
            "soak: malformed sampled timelines: {} (sampled {}, sample 1/{})",
            r.malformed, r.sampled_timelines, r.sample_rate
        );
    } else {
        let _ = writeln!(
            out,
            "soak: flight recorder off (MPICD_FLIGHT=1 MPICD_FLIGHT_SAMPLE=N to sample timelines)"
        );
    }
    if let Some(h) = &r.health_path {
        let _ = writeln!(out, "health snapshots: {}", h.display());
    }
    out
}

/// The `BENCH_soak.json` table: per-window ingest throughput, whose p99
/// cell gives the regression gate its tail column.
pub fn table(r: &SoakReport) -> Table {
    let mut t = Table::new(
        "record-stream soak: steady-state ingest",
        "metric",
        "msg/s",
        vec!["ingest".to_string()],
    );
    t.push("throughput", vec![Some(r.throughput)]);
    t
}

/// Machine-readable soak report (hand-rolled JSON, atomic tmp+rename so a
/// concurrent reader never sees a torn artifact).
pub fn write_report_json(
    path: &std::path::Path,
    r: &SoakReport,
    cfg: &SoakConfig,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut o = String::from("{\n");
    let _ = writeln!(o, "  \"kind\": \"soak-report\",");
    let _ = writeln!(
        o,
        "  \"clients\": {}, \"aggregators\": {}, \"batch\": {}, \"elapsed_s\": {:.3},",
        cfg.clients, cfg.aggregators, cfg.batch, r.elapsed_s
    );
    let _ = writeln!(
        o,
        "  \"messages\": {}, \"records\": {}, \"bytes\": {},",
        r.messages, r.records, r.bytes
    );
    let _ = writeln!(
        o,
        "  \"throughput_msg_s\": {{\"mean\": {:.3}, \"std\": {:.3}, \"p50\": {:.3}, \"p99\": {:.3}}},",
        r.throughput.mean, r.throughput.std, r.throughput.p50, r.throughput.p99
    );
    let _ = writeln!(
        o,
        "  \"active_ns\": {{\"p50\": {}, \"p99\": {}}}, \"stragglers\": {},",
        r.p50_ns, r.p99_ns, r.stragglers
    );
    let _ = writeln!(o, "  \"freelist_growth\": {},", r.growth);
    let _ = writeln!(o, "  \"gauges\": {{");
    let rows = [
        (
            "fabric.bounce_pool",
            r.start.bounce_pool,
            r.end.bounce_pool,
            r.hwm.bounce_pool,
        ),
        (
            "fabric.scratch_free",
            r.start.scratch_free,
            r.end.scratch_free,
            r.hwm.scratch_free,
        ),
        (
            "fabric.match.live",
            r.start.match_live,
            r.end.match_live,
            r.hwm.match_live,
        ),
        (
            "fabric.match.tombstones",
            r.start.match_tombstones,
            r.end.match_tombstones,
            r.hwm.match_tombstones,
        ),
        (
            "fabric.unexpected_depth",
            r.start.unexpected,
            r.end.unexpected,
            r.hwm.unexpected,
        ),
        (
            "fabric.pipeline.queue",
            r.start.pipeline_queue,
            r.end.pipeline_queue,
            r.hwm.pipeline_queue,
        ),
    ];
    for (i, (name, s, e, h)) in rows.iter().enumerate() {
        let _ = writeln!(
            o,
            "    \"{name}\": {{\"start\": {s}, \"end\": {e}, \"hwm\": {h}}}{}",
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(o, "  }},");
    let _ = writeln!(
        o,
        "  \"flight\": {{\"sampled_timelines\": {}, \"malformed\": {}, \"sample\": {}}},",
        r.sampled_timelines, r.malformed, r.sample_rate
    );
    let _ = writeln!(o, "  \"windows\": [");
    for (i, w) in r.windows.iter().enumerate() {
        let _ = writeln!(
            o,
            "    {{\"t_s\": {:.3}, \"msg_per_s\": {:.3}, \"p50_ns\": {}, \"p99_ns\": {}, \"stragglers\": {}}}{}",
            w.t_s,
            w.msg_per_s,
            w.p50_ns,
            w.p99_ns,
            w.stragglers,
            if i + 1 < r.windows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(o, "  ]");
    o.push_str("}\n");
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, o)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_datatype_matches_rust_layout() {
        assert_eq!(std::mem::size_of::<Register>(), 32, "repr(C) stride");
        let ty = Register::datatype();
        assert_eq!(ty.size(), 29, "data bytes (three pad bytes skipped)");
        assert_eq!(ty.extent(), 32, "resized extent equals the Rust stride");
        let c = ty.commit().expect("commits");
        assert_eq!(c.size(), 29);
        assert_eq!(c.extent(), 32);
    }

    #[test]
    fn parse_args_applies_flags_over_defaults() {
        let base = SoakConfig::defaults(true);
        let cfg = parse_args(
            [
                "--duration",
                "10s",
                "--clients",
                "3",
                "--batch",
                "7",
                "--report",
                "-",
            ]
            .iter()
            .map(|s| s.to_string()),
            base.clone(),
        )
        .unwrap();
        assert_eq!(cfg.duration, Duration::from_secs(10));
        assert_eq!(cfg.clients, 3);
        assert_eq!(cfg.batch, 7);
        assert_eq!(cfg.report, None);
        assert_eq!(cfg.window, base.window, "untouched fields keep defaults");

        assert!(parse_args(["--clients".to_string()].into_iter(), base.clone()).is_err());
        assert!(parse_args(["--bogus".to_string()].into_iter(), base).is_err());
    }

    #[test]
    fn parse_duration_units() {
        assert_eq!(parse_duration("60").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("10s").unwrap(), Duration::from_secs(10));
        assert_eq!(parse_duration("250ms").unwrap(), Duration::from_millis(250));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert!(parse_duration("ten").is_err());
        assert!(parse_duration("-1s").is_err());
    }

    #[test]
    fn growth_is_zero_only_at_the_baseline_fixed_point() {
        let base = GaugeLevels {
            bounce_pool: 8,
            scratch_free: 4,
            ..GaugeLevels::default()
        };
        assert_eq!(base.growth_from(&base), 0);
        let leaked = GaugeLevels {
            bounce_pool: 7,
            ..base
        };
        assert_eq!(leaked.growth_from(&base), 1, "a lost bounce buffer counts");
        let warmed = GaugeLevels {
            bounce_pool: 9,
            ..base
        };
        assert_eq!(
            warmed.growth_from(&base),
            0,
            "late demand-driven pool warm-up is not a leak"
        );
        let stuck = GaugeLevels {
            match_live: 2,
            pipeline_queue: 1,
            ..base
        };
        assert_eq!(
            stuck.growth_from(&base),
            3,
            "undrained queues count outright"
        );
    }

    #[test]
    fn soak_smoke_run_holds_zero_growth() {
        // Miniature end-to-end soak: the steady-state freelist assertion
        // must hold on a healthy fabric, and the live windows must have
        // seen real traffic.
        let cfg = SoakConfig {
            duration: Duration::from_millis(200),
            warmup: Duration::from_millis(50),
            clients: 2,
            aggregators: 1,
            batch: 4,
            window: Duration::from_millis(50),
            report: None,
        };
        let r = run(&cfg);
        assert!(r.messages > 0, "steady state moved traffic");
        assert!(
            r.records >= r.messages * 4,
            "bulk flushes carry extra records"
        );
        assert_eq!(
            r.growth, 0,
            "freelists returned to baseline: {:?} -> {:?}",
            r.start, r.end
        );
        assert!(!r.windows.is_empty(), "live windows were reported");
        assert_eq!(r.malformed, 0);
    }
}
