//! Threaded pingpong driver for the §V-B Python-style strategies.
//!
//! The pickle strategies are sequences of blocking probes/sends/receives
//! (exactly like mpi4py), so the two ranks must run on separate threads;
//! [`crate::harness::threaded_bandwidth`] measures around them.

use crate::harness::{threaded_bandwidth, Config, Sample};
use mpicd::World;
use mpicd_pickle::{
    recv_pickle_basic, recv_pickle_oob, recv_pickle_oob_cdt, send_pickle_basic, send_pickle_oob,
    send_pickle_oob_cdt, PyObject,
};

/// A named §V-B strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Raw preallocated buffers, no serialization (the roofline).
    Roofline,
    /// Single in-band pickle stream.
    Basic,
    /// Out-of-band buffers via one MPI message each.
    Oob,
    /// Out-of-band buffers via the custom datatype engine.
    OobCdt,
}

impl Strategy {
    /// Label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Self::Roofline => "roofline",
            Self::Basic => "pickle-basic",
            Self::Oob => "pickle-oob",
            Self::OobCdt => "pickle-oob-cdt",
        }
    }

    /// Every strategy, figure order.
    pub fn all() -> [Strategy; 4] {
        [Self::Roofline, Self::Basic, Self::Oob, Self::OobCdt]
    }
}

/// Run the pingpong for `strategy` over `obj` and report bandwidth (MB/s).
/// The payload accounted is the object's buffer bytes, both directions.
pub fn run(world: &World, strategy: Strategy, obj: &PyObject, cfg: Config) -> Sample {
    let (c0, c1) = world.pair();
    let bytes = obj.buffer_bytes();

    match strategy {
        Strategy::Roofline => {
            let payload = vec![0x3Cu8; bytes];
            threaded_bandwidth(
                world.fabric(),
                cfg,
                2 * bytes,
                || {
                    c0.send(&payload, 1, 0).expect("roofline send");
                    let mut echo = vec![0u8; bytes];
                    c0.recv(&mut echo, 1, 1).expect("roofline recv");
                },
                || {
                    let mut buf = vec![0u8; bytes];
                    c1.recv(&mut buf, 0, 0).expect("roofline recv");
                    c1.send(&buf, 0, 1).expect("roofline send");
                },
            )
        }
        Strategy::Basic => threaded_bandwidth(
            world.fabric(),
            cfg,
            2 * bytes,
            || {
                send_pickle_basic(&c0, obj, 1, 0).expect("basic send");
                let _echo = recv_pickle_basic(&c0, 1, 1).expect("basic recv");
            },
            || {
                let echo = recv_pickle_basic(&c1, 0, 0).expect("basic recv");
                send_pickle_basic(&c1, &echo, 0, 1).expect("basic send");
            },
        ),
        Strategy::Oob => threaded_bandwidth(
            world.fabric(),
            cfg,
            2 * bytes,
            || {
                send_pickle_oob(&c0, obj, 1, 0).expect("oob send");
                let _echo = recv_pickle_oob(&c0, 1, 1).expect("oob recv");
            },
            || {
                let echo = recv_pickle_oob(&c1, 0, 0).expect("oob recv");
                send_pickle_oob(&c1, &echo, 0, 1).expect("oob send");
            },
        ),
        Strategy::OobCdt => threaded_bandwidth(
            world.fabric(),
            cfg,
            2 * bytes,
            || {
                send_pickle_oob_cdt(&c0, obj, 1, 0).expect("oob-cdt send");
                let _echo = recv_pickle_oob_cdt(&c0, 1, 1).expect("oob-cdt recv");
            },
            || {
                let echo = recv_pickle_oob_cdt(&c1, 0, 0).expect("oob-cdt recv");
                send_pickle_oob_cdt(&c1, &echo, 0, 1).expect("oob-cdt send");
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpicd_pickle::workload;

    #[test]
    fn every_strategy_produces_bandwidth() {
        let cfg = Config {
            warmup: 1,
            reps: 2,
            runs: 1,
        };
        let obj = workload::single_array(64 * 1024);
        for s in Strategy::all() {
            let world = World::new(2);
            let sample = run(&world, s, &obj, cfg);
            assert!(sample.mean > 0.0, "{}", s.label());
        }
    }
}
