//! Cross-rank happens-before DAG and critical-path analysis
//! (`mpicd-inspect critical-path`).
//!
//! Builds a DAG over the reconstructed transfer timelines of one or more
//! flight-recorder dumps (see [`crate::flight::merge_dumps`] for the
//! multi-process case):
//!
//! * **Nodes** are the lifecycle points of each matched transfer —
//!   send-post (on the sender rank), receive-post, match and terminal (on
//!   the receiver rank).
//! * **Dependency edges** are the transfer's internal happens-before
//!   constraints: both posts precede the match (`wait`), the match
//!   precedes the terminal (`active`). The match edge is the cross-rank
//!   arc — the same arc the Lamport `parent` field stamps on the wire.
//! * **Program-order edges** chain each rank's nodes in time order
//!   (`idle` when nothing else explains the gap), plus a virtual origin at
//!   the earliest timestamp. Every node is therefore reachable, and the
//!   path weight from origin to the latest node is the measured makespan
//!   *by construction* — the per-edge weights are timestamp deltas.
//!
//! The **critical path** is recovered by walking backward from the latest
//! node, at every step following the predecessor that was the *binding
//! constraint* (latest to clear; dependency edges win ties against idle
//! edges). `active` edges are split into pack/unpack/copy using the
//! existing per-timeline phase attribution; modeled wire time is reported
//! alongside as overlap, exactly as in the flat report.
//!
//! **Slack** is computed per transfer on the same DAG with idle gaps made
//! compressible (weight 0), CPM-style: `(longest constrained path in the
//! DAG) − (longest constrained path through this transfer)`. Transfers on
//! the binding chain have exactly zero slack; fat slack marks transfers
//! that could slow down for free.
//!
//! **Collectives** are grouped by their reserved tags
//! ([`mpicd::collective_tag_name`]): each group gets its own sub-DAG and
//! critical path, exposing the spine of the bcast/gather/reduce tree.

use crate::flight::{json_escape, Analysis, Timeline};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a node marks in a transfer's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    /// Virtual origin at the earliest timestamp (rank -1).
    Origin,
    /// Send post, on the sender rank.
    PostSend,
    /// Receive post, on the receiver rank.
    PostRecv,
    /// Match, on the receiver rank.
    Match,
    /// Terminal (complete or error), on the receiver rank.
    End,
}

impl NodeKind {
    fn as_str(self) -> &'static str {
        match self {
            Self::Origin => "origin",
            Self::PostSend => "post_send",
            Self::PostRecv => "post_recv",
            Self::Match => "match",
            Self::End => "end",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    kind: NodeKind,
    /// Rank the event executed on (-1 for the origin).
    rank: i64,
    t_ns: u64,
    /// Index into the timeline slice (usize::MAX for the origin).
    tl: usize,
}

/// Edge classification for blame and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeKind {
    /// Post → match: waiting for the partner (the cross-rank arc when the
    /// tail is the send post).
    Wait,
    /// Match → terminal: the transfer's active execution.
    Active,
    /// Rank program-order gap with no transfer activity.
    Idle,
}

impl EdgeKind {
    fn as_str(self) -> &'static str {
        match self {
            Self::Wait => "wait",
            Self::Active => "active",
            Self::Idle => "idle",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    from: usize,
    to: usize,
    kind: EdgeKind,
}

/// One step of the reported critical path, in forward time order.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// Edge class: `wait`, `active` or `idle`.
    pub kind: &'static str,
    /// Wall-clock weight of the step.
    pub ns: u64,
    /// Rank blamed for the step (where its head event executed).
    pub rank: i64,
    /// Send-side id of the transfer involved (0 for idle/origin steps).
    pub id: u64,
    /// `tail_kind->head_kind` label, e.g. `post_send->match`.
    pub label: String,
    /// Cross-rank step (tail and head on different ranks).
    pub cross_rank: bool,
}

/// Per-transfer slack: how much the transfer could slow down without
/// extending the makespan, given the dependency and program-order
/// constraints (idle gaps are compressible).
#[derive(Debug, Clone, Copy)]
pub struct TransferSlack {
    /// Send-side transfer id.
    pub id: u64,
    /// Sender rank.
    pub src: i64,
    /// Receiver rank.
    pub dst: i64,
    /// Payload bytes.
    pub bytes: u64,
    /// Slack in nanoseconds.
    pub slack_ns: u64,
}

/// Critical path of one collective operation's reserved-tag traffic.
#[derive(Debug, Clone)]
pub struct CollectivePath {
    /// Operation name (`bcast`, `gather`, …).
    pub name: &'static str,
    /// Transfers carrying the reserved tag.
    pub transfers: usize,
    /// Group makespan: earliest post → latest terminal.
    pub makespan_ns: u64,
    /// Critical path through the group's sub-DAG.
    pub steps: Vec<PathStep>,
}

/// Aggregate phase weights along a critical path.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathPhases {
    /// Σ wait-edge weights.
    pub wait: u64,
    /// Pack share of active edges.
    pub pack: u64,
    /// Unpack share of active edges.
    pub unpack: u64,
    /// Residual (copy/bookkeeping) share of active edges.
    pub copy: u64,
    /// Σ idle-edge weights.
    pub idle: u64,
    /// Modeled wire time overlapping the path's active edges (reported,
    /// not part of the wall-clock sum).
    pub wire: u64,
}

impl PathPhases {
    /// Wall-clock sum of the path (`wire` excluded: it overlaps).
    pub fn total(&self) -> u64 {
        self.wait + self.pack + self.unpack + self.copy + self.idle
    }
}

/// The full critical-path report over an [`Analysis`].
#[derive(Debug, Clone, Default)]
pub struct CriticalReport {
    /// Transfers in the DAG (completed + errored).
    pub transfers: usize,
    /// Earliest node timestamp (the virtual origin).
    pub origin_ns: u64,
    /// Measured makespan: latest node − earliest node.
    pub makespan_ns: u64,
    /// The critical path, origin → latest node, forward order.
    pub steps: Vec<PathStep>,
    /// Phase decomposition of the path (sums to `makespan_ns` exactly).
    pub phases: PathPhases,
    /// ns of critical-path time blamed on each rank.
    pub blame: BTreeMap<i64, u64>,
    /// Per-transfer slack, ascending (critical transfers first).
    pub slack: Vec<TransferSlack>,
    /// Connected components of the DAG ignoring the virtual origin — 1
    /// means every rank's timeline is causally linked to every other.
    pub components: usize,
    /// Cross-rank dependency arcs on the critical path.
    pub cross_rank_steps: usize,
    /// Per-collective critical paths (reserved-tag traffic).
    pub collectives: Vec<CollectivePath>,
}

/// Build the DAG over `tls` and return (nodes, edges, origin index).
/// Nodes are sorted by (t_ns, index) implicitly via a returned order.
fn build_dag(tls: &[&Timeline]) -> (Vec<Node>, Vec<Edge>) {
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    if tls.is_empty() {
        return (nodes, edges);
    }
    let origin_t = tls.iter().map(|t| t.first_post_ns()).min().unwrap_or(0);
    nodes.push(Node {
        kind: NodeKind::Origin,
        rank: -1,
        t_ns: origin_t,
        tl: usize::MAX,
    });
    for (i, t) in tls.iter().enumerate() {
        let ps = nodes.len();
        nodes.push(Node {
            kind: NodeKind::PostSend,
            rank: t.src,
            t_ns: t.post_send_ns,
            tl: i,
        });
        let pr = t.post_recv_ns.map(|r| {
            nodes.push(Node {
                kind: NodeKind::PostRecv,
                rank: t.dst,
                t_ns: r,
                tl: i,
            });
            nodes.len() - 1
        });
        let m = nodes.len();
        nodes.push(Node {
            kind: NodeKind::Match,
            rank: t.dst,
            t_ns: t.match_ns,
            tl: i,
        });
        let e = nodes.len();
        nodes.push(Node {
            kind: NodeKind::End,
            rank: t.dst,
            t_ns: t.end_ns,
            tl: i,
        });
        edges.push(Edge {
            from: ps,
            to: m,
            kind: EdgeKind::Wait,
        });
        if let Some(pr) = pr {
            edges.push(Edge {
                from: pr,
                to: m,
                kind: EdgeKind::Wait,
            });
        }
        edges.push(Edge {
            from: m,
            to: e,
            kind: EdgeKind::Active,
        });
    }
    // Program order per rank + origin fan-out to each rank's first node.
    let mut by_rank: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate().skip(1) {
        by_rank.entry(n.rank).or_default().push(i);
    }
    for chain in by_rank.values_mut() {
        chain.sort_by_key(|&i| (nodes[i].t_ns, i));
        edges.push(Edge {
            from: 0,
            to: chain[0],
            kind: EdgeKind::Idle,
        });
        for w in chain.windows(2) {
            edges.push(Edge {
                from: w[0],
                to: w[1],
                kind: EdgeKind::Idle,
            });
        }
    }
    (nodes, edges)
}

/// Walk backward from the latest node, following the binding constraint at
/// every step, and return the path in forward order.
fn backward_walk(nodes: &[Node], edges: &[Edge], tls: &[&Timeline]) -> Vec<PathStep> {
    if nodes.len() <= 1 {
        return Vec::new();
    }
    let mut incoming: Vec<Vec<&Edge>> = vec![Vec::new(); nodes.len()];
    for e in edges {
        incoming[e.to].push(e);
    }
    let last = (1..nodes.len())
        .max_by_key(|&i| (nodes[i].t_ns, i))
        .unwrap();
    let mut steps = Vec::new();
    let mut cur = last;
    while cur != 0 {
        // Binding constraint: the predecessor that cleared last; on ties a
        // dependency edge explains the time better than an idle gap.
        let Some(&e) = incoming[cur].iter().max_by_key(|e| {
            (
                nodes[e.from].t_ns,
                e.kind != EdgeKind::Idle,
                std::cmp::Reverse(e.from),
            )
        }) else {
            break;
        };
        let head = nodes[cur];
        let tail = nodes[e.from];
        steps.push(PathStep {
            kind: e.kind.as_str(),
            ns: head.t_ns.saturating_sub(tail.t_ns),
            rank: head.rank,
            id: if head.tl == usize::MAX || e.kind == EdgeKind::Idle {
                0
            } else {
                tls[head.tl].id
            },
            label: format!("{}->{}", tail.kind.as_str(), head.kind.as_str()),
            cross_rank: tail.rank != head.rank && tail.rank >= 0,
        });
        cur = e.from;
    }
    steps.reverse();
    steps
}

/// Phase decomposition + blame of a path. Active edges are split with the
/// owning timeline's pack/unpack attribution, scaled to the edge weight.
fn decompose(steps: &[PathStep], tls: &[&Timeline]) -> (PathPhases, BTreeMap<i64, u64>) {
    let by_id: BTreeMap<u64, &Timeline> = tls.iter().map(|t| (t.id, *t)).collect();
    let mut p = PathPhases::default();
    let mut blame: BTreeMap<i64, u64> = BTreeMap::new();
    for s in steps {
        *blame.entry(s.rank).or_default() += s.ns;
        match s.kind {
            "wait" => p.wait += s.ns,
            "idle" => p.idle += s.ns,
            _ => match by_id.get(&s.id) {
                Some(t) => {
                    // The active edge weight is exactly end - match; the
                    // timeline's callback sums partition it.
                    let cb = (t.pack_ns + t.unpack_ns).min(s.ns);
                    let scale = if t.pack_ns + t.unpack_ns == 0 {
                        0.0
                    } else {
                        cb as f64 / (t.pack_ns + t.unpack_ns) as f64
                    };
                    let pack = (t.pack_ns as f64 * scale) as u64;
                    let unpack = (t.unpack_ns as f64 * scale) as u64;
                    p.pack += pack;
                    p.unpack += unpack.min(cb - pack.min(cb));
                    p.copy += s.ns - pack - unpack.min(cb - pack.min(cb));
                    p.wire += t.wire_ns;
                }
                None => p.copy += s.ns,
            },
        }
    }
    (p, blame)
}

/// Longest mandatory-work path through every transfer → slack. Idle and
/// origin edges are compressible (weight 0); dependency edges keep their
/// wall-clock weight. Slack is measured against the DAG's own longest
/// constrained path (CPM-style), so the binding chain gets exactly zero.
fn slack_of(nodes: &[Node], edges: &[Edge], tls: &[&Timeline]) -> Vec<TransferSlack> {
    let n = nodes.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (nodes[i].t_ns, i));
    let w = |e: &Edge| {
        if e.kind == EdgeKind::Idle {
            0
        } else {
            nodes[e.to].t_ns.saturating_sub(nodes[e.from].t_ns)
        }
    };
    let mut fdist = vec![0u64; n];
    for &i in &order {
        for e in edges.iter().filter(|e| e.from == i) {
            fdist[e.to] = fdist[e.to].max(fdist[i] + w(e));
        }
    }
    let mut bdist = vec![0u64; n];
    for &i in order.iter().rev() {
        for e in edges.iter().filter(|e| e.to == i) {
            bdist[e.from] = bdist[e.from].max(bdist[i] + w(e));
        }
    }
    let horizon = fdist.iter().copied().max().unwrap_or(0);
    // Per transfer: the longest constrained path through its active edge.
    let mut out = Vec::new();
    for e in edges.iter().filter(|e| e.kind == EdgeKind::Active) {
        let through = fdist[e.from] + w(e) + bdist[e.to];
        let t = tls[nodes[e.to].tl];
        out.push(TransferSlack {
            id: t.id,
            src: t.src,
            dst: t.dst,
            bytes: t.bytes,
            slack_ns: horizon.saturating_sub(through),
        });
    }
    out.sort_by_key(|s| (s.slack_ns, s.id));
    out
}

/// Connected components over the DAG, ignoring the virtual origin (which
/// would connect everything trivially).
fn component_count(nodes: &[Node], edges: &[Edge]) -> usize {
    let n = nodes.len();
    if n <= 1 {
        return 0;
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for e in edges.iter().filter(|e| e.from != 0) {
        let (a, b) = (find(&mut parent, e.from), find(&mut parent, e.to));
        parent[a] = b;
    }
    (1..n)
        .map(|i| find(&mut parent, i))
        .collect::<std::collections::BTreeSet<_>>()
        .len()
}

/// Run the whole critical-path analysis over reconstructed timelines.
pub fn critical_path(a: &Analysis) -> CriticalReport {
    let tls: Vec<&Timeline> = a.completed.iter().chain(a.errored.iter()).collect();
    if tls.is_empty() {
        return CriticalReport::default();
    }
    let (nodes, edges) = build_dag(&tls);
    let origin_ns = nodes[0].t_ns;
    let makespan_ns = nodes
        .iter()
        .map(|n| n.t_ns)
        .max()
        .unwrap_or(origin_ns)
        .saturating_sub(origin_ns);
    let steps = backward_walk(&nodes, &edges, &tls);
    let (phases, blame) = decompose(&steps, &tls);
    let slack = slack_of(&nodes, &edges, &tls);
    let components = component_count(&nodes, &edges);
    let cross_rank_steps = steps.iter().filter(|s| s.cross_rank).count();

    // Per-collective sub-DAGs, grouped by reserved tag.
    let mut groups: BTreeMap<&'static str, Vec<&Timeline>> = BTreeMap::new();
    for t in &tls {
        if let Ok(tag) = i32::try_from(t.tag) {
            if let Some(name) = mpicd::collective_tag_name(tag) {
                groups.entry(name).or_default().push(t);
            }
        }
    }
    let collectives = groups
        .into_iter()
        .map(|(name, group)| {
            let (gn, ge) = build_dag(&group);
            let g_origin = gn[0].t_ns;
            let g_make = gn
                .iter()
                .map(|n| n.t_ns)
                .max()
                .unwrap_or(g_origin)
                .saturating_sub(g_origin);
            CollectivePath {
                name,
                transfers: group.len(),
                makespan_ns: g_make,
                steps: backward_walk(&gn, &ge, &group),
            }
        })
        .collect();

    CriticalReport {
        transfers: tls.len(),
        origin_ns,
        makespan_ns,
        steps,
        phases,
        blame,
        slack,
        components,
        cross_rank_steps,
        collectives,
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render the human-readable critical-path report. Contains the literal
/// line `malformed timelines: N` so CI can grep the same contract as the
/// flat report.
pub fn render_critical(a: &Analysis, r: &CriticalReport, source: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "critical path report — {source}");
    let _ = writeln!(out, "malformed timelines: {}", a.malformed.len());
    for reason in a.malformed.iter().take(20) {
        let _ = writeln!(out, "  ! {reason}");
    }
    let _ = writeln!(
        out,
        "transfers: {}, DAG components: {}, makespan: {}",
        r.transfers,
        r.components,
        fmt_ns(r.makespan_ns)
    );
    let p = &r.phases;
    let _ = writeln!(
        out,
        "path: wait {} + pack {} + unpack {} + copy {} + idle {} = {} \
         (wire overlap {}, {} cross-rank arcs)",
        fmt_ns(p.wait),
        fmt_ns(p.pack),
        fmt_ns(p.unpack),
        fmt_ns(p.copy),
        fmt_ns(p.idle),
        fmt_ns(p.total()),
        fmt_ns(p.wire),
        r.cross_rank_steps
    );
    let _ = writeln!(out, "\nper-rank blame:");
    for (rank, ns) in &r.blame {
        let pctg = if r.makespan_ns > 0 {
            *ns as f64 * 100.0 / r.makespan_ns as f64
        } else {
            0.0
        };
        let label = if *rank < 0 {
            "(origin)".to_string()
        } else {
            format!("rank {rank}")
        };
        let _ = writeln!(out, "  {label:>10}: {:>10} ({pctg:5.1}%)", fmt_ns(*ns));
    }
    let _ = writeln!(out, "\ncritical path ({} steps):", r.steps.len());
    for s in r.steps.iter().filter(|s| s.ns > 0 || s.kind != "idle") {
        let _ = writeln!(
            out,
            "  {:<6} {:>10}  rank {:>3}  {}{}{}",
            s.kind,
            fmt_ns(s.ns),
            s.rank,
            s.label,
            if s.id != 0 {
                format!("  id {}", s.id)
            } else {
                String::new()
            },
            if s.cross_rank { "  [cross-rank]" } else { "" }
        );
    }
    let _ = writeln!(out, "\ntightest slack (most critical transfers first):");
    for s in r.slack.iter().take(10) {
        let _ = writeln!(
            out,
            "  id {} {}->{} {}B: slack {}",
            s.id,
            s.src,
            s.dst,
            s.bytes,
            fmt_ns(s.slack_ns)
        );
    }
    if !r.collectives.is_empty() {
        let _ = writeln!(out, "\ncollectives:");
        for c in &r.collectives {
            let _ = writeln!(
                out,
                "  {} ({} transfers, makespan {}):",
                c.name,
                c.transfers,
                fmt_ns(c.makespan_ns)
            );
            for s in c.steps.iter().filter(|s| s.kind != "idle" || s.ns > 0) {
                let _ = writeln!(
                    out,
                    "    {:<6} {:>10}  rank {:>3}  {}{}",
                    s.kind,
                    fmt_ns(s.ns),
                    s.rank,
                    s.label,
                    if s.cross_rank { "  [cross-rank]" } else { "" }
                );
            }
        }
    }
    out
}

fn steps_json(out: &mut String, steps: &[PathStep]) {
    out.push('[');
    for (i, s) in steps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kind\":\"{}\",\"ns\":{},\"rank\":{},\"id\":{},\"label\":\"{}\",\
             \"cross_rank\":{}}}",
            s.kind,
            s.ns,
            s.rank,
            s.id,
            json_escape(&s.label),
            s.cross_rank
        );
    }
    out.push(']');
}

/// Render the critical-path report as one JSON object (`--json`).
pub fn render_critical_json(a: &Analysis, r: &CriticalReport, source: &str) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"source\":\"{}\",\"malformed\":{},\"transfers\":{},\"components\":{},\
         \"origin_ns\":{},\"makespan_ns\":{},\"cross_rank_steps\":{},",
        json_escape(source),
        a.malformed.len(),
        r.transfers,
        r.components,
        r.origin_ns,
        r.makespan_ns,
        r.cross_rank_steps
    );
    let p = &r.phases;
    let _ = write!(
        out,
        "\"phases\":{{\"wait\":{},\"pack\":{},\"unpack\":{},\"copy\":{},\"idle\":{},\
         \"wire\":{},\"total\":{}}},",
        p.wait,
        p.pack,
        p.unpack,
        p.copy,
        p.idle,
        p.wire,
        p.total()
    );
    out.push_str("\"blame\":{");
    for (i, (rank, ns)) in r.blame.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{rank}\":{ns}");
    }
    out.push_str("},\"path\":");
    steps_json(&mut out, &r.steps);
    out.push_str(",\"slack\":[");
    for (i, s) in r.slack.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"src\":{},\"dst\":{},\"bytes\":{},\"slack_ns\":{}}}",
            s.id, s.src, s.dst, s.bytes, s.slack_ns
        );
    }
    out.push_str("],\"collectives\":[");
    for (i, c) in r.collectives.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"transfers\":{},\"makespan_ns\":{},\"path\":",
            c.name, c.transfers, c.makespan_ns
        );
        steps_json(&mut out, &c.steps);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{analyze, parse_dump};

    #[allow(clippy::too_many_arguments)] // mirrors the dump schema field-for-field
    fn line(
        kind: &str,
        id: u64,
        t: u64,
        src: i64,
        dst: i64,
        tag: i64,
        dur: u64,
        aux: u64,
    ) -> String {
        format!(
            "{{\"kind\":\"{kind}\",\"id\":{id},\"t_ns\":{t},\"dur_ns\":{dur},\"src\":{src},\
             \"dst\":{dst},\"tag\":{tag},\"bytes\":64,\"method\":\"eager\",\"aux\":{aux}}}"
        )
    }

    /// A two-hop relay: 0 -> 1 (id 1, recv 2), then 1 -> 2 (id 3, recv 4).
    /// The second send posts only after the first completes, so the
    /// critical path must cross rank 0 -> 1 -> 2.
    fn relay() -> String {
        [
            line("post_recv", 2, 100, 0, 1, 7, 0, 0),
            line("post_send", 1, 200, 0, 1, 7, 0, 0),
            line("match", 1, 300, 0, 1, 7, 0, 2),
            line("complete", 1, 600, 0, 1, 7, 0, 0),
            line("post_recv", 4, 150, 1, 2, 7, 0, 0),
            line("post_send", 3, 700, 1, 2, 7, 0, 0),
            line("match", 3, 800, 1, 2, 7, 0, 4),
            line("complete", 3, 1000, 1, 2, 7, 0, 0),
        ]
        .join("\n")
    }

    #[test]
    fn relay_path_crosses_ranks_and_sums_to_makespan() {
        let a = analyze(&parse_dump(&relay()).unwrap());
        assert!(a.malformed.is_empty(), "{:?}", a.malformed);
        let r = critical_path(&a);
        assert_eq!(r.transfers, 2);
        assert_eq!(r.makespan_ns, 900); // 1000 - 100
        assert_eq!(
            r.phases.total(),
            r.makespan_ns,
            "path weight is the makespan by construction"
        );
        assert_eq!(r.components, 1, "relay is one causal component");
        assert!(r.cross_rank_steps >= 1, "path crosses ranks: {:?}", r.steps);
        // The binding chain ends in transfer 3's active edge.
        let last = r.steps.last().unwrap();
        assert_eq!((last.kind, last.id), ("active", 3));
        // Slack: transfer 3 is on the critical chain (tight), transfer 1
        // feeds it (also constrained through the relay).
        assert_eq!(r.slack[0].slack_ns, 0, "{:?}", r.slack);
    }

    #[test]
    fn disjoint_pairs_are_two_components() {
        // 0->1 and 2->3 never interact.
        let text = [
            line("post_send", 1, 100, 0, 1, 7, 0, 0),
            line("match", 1, 200, 0, 1, 7, 0, 0),
            line("complete", 1, 300, 0, 1, 7, 0, 0),
            line("post_send", 3, 110, 2, 3, 7, 0, 0),
            line("match", 3, 210, 2, 3, 7, 0, 0),
            line("complete", 3, 400, 2, 3, 7, 0, 0),
        ]
        .join("\n");
        let a = analyze(&parse_dump(&text).unwrap());
        let r = critical_path(&a);
        assert_eq!(r.components, 2);
        assert_eq!(r.makespan_ns, 300);
        assert_eq!(r.phases.total(), r.makespan_ns);
    }

    #[test]
    fn collective_tags_are_grouped() {
        let bcast_tag = i64::from(i32::MAX - 11);
        let text = [
            line("post_send", 1, 100, 0, 1, bcast_tag, 0, 0),
            line("match", 1, 200, 0, 1, bcast_tag, 0, 0),
            line("complete", 1, 300, 0, 1, bcast_tag, 0, 0),
            line("post_send", 3, 310, 1, 2, bcast_tag, 0, 0),
            line("match", 3, 400, 1, 2, bcast_tag, 0, 0),
            line("complete", 3, 500, 1, 2, bcast_tag, 0, 0),
            line("post_send", 5, 120, 0, 2, 9, 0, 0),
            line("match", 5, 130, 0, 2, 9, 0, 0),
            line("complete", 5, 140, 0, 2, 9, 0, 0),
        ]
        .join("\n");
        let a = analyze(&parse_dump(&text).unwrap());
        let r = critical_path(&a);
        assert_eq!(r.collectives.len(), 1);
        let c = &r.collectives[0];
        assert_eq!((c.name, c.transfers), ("bcast", 2));
        assert_eq!(c.makespan_ns, 400); // 500 - 100
        let total: u64 = c.steps.iter().map(|s| s.ns).sum();
        assert_eq!(total, c.makespan_ns);
    }

    #[test]
    fn reports_render_and_agree() {
        let a = analyze(&parse_dump(&relay()).unwrap());
        let r = critical_path(&a);
        let text = render_critical(&a, &r, "relay");
        assert!(text.contains("malformed timelines: 0"));
        assert!(text.contains("per-rank blame"));
        assert!(text.contains("[cross-rank]"), "{text}");
        let json = render_critical_json(&a, &r, "relay");
        assert!(json.contains("\"makespan_ns\":900"));
        assert!(json.contains("\"components\":1"));
        assert!(json.contains("\"cross_rank\":true"));
        assert!(json.contains("\"slack\":["));
    }

    #[test]
    fn empty_analysis_yields_empty_report() {
        let a = analyze(&parse_dump("").unwrap());
        let r = critical_path(&a);
        assert_eq!(r.transfers, 0);
        assert_eq!(r.makespan_ns, 0);
        assert!(r.steps.is_empty());
        assert_eq!(r.components, 0);
    }
}
