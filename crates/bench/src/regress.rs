//! Bench-regression comparator (`bench_compare`): parses the
//! `BENCH_*.json` tables emitted by [`crate::emit_json`] and gates on
//! p50/p99 regressions against a committed baseline.
//!
//! Two sources of false alarms shape the design:
//!
//! * Raw MB/s numbers are hardware-bound, so a baseline recorded on one
//!   machine would "regress" on any slower runner. The comparator
//!   normalizes machine speed out by default: the median p50 ratio
//!   (current / baseline) over a table's absolute-unit cells is taken as
//!   the machine scale and divided out before judging. Ratio columns
//!   (`× vs …` speedups) and `count` tables are machine-independent and
//!   are compared unnormalized.
//! * Individual cells are noisy (4-run percentiles swing well past 15%
//!   even on an idle machine), so the *gate* is per **column**: the
//!   geometric mean of the per-row ratios. A real engine regression
//!   shifts every row of its column and survives the averaging; one-cell
//!   noise does not. Per-cell outliers are still reported as context.

use crate::harness::Sample;
use crate::report::Table;

// ---------------------------------------------------------------------------
// Minimal JSON value parser (the workspace has no serde; this reads only
// what `Table::render_json` emits: objects, arrays, strings, numbers,
// null).
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // The emitter writes UTF-8; pass bytes through.
                    let s = &self.bytes[self.pos..];
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&s[..len.min(s.len())]).unwrap_or("\u{fffd}"));
                    self.pos += len.min(s.len());
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Parse a `BENCH_*.json` document back into a [`Table`]. Baselines
/// written before percentiles existed default p50/p99 to the mean.
pub fn parse_table(text: &str) -> Result<Table, String> {
    let v = parse_json(text)?;
    let str_field = |k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field `{k}`"))
    };
    let columns = v
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or("missing `columns`")?
        .iter()
        .map(|c| c.as_str().map(str::to_string).ok_or("non-string column"))
        .collect::<Result<Vec<_>, _>>()?;
    let mut table = Table::new(
        &str_field("title")?,
        &str_field("xlabel")?,
        &str_field("unit")?,
        columns,
    );
    for row in v
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing `rows`")?
    {
        let x = row
            .get("x")
            .and_then(Json::as_str)
            .ok_or("row missing `x`")?;
        let cells = row
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("row missing `cells`")?
            .iter()
            .map(|c| match c {
                Json::Null => Ok(None),
                Json::Obj(_) => {
                    let mean = c
                        .get("mean")
                        .and_then(Json::as_f64)
                        .ok_or("cell w/o mean")?;
                    let std = c.get("std").and_then(Json::as_f64).unwrap_or(0.0);
                    let p50 = c.get("p50").and_then(Json::as_f64).unwrap_or(mean);
                    let p99 = c.get("p99").and_then(Json::as_f64).unwrap_or(mean);
                    Ok(Some(Sample {
                        mean,
                        std,
                        p50,
                        p99,
                    }))
                }
                _ => Err("cell is neither object nor null"),
            })
            .collect::<Result<Vec<_>, _>>()?;
        table.push(x, cells);
    }
    Ok(table)
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Whether a column holds machine-independent ratios rather than values
/// in the table's unit.
fn is_ratio_column(label: &str) -> bool {
    label.contains('×') || label.to_ascii_lowercase().contains("vs ")
}

/// Whether larger values are better for this unit.
fn higher_is_better(unit: &str) -> bool {
    unit.contains("/s") || unit.contains('×')
}

/// Outcome of comparing one current table against its baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Gate failures (column-level regressions, missing cells); empty
    /// means the gate passes.
    pub regressions: Vec<String>,
    /// Per-cell outliers beyond tolerance — context, not gate failures.
    pub outliers: Vec<String>,
    /// Cells compared.
    pub checked: usize,
    /// Machine scale divided out of absolute cells (1.0 when not
    /// normalizing or no absolute cells matched).
    pub scale: f64,
}

/// Compare `cur` against `base`. `tolerance` is fractional (0.15 = 15%)
/// and gates the per-column geometric-mean p50/p99 ratios. With
/// `normalize`, absolute-unit columns are judged against the median
/// machine scale instead of 1.0.
pub fn compare_tables(base: &Table, cur: &Table, tolerance: f64, normalize: bool) -> Comparison {
    let mut out = Comparison {
        scale: 1.0,
        ..Comparison::default()
    };
    let find_cell = |t: &Table, x: &str, col: &str| -> Option<Sample> {
        let ci = t.columns.iter().position(|c| c == col)?;
        let (_, cells) = t.rows.iter().find(|(rx, _)| rx == x)?;
        cells.get(ci).copied().flatten()
    };

    // Pass 1: machine scale over absolute cells (count tables are
    // machine-independent by definition).
    let table_is_counts = base.unit == "count";
    if normalize && !table_is_counts {
        let mut ratios = Vec::new();
        for (x, cells) in &base.rows {
            for (ci, cell) in cells.iter().enumerate() {
                let (Some(b), Some(col)) = (cell, base.columns.get(ci)) else {
                    continue;
                };
                if is_ratio_column(col) || b.p50 <= 0.0 {
                    continue;
                }
                if let Some(c) = find_cell(cur, x, col) {
                    if c.p50 > 0.0 {
                        ratios.push(c.p50 / b.p50);
                    }
                }
            }
        }
        if !ratios.is_empty() {
            ratios.sort_by(f64::total_cmp);
            out.scale = ratios[ratios.len() / 2];
        }
    }

    // Pass 2: per-row ratios, accumulated per column; per-cell outliers
    // recorded as context.
    let judge = |r: f64, higher: bool| {
        if higher {
            r < 1.0 / (1.0 + tolerance)
        } else {
            r > 1.0 + tolerance
        }
    };
    // (log-ratio sums, count) per column × {p50, p99}.
    let mut col_log = vec![[0.0f64; 2]; base.columns.len()];
    let mut col_n = vec![0usize; base.columns.len()];
    for (x, cells) in &base.rows {
        for (ci, cell) in cells.iter().enumerate() {
            let (Some(b), Some(col)) = (cell, base.columns.get(ci)) else {
                continue;
            };
            let Some(c) = find_cell(cur, x, col) else {
                out.regressions.push(format!(
                    "{x}/{col}: present in baseline, missing in current run"
                ));
                continue;
            };
            out.checked += 1;
            let scale = if is_ratio_column(col) || table_is_counts {
                1.0
            } else {
                out.scale
            };
            let higher = is_ratio_column(col) || higher_is_better(&base.unit);
            if b.p50 <= 0.0 || b.p99 <= 0.0 || c.p50 <= 0.0 || c.p99 <= 0.0 {
                continue;
            }
            let r50 = c.p50 / b.p50 / scale;
            let r99 = c.p99 / b.p99 / scale;
            col_log[ci][0] += r50.ln();
            col_log[ci][1] += r99.ln();
            col_n[ci] += 1;
            for (stat, r) in [("p50", r50), ("p99", r99)] {
                if judge(r, higher) {
                    out.outliers.push(format!(
                        "{x}/{col} {stat}: ×{r:.3} after ×{scale:.3} machine scale"
                    ));
                }
            }
        }
    }

    // Pass 3: gate each column on its geometric-mean ratio.
    for (ci, col) in base.columns.iter().enumerate() {
        if col_n[ci] == 0 {
            continue;
        }
        let higher = is_ratio_column(col) || higher_is_better(&base.unit);
        for (si, stat) in ["p50", "p99"].iter().enumerate() {
            let gm = (col_log[ci][si] / col_n[ci] as f64).exp();
            if judge(gm, higher) {
                out.regressions.push(format!(
                    "column `{col}` {stat}: geomean ×{gm:.3} over {} row(s) \
                     (machine scale ×{:.3}, tolerance {:.0}%)",
                    col_n[ci],
                    out.scale,
                    tolerance * 100.0
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(unit: &str, vals: &[(&str, &[f64])]) -> Table {
        let cols: Vec<String> = (0..vals[0].1.len()).map(|i| format!("m{i}")).collect();
        let mut t = Table::new("t", "x", unit, cols);
        for (x, row) in vals {
            t.push(
                *x,
                row.iter().map(|&v| Some(Sample::point(v, 0.0))).collect(),
            );
        }
        t
    }

    #[test]
    fn json_roundtrip_preserves_cells() {
        let mut t = Table::new("T \"q\"", "size", "MB/s", vec!["a".into(), "b".into()]);
        t.push(
            "64",
            vec![Some(Sample::from_values(&[1.0, 3.0, 2.0])), None],
        );
        let back = parse_table(&t.render_json()).unwrap();
        assert_eq!(back.title, "T \"q\"");
        assert_eq!(back.unit, "MB/s");
        let s = back.rows[0].1[0].unwrap();
        assert_eq!((s.mean, s.p50, s.p99), (2.0, 2.0, 3.0));
        assert!(back.rows[0].1[1].is_none());
    }

    #[test]
    fn old_baselines_without_percentiles_still_parse() {
        let text = r#"{"title":"t","xlabel":"x","unit":"us",
            "columns":["a"],
            "rows":[{"x":"64","cells":[{"mean": 2.5, "std": 0.5}]}]}"#;
        let t = parse_table(text).unwrap();
        let s = t.rows[0].1[0].unwrap();
        assert_eq!((s.p50, s.p99), (2.5, 2.5), "defaults to the mean");
    }

    #[test]
    fn identical_tables_pass() {
        let t = table("MB/s", &[("64", &[10.0, 20.0]), ("128", &[12.0, 24.0])]);
        let c = compare_tables(&t, &t, 0.15, true);
        assert!(c.regressions.is_empty(), "{:?}", c.regressions);
        assert_eq!(c.checked, 4);
        assert_eq!(c.scale, 1.0);
    }

    #[test]
    fn uniform_machine_slowdown_is_normalized_away() {
        let base = table("MB/s", &[("64", &[10.0, 20.0]), ("128", &[12.0, 24.0])]);
        let cur = table("MB/s", &[("64", &[5.0, 10.0]), ("128", &[6.0, 12.0])]);
        let c = compare_tables(&base, &cur, 0.15, true);
        assert!(c.regressions.is_empty(), "{:?}", c.regressions);
        assert!((c.scale - 0.5).abs() < 1e-9);
        // ... but not when normalization is off.
        let c = compare_tables(&base, &cur, 0.15, false);
        assert!(!c.regressions.is_empty());
    }

    #[test]
    fn one_method_falling_behind_is_flagged() {
        let base = table("MB/s", &[("64", &[10.0, 20.0]), ("128", &[12.0, 24.0])]);
        // m1 lost 40% at one of two rows: geomean √0.6 ≈ 0.775 trips the
        // column gate, and the cell shows up as an outlier.
        let cur = table("MB/s", &[("64", &[10.0, 12.0]), ("128", &[12.0, 24.0])]);
        let c = compare_tables(&base, &cur, 0.15, true);
        assert_eq!(c.regressions.len(), 2, "{:?}", c.regressions); // p50 + p99
        assert!(c.regressions[0].contains("column `m1`"));
        assert!(c.outliers.iter().any(|o| o.contains("64/m1")));
        // A single noisy cell in a long column does NOT trip the gate.
        let rows: Vec<(String, Vec<f64>)> = (0..16)
            .map(|i| {
                (
                    format!("r{i}"),
                    vec![10.0, if i == 0 { 12.0 } else { 20.0 }],
                )
            })
            .collect();
        let noisy: Vec<(&str, &[f64])> = rows
            .iter()
            .map(|(x, v)| (x.as_str(), v.as_slice()))
            .collect();
        let base16 = table(
            "MB/s",
            &rows
                .iter()
                .map(|(x, _)| (x.as_str(), [10.0, 20.0].as_slice()))
                .collect::<Vec<_>>(),
        );
        let c = compare_tables(&base16, &table("MB/s", &noisy), 0.15, true);
        assert!(c.regressions.is_empty(), "{:?}", c.regressions);
        assert_eq!(c.outliers.len(), 2, "{:?}", c.outliers);
    }

    #[test]
    fn latency_direction_is_lower_better() {
        let base = table("us", &[("64", &[10.0])]);
        let worse = table("us", &[("64", &[13.0])]);
        // Normalization would hide a single-cell table's regression (the
        // median IS the cell), so judge latency unnormalized.
        let c = compare_tables(&base, &worse, 0.15, false);
        assert_eq!(c.regressions.len(), 2, "{:?}", c.regressions);
        let better = table("us", &[("64", &[8.0])]);
        let c = compare_tables(&base, &better, 0.15, false);
        assert!(c.regressions.is_empty(), "faster is not a regression");
    }

    #[test]
    fn ratio_columns_skip_machine_scale() {
        let mut base = Table::new("t", "x", "MB/s", vec!["a".into(), "× vs a".into()]);
        base.push(
            "64",
            vec![
                Some(Sample::point(10.0, 0.0)),
                Some(Sample::point(2.0, 0.0)),
            ],
        );
        // Machine half speed, but the speedup ratio collapsed too: the
        // ratio column must be judged at scale 1 and flagged.
        let mut cur = Table::new("t", "x", "MB/s", vec!["a".into(), "× vs a".into()]);
        cur.push(
            "64",
            vec![Some(Sample::point(5.0, 0.0)), Some(Sample::point(1.0, 0.0))],
        );
        let c = compare_tables(&base, &cur, 0.15, true);
        assert!(
            c.regressions.iter().all(|r| r.contains("× vs a")),
            "{:?}",
            c.regressions
        );
        assert!(!c.regressions.is_empty());
    }

    #[test]
    fn missing_cells_are_regressions() {
        let base = table("MB/s", &[("64", &[10.0, 20.0])]);
        let mut cur = Table::new("t", "x", "MB/s", vec!["m0".into()]);
        cur.push("64", vec![Some(Sample::point(10.0, 0.0))]);
        let c = compare_tables(&base, &cur, 0.15, true);
        assert!(c.regressions.iter().any(|r| r.contains("missing")));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_table("{\"title\":\"t\"}").is_err());
        // Escapes decode.
        let v = parse_json(r#""a\"bA\\""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"bA\\"));
    }
}
