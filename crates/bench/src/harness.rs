//! Measurement core: OSU-style pingpong loops over the simulated fabric.
//!
//! Timing model (DESIGN.md §5): the measured wall time captures every CPU
//! cost (packing, copying, allocation — all data movement is real), the
//! fabric's [`WireLedger`](mpicd::fabric::WireLedger) captures modeled
//! network time. For a strictly-alternating latency pingpong the two
//! serialize (`total = wall + wire`); for a windowed bandwidth test the
//! wire overlaps CPU (`total = max(wall, wire) + α`).

use mpicd::fabric::Fabric;
use std::time::Instant;

/// Measurement configuration (paper: "average of four runs, with error
/// bars").
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Untimed iterations before each run.
    pub warmup: usize,
    /// Timed iterations per run.
    pub reps: usize,
    /// Independent runs (mean ± std over these).
    pub runs: usize,
}

impl Config {
    /// Iteration counts scaled to the transfer size, OSU-style (fewer
    /// iterations for big messages), honoring quick mode.
    pub fn auto(bytes: usize) -> Self {
        if crate::quick_mode() {
            return Self {
                warmup: 1,
                reps: 3,
                runs: 2,
            };
        }
        let reps = match bytes {
            0..=8192 => 400,
            8193..=131072 => 120,
            131073..=1048576 => 40,
            _ => 12,
        };
        Self {
            warmup: reps / 10 + 1,
            reps,
            runs: 4,
        }
    }
}

/// A mean ± standard deviation over the configured runs, plus
/// nearest-rank percentiles for the CI regression gate (noise-tolerant:
/// p50 ignores outlier runs entirely, p99 pins the worst run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Mean value.
    pub mean: f64,
    /// Standard deviation (the paper's error bars).
    pub std: f64,
    /// Median of the per-run values (nearest-rank).
    pub p50: f64,
    /// 99th percentile of the per-run values (nearest-rank; with few runs
    /// this is the worst run).
    pub p99: f64,
}

impl Sample {
    /// Aggregate per-run values.
    pub fn from_values(vals: &[f64]) -> Self {
        let n = vals.len().max(1) as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let mut sorted = vals.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self {
            mean,
            std: var.sqrt(),
            p50: percentile(&sorted, 50.0),
            p99: percentile(&sorted, 99.0),
        }
    }

    /// A derived point value (speedup ratio, count) with no per-run
    /// distribution behind it: percentiles collapse onto the value.
    pub fn point(mean: f64, std: f64) -> Self {
        Self {
            mean,
            std,
            p50: mean,
            p99: mean,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One-way latency in microseconds. `pingpong` must perform one full
/// round trip (a→b then b→a).
pub fn latency(fabric: &Fabric, cfg: Config, mut pingpong: impl FnMut()) -> Sample {
    let mut vals = Vec::with_capacity(cfg.runs);
    for _ in 0..cfg.runs {
        for _ in 0..cfg.warmup {
            pingpong();
        }
        let snap = fabric.ledger().snapshot();
        let t0 = Instant::now();
        for _ in 0..cfg.reps {
            pingpong();
        }
        let wall_ns = t0.elapsed().as_nanos() as f64;
        let wire_ns = fabric.ledger().delta_ns(&snap);
        // Round trip = wall + wire; one-way = half (OSU convention).
        vals.push((wall_ns + wire_ns) / (2.0 * cfg.reps as f64) / 1000.0);
    }
    Sample::from_values(&vals)
}

/// Bandwidth in MB/s for one-directional streaming. `send_one` must move
/// one message of `bytes` from a to b.
pub fn bandwidth(fabric: &Fabric, cfg: Config, bytes: usize, mut send_one: impl FnMut()) -> Sample {
    let alpha = fabric.model().latency_ns;
    let mut vals = Vec::with_capacity(cfg.runs);
    for _ in 0..cfg.runs {
        for _ in 0..cfg.warmup {
            send_one();
        }
        let snap = fabric.ledger().snapshot();
        let t0 = Instant::now();
        for _ in 0..cfg.reps {
            send_one();
        }
        let wall_ns = t0.elapsed().as_nanos() as f64;
        let wire_ns = fabric.ledger().delta_ns(&snap);
        // Streaming window: wire pipelines under CPU.
        let total_ns = wall_ns.max(wire_ns) + alpha;
        let total_bytes = (bytes * cfg.reps) as f64;
        // bytes/ns == GB/s; ×1000 == MB/s.
        vals.push(total_bytes / total_ns * 1000.0);
    }
    Sample::from_values(&vals)
}

/// Bandwidth in MB/s for a *pingpong-style* exchange where CPU work and
/// wire time serialize (one message in flight — DDTBench's methodology).
/// Unlike [`bandwidth`], packing CPU is not hidden under the wire.
pub fn bandwidth_serial(
    fabric: &Fabric,
    cfg: Config,
    bytes: usize,
    mut send_one: impl FnMut(),
) -> Sample {
    let mut vals = Vec::with_capacity(cfg.runs);
    for _ in 0..cfg.runs {
        for _ in 0..cfg.warmup {
            send_one();
        }
        let snap = fabric.ledger().snapshot();
        let t0 = Instant::now();
        for _ in 0..cfg.reps {
            send_one();
        }
        let wall_ns = t0.elapsed().as_nanos() as f64;
        let wire_ns = fabric.ledger().delta_ns(&snap);
        let total_bytes = (bytes * cfg.reps) as f64;
        vals.push(total_bytes / (wall_ns + wire_ns) * 1000.0);
    }
    Sample::from_values(&vals)
}

/// Threaded round-trip measurement for strategies built from blocking
/// calls (the pickle pingpong of §V-B). `side0`/`side1` each perform one
/// full iteration of their rank's half of the pingpong and are invoked
/// `reps` times on separate threads. Returns bandwidth in MB/s for
/// `bytes_per_iter` payload bytes moved per iteration (both directions
/// counted, as the paper's pingpong bandwidth does).
pub fn threaded_bandwidth<F0, F1>(
    fabric: &Fabric,
    cfg: Config,
    bytes_per_iter: usize,
    side0: F0,
    side1: F1,
) -> Sample
where
    F0: Fn() + Sync,
    F1: Fn() + Sync,
{
    let mut vals = Vec::with_capacity(cfg.runs);
    for _ in 0..cfg.runs {
        let iters = cfg.warmup + cfg.reps;
        let snap_holder = std::sync::Mutex::new(None);
        let t = std::thread::scope(|s| {
            let h0 = s.spawn(|| {
                let mut timed: Option<Instant> = None;
                for i in 0..iters {
                    if i == cfg.warmup {
                        *snap_holder.lock().unwrap() = Some(fabric.ledger().snapshot());
                        timed = Some(Instant::now());
                    }
                    side0();
                }
                timed.expect("timed section started").elapsed()
            });
            let h1 = s.spawn(|| {
                for _ in 0..iters {
                    side1();
                }
            });
            let wall = h0.join().expect("side 0");
            h1.join().expect("side 1");
            wall
        });
        let wall_ns = t.as_nanos() as f64;
        let snap = snap_holder.lock().unwrap().expect("snapshot taken");
        let wire_ns = fabric.ledger().delta_ns(&snap);
        let total_bytes = (bytes_per_iter * cfg.reps) as f64;
        vals.push(total_bytes / (wall_ns + wire_ns) * 1000.0);
    }
    Sample::from_values(&vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpicd::World;

    #[test]
    fn sample_statistics() {
        let s = Sample::from_values(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 1.0);
        assert_eq!(s.p50, 1.0, "nearest-rank median of two runs");
        assert_eq!(s.p99, 3.0, "p99 pins the worst run");
        let s = Sample::from_values(&[5.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p99, 5.0);
        let p = Sample::point(2.5, 0.0);
        assert_eq!((p.p50, p.p99), (2.5, 2.5));
    }

    #[test]
    fn latency_includes_modeled_wire() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let cfg = Config {
            warmup: 2,
            reps: 10,
            runs: 2,
        };
        let msg = vec![0u8; 64];
        let mut echo = vec![0u8; 64];
        let mut back = vec![0u8; 64];
        let s = latency(world.fabric(), cfg, || {
            mpicd::transfer(&a, &b, &msg, &mut echo, 0).unwrap();
            mpicd::transfer(&b, &a, &echo, &mut back, 1).unwrap();
        });
        // One-way must be at least the modeled base latency (1.3 µs).
        assert!(s.mean >= 1.3, "mean = {}", s.mean);
        assert!(s.mean < 1000.0, "sane upper bound");
    }

    #[test]
    fn bandwidth_below_link_rate() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let cfg = Config {
            warmup: 1,
            reps: 5,
            runs: 2,
        };
        let msg = vec![7u8; 1 << 20];
        let mut dst = vec![0u8; 1 << 20];
        let s = bandwidth(world.fabric(), cfg, 1 << 20, || {
            mpicd::transfer(&a, &b, &msg, &mut dst, 0).unwrap();
        });
        assert!(s.mean > 0.0);
        assert!(
            s.mean <= 12_500.0,
            "cannot beat the 100 Gbps wire: {}",
            s.mean
        );
    }

    #[test]
    fn threaded_bandwidth_runs() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let cfg = Config {
            warmup: 1,
            reps: 5,
            runs: 1,
        };
        let s = threaded_bandwidth(
            world.fabric(),
            cfg,
            2 * 4096,
            || {
                let msg = vec![1u8; 4096];
                a.send(&msg, 1, 0).unwrap();
                let mut echo = vec![0u8; 4096];
                a.recv(&mut echo, 1, 1).unwrap();
            },
            || {
                let mut buf = vec![0u8; 4096];
                b.recv(&mut buf, 0, 0).unwrap();
                b.send(&buf, 0, 1).unwrap();
            },
        );
        assert!(s.mean > 0.0);
    }
}
