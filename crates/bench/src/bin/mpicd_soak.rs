//! `mpicd-soak` — record-stream soak harness with live health reporting.
//!
//! Streams `Register` batches from many client ranks to a few aggregator
//! ranks for a configurable duration, printing a live health line every
//! window (throughput, windowed active p50/p99, stragglers, gauge levels)
//! and an end-of-run verdict CI can grep:
//!
//! ```text
//! mpicd-soak [--duration 60s] [--warmup 2s] [--clients 8] \
//!            [--aggregators 2] [--batch 64] [--window 1s] \
//!            [--report PATH|-]
//! ```
//!
//! Run with `MPICD_FLIGHT=1 MPICD_FLIGHT_SAMPLE=N` to keep the flight
//! recorder on at a sustainable cost — the harness re-reads its own dump
//! and fails on any malformed sampled timeline. `MPICD_HEALTH_MS=N` adds
//! the periodic health-snapshot stream (`mpicd-inspect health` reads it).
//! `MPICD_BENCH_JSON` emits `BENCH_soak.json` for the regression gate.
//!
//! Exit codes: 0 = healthy soak, 1 = usage error, 2 = freelist growth or
//! malformed sampled timelines.

use mpicd_bench::soak;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        println!(
            "usage: mpicd-soak [--duration D] [--warmup D] [--clients N] \
             [--aggregators N] [--batch N] [--window D] [--report PATH|-]"
        );
        return ExitCode::SUCCESS;
    }
    let base = soak::SoakConfig::defaults(mpicd_bench::quick_mode());
    let cfg = match soak::parse_args(args.into_iter(), base) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mpicd-soak: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = soak::run(&cfg);
    print!("{}", soak::render_report(&report, &cfg));

    mpicd_bench::emit_json("soak", &soak::table(&report));
    if let Some(path) = &cfg.report {
        match soak::write_report_json(path, &report, &cfg) {
            Ok(()) => eprintln!("wrote soak report to {}", path.display()),
            Err(e) => eprintln!("mpicd-soak: could not write {}: {e}", path.display()),
        }
    }

    if report.growth > 0 || report.malformed > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
