//! Figure 8 — Python pingpong bandwidth, single NumPy array: roofline vs.
//! pickle-basic vs. pickle-oob vs. pickle-oob-cdt.

use mpicd::World;
use mpicd_bench::pickle_run::{run, Strategy};
use mpicd_bench::report::size_label;
use mpicd_bench::{quick_mode, size_sweep, Config, Table};
use mpicd_pickle::workload::single_array;

fn main() {
    let world = World::new(2);
    let hi = if quick_mode() { 64 * 1024 } else { 16 << 20 };
    let sizes = size_sweep(4 * 1024, hi);

    let mut table = Table::new(
        "Fig 8: Python pingpong, single NumPy array",
        "size",
        "MB/s",
        Strategy::all().iter().map(|s| s.label().into()).collect(),
    );

    for size in sizes {
        let cfg = Config::auto(size);
        let obj = single_array(size);
        let cells = Strategy::all()
            .iter()
            .map(|s| Some(run(&world, *s, &obj, cfg)))
            .collect();
        table.push(size_label(size), cells);
    }
    table.print();
    mpicd_bench::obs_finish();
}
