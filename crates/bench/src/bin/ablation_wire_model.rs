//! Ablations over the simulated wire model — how sensitive the paper's
//! headline shapes are to the modeled network constants:
//!
//! 1. **per-region overhead γ** — moves the regions-vs-packing crossover
//!    (Fig 10's MILC vs NAS_LU_y split);
//! 2. **rendezvous threshold** — moves the manual-pack bandwidth dip
//!    (Fig 7);
//! 3. **fragment size** — granularity of the pack callbacks (partial-pack
//!    pressure vs. per-fragment overhead).

use mpicd::fabric::WireModel;
use mpicd::types::StructSimple;
use mpicd::World;
use mpicd_bench::ddt::{one_way, DdtMethod, DdtScratch};
use mpicd_bench::methods::{ss_custom, ss_manual};
use mpicd_bench::report::size_label;
use mpicd_bench::{harness, quick_mode, Config, Table};

fn region_overhead_ablation() {
    let size = if quick_mode() { 32 * 1024 } else { 256 * 1024 };
    let mut table = Table::new(
        &format!("Ablation 1: per-region overhead γ ({size} B faces)"),
        "gamma_ns",
        "MB/s",
        vec![
            "MILC pack".into(),
            "MILC regions".into(),
            "NAS_LU_y pack".into(),
            "NAS_LU_y regions".into(),
        ],
    );
    for gamma in [0.0f64, 50.0, 200.0, 800.0] {
        let model = WireModel {
            per_region_overhead_ns: gamma,
            ..WireModel::default()
        };
        let mut cells = Vec::new();
        for name in ["MILC", "NAS_LU_y"] {
            let sender = mpicd_ddtbench::make(name, size);
            let bytes = sender.bytes();
            let cfg = Config::auto(bytes);
            for method in [DdtMethod::CustomPack, DdtMethod::CustomRegion] {
                let world = World::with_model(2, model);
                let (a, b) = world.pair();
                let mut receiver = mpicd_ddtbench::make(name, size);
                let mut scratch = DdtScratch::new(bytes);
                let sample = harness::bandwidth_serial(world.fabric(), cfg, bytes, || {
                    one_way(&a, &b, &*sender, &mut *receiver, &mut scratch, method);
                });
                cells.push(Some(sample));
            }
        }
        table.push(format!("{gamma}"), cells);
    }
    table.print();
    mpicd_bench::emit_json("ablation_wire_model_gamma", &table);
}

fn rndv_threshold_ablation() {
    let mut table = Table::new(
        "Ablation 2: rendezvous threshold vs manual-pack bandwidth (struct-simple)",
        "size",
        "MB/s",
        vec![
            "thr=8K manual".into(),
            "thr=32K manual".into(),
            "thr=128K manual".into(),
            "thr=32K custom".into(),
        ],
    );
    let hi = if quick_mode() { 64 * 1024 } else { 1 << 20 };
    let mut size = 4 * 1024usize;
    while size <= hi {
        let cfg = Config::auto(size);
        let count = size / 20;
        let send: Vec<StructSimple> = (0..count).map(StructSimple::generate).collect();
        let mut cells = Vec::new();
        for thr in [8 * 1024usize, 32 * 1024, 128 * 1024] {
            let model = WireModel {
                rndv_threshold: thr,
                ..WireModel::default()
            };
            let world = World::with_model(2, model);
            let (a, b) = world.pair();
            let mut rx = vec![StructSimple::default(); count];
            cells.push(Some(harness::bandwidth(world.fabric(), cfg, size, || {
                ss_manual(&a, &b, &send, &mut rx);
            })));
        }
        {
            let world = World::new(2);
            let (a, b) = world.pair();
            let mut rx = vec![StructSimple::default(); count];
            cells.push(Some(harness::bandwidth(world.fabric(), cfg, size, || {
                ss_custom(&a, &b, &send, &mut rx);
            })));
        }
        table.push(size_label(size), cells);
        size *= 2;
    }
    table.print();
    mpicd_bench::emit_json("ablation_wire_model_rndv", &table);
}

fn frag_size_ablation() {
    let size = if quick_mode() { 64 * 1024 } else { 1 << 20 };
    let count = size / 20;
    let send: Vec<StructSimple> = (0..count).map(StructSimple::generate).collect();
    let cfg = Config::auto(size);
    let mut table = Table::new(
        &format!("Ablation 3: fragment size vs custom packing ({size} B payload)"),
        "frag",
        "MB/s",
        vec!["custom".into()],
    );
    for frag in [4 * 1024usize, 16 * 1024, 64 * 1024, 256 * 1024] {
        let model = WireModel {
            frag_size: frag,
            ..WireModel::default()
        };
        let world = World::with_model(2, model);
        let (a, b) = world.pair();
        let mut rx = vec![StructSimple::default(); count];
        let sample = harness::bandwidth(world.fabric(), cfg, size, || {
            ss_custom(&a, &b, &send, &mut rx);
        });
        table.push(size_label(frag), vec![Some(sample)]);
    }
    table.print();
    mpicd_bench::emit_json("ablation_wire_model_frag", &table);
}

fn main() {
    region_overhead_ablation();
    println!();
    rndv_threshold_ablation();
    println!();
    frag_size_ablation();
    mpicd_bench::obs_finish();
}
