//! Figure 2 — bandwidth for the double-vector type (sub-vector size fixed
//! at 1024 bytes).

use mpicd::World;
use mpicd_bench::methods::{bytes_oneway, dv_custom, dv_manual, dv_recv_like, dv_workload};
use mpicd_bench::report::size_label;
use mpicd_bench::{harness, quick_mode, size_sweep, Config, Table};

const SUBVEC: usize = 1024;

fn main() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let hi = if quick_mode() { 32 * 1024 } else { 4 << 20 };
    let sizes = size_sweep(1024, hi);

    let mut table = Table::new(
        "Fig 2: double-vec bandwidth (sub-vector = 1024 B)",
        "size",
        "MB/s",
        vec![
            "custom".into(),
            "manual-pack".into(),
            "rsmpi-bytes-baseline".into(),
        ],
    );

    for size in sizes {
        let cfg = Config::auto(size);
        let mut cells = Vec::new();

        let x = dv_workload(size, SUBVEC);
        let mut y = dv_recv_like(&x);
        cells.push(Some(harness::bandwidth(world.fabric(), cfg, size, || {
            dv_custom(&a, &b, &x, &mut y);
        })));

        let mut y = dv_recv_like(&x);
        cells.push(Some(harness::bandwidth(world.fabric(), cfg, size, || {
            dv_manual(&a, &b, &x, &mut y);
        })));

        let raw = vec![0x22u8; size];
        let mut rx = vec![0u8; size];
        cells.push(Some(harness::bandwidth(world.fabric(), cfg, size, || {
            bytes_oneway(&a, &b, &raw, &mut rx);
        })));

        table.push(size_label(size), cells);
    }
    table.print();
    mpicd_bench::obs_finish();
}
