//! Figure 10 — DDTBench pingpong bandwidth: every pattern × every method
//! (reference / manual / MPI datatype direct / MPI pack / custom pack /
//! custom regions).

use mpicd::World;
use mpicd_bench::ddt::{one_way, DdtMethod, DdtScratch};
use mpicd_bench::{harness, quick_mode, Config, Table};
use mpicd_ddtbench::{make, BENCHMARKS};

fn main() {
    let size = std::env::var("MPICD_DDT_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick_mode() { 32 * 1024 } else { 512 * 1024 });

    let mut table = Table::new(
        &format!("Fig 10: DDTBench bandwidth ({size} B faces)"),
        "benchmark",
        "MB/s",
        DdtMethod::all().iter().map(|m| m.label().into()).collect(),
    );

    for name in BENCHMARKS {
        let sender = make(name, size);
        let bytes = sender.bytes();
        let cfg = Config::auto(bytes);
        let mut cells = Vec::new();
        for method in DdtMethod::all() {
            let world = World::new(2);
            let (a, b) = world.pair();
            let mut receiver = make(name, size);
            let mut scratch = DdtScratch::new(bytes);
            // Probe support once before timing.
            if !one_way(&a, &b, &*sender, &mut *receiver, &mut scratch, method) {
                cells.push(None);
                continue;
            }
            let sample = harness::bandwidth_serial(world.fabric(), cfg, bytes, || {
                one_way(&a, &b, &*sender, &mut *receiver, &mut scratch, method);
            });
            cells.push(Some(sample));
        }
        table.push(name, cells);
    }
    table.print();
    mpicd_bench::obs_finish();
}
