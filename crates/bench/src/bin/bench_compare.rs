//! `bench_compare` — CI bench-regression gate.
//!
//! Compares every `BENCH_*.json` in a baseline directory against the same
//! file in a current-run directory and fails if any cell's p50 or p99
//! regressed beyond the tolerance (default 15%).
//!
//! ```text
//! bench_compare <baseline-dir> <current-dir> [--tolerance PCT] [--absolute]
//! ```
//!
//! By default the comparator divides out the machine-speed scale (median
//! p50 ratio per table) so a committed baseline recorded on different
//! hardware still gates *relative* regressions — one method falling
//! behind the others, a speedup ratio collapsing, a plan growing extra
//! ops. `--absolute` disables the normalization for same-machine runs.
//!
//! Exit codes: 0 = within tolerance, 1 = regression / missing file /
//! usage error.

use mpicd_bench::regress::{compare_tables, parse_table};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: bench_compare <baseline-dir> <current-dir> \
                     [--tolerance PCT] [--absolute]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut tolerance = 0.15;
    let mut normalize = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if p > 0.0 => tolerance = p / 100.0,
                _ => return usage_error("--tolerance needs a percentage > 0"),
            },
            "--absolute" => normalize = false,
            _ if !arg.starts_with('-') => dirs.push(PathBuf::from(arg)),
            _ => return usage_error(&format!("unexpected argument `{arg}`")),
        }
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        return usage_error("need exactly a baseline dir and a current dir");
    };

    let baselines = match bench_files(baseline_dir) {
        Ok(files) if !files.is_empty() => files,
        Ok(_) => {
            eprintln!(
                "bench_compare: no BENCH_*.json in {}",
                baseline_dir.display()
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    let mut checked = 0usize;
    for path in &baselines {
        let name = path.file_name().unwrap_or_default();
        let cur_path = current_dir.join(name);
        let pair = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))
            .and_then(|b| {
                std::fs::read_to_string(&cur_path)
                    .map_err(|e| format!("read {}: {e}", cur_path.display()))
                    .map(|c| (b, c))
            })
            .and_then(|(b, c)| {
                Ok((
                    parse_table(&b).map_err(|e| format!("{}: {e}", path.display()))?,
                    parse_table(&c).map_err(|e| format!("{}: {e}", cur_path.display()))?,
                ))
            });
        let (base, cur) = match pair {
            Ok(p) => p,
            Err(e) => {
                eprintln!("bench_compare: {e}");
                failed = true;
                continue;
            }
        };
        let cmp = compare_tables(&base, &cur, tolerance, normalize);
        checked += cmp.checked;
        let name = name.to_string_lossy();
        if cmp.regressions.is_empty() {
            println!(
                "ok   {name}: {} cells within {:.0}% (machine scale ×{:.3}, \
                 {} cell outlier(s) below gate)",
                cmp.checked,
                tolerance * 100.0,
                cmp.scale,
                cmp.outliers.len()
            );
        } else {
            failed = true;
            println!(
                "FAIL {name}: {} regression(s) (machine scale ×{:.3})",
                cmp.regressions.len(),
                cmp.scale
            );
            for r in &cmp.regressions {
                println!("     {r}");
            }
            for o in &cmp.outliers {
                println!("     outlier: {o}");
            }
        }
    }
    println!(
        "bench_compare: {} table(s), {checked} cell(s) checked",
        baselines.len()
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `BENCH_*.json` files under `dir`, sorted for stable output.
fn bench_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("bench_compare: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
