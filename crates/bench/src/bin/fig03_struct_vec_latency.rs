//! Figure 3 — latency for the struct-vec type (20 packed bytes + 8 KiB
//! array per element): custom vs. manual packing vs. the derived-datatype
//! baseline (possible only because the array is fixed-size).

use mpicd::types::StructVec;
use mpicd::World;
use mpicd_bench::methods::{sv_custom, sv_manual, sv_typed};
use mpicd_bench::report::size_label;
use mpicd_bench::{harness, quick_mode, Config, Table};
use std::sync::Arc;

/// Packed payload bytes per element (fields + data).
const ELEM: usize = 20 + 8192;

fn main() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let ty = Arc::new(
        StructVec::datatype()
            .commit_convertor()
            .expect("valid type"),
    );
    let max_count = if quick_mode() { 4 } else { 128 };

    let mut table = Table::new(
        "Fig 3: struct-vec latency",
        "size",
        "us",
        vec![
            "custom".into(),
            "packed".into(),
            "rsmpi-derived-datatype".into(),
        ],
    );

    let mut count = 1usize;
    while count <= max_count {
        let size = count * ELEM;
        let cfg = Config::auto(size);
        let send: Vec<StructVec> = (0..count).map(StructVec::generate).collect();
        let mut rx = vec![StructVec::default(); count];
        let mut back = vec![StructVec::default(); count];

        let custom = harness::latency(world.fabric(), cfg, || {
            sv_custom(&a, &b, &send, &mut rx);
            sv_custom(&b, &a, &rx, &mut back);
        });
        let packed = harness::latency(world.fabric(), cfg, || {
            sv_manual(&a, &b, &send, &mut rx);
            sv_manual(&b, &a, &rx, &mut back);
        });
        let typed = harness::latency(world.fabric(), cfg, || {
            sv_typed(&a, &b, &ty, &send, &mut rx);
            sv_typed(&b, &a, &ty, &rx, &mut back);
        });
        table.push(
            size_label(size),
            vec![Some(custom), Some(packed), Some(typed)],
        );
        count *= 2;
    }
    table.print();
    mpicd_bench::obs_finish();
}
