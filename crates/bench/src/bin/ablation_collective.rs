//! Ablation: collective algorithm scaling, 256–4096 simulated ranks.
//!
//! Running a real 4096-thread world is infeasible, so this binary replays
//! each algorithm's communication *schedule* (`mpicd::coll_sched`) against
//! the virtual clock costed by the 100 Gb/s InfiniBand wire model — the
//! same machinery the `auto` collectives use for selection. A consistency
//! test in `mpicd` pins the schedules to the real implementations
//! message-for-message, and this binary additionally re-runs every
//! algorithm in a real (thread-per-rank) world at a modest rank count and
//! checks the results numerically before any table prints.
//!
//! Two tables:
//!
//! * **allreduce** — central (reduce-to-root + broadcast, the naive
//!   baseline) vs ring (reduce-scatter + allgather) vs recursive
//!   doubling, with the `auto` pick per row;
//! * **tree** — flat (root serializes) vs binomial for broadcast and
//!   gather, with the `auto` pick for gather rows.
//!
//! Self-checks (Träff self-consistency, asserted per row): the `auto`
//! pick is never modeled slower than the naive baseline, and at ≥256
//! ranks the best smart allreduce strictly beats central.

use mpicd::coll_sched::{
    makespan_ns, sched_allreduce_central, sched_allreduce_rd, sched_allreduce_ring,
    sched_bcast_binomial, sched_gather_binomial, sched_gather_flat, sched_scatter_flat,
};
use mpicd::{
    allreduce_f64_with, gather_bytes_with, scatter_bytes_with, select_allreduce, select_tree,
    AllreduceAlgo, ReduceOp, TreeAlgo, World,
};
use mpicd_bench::harness::Sample;
use mpicd_bench::{emit_json, obs_finish, quick_mode, Table};
use mpicd_fabric::WireModel;

/// Modeled makespan in microseconds.
fn us(ns: f64) -> Sample {
    Sample::point(ns / 1e3, 0.0)
}

/// Re-run every algorithm in a real thread-per-rank world and check the
/// numbers; the schedules being benchmarked mirror these implementations.
fn validate_real_execution(p: usize) {
    let world = World::new(p);
    let comms = world.comms();
    std::thread::scope(|s| {
        for c in &comms {
            s.spawn(move || {
                let r = c.rank() as f64;
                let rank_sum: f64 = (0..p).map(|q| q as f64).sum();
                for algo in [
                    AllreduceAlgo::Central,
                    AllreduceAlgo::Ring,
                    AllreduceAlgo::RecursiveDoubling,
                ] {
                    let n = 3 * p + 1;
                    let mut buf: Vec<f64> = (0..n).map(|i| r + i as f64).collect();
                    allreduce_f64_with(c, &mut buf, ReduceOp::Sum, algo).unwrap();
                    for (i, v) in buf.iter().enumerate() {
                        assert!(
                            (v - (rank_sum + (i * p) as f64)).abs() < 1e-9,
                            "{algo:?} wrong at p={p} rank {} elem {i}",
                            c.rank()
                        );
                    }
                }
                let mine = vec![c.rank() as u8; 8];
                let mut back = vec![0u8; 8];
                if c.rank() == 0 {
                    let mut all = Vec::new();
                    gather_bytes_with(c, &mine, Some(&mut all), 0, TreeAlgo::Binomial).unwrap();
                    for q in 0..p {
                        assert_eq!(&all[q * 8..(q + 1) * 8], vec![q as u8; 8].as_slice());
                    }
                    scatter_bytes_with(c, Some(&all), &mut back, 0, TreeAlgo::Binomial).unwrap();
                } else {
                    gather_bytes_with(c, &mine, None, 0, TreeAlgo::Binomial).unwrap();
                    scatter_bytes_with(c, None, &mut back, 0, TreeAlgo::Binomial).unwrap();
                }
                assert_eq!(back, mine);
            });
        }
    });
}

fn main() {
    let (ranks, real_p): (&[usize], usize) = if quick_mode() {
        (&[256], 16)
    } else {
        (&[256, 1024, 4096], 64)
    };
    validate_real_execution(real_p);
    println!("real-execution validation ok (p={real_p})\n");

    let model = WireModel::infiniband_100g();

    let mut ar = Table::new(
        "Ablation: allreduce scaling (modeled, 100 Gb/s InfiniBand)",
        "ranks/vector",
        "µs",
        vec![
            "central".into(),
            "ring".into(),
            "recursive-doubling".into(),
            "auto pick".into(),
            "× central vs auto".into(),
        ],
    );
    for &p in ranks {
        // Per-rank f64 vectors: latency-bound (one element per rank),
        // medium, and bandwidth-bound.
        for n in [p, 8 * 1024, 128 * 1024] {
            let central = makespan_ns(p, &model, |c| sched_allreduce_central(p, n, 8, c));
            let ring = makespan_ns(p, &model, |c| sched_allreduce_ring(p, n, 8, c));
            let rd = makespan_ns(p, &model, |c| sched_allreduce_rd(p, n, 8, c));
            let pick = select_allreduce(p, n, 8, &model);
            let pick_ns = match pick {
                AllreduceAlgo::Ring => ring,
                AllreduceAlgo::RecursiveDoubling => rd,
                _ => central,
            };
            // Träff self-consistency: auto must never lose to naive.
            assert!(
                pick_ns <= central,
                "auto picked {pick:?} but it is modeled slower than central at p={p} n={n}"
            );
            // The scaling claim: smart allreduce wins at every 256+ point.
            assert!(
                ring.min(rd) < central,
                "no smart allreduce beats central at p={p} n={n}"
            );
            ar.push(
                format!("p={p}/{}", mpicd_bench::report::size_label(8 * n)),
                vec![
                    Some(us(central)),
                    Some(us(ring)),
                    Some(us(rd)),
                    Some(us(pick_ns)),
                    Some(Sample::point(central / pick_ns, 0.0)),
                ],
            );
        }
    }
    ar.print();
    emit_json("ablation_collective", &ar);

    let mut tree = Table::new(
        "Ablation: tree vs flat collectives (modeled, 100 Gb/s InfiniBand)",
        "op/ranks/size",
        "µs",
        vec![
            "flat".into(),
            "binomial".into(),
            "× flat vs binomial".into(),
        ],
    );
    for &p in ranks {
        for bytes in [256usize, 64 * 1024] {
            // Broadcast: flat is the root serializing p-1 sends (the
            // scatter-flat round structure with the full payload).
            let bflat = makespan_ns(p, &model, |c| sched_scatter_flat(p, 0, bytes, c));
            let btree = makespan_ns(p, &model, |c| sched_bcast_binomial(p, 0, bytes, c));
            assert!(
                btree < bflat,
                "binomial bcast loses to flat at p={p} bytes={bytes}"
            );
            tree.push(
                format!("bcast/p={p}/{}", mpicd_bench::report::size_label(bytes)),
                vec![
                    Some(us(bflat)),
                    Some(us(btree)),
                    Some(Sample::point(bflat / btree, 0.0)),
                ],
            );

            let gflat = makespan_ns(p, &model, |c| sched_gather_flat(p, 0, bytes, c));
            let gtree = makespan_ns(p, &model, |c| sched_gather_binomial(p, 0, bytes, c));
            let gpick = select_tree(p, bytes, &model);
            let gpick_ns = match gpick {
                TreeAlgo::Binomial => gtree,
                _ => gflat,
            };
            assert!(
                gpick_ns <= gflat,
                "auto picked {gpick:?} but it is modeled slower than flat at p={p} bytes={bytes}"
            );
            tree.push(
                format!("gather/p={p}/{}", mpicd_bench::report::size_label(bytes)),
                vec![
                    Some(us(gflat)),
                    Some(us(gtree)),
                    Some(Sample::point(gflat / gtree, 0.0)),
                ],
            );
        }
    }
    tree.print();
    emit_json("ablation_collective_tree", &tree);
    obs_finish();
}
