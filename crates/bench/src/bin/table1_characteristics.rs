//! Table I — benchmark characteristics, generated from the pattern
//! implementations (with live region counts as a bonus column).

use mpicd_ddtbench::{make, table1};

fn main() {
    println!("# Table I: Benchmark characteristics\n");
    println!(
        "{:<11} {:<28} {:<42} {:<8} {:>14}",
        "Benchmark", "MPI Datatypes", "Loop Structure", "Regions", "regions@512K"
    );
    for row in table1() {
        let pattern = make(row.name, 512 * 1024);
        let regions = if row.memory_regions {
            // Count the regions the pattern actually exposes at 512 KiB.
            let n = match pattern.region_pack_ctx() {
                Some(mut ctx) => ctx.regions().map(|r| r.len()).unwrap_or(0),
                None => 0,
            };
            n.to_string()
        } else {
            "-".to_string()
        };
        println!(
            "{:<11} {:<28} {:<42} {:<8} {:>14}",
            row.name,
            row.mpi_datatypes,
            row.loop_structure,
            if row.memory_regions { "yes" } else { "no" },
            regions
        );
    }
    mpicd_bench::obs_finish();
}
