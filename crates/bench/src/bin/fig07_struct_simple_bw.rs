//! Figure 7 — bandwidth for struct-simple. The manual-pack series sends a
//! contiguous buffer and therefore crosses the eager→rendezvous threshold
//! (the dip just above 2^15 bytes); the custom series rides the iov path
//! and is unaffected, exactly as the paper observes.

use mpicd::types::StructSimple;
use mpicd::World;
use mpicd_bench::methods::{ss_custom, ss_manual, ss_typed};
use mpicd_bench::report::size_label;
use mpicd_bench::{harness, quick_mode, size_sweep, Config, Table};
use std::sync::Arc;

fn main() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let ty = Arc::new(
        StructSimple::datatype()
            .commit_convertor()
            .expect("valid type"),
    );
    let hi = if quick_mode() { 64 * 1024 } else { 4 << 20 };
    let sizes = size_sweep(1024, hi);

    let mut table = Table::new(
        "Fig 7: struct-simple bandwidth",
        "size",
        "MB/s",
        vec!["custom".into(), "manual-pack".into(), "rsmpi".into()],
    );

    for size in sizes {
        let count = (size / 20).max(1);
        let cfg = Config::auto(size);
        let send: Vec<StructSimple> = (0..count).map(StructSimple::generate).collect();
        let mut rx = vec![StructSimple::default(); count];

        let custom = harness::bandwidth(world.fabric(), cfg, size, || {
            ss_custom(&a, &b, &send, &mut rx);
        });
        let manual = harness::bandwidth(world.fabric(), cfg, size, || {
            ss_manual(&a, &b, &send, &mut rx);
        });
        let typed = harness::bandwidth(world.fabric(), cfg, size, || {
            ss_typed(&a, &b, &ty, &send, &mut rx);
        });
        table.push(
            size_label(size),
            vec![Some(custom), Some(manual), Some(typed)],
        );
    }
    table.print();
    mpicd_bench::obs_finish();
}
