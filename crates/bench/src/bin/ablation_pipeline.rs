//! Ablation: serial vs. parallel fragment pipeline across DDTBench patterns.
//!
//! Every cell moves the same pattern face through the custom-datatype pack
//! path (`transfer_custom`) over a zero-cost wire model, so the measured
//! time is the CPU-side pack → copy → unpack work the pipeline
//! parallelizes. Configurations:
//!
//! * **serial** — `PipelineConfig::serial()`, the pre-pipeline engine
//!   (`MPICD_PIPELINE=0` equivalent);
//! * **pipe×1 / pipe×2 / pipe×4** — the fragment pipeline with 1, 2 and 4
//!   threads (×1 exercises the machinery with the posting thread alone and
//!   should be neutral vs. serial).
//!
//! The sweep crosses each pattern with {16 KiB, 64 KiB} fragment sizes.
//! Byte identity against the pattern's reference checksum is asserted for
//! every cell before anything is timed, and the `pipelined` transfer
//! counter is checked so a silently-serial cell cannot masquerade as a
//! pipeline measurement.

use mpicd::fabric::{PipelineConfig, WireModel};
use mpicd::{transfer_custom, World};
use mpicd_bench::harness::Sample;
use mpicd_bench::report::size_label;
use mpicd_bench::{emit_json, obs_finish, quick_mode, Table};
use mpicd_ddtbench::Pattern;
use std::time::Instant;

/// Fragment sizes crossed with every pattern (the fabric default is 64 KiB;
/// 16 KiB produces 4× as many fragments for the pool to chew on).
const FRAG_SIZES: [usize; 2] = [16 * 1024, 64 * 1024];

/// One full one-way custom-pack transfer of the pattern face.
fn one_transfer(world: &World, sender: &dyn Pattern, receiver: &mut dyn Pattern) {
    let (a, b) = world.pair();
    let sctx = sender.custom_pack_ctx();
    let mut rctx = receiver.custom_unpack_ctx();
    transfer_custom(&a, &b, sctx, &mut *rctx, 0).expect("custom transfer");
}

/// Mean one-way throughput in MB/s over `runs` timed repetitions.
fn throughput(
    world: &World,
    sender: &dyn Pattern,
    receiver: &mut dyn Pattern,
    reps: usize,
    runs: usize,
) -> Sample {
    let bytes = (sender.bytes() * reps) as f64;
    let vals: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                one_transfer(world, sender, receiver);
            }
            bytes / t0.elapsed().as_secs_f64() / 1e6
        })
        .collect();
    Sample::from_values(&vals)
}

fn main() {
    let target = if quick_mode() { 128 * 1024 } else { 1 << 20 };
    let runs = 4; // the paper's 4-run averaging
    let configs: [(&str, PipelineConfig); 4] = [
        ("serial", PipelineConfig::serial()),
        ("pipe×1", PipelineConfig::with_threads(1)),
        ("pipe×2", PipelineConfig::with_threads(2)),
        ("pipe×4", PipelineConfig::with_threads(4)),
    ];
    let mut table = Table::new(
        &format!("Ablation: fragment pipeline throughput ({target} B faces)"),
        "pattern/frag",
        "MB/s",
        configs
            .iter()
            .map(|(label, _)| label.to_string())
            .chain(std::iter::once("×4 vs serial".into()))
            .collect(),
    );

    for name in mpicd_ddtbench::BENCHMARKS {
        let sender = mpicd_ddtbench::make(name, target);
        let expect = sender.checksum();
        let reps = if quick_mode() {
            4
        } else {
            ((256 << 20) / sender.bytes().max(1)).clamp(8, 256)
        };

        for frag in FRAG_SIZES {
            let model = WireModel {
                frag_size: frag,
                ..WireModel::zero_cost()
            };
            let mut cells: Vec<Option<Sample>> = Vec::new();
            for (label, cfg) in configs {
                let world = World::with_model_and_pipeline(2, model, cfg);
                let mut receiver = mpicd_ddtbench::make(name, target);

                // Byte identity before timing: the cell's engine must
                // reconstruct the exact face the reference checksum hashes.
                receiver.clear();
                one_transfer(&world, &*sender, &mut *receiver);
                assert_eq!(
                    receiver.checksum(),
                    expect,
                    "{name}/{frag}: {label} engine diverges"
                );
                let pipelined = world.fabric().stats().pipelined;
                if cfg.enabled && sender.bytes() > frag {
                    assert!(pipelined > 0, "{name}/{frag}: {label} fell back to serial");
                } else if !cfg.enabled {
                    assert_eq!(pipelined, 0, "{name}/{frag}: serial config pipelined");
                }

                cells.push(Some(throughput(
                    &world,
                    &*sender,
                    &mut *receiver,
                    reps,
                    runs,
                )));
            }
            let speedup = Sample::point(
                cells[3].as_ref().unwrap().mean / cells[0].as_ref().unwrap().mean,
                0.0,
            );
            cells.push(Some(speedup));
            table.push(format!("{name}/{}", size_label(frag)), cells);
        }
    }

    table.print();
    emit_json("ablation_pipeline", &table);

    // Pipeline observability: how much work actually went parallel. The
    // `.ns` accumulator follows the span cost model and stays 0 unless
    // tracing is on (`MPICD_TRACE=1`).
    let snap = mpicd_obs::global().snapshot();
    println!("# pipeline counters");
    for name in [
        "fabric.pipeline.transfers",
        "fabric.pipeline.frags",
        "fabric.pipeline.threads",
        "fabric.pipeline.ns",
    ] {
        println!("{name:<28} {}", snap.counter(name));
    }
    obs_finish();
}
