//! Ablation: tag-matching engine message rate (OSU `osu_mbw_mr` style).
//!
//! A two-rank fabric with a zero-cost wire isolates the *matching* path.
//! Each cell first floods a standing backlog of `depth` eager 8-byte
//! messages into rank 1's unexpected queue — messages whose tags are
//! never received during timing — then repeatedly posts a 64-message
//! batch *behind* the backlog (untimed) and times its receive-side
//! drain, so every timed receive is one matching operation against a
//! queue held at `depth`+ entries with no send-path cost. The same
//! traffic runs against the linear reference (`MatchConfig` with one
//! bucket: front-to-back scans, the pre-engine behaviour) and the
//! bucketed engine (64 `(source, tag)` hash buckets):
//!
//! * **exact** — backlog on `depth` distinct tags, timed matches on one
//!   separate tag: the linear matcher scans the full backlog per match,
//!   the bucketed engine goes straight to the key's bucket (which holds
//!   only the ~`depth`/buckets backlog entries that hash there);
//! * **hot-tag** — the whole backlog piles onto one hot tag, timed
//!   matches rotate over cold tags: the linear matcher wades through the
//!   hot backlog every time while buckets isolate it;
//! * **wildcard** — `ANY_SOURCE`/`ANY_TAG` receives pop the *front* of
//!   the arrival order (the queue stays `depth` deep as timed sends
//!   refill the back); both engines walk the same ordered view, so this
//!   mix is the no-regression guard for wildcard-heavy workloads.
//!
//! Self-checks (best-of-runs, asserted as the table builds): the
//! bucketed engine is ≥5× the linear one on the exact mix at depth
//! ≥1024, and within 10% of it at depth 8 and on every wildcard row.

use mpicd_bench::harness::Sample;
use mpicd_bench::{emit_json, obs_finish, quick_mode, Table};
use mpicd_fabric::{
    Endpoint, Fabric, MatchConfig, PipelineConfig, Tag, WireModel, ANY_SOURCE, ANY_TAG,
};
use std::time::Instant;

/// Traffic mixes, table order.
#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Exact,
    HotTag,
    Wildcard,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::HotTag => "hot-tag",
            Self::Wildcard => "wildcard",
        }
    }
}

/// Backlog tags start here so timed traffic never collides with them.
const BACKLOG_BASE: Tag = 1 << 20;

/// Flood the standing backlog for one cell.
fn flood_backlog(tx: &Endpoint, mix: Mix, depth: usize) {
    let payload = [0u8; 8];
    for i in 0..depth {
        let tag = match mix {
            // Distinct keys spread across the bucket space.
            Mix::Exact | Mix::Wildcard => BACKLOG_BASE + i as Tag,
            // Everything on the single hot tag.
            Mix::HotTag => 0,
        };
        tx.send_bytes(&payload, 1, tag).expect("backlog send");
    }
}

/// Messages matched per timed batch (sends are posted untimed, so the
/// timed region is pure receive-side matching).
const BATCH: usize = 64;

/// Matched messages/second through a queue held at `depth` entries,
/// mean over `runs` timed repetitions (plus one untimed warmup).
fn msgrate(mix: Mix, depth: usize, cfg: MatchConfig, runs: usize) -> Sample {
    let fabric = Fabric::with_config(2, WireModel::zero_cost(), PipelineConfig::serial(), cfg);
    let tx = fabric.endpoint(0).expect("endpoint 0");
    let rx = fabric.endpoint(1).expect("endpoint 1");
    flood_backlog(&tx, mix, depth);
    let payload = [0u8; 8];
    let mut buf = [0u8; 8];
    let batches = if quick_mode() { 4 } else { 32 };
    let mut fresh = depth; // next wildcard-mix refill tag offset
    let mut vals = Vec::with_capacity(runs);
    for run in 0..=runs {
        let mut timed = 0.0f64;
        for batch in 0..batches {
            // Untimed: post a batch of messages *behind* the backlog.
            let wbase = fresh;
            let send_tag = move |j: usize| -> Tag {
                match mix {
                    // Distinct tags disjoint from the backlog range.
                    Mix::Exact => j as Tag,
                    // Cold tags, rotated so no one cold bucket fills up.
                    Mix::HotTag => 1 + ((batch * BATCH + j) % 1009) as Tag,
                    // Fresh tags refill the back of the arrival order
                    // while the wildcard receives pop its front.
                    Mix::Wildcard => BACKLOG_BASE + (wbase + j) as Tag,
                }
            };
            for j in 0..BATCH {
                tx.send_bytes(&payload, 1, send_tag(j)).expect("send");
            }
            if mix == Mix::Wildcard {
                fresh += BATCH;
            }
            // Timed: drain the batch in reverse posting order, so every
            // receive matches behind the full standing backlog.
            let t0 = Instant::now();
            for j in (0..BATCH).rev() {
                let (source, rtag) = match mix {
                    Mix::Wildcard => (ANY_SOURCE, ANY_TAG),
                    _ => (0, send_tag(j)),
                };
                std::hint::black_box(rx.recv_bytes(&mut buf, source, rtag).expect("recv"));
            }
            timed += t0.elapsed().as_secs_f64();
        }
        if run > 0 {
            vals.push((batches * BATCH) as f64 / timed);
        }
    }
    Sample::from_values(&vals)
}

fn main() {
    let depths: &[usize] = if quick_mode() {
        &[8, 64, 256]
    } else {
        &[8, 64, 256, 1024, 4096]
    };
    let runs = 4; // the paper's 4-run averaging
    let mut table = Table::new(
        "Ablation: tag-matching message rate (2 ranks, zero-cost wire, 8 B eager)",
        "mix/depth",
        "match/s",
        vec![
            "linear".into(),
            "bucketed".into(),
            "× bucketed vs linear".into(),
        ],
    );

    for mix in [Mix::Exact, Mix::HotTag, Mix::Wildcard] {
        for &depth in depths {
            // Best-of-runs for the self-checks (rates are higher-is-
            // better, so p99 is each engine's best run), and one full
            // remeasure before failing: the guard is about engine
            // capability, and a scheduler-noise outlier on a shared CI
            // box should not trip it — a real regression fails both
            // attempts.
            let mut attempt = 0;
            let (linear, bucketed) = loop {
                let linear = msgrate(mix, depth, MatchConfig::linear(), runs);
                let bucketed = msgrate(mix, depth, MatchConfig::default(), runs);
                let ratio_best = bucketed.p99 / linear.p99;
                let speedup_ok = !(mix == Mix::Exact && depth >= 1024) || ratio_best >= 5.0;
                let floor_ok = !(depth <= 8 || mix == Mix::Wildcard) || ratio_best >= 0.9;
                if (speedup_ok && floor_ok) || attempt > 0 {
                    assert!(
                        speedup_ok,
                        "bucketed engine only {ratio_best:.2}× linear on exact mix at depth \
                         {depth} (needs ≥5×, twice)"
                    );
                    assert!(
                        floor_ok,
                        "bucketed engine regressed to {ratio_best:.2}× linear on {} mix at depth \
                         {depth} (floor 0.9×, twice)",
                        mix.name()
                    );
                    break (linear, bucketed);
                }
                attempt += 1;
            };
            table.push(
                format!("{}/D={depth}", mix.name()),
                vec![
                    Some(linear),
                    Some(bucketed),
                    Some(Sample::point(bucketed.mean / linear.mean, 0.0)),
                ],
            );
        }
    }

    table.print();
    emit_json("ablation_msgrate", &table);

    // Matching observability (docs/ARCHITECTURE.md): exact vs wildcard
    // match split and lazily drained dead entries, across every fabric
    // this process created.
    let snap = mpicd_obs::global().snapshot();
    println!("# matching counters");
    for name in [
        "fabric.match.exact",
        "fabric.match.wildcard",
        "fabric.match.drained",
    ] {
        println!("{name:<24} {}", snap.counter(name));
    }
    obs_finish();
}
