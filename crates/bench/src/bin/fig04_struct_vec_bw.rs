//! Figure 4 — bandwidth for the struct-vec type (sizes are multiples of
//! the ~8 KiB packed element, as in the paper).

use mpicd::types::StructVec;
use mpicd::World;
use mpicd_bench::methods::{sv_custom, sv_manual, sv_typed};
use mpicd_bench::report::size_label;
use mpicd_bench::{harness, quick_mode, Config, Table};
use std::sync::Arc;

const ELEM: usize = 20 + 8192;

fn main() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let ty = Arc::new(
        StructVec::datatype()
            .commit_convertor()
            .expect("valid type"),
    );
    let max_count = if quick_mode() { 8 } else { 512 };

    let mut table = Table::new(
        "Fig 4: struct-vec bandwidth",
        "size",
        "MB/s",
        vec![
            "custom".into(),
            "packed".into(),
            "rsmpi-derived-datatype".into(),
        ],
    );

    let mut count = 4usize;
    while count <= max_count {
        let size = count * ELEM;
        let cfg = Config::auto(size);
        let send: Vec<StructVec> = (0..count).map(StructVec::generate).collect();
        let mut rx = vec![StructVec::default(); count];

        let custom = harness::bandwidth(world.fabric(), cfg, size, || {
            sv_custom(&a, &b, &send, &mut rx);
        });
        let packed = harness::bandwidth(world.fabric(), cfg, size, || {
            sv_manual(&a, &b, &send, &mut rx);
        });
        let typed = harness::bandwidth(world.fabric(), cfg, size, || {
            sv_typed(&a, &b, &ty, &send, &mut rx);
        });
        table.push(
            size_label(size),
            vec![Some(custom), Some(packed), Some(typed)],
        );
        count *= 2;
    }
    table.print();
    mpicd_bench::obs_finish();
}
