//! Ablation: interpreted vs. compiled packing across the DDTBench patterns.
//!
//! Each pattern's derived datatype is committed three ways and driven
//! through the same resumable fragment loop the fabric uses:
//!
//! * **convertor** — `commit_convertor()`, the Open MPI-style per-block
//!   interpreter (the paper's baseline; untouched by the plan compiler);
//! * **interpreted** — `commit_interpreted()`, the merged-block engine
//!   without a compiled plan (this workspace's pre-plan behavior);
//! * **compiled** — `commit()`, the pack-plan compiler with strided ops
//!   and fixed-block copy kernels (see `mpicd_datatype::plan`).
//!
//! The table reports pack throughput per engine plus the compiled/
//! interpreted and compiled/convertor speedups, and a second table shows
//! how far each plan canonicalizes the layout (merged blocks → plan ops).
//! Byte-identity across all three engines is asserted on every pattern
//! before anything is timed.

use mpicd_bench::harness::Sample;
use mpicd_bench::{emit_json, obs_finish, quick_mode, Table};
use mpicd_datatype::Committed;
use std::time::Instant;

/// Fragment size of the timed pack loop — the fabric's generic-payload
/// default granularity.
const FRAG: usize = 64 * 1024;

/// Pack the full stream once through `FRAG`-sized fragments.
fn pack_once(c: &Committed, base: &[u8], buf: &mut [u8]) -> usize {
    let mut off = 0usize;
    loop {
        // SAFETY: `base` spans the committed type (asserted by the caller
        // via `required_span` before timing).
        let n = unsafe { c.pack_segment(base.as_ptr(), 1, off, buf) };
        if n == 0 {
            return off;
        }
        off += n;
    }
}

/// Mean pack throughput in MB/s over `runs` timed repetitions.
fn throughput(c: &Committed, base: &[u8], reps: usize, runs: usize) -> Sample {
    let mut buf = vec![0u8; FRAG];
    let bytes = (c.size() * reps) as f64;
    let vals: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(pack_once(c, base, &mut buf));
            }
            bytes / t0.elapsed().as_secs_f64() / 1e6
        })
        .collect();
    Sample::from_values(&vals)
}

fn main() {
    let target = if quick_mode() { 128 * 1024 } else { 1 << 20 };
    let runs = 4; // the paper's 4-run averaging
    let mut tput = Table::new(
        &format!("Ablation: pack engine throughput ({target} B payloads)"),
        "pattern",
        "MB/s",
        vec![
            "convertor".into(),
            "interpreted".into(),
            "compiled".into(),
            "× vs interp".into(),
            "× vs convertor".into(),
        ],
    );
    let mut shape = Table::new(
        "Plan canonicalization (per element)",
        "pattern",
        "count",
        vec!["merged blocks".into(), "plan ops".into()],
    );

    for name in mpicd_ddtbench::BENCHMARKS {
        let p = mpicd_ddtbench::make(name, target);
        let dt = p.datatype();
        let convertor = dt.commit_convertor().expect("valid datatype");
        let interpreted = dt.commit_interpreted().expect("valid datatype");
        let compiled = dt.commit().expect("valid datatype");
        let base = p.base();
        assert!(compiled.required_span(1) <= base.len());

        // Byte-identity across all three engines before timing anything.
        let reference = convertor.pack_slice(base, 1).expect("convertor pack");
        assert_eq!(
            interpreted.pack_slice(base, 1).expect("interpreted pack"),
            reference,
            "{name}: interpreted engine diverges"
        );
        assert_eq!(
            compiled.pack_slice(base, 1).expect("compiled pack"),
            reference,
            "{name}: compiled plan diverges"
        );

        // Calibrate repetitions to ~payload-independent wall time.
        let reps = if quick_mode() {
            4
        } else {
            ((256 << 20) / compiled.size().max(1)).clamp(8, 512)
        };
        let conv = throughput(&convertor, base, reps, runs);
        let interp = throughput(&interpreted, base, reps, runs);
        let comp = throughput(&compiled, base, reps, runs);
        let vs_interp = Sample::point(comp.mean / interp.mean, 0.0);
        let vs_conv = Sample::point(comp.mean / conv.mean, 0.0);
        tput.push(
            name,
            vec![
                Some(conv),
                Some(interp),
                Some(comp),
                Some(vs_interp),
                Some(vs_conv),
            ],
        );
        let plan = compiled.plan().expect("commit() compiles a plan");
        shape.push(
            name,
            vec![
                Some(Sample::point(interpreted.block_count() as f64, 0.0)),
                Some(Sample::point(plan.op_count() as f64, 0.0)),
            ],
        );
    }

    tput.print();
    shape.print();
    emit_json("ablation_pack_plan", &tput);
    emit_json("ablation_pack_plan_shape", &shape);

    // Plan observability: cache traffic and per-kernel byte attribution.
    let snap = mpicd_obs::global().snapshot();
    println!("# plan counters");
    for name in [
        "plan.cache.hits",
        "plan.cache.misses",
        "plan.kernel.memcpy_bytes",
        "plan.kernel.fixed4_bytes",
        "plan.kernel.fixed8_bytes",
        "plan.kernel.fixed16_bytes",
        "plan.kernel.gather64_bytes",
        "plan.kernel.gather128_bytes",
        "plan.kernel.wide_bytes",
        "plan.kernel.generic_bytes",
    ] {
        println!("{name:<28} {}", snap.counter(name));
    }
    obs_finish();
}
