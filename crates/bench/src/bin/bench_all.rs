//! Run every figure/table binary in sequence, writing each output under
//! `results/` — the one-command regeneration of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p mpicd-bench --bin bench_all            # full
//! MPICD_BENCH_QUICK=1 cargo run ... --bin bench_all             # smoke
//! MPICD_RESULTS_DIR=/tmp/out cargo run ... --bin bench_all
//! ```

use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

/// Every figure/table binary, paper order.
const BINARIES: [&str; 16] = [
    "fig01_double_vec_latency",
    "fig02_double_vec_bw",
    "fig03_struct_vec_latency",
    "fig04_struct_vec_bw",
    "fig05_struct_simple_latency",
    "fig06_struct_simple_no_gap_latency",
    "fig07_struct_simple_bw",
    "fig08_pickle_single_array",
    "fig09_pickle_complex_object",
    "fig10_ddtbench",
    "table1_characteristics",
    "ablation_wire_model",
    "ablation_pack_plan",
    "ablation_kernel",
    "ablation_msgrate",
    "ablation_collective",
];

fn main() {
    let out_dir: PathBuf = std::env::var("MPICD_RESULTS_DIR")
        .unwrap_or_else(|_| "results".to_string())
        .into();
    std::fs::create_dir_all(&out_dir).expect("create results dir");

    // Figure binaries live next to this one.
    let me = std::env::current_exe().expect("own path");
    let bin_dir = me.parent().expect("bin dir").to_path_buf();

    let mut failures = 0usize;
    for name in BINARIES {
        let t0 = std::time::Instant::now();
        print!("{name:<38}");
        std::io::stdout().flush().ok();
        let output = Command::new(bin_dir.join(name))
            .output()
            .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
        let path = out_dir.join(format!("{name}.txt"));
        std::fs::write(&path, &output.stdout).expect("write result");
        if output.status.success() {
            println!(
                "ok  ({:>6.1}s) → {}",
                t0.elapsed().as_secs_f64(),
                path.display()
            );
        } else {
            failures += 1;
            println!("FAILED ({})", output.status);
            std::io::stderr().write_all(&output.stderr).ok();
        }
    }
    if failures > 0 {
        eprintln!("{failures} benchmark(s) failed");
        std::process::exit(1);
    }
    println!("\nall outputs in {}", out_dir.display());
    mpicd_bench::obs_finish();
}
