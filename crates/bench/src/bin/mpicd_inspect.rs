//! `mpicd-inspect` — offline analyzer for flight-recorder dumps.
//!
//! Reads one or more JSONL dumps written by the flight recorder
//! (`MPICD_FLIGHT=1`, `MPICD_FLIGHT_PATH=...`), reconstructs per-transfer
//! timelines, and reports on them. Multiple dumps (one per process) are
//! merged into a single cross-rank view before analysis.
//!
//! ```text
//! mpicd-inspect [report] <dump.jsonl>... [--top N] [--straggler-factor F] [--json]
//! mpicd-inspect critical-path <dump.jsonl>... [--json]
//! mpicd-inspect health <health.jsonl> [--flight dump.jsonl]... [--json]
//! ```
//!
//! * **report** (default): latency attribution (wait / pack / wire /
//!   unpack / copy), per-method percentiles, the slowest transfers, and
//!   straggler flags.
//! * **critical-path**: builds the cross-rank happens-before DAG from the
//!   merged timelines, walks the binding-constraint chain from the last
//!   event back to the origin, and prints the longest weighted path with
//!   per-rank blame, per-transfer slack, and per-collective spines.
//! * **health**: reads the periodic health-snapshot stream written under
//!   `MPICD_HEALTH_MS` (gauge levels/high-waters, series and sketch
//!   summaries over the run) and, with `--flight`, joins it with a
//!   sampled flight dump so live health and sampled timelines land in
//!   one report.
//! * `--json` switches any mode to a single machine-readable JSON
//!   object on stdout.
//!
//! Exit codes: 0 = healthy dump, 1 = usage or I/O error, 2 = the input
//! parsed but contains malformed timelines or health lines (CI treats
//! this as a failure).

use mpicd_bench::critical::{critical_path, render_critical, render_critical_json};
use mpicd_bench::flight::{
    analyze, merge_dumps, read_dump, render_json, render_report, Analysis, ReportOptions,
};
use mpicd_bench::healthview::{read_health, render_health, render_health_json};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: mpicd-inspect [report|critical-path] <dump.jsonl>... \
                     [--top N] [--straggler-factor F] [--json]\n       \
                     mpicd-inspect health <health.jsonl> [--flight dump.jsonl]... [--json]";

enum Mode {
    Report,
    CriticalPath,
    Health,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mode = match args.peek().map(String::as_str) {
        Some("report") => {
            args.next();
            Mode::Report
        }
        Some("critical-path") => {
            args.next();
            Mode::CriticalPath
        }
        Some("health") => {
            args.next();
            Mode::Health
        }
        _ => Mode::Report,
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut flight_paths: Vec<PathBuf> = Vec::new();
    let mut opts = ReportOptions::default();
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.top = n,
                None => return usage_error("--top needs an integer"),
            },
            "--straggler-factor" => match args.next().and_then(|v| v.parse().ok()) {
                Some(f) if f > 1.0 => opts.straggler_factor = f,
                _ => return usage_error("--straggler-factor needs a number > 1"),
            },
            "--flight" => match (matches!(mode, Mode::Health), args.next()) {
                (true, Some(p)) => flight_paths.push(PathBuf::from(p)),
                (true, None) => return usage_error("--flight needs a dump path"),
                (false, _) => return usage_error("--flight only applies to health mode"),
            },
            _ if !arg.starts_with('-') => paths.push(PathBuf::from(arg)),
            _ => return usage_error(&format!("unexpected argument `{arg}`")),
        }
    }
    if paths.is_empty() {
        return usage_error("missing input path");
    }

    if let Mode::Health = mode {
        return run_health(&paths, &flight_paths, json);
    }

    let mut dumps = Vec::with_capacity(paths.len());
    for path in &paths {
        match read_dump(path) {
            Ok(d) => dumps.push(d),
            Err(e) => {
                eprintln!("mpicd-inspect: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let source = paths
        .iter()
        .map(|p| p.display().to_string())
        .collect::<Vec<_>>()
        .join(",");
    let analysis = analyze(&merge_dumps(dumps));

    match mode {
        Mode::Report => {
            if json {
                print!("{}", render_json(&analysis, &source));
            } else {
                print!("{}", render_report(&analysis, &opts, &source));
            }
        }
        Mode::CriticalPath => {
            let report = critical_path(&analysis);
            if json {
                print!("{}", render_critical_json(&analysis, &report, &source));
            } else {
                print!("{}", render_critical(&analysis, &report, &source));
            }
        }
        // Handled (and returned from) above; kept explicit so a new mode
        // can't silently fall into the dump pipeline.
        Mode::Health => unreachable!("health mode returns early"),
    }
    exit_for(&analysis)
}

/// `mpicd-inspect health`: the snapshot stream, joined with sampled
/// flight dumps when given.
fn run_health(paths: &[PathBuf], flight_paths: &[PathBuf], json: bool) -> ExitCode {
    if paths.len() != 1 {
        return usage_error("health mode takes exactly one snapshot stream");
    }
    let log = match read_health(&paths[0]) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mpicd-inspect: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut dumps = Vec::with_capacity(flight_paths.len());
    for path in flight_paths {
        match read_dump(path) {
            Ok(d) => dumps.push(d),
            Err(e) => {
                eprintln!("mpicd-inspect: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let analysis = (!dumps.is_empty()).then(|| analyze(&merge_dumps(dumps)));
    let source = paths[0].display().to_string();
    if json {
        print!("{}", render_health_json(&log, analysis.as_ref(), &source));
    } else {
        print!("{}", render_health(&log, analysis.as_ref(), &source));
    }
    let defective =
        !log.bad_lines.is_empty() || analysis.as_ref().is_some_and(|a| !a.malformed.is_empty());
    if defective {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn exit_for(analysis: &Analysis) -> ExitCode {
    if analysis.malformed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("mpicd-inspect: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
