//! `mpicd-inspect` — offline analyzer for flight-recorder dumps.
//!
//! Reads a JSONL dump written by the flight recorder (`MPICD_FLIGHT=1`,
//! `MPICD_FLIGHT_PATH=...`), reconstructs per-transfer timelines, and
//! prints latency attribution (wait / pack / wire / unpack / copy),
//! per-method percentiles, the slowest transfers with their critical
//! path, and straggler flags.
//!
//! ```text
//! mpicd-inspect <dump.jsonl> [--top N] [--straggler-factor F]
//! ```
//!
//! Exit codes: 0 = healthy dump, 1 = usage or I/O error, 2 = the dump
//! parsed but contains malformed timelines (CI treats this as a failure).

use mpicd_bench::flight::{analyze, read_dump, render_report, ReportOptions};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: mpicd-inspect <dump.jsonl> [--top N] [--straggler-factor F]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut path: Option<PathBuf> = None;
    let mut opts = ReportOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.top = n,
                None => return usage_error("--top needs an integer"),
            },
            "--straggler-factor" => match args.next().and_then(|v| v.parse().ok()) {
                Some(f) if f > 1.0 => opts.straggler_factor = f,
                _ => return usage_error("--straggler-factor needs a number > 1"),
            },
            _ if path.is_none() && !arg.starts_with('-') => path = Some(PathBuf::from(arg)),
            _ => return usage_error(&format!("unexpected argument `{arg}`")),
        }
    }
    let Some(path) = path else {
        return usage_error("missing dump path");
    };

    let dump = match read_dump(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mpicd-inspect: {e}");
            return ExitCode::FAILURE;
        }
    };
    let analysis = analyze(&dump);
    print!(
        "{}",
        render_report(&analysis, &opts, &path.display().to_string())
    );
    if analysis.malformed.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("mpicd-inspect: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
