//! Figure 9 — Python pingpong bandwidth, complex object composed of
//! multiple 128-KiB NumPy arrays summing to the x-axis total.

use mpicd::World;
use mpicd_bench::pickle_run::{run, Strategy};
use mpicd_bench::report::size_label;
use mpicd_bench::{quick_mode, size_sweep, Config, Table};
use mpicd_pickle::workload::complex_object;

fn main() {
    let world = World::new(2);
    let hi = if quick_mode() { 512 * 1024 } else { 16 << 20 };
    let sizes = size_sweep(128 * 1024, hi);

    let mut table = Table::new(
        "Fig 9: Python pingpong, complex object of 128-KiB arrays",
        "size",
        "MB/s",
        Strategy::all().iter().map(|s| s.label().into()).collect(),
    );

    for size in sizes {
        let cfg = Config::auto(size);
        let obj = complex_object(size);
        let cells = Strategy::all()
            .iter()
            .map(|s| Some(run(&world, *s, &obj, cfg)))
            .collect();
        table.push(size_label(size), cells);
    }
    table.print();
    mpicd_bench::obs_finish();
}
