//! Ablation: pack-kernel generations inside the plan compiler.
//!
//! Where `ablation_pack_plan` compares *engines* (convertor vs.
//! interpreted vs. compiled), this binary holds the engine fixed — the
//! compiled plan — and compares *kernel policies* on it:
//!
//! * **interpreted** — `commit_interpreted()`, the merged-block engine;
//!   the Träff-style reference (a plan should never lose to it);
//! * **legacy** — `MPICD_PLAN_KERNEL=legacy`: the PR 2 kernel set
//!   (fixed4/8/16 for 4/8/16-byte blocks, byte-loop generic otherwise),
//!   autotuner off;
//! * **wide** — the static wide-word mapping (gather64/gather128/wide
//!   for small blocks, software prefetch down long strides), autotuner
//!   off (`MPICD_PLAN_TUNE=0`);
//! * **tuned** — the same mapping with the autotuner racing candidate
//!   kernels on the first large execution of each cached plan
//!   (`MPICD_PLAN_TUNE=1`, the default).
//!
//! Patterns are the DDTBench set plus `REGISTER`, an array-of-struct
//! record (3×i32 + f64 with trailing padding) whose alternating runs
//! exercise the two-block `Pair` fusion. Byte identity against the
//! interpreted engine is asserted for every pattern under every policy
//! before anything is timed.

use mpicd_bench::harness::Sample;
use mpicd_bench::{emit_json, obs_finish, quick_mode, Table};
use mpicd_datatype::{plan, Committed, Datatype, KernelPolicy};
use std::time::Instant;

/// Fragment size of the timed pack loop — the fabric's generic-payload
/// default granularity.
const FRAG: usize = 64 * 1024;

/// Pack the full stream once through `FRAG`-sized fragments.
fn pack_once(c: &Committed, base: &[u8], buf: &mut [u8]) -> usize {
    let mut off = 0usize;
    loop {
        // SAFETY: `base` spans the committed type (asserted by the caller
        // via `required_span` before timing).
        let n = unsafe { c.pack_segment(base.as_ptr(), 1, off, buf) };
        if n == 0 {
            return off;
        }
        off += n;
    }
}

/// Mean pack throughput in MB/s over `runs` timed repetitions.
fn throughput(c: &Committed, base: &[u8], reps: usize, runs: usize) -> Sample {
    let mut buf = vec![0u8; FRAG];
    let bytes = (c.size() * reps) as f64;
    let vals: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(pack_once(c, base, &mut buf));
            }
            bytes / t0.elapsed().as_secs_f64() / 1e6
        })
        .collect();
    Sample::from_values(&vals)
}

/// The kernel-policy columns, in measurement order.
fn policies() -> [(&'static str, KernelPolicy, bool); 3] {
    [
        ("legacy", KernelPolicy::Legacy, false),
        ("wide", KernelPolicy::Auto, false),
        ("tuned", KernelPolicy::Auto, true),
    ]
}

/// One benchmarked pattern: name, datatype, and a backing buffer.
fn patterns(target: usize) -> Vec<(String, Datatype, Vec<u8>)> {
    let mut out = Vec::new();
    for name in mpicd_ddtbench::BENCHMARKS {
        let p = mpicd_ddtbench::make(name, target);
        out.push((name.to_string(), p.datatype(), p.base().to_vec()));
    }
    // Array-of-struct record stream (SNIPPETS.md traffic-detector shape):
    // {3×i32, pad, f64, pad} resized to a 32-byte extent — alternating
    // 12/8-byte runs that fuse into one `Pair` op per record batch.
    let field = Datatype::structure(vec![
        (3, 0, Datatype::of::<i32>()),
        (1, 16, Datatype::of::<f64>()),
    ]);
    let records = (target / 20).max(1);
    let dt = Datatype::contiguous(records, Datatype::resized(0, 32, field));
    let span = records * 32;
    let base: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
    out.push(("REGISTER".to_string(), dt, base));
    out
}

fn main() {
    let target = if quick_mode() { 128 * 1024 } else { 1 << 20 };
    let runs = 4; // the paper's 4-run averaging
    let mut tput = Table::new(
        &format!("Ablation: pack kernel policy throughput ({target} B payloads)"),
        "pattern",
        "MB/s",
        vec![
            "interpreted".into(),
            "legacy".into(),
            "wide".into(),
            "tuned".into(),
            "× tuned vs legacy".into(),
            "× tuned vs interp".into(),
        ],
    );

    for (name, dt, base) in patterns(target) {
        let interpreted = dt.commit_interpreted().expect("valid datatype");
        let compiled = dt.commit().expect("valid datatype");
        assert!(compiled.required_span(1) <= base.len());
        let reference = interpreted.pack_slice(&base, 1).expect("interpreted pack");

        // Byte identity under every policy before timing anything.
        for (col, policy, tune) in policies() {
            plan::set_kernel_policy(policy);
            plan::set_tuning(tune);
            assert_eq!(
                compiled.pack_slice(&base, 1).expect("compiled pack"),
                reference,
                "{name}: compiled plan diverges under {col} policy"
            );
        }

        // Calibrate repetitions to ~payload-independent wall time.
        let reps = if quick_mode() {
            4
        } else {
            ((256 << 20) / compiled.size().max(1)).clamp(8, 512)
        };
        let interp = throughput(&interpreted, &base, reps, runs);
        let mut cols = vec![Some(interp)];
        let mut by_policy = Vec::new();
        for (_, policy, tune) in policies() {
            plan::set_kernel_policy(policy);
            plan::set_tuning(tune);
            let s = throughput(&compiled, &base, reps, runs);
            by_policy.push(s);
            cols.push(Some(s));
        }
        let tuned = &by_policy[2];
        cols.push(Some(Sample::point(tuned.mean / by_policy[0].mean, 0.0)));
        cols.push(Some(Sample::point(tuned.mean / interp.mean, 0.0)));
        tput.push(&name, cols);
    }
    plan::set_kernel_policy(KernelPolicy::Auto);
    plan::set_tuning(true);

    tput.print();
    emit_json("ablation_kernel", &tput);

    // Kernel observability: which kernel moved the bytes, and what the
    // autotuner decided (see docs/PERFORMANCE.md).
    let snap = mpicd_obs::global().snapshot();
    println!("# kernel counters");
    for name in [
        "plan.kernel.memcpy_bytes",
        "plan.kernel.fixed4_bytes",
        "plan.kernel.fixed8_bytes",
        "plan.kernel.fixed16_bytes",
        "plan.kernel.gather64_bytes",
        "plan.kernel.gather128_bytes",
        "plan.kernel.wide_bytes",
        "plan.kernel.generic_bytes",
        "plan.tune.races",
        "plan.tune.kept",
        "plan.tune.switched",
    ] {
        println!("{name:<30} {}", snap.counter(name));
    }
    obs_finish();
}
