//! Figure 6 — latency for struct-simple-no-gap: once the gap is removed,
//! the derived-datatype engine detects contiguity and matches the direct
//! paths ("RSMPI, and therefore Open MPI, performs as expected when
//! sending contiguous types").

use mpicd::types::StructSimpleNoGap;
use mpicd::World;
use mpicd_bench::methods::{nsg_contig, nsg_typed};
use mpicd_bench::report::size_label;
use mpicd_bench::{harness, quick_mode, size_sweep, Config, Table};
use std::sync::Arc;

fn main() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let ty = Arc::new(
        StructSimpleNoGap::datatype()
            .commit_convertor()
            .expect("valid type"),
    );
    assert!(
        ty.is_contiguous(),
        "no-gap type must collapse to contiguous"
    );
    let hi = if quick_mode() { 4096 } else { 1 << 20 };
    let sizes = size_sweep(32, hi);

    let mut table = Table::new(
        "Fig 6: struct-simple-no-gap latency",
        "size",
        "us",
        vec!["custom".into(), "manual-pack".into(), "rsmpi".into()],
    );

    for size in sizes {
        let count = (size / 16).max(1);
        let cfg = Config::auto(size);
        let send: Vec<StructSimpleNoGap> = (0..count).map(StructSimpleNoGap::generate).collect();
        let mut rx = vec![StructSimpleNoGap::default(); count];
        let mut back = vec![StructSimpleNoGap::default(); count];

        // With no gap there is nothing to pack: "custom" and "manual" both
        // reduce to the contiguous path (kept as separate series to mirror
        // the figure's legend).
        let custom = harness::latency(world.fabric(), cfg, || {
            nsg_contig(&a, &b, &send, &mut rx);
            nsg_contig(&b, &a, &rx, &mut back);
        });
        let manual = harness::latency(world.fabric(), cfg, || {
            nsg_contig(&a, &b, &send, &mut rx);
            nsg_contig(&b, &a, &rx, &mut back);
        });
        let typed = harness::latency(world.fabric(), cfg, || {
            nsg_typed(&a, &b, &ty, &send, &mut rx);
            nsg_typed(&b, &a, &ty, &rx, &mut back);
        });
        table.push(
            size_label(size),
            vec![Some(custom), Some(manual), Some(typed)],
        );
    }
    table.print();
    mpicd_bench::obs_finish();
}
