//! Figure 5 — latency for the struct-simple type (gapped, pure packing):
//! custom and manual-pack beat the derived-datatype baseline, whose engine
//! must walk the gapped typemap element by element.

use mpicd::types::StructSimple;
use mpicd::World;
use mpicd_bench::methods::{ss_custom, ss_manual, ss_typed};
use mpicd_bench::report::size_label;
use mpicd_bench::{harness, quick_mode, size_sweep, Config, Table};
use std::sync::Arc;

fn main() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let ty = Arc::new(
        StructSimple::datatype()
            .commit_convertor()
            .expect("valid type"),
    );
    let hi = if quick_mode() { 4096 } else { 1 << 20 };
    let sizes = size_sweep(32, hi);

    let mut table = Table::new(
        "Fig 5: struct-simple latency",
        "size",
        "us",
        vec!["custom".into(), "manual-pack".into(), "rsmpi".into()],
    );

    for size in sizes {
        let count = (size / 20).max(1);
        let cfg = Config::auto(size);
        let send: Vec<StructSimple> = (0..count).map(StructSimple::generate).collect();
        let mut rx = vec![StructSimple::default(); count];
        let mut back = vec![StructSimple::default(); count];

        let custom = harness::latency(world.fabric(), cfg, || {
            ss_custom(&a, &b, &send, &mut rx);
            ss_custom(&b, &a, &rx, &mut back);
        });
        let manual = harness::latency(world.fabric(), cfg, || {
            ss_manual(&a, &b, &send, &mut rx);
            ss_manual(&b, &a, &rx, &mut back);
        });
        let typed = harness::latency(world.fabric(), cfg, || {
            ss_typed(&a, &b, &ty, &send, &mut rx);
            ss_typed(&b, &a, &ty, &rx, &mut back);
        });
        table.push(
            size_label(size),
            vec![Some(custom), Some(manual), Some(typed)],
        );
    }
    table.print();
    mpicd_bench::obs_finish();
}
