//! Figure 1 — latency pingpong for the double-vector type while varying
//! the sub-vector size (64 B – 4 KiB), vs. manual packing and the raw
//! bytes baseline.

use mpicd::World;
use mpicd_bench::methods::{bytes_oneway, dv_custom, dv_manual, dv_recv_like, dv_workload};
use mpicd_bench::report::size_label;
use mpicd_bench::{harness, quick_mode, size_sweep, Config, PhaseProbe, PhaseTable, Table};

fn main() {
    let world = World::new(2);
    let (a, b) = world.pair();
    let hi = if quick_mode() { 8 * 1024 } else { 1 << 20 };
    let sizes = size_sweep(64, hi);
    let subvecs = [64usize, 256, 1024, 4096];
    let mut probe = PhaseProbe::new();
    let mut phases = PhaseTable::new("Fig 1 phase breakdown");

    let mut columns: Vec<String> = subvecs.iter().map(|s| format!("custom-{s}")).collect();
    columns.push("manual-pack-1024".into());
    columns.push("rsmpi-bytes-baseline".into());
    let mut table = Table::new(
        "Fig 1: double-vec latency (varying sub-vector size)",
        "size",
        "us",
        columns,
    );

    for size in sizes {
        let cfg = Config::auto(size);
        let mut cells = Vec::new();

        for sv in subvecs {
            let x = dv_workload(size, sv);
            let mut y = dv_recv_like(&x);
            let mut z = dv_recv_like(&x);
            probe.delta();
            let s = harness::latency(world.fabric(), cfg, || {
                dv_custom(&a, &b, &x, &mut y);
                dv_custom(&b, &a, &y, &mut z);
            });
            phases.push(format!("{}/custom-{sv}", size_label(size)), probe.delta());
            cells.push(Some(s));
        }

        let x = dv_workload(size, 1024);
        let mut y = dv_recv_like(&x);
        let mut z = dv_recv_like(&x);
        probe.delta();
        cells.push(Some(harness::latency(world.fabric(), cfg, || {
            dv_manual(&a, &b, &x, &mut y);
            dv_manual(&b, &a, &y, &mut z);
        })));
        phases.push(format!("{}/manual-pack", size_label(size)), probe.delta());

        let raw = vec![0x11u8; size];
        let mut rx = vec![0u8; size];
        let mut back = vec![0u8; size];
        probe.delta();
        cells.push(Some(harness::latency(world.fabric(), cfg, || {
            bytes_oneway(&a, &b, &raw, &mut rx);
            bytes_oneway(&b, &a, &rx, &mut back);
        })));
        phases.push(format!("{}/bytes", size_label(size)), probe.delta());

        table.push(size_label(size), cells);
    }
    table.print();
    phases.print();
    mpicd_bench::obs_finish();
}
