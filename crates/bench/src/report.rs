//! Aligned table output — each figure binary prints one of these, with the
//! same rows/series the paper's plot shows.

use crate::harness::Sample;

/// A result table: one row per x value (message size or benchmark name),
/// one column per method/series, mean ± std in each cell.
pub struct Table {
    /// Figure/table caption.
    pub title: String,
    /// x-axis column heading.
    pub xlabel: String,
    /// Value unit appended to the header (e.g. `us`, `MB/s`).
    pub unit: String,
    /// Series (column) labels.
    pub columns: Vec<String>,
    /// Rows: x label → one sample per column (`None` = not applicable).
    pub rows: Vec<(String, Vec<Option<Sample>>)>,
}

impl Table {
    /// Start an empty table.
    pub fn new(title: &str, xlabel: &str, unit: &str, columns: Vec<String>) -> Self {
        Self {
            title: title.to_string(),
            xlabel: xlabel.to_string(),
            unit: unit.to_string(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, x: impl Into<String>, cells: Vec<Option<Sample>>) {
        assert_eq!(cells.len(), self.columns.len(), "cells per column");
        self.rows.push((x.into(), cells));
    }

    /// Render for humans.
    pub fn render(&self) -> String {
        let mut width = vec![self.xlabel.len()];
        width.extend(self.columns.iter().map(|c| c.len().max(18)));
        for (x, _) in &self.rows {
            width[0] = width[0].max(x.len());
        }

        let mut out = String::new();
        out.push_str(&format!("# {} [{}]\n", self.title, self.unit));
        out.push_str(&format!("{:<w$}", self.xlabel, w = width[0] + 2));
        for (c, w) in self.columns.iter().zip(&width[1..]) {
            out.push_str(&format!("{:>w$}", c, w = w + 2));
        }
        out.push('\n');
        for (x, cells) in &self.rows {
            out.push_str(&format!("{:<w$}", x, w = width[0] + 2));
            for (cell, w) in cells.iter().zip(&width[1..]) {
                let text = match cell {
                    Some(s) => format!("{:.2} ±{:.2}", s.mean, s.std),
                    None => "-".to_string(),
                };
                out.push_str(&format!("{:>w$}", text, w = w + 2));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (machine-readable companion).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.xlabel.to_string());
        for c in &self.columns {
            out.push_str(&format!(",{c}_mean,{c}_std"));
        }
        out.push('\n');
        for (x, cells) in &self.rows {
            out.push_str(x);
            for cell in cells {
                match cell {
                    Some(s) => out.push_str(&format!(",{},{}", s.mean, s.std)),
                    None => out.push_str(",,"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Print both renderings to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
        println!("--- csv ---\n{}", self.render_csv());
    }

    /// Render as a JSON document (hand-rolled — the workspace has no JSON
    /// dependency) so CI can publish results as artifacts.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"title\": \"{}\",\n", esc(&self.title)));
        out.push_str(&format!("  \"xlabel\": \"{}\",\n", esc(&self.xlabel)));
        out.push_str(&format!("  \"unit\": \"{}\",\n", esc(&self.unit)));
        out.push_str("  \"columns\": [");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", esc(c)));
        }
        out.push_str("],\n  \"rows\": [\n");
        for (ri, (x, cells)) in self.rows.iter().enumerate() {
            out.push_str(&format!("    {{\"x\": \"{}\", \"cells\": [", esc(x)));
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match cell {
                    Some(s) => out.push_str(&format!(
                        "{{\"mean\": {}, \"std\": {}, \"p50\": {}, \"p99\": {}}}",
                        num(s.mean),
                        num(s.std),
                        num(s.p50),
                        num(s.p99)
                    )),
                    None => out.push_str("null"),
                }
            }
            out.push_str("]}");
            if ri + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Human-friendly byte-size label (`64`, `4K`, `2M`).
pub fn size_label(bytes: usize) -> String {
    if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_gaps() {
        let mut t = Table::new("Fig X", "size", "us", vec!["a".into(), "b".into()]);
        t.push("64", vec![Some(Sample::point(1.5, 0.1)), None]);
        let s = t.render();
        assert!(s.contains("Fig X"));
        assert!(s.contains("1.50"));
        assert!(s.contains('-'));
        let csv = t.render_csv();
        assert!(csv.contains("a_mean"));
        assert!(csv.lines().count() == 2);
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(64), "64");
        assert_eq!(size_label(4096), "4K");
        assert_eq!(size_label(2 << 20), "2M");
        assert_eq!(size_label(1536), "1536");
    }
}
