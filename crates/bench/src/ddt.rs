//! DDTBench method runners (§V-C / Fig 10).
//!
//! Each method moves one pattern "face" from a sender-side pattern
//! instance to a receiver-side instance, single-threaded over the fabric.

use mpicd::{transfer, transfer_custom, transfer_typed, Communicator};
use mpicd_ddtbench::Pattern;

/// The Fig 10 method set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdtMethod {
    /// Same-size contiguous pingpong, no packing (the plot's reference).
    Reference,
    /// Hand-written pack loop → bytes → hand-written unpack loop.
    Manual,
    /// Direct send/recv with the derived datatype (engine packs inline).
    TypedDirect,
    /// `MPI_Pack`-style: engine packs to a buffer, buffer sent as bytes.
    TypedPack,
    /// Custom datatype API, packing callbacks.
    CustomPack,
    /// Custom datatype API, memory regions (only where Table I allows).
    CustomRegion,
}

impl DdtMethod {
    /// Label used in Fig 10.
    pub fn label(self) -> &'static str {
        match self {
            Self::Reference => "reference",
            Self::Manual => "manual",
            Self::TypedDirect => "mpi-ddt",
            Self::TypedPack => "mpi-pack",
            Self::CustomPack => "custom-pack",
            Self::CustomRegion => "custom-region",
        }
    }

    /// Every method, figure order.
    pub fn all() -> [DdtMethod; 6] {
        [
            Self::Reference,
            Self::Manual,
            Self::TypedDirect,
            Self::TypedPack,
            Self::CustomPack,
            Self::CustomRegion,
        ]
    }
}

/// Scratch buffers reused across iterations (like DDTBench's preallocated
/// pack buffers).
pub struct DdtScratch {
    pack: Vec<u8>,
    rx: Vec<u8>,
    reference: Vec<u8>,
    reference_rx: Vec<u8>,
}

impl DdtScratch {
    /// Allocate for a pattern of `bytes` payload.
    pub fn new(bytes: usize) -> Self {
        Self {
            pack: Vec::with_capacity(bytes),
            rx: vec![0u8; bytes],
            reference: vec![0x5Au8; bytes],
            reference_rx: vec![0u8; bytes],
        }
    }
}

/// Move one face from `sender` to `receiver` with `method`. Returns
/// `false` when the pattern does not support the method (region variants
/// of LAMMPS/WRF).
pub fn one_way(
    a: &Communicator,
    b: &Communicator,
    sender: &dyn Pattern,
    receiver: &mut dyn Pattern,
    scratch: &mut DdtScratch,
    method: DdtMethod,
) -> bool {
    match method {
        DdtMethod::Reference => {
            transfer(a, b, &scratch.reference, &mut scratch.reference_rx, 0)
                .expect("reference transfer");
        }
        DdtMethod::Manual => {
            sender.pack_manual(&mut scratch.pack);
            transfer(a, b, &scratch.pack, &mut scratch.rx, 0).expect("manual transfer");
            receiver.unpack_manual(&scratch.rx);
        }
        DdtMethod::TypedDirect => {
            let ty = sender.committed();
            transfer_typed(a, b, sender.base(), receiver.base_mut(), 1, &ty, 0)
                .expect("typed transfer");
        }
        DdtMethod::TypedPack => {
            let ty = sender.committed();
            let packed = ty.pack_slice(sender.base(), 1).expect("typed pack");
            transfer(a, b, &packed, &mut scratch.rx, 0).expect("typed-pack transfer");
            ty.unpack_slice(&scratch.rx, receiver.base_mut(), 1)
                .expect("typed unpack");
        }
        DdtMethod::CustomPack => {
            let sctx = sender.custom_pack_ctx();
            let mut rctx = receiver.custom_unpack_ctx();
            transfer_custom(a, b, sctx, &mut *rctx, 0).expect("custom transfer");
        }
        DdtMethod::CustomRegion => {
            let Some(sctx) = sender.region_pack_ctx() else {
                return false;
            };
            let Some(mut rctx) = receiver.region_unpack_ctx() else {
                return false;
            };
            transfer_custom(a, b, sctx, &mut *rctx, 0).expect("region transfer");
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpicd::World;
    use mpicd_ddtbench::{make, BENCHMARKS};

    #[test]
    fn every_method_moves_identical_bytes_for_every_pattern() {
        for name in BENCHMARKS {
            let sender = make(name, 16 * 1024);
            let expect = sender.checksum();
            for method in DdtMethod::all() {
                if method == DdtMethod::Reference {
                    continue; // moves scratch, not pattern data
                }
                let world = World::new(2);
                let (a, b) = world.pair();
                let mut receiver = make(name, 16 * 1024);
                receiver.clear();
                assert_ne!(receiver.checksum(), expect, "{name} cleared");
                let mut scratch = DdtScratch::new(sender.bytes());
                let ran = one_way(&a, &b, &*sender, &mut *receiver, &mut scratch, method);
                if !ran {
                    assert!(
                        !sender.info().memory_regions,
                        "{name} should support {}",
                        method.label()
                    );
                    continue;
                }
                assert_eq!(receiver.checksum(), expect, "{name} via {}", method.label());
            }
        }
    }

    #[test]
    fn region_method_skips_unsupported() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let sender = make("LAMMPS", 1024);
        let mut receiver = make("LAMMPS", 1024);
        let mut scratch = DdtScratch::new(sender.bytes());
        assert!(!one_way(
            &a,
            &b,
            &*sender,
            &mut *receiver,
            &mut scratch,
            DdtMethod::CustomRegion
        ));
    }
}
