//! Per-phase breakdown of a measured run, read from the observability
//! registry (`mpicd-obs`): packing CPU, unpacking CPU, modeled wire time,
//! and extra copy traffic, attributed per message.
//!
//! Wire time, message counts, and copy bytes are always recorded by the
//! fabric. The pack/unpack CPU columns come from `span_acc` timers and
//! only advance while tracing is enabled (`MPICD_TRACE=1`); without it
//! they read 0 and the table says so.

use mpicd_obs::{Counter, Registry};
use std::sync::Arc;

/// Delta of the fabric phase counters over some measured region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Phases {
    /// CPU nanoseconds spent in pack callbacks (tracing only).
    pub pack_ns: u64,
    /// CPU nanoseconds spent in unpack callbacks (tracing only).
    pub unpack_ns: u64,
    /// Modeled wire nanoseconds.
    pub wire_ns: u64,
    /// Eager bounce-buffer bytes (the copy the custom path avoids).
    pub copy_bytes: u64,
    /// Messages delivered.
    pub messages: u64,
}

impl Phases {
    /// Nanoseconds-per-message for a phase counter (0 when no messages).
    fn per_msg(&self, v: u64) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            v as f64 / self.messages as f64
        }
    }
}

/// Snapshot-delta reader over the fabric's registry counters. Create one
/// probe per benchmark process; call [`PhaseProbe::delta`] after each
/// measured cell to get the phase totals since the previous call.
pub struct PhaseProbe {
    pack_ns: Arc<Counter>,
    unpack_ns: Arc<Counter>,
    wire_ns: Arc<Counter>,
    copy_bytes: Arc<Counter>,
    messages: Arc<Counter>,
    last: Phases,
}

impl PhaseProbe {
    /// Probe the global registry (the counters every `Fabric` feeds).
    pub fn new() -> Self {
        Self::in_registry(mpicd_obs::global())
    }

    /// Probe an explicit registry (tests).
    pub fn in_registry(reg: &Registry) -> Self {
        let mut probe = Self {
            pack_ns: reg.counter("fabric.pack_ns"),
            unpack_ns: reg.counter("fabric.unpack_ns"),
            wire_ns: reg.counter("fabric.wire_ns"),
            copy_bytes: reg.counter("fabric.copy_bytes"),
            messages: reg.counter("fabric.messages"),
            last: Phases::default(),
        };
        // Start deltas from "now", not from process start.
        let _ = probe.delta();
        probe
    }

    fn read(&self) -> Phases {
        Phases {
            pack_ns: self.pack_ns.get(),
            unpack_ns: self.unpack_ns.get(),
            wire_ns: self.wire_ns.get(),
            copy_bytes: self.copy_bytes.get(),
            messages: self.messages.get(),
        }
    }

    /// Phase totals accumulated since the previous `delta` call.
    pub fn delta(&mut self) -> Phases {
        let now = self.read();
        let d = Phases {
            pack_ns: now.pack_ns - self.last.pack_ns,
            unpack_ns: now.unpack_ns - self.last.unpack_ns,
            wire_ns: now.wire_ns - self.last.wire_ns,
            copy_bytes: now.copy_bytes - self.last.copy_bytes,
            messages: now.messages - self.last.messages,
        };
        self.last = now;
        d
    }
}

impl Default for PhaseProbe {
    fn default() -> Self {
        Self::new()
    }
}

/// Companion table to a figure: one row per (size, method) cell, phase
/// columns normalized per message.
pub struct PhaseTable {
    title: String,
    rows: Vec<(String, Phases)>,
}

impl PhaseTable {
    /// Start an empty breakdown table.
    pub fn new(title: &str) -> Self {
        Self {
            title: title.to_string(),
            rows: Vec::new(),
        }
    }

    /// Record one measured cell's phase delta.
    pub fn push(&mut self, label: impl Into<String>, p: Phases) {
        self.rows.push((label.into(), p));
    }

    /// Render per-message phase columns. Pack/unpack CPU columns are only
    /// populated under `MPICD_TRACE=1`.
    pub fn render(&self) -> String {
        let mut w = "cell".len();
        for (l, _) in &self.rows {
            w = w.max(l.len());
        }
        let mut out = String::new();
        out.push_str(&format!("# {} (per message)\n", self.title));
        if !mpicd_obs::enabled() {
            out.push_str("# note: pack/unpack CPU timers need MPICD_TRACE=1; showing 0\n");
        }
        out.push_str(&format!(
            "{:<w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>8}\n",
            "cell",
            "pack-ns",
            "unpack-ns",
            "wire-ns",
            "copy-B",
            "msgs",
            w = w
        ));
        for (l, p) in &self.rows {
            out.push_str(&format!(
                "{:<w$}  {:>10.0}  {:>10.0}  {:>10.0}  {:>10.0}  {:>8}\n",
                l,
                p.per_msg(p.pack_ns),
                p.per_msg(p.unpack_ns),
                p.per_msg(p.wire_ns),
                p.per_msg(p.copy_bytes),
                p.messages,
                w = w
            ));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reads_deltas_not_totals() {
        let reg = Registry::new();
        let msgs = reg.counter("fabric.messages");
        let wire = reg.counter("fabric.wire_ns");
        msgs.add(5);
        wire.add(100);
        let mut probe = PhaseProbe::in_registry(&reg);
        // Pre-existing totals were absorbed at construction.
        msgs.add(2);
        wire.add(40);
        let d = probe.delta();
        assert_eq!(d.messages, 2);
        assert_eq!(d.wire_ns, 40);
        assert_eq!(d.per_msg(d.wire_ns), 20.0);
        // Second delta starts from the previous read.
        assert_eq!(probe.delta(), Phases::default());
    }

    #[test]
    fn table_renders_per_message_columns() {
        let mut t = PhaseTable::new("Fig X breakdown");
        t.push(
            "64/custom",
            Phases {
                pack_ns: 300,
                unpack_ns: 150,
                wire_ns: 3000,
                copy_bytes: 0,
                messages: 3,
            },
        );
        let s = t.render();
        assert!(s.contains("Fig X breakdown"));
        assert!(s.contains("64/custom"));
        assert!(s.contains("1000")); // wire-ns per message
        assert!(s.contains("100")); // pack-ns per message
    }

    #[test]
    fn zero_messages_render_zero() {
        let p = Phases::default();
        assert_eq!(p.per_msg(123), 0.0);
    }

    #[test]
    fn fabric_feeds_global_probe() {
        let mut probe = PhaseProbe::new();
        let world = mpicd::World::new(2);
        let (a, b) = world.pair();
        let msg = vec![3u8; 256];
        let mut out = vec![0u8; 256];
        mpicd::transfer(&a, &b, &msg, &mut out, 0).unwrap();
        let d = probe.delta();
        assert!(d.messages >= 1, "messages: {}", d.messages);
        assert!(d.wire_ns > 0, "wire_ns: {}", d.wire_ns);
    }
}
