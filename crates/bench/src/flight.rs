//! Offline analysis of flight-recorder dumps (the `mpicd-inspect` binary).
//!
//! Parses the JSONL dump written by [`mpicd_obs::flight::dump_jsonl`],
//! reconstructs one timeline per matched transfer (joining the receive post
//! through the match event's `aux` field), attributes end-to-end latency to
//! phases — wait-for-match, pack, modeled wire, unpack, residual copy — and
//! renders a report with per-method percentiles, the top-N slowest transfers
//! with their critical path, and straggler flags.
//!
//! The parser is hand-rolled like every other JSON emitter/reader in the
//! workspace: the dump format is flat objects with integer fields and
//! escape-free enum strings, so a full JSON parser would be dead weight.

use crate::report::size_label;
use mpicd_obs::flight::{EventKind, Method};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

// ---- parsing ----------------------------------------------------------------

/// One value in a flat dump object: integers or escape-free strings only.
enum Val<'a> {
    Num(i128),
    Str(&'a str),
}

/// Parse one `{"k":v,...}` line with no nesting and no string escapes.
fn parse_flat_object(line: &str) -> Option<Vec<(&str, Val<'_>)>> {
    let mut rest = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    loop {
        rest = rest.trim_start_matches([',', ' ']);
        if rest.is_empty() {
            return Some(out);
        }
        rest = rest.strip_prefix('"')?;
        let kend = rest.find('"')?;
        let key = &rest[..kend];
        rest = rest[kend + 1..]
            .trim_start()
            .strip_prefix(':')?
            .trim_start();
        if let Some(r) = rest.strip_prefix('"') {
            let vend = r.find('"')?;
            out.push((key, Val::Str(&r[..vend])));
            rest = &r[vend + 1..];
        } else {
            let vend = rest.find(',').unwrap_or(rest.len());
            out.push((key, Val::Num(rest[..vend].trim().parse().ok()?)));
            rest = &rest[vend..];
        }
    }
}

fn get_num(fields: &[(&str, Val<'_>)], key: &str) -> Option<i128> {
    fields.iter().find_map(|(k, v)| match v {
        Val::Num(n) if *k == key => Some(*n),
        _ => None,
    })
}

fn get_str<'a>(fields: &[(&'a str, Val<'a>)], key: &str) -> Option<&'a str> {
    fields.iter().find_map(|(k, v)| match v {
        Val::Str(s) if *k == key => Some(*s),
        _ => None,
    })
}

fn kind_from_str(s: &str) -> Option<EventKind> {
    Some(match s {
        "post_send" => EventKind::PostSend,
        "post_recv" => EventKind::PostRecv,
        "match" => EventKind::Match,
        "frag_packed" => EventKind::FragPacked,
        "frag_unpacked" => EventKind::FragUnpacked,
        "wire_modeled" => EventKind::WireModeled,
        "complete" => EventKind::Complete,
        "error" => EventKind::Error,
        _ => return None,
    })
}

fn method_from_str(s: &str) -> Option<Method> {
    Some(match s {
        "unknown" => Method::Unknown,
        "eager" => Method::Eager,
        "rendezvous" => Method::Rendezvous,
        "pipelined" => Method::Pipelined,
        _ => return None,
    })
}

/// One parsed event line from a dump (field-for-field the JSONL object).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Lifecycle step.
    pub kind: EventKind,
    /// Send-side transfer id, or receive-post id for `post_recv` events.
    pub id: u64,
    /// Timestamp, ns since the process trace epoch.
    pub t_ns: u64,
    /// Duration (fragment callbacks, modeled wire time); 0 otherwise.
    pub dur_ns: u64,
    /// Sender rank (-1 for `ANY_SOURCE` receive posts).
    pub src: i64,
    /// Receiver rank.
    pub dst: i64,
    /// Message tag (wildcards are negative).
    pub tag: i64,
    /// Payload bytes.
    pub bytes: u64,
    /// Transfer protocol, as decided at post/match time.
    pub method: Method,
    /// Kind-specific extra (receive-post id on `match`, segment offset on
    /// fragments, error code on `error`).
    pub aux: u64,
    /// Lamport clock of the recording rank at the event (0 = unstamped,
    /// including every event of a v1 dump).
    pub lc: u64,
    /// Causal parent: the sender's clock carried in the transfer header
    /// (receive-side events only; 0 = none).
    pub parent: u64,
}

/// The `flight_meta` header line of a dump.
#[derive(Debug, Clone, Copy, Default)]
pub struct DumpMeta {
    /// Dump format version.
    pub version: u64,
    /// Event count the writer claims for the body.
    pub events: u64,
    /// Events lost to ring overflow before the dump was taken.
    pub overflowed: u64,
    /// Tracing-layer drops (spans/counters — context, not flight events).
    pub trace_dropped: u64,
}

/// A parsed dump file: header metadata plus events in file order.
#[derive(Debug, Default)]
pub struct Dump {
    /// Header metadata (`None` if the dump has no `flight_meta` line).
    pub meta: Option<DumpMeta>,
    /// All events, in the writer's (timestamp, id) order.
    pub events: Vec<Event>,
    /// Lines that failed to parse (corruption, a truncated tail from a
    /// crashed writer). Carried into [`Analysis::malformed`] so the
    /// exit-2 contract fires, without losing the readable remainder.
    pub bad_lines: Vec<String>,
}

/// Parse dump text. Unparseable non-empty lines are recorded in
/// [`Dump::bad_lines`] — corruption is loud (the analyzer reports it and
/// `mpicd-inspect` exits 2) but does not hide the readable remainder of a
/// partially-written dump. Only a dump with corrupt lines and *no* valid
/// events at all is rejected outright: that is not a flight dump.
pub fn parse_dump(text: &str) -> Result<Dump, String> {
    let mut dump = Dump::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, lineno + 1) {
            Ok(Line::Meta(meta)) => dump.meta = Some(meta),
            Ok(Line::Event(e)) => dump.events.push(e),
            Err(reason) => dump.bad_lines.push(reason),
        }
    }
    if dump.events.is_empty() && dump.meta.is_none() && !dump.bad_lines.is_empty() {
        return Err(format!(
            "no valid flight events ({}; first: {})",
            match dump.bad_lines.len() {
                1 => "1 unreadable line".to_string(),
                n => format!("{n} unreadable lines"),
            },
            dump.bad_lines[0]
        ));
    }
    Ok(dump)
}

enum Line {
    Meta(DumpMeta),
    Event(Event),
}

fn parse_line(line: &str, lineno: usize) -> Result<Line, String> {
    let fields =
        parse_flat_object(line).ok_or_else(|| format!("line {lineno}: not a flat JSON object"))?;
    let kind =
        get_str(&fields, "kind").ok_or_else(|| format!("line {lineno}: missing \"kind\""))?;
    if kind == "flight_meta" {
        return Ok(Line::Meta(DumpMeta {
            version: get_num(&fields, "version").unwrap_or(0) as u64,
            events: get_num(&fields, "events").unwrap_or(0) as u64,
            overflowed: get_num(&fields, "overflowed").unwrap_or(0) as u64,
            trace_dropped: get_num(&fields, "trace_dropped").unwrap_or(0) as u64,
        }));
    }
    let kind =
        kind_from_str(kind).ok_or_else(|| format!("line {lineno}: unknown kind \"{kind}\""))?;
    let num = |key: &str| {
        get_num(&fields, key).ok_or_else(|| format!("line {lineno}: missing \"{key}\""))
    };
    let method = get_str(&fields, "method")
        .and_then(method_from_str)
        .ok_or_else(|| format!("line {lineno}: bad \"method\""))?;
    Ok(Line::Event(Event {
        kind,
        id: num("id")? as u64,
        t_ns: num("t_ns")? as u64,
        dur_ns: num("dur_ns")? as u64,
        src: num("src")? as i64,
        dst: num("dst")? as i64,
        tag: num("tag")? as i64,
        bytes: num("bytes")? as u64,
        method,
        aux: num("aux")? as u64,
        // Absent from v1 dumps; default 0 keeps them readable.
        lc: get_num(&fields, "lc").unwrap_or(0) as u64,
        parent: get_num(&fields, "parent").unwrap_or(0) as u64,
    }))
}

/// Read and parse a dump file.
pub fn read_dump(path: &Path) -> Result<Dump, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_dump(&text)
}

/// Id-namespace shift used when merging multiple dumps: dump `i`'s ids
/// become `(i + 1) << 48 | id`, so per-process sequential ids from
/// different processes never collide.
pub const MERGE_ID_SHIFT: u32 = 48;

/// Merge per-process dumps (e.g. one JSONL file per rank) into one.
///
/// Transfer ids are process-local sequence numbers, so each dump's ids are
/// remapped into a disjoint namespace (see [`MERGE_ID_SHIFT`]). The only
/// cross-referencing `aux` field — the receive-post id on `match` events —
/// is remapped with them; fragment offsets and error codes are untouched.
/// Header metadata is summed (version = max). A single dump passes through
/// unmodified.
pub fn merge_dumps(dumps: Vec<Dump>) -> Dump {
    if dumps.len() <= 1 {
        return dumps.into_iter().next().unwrap_or_default();
    }
    let mut out = Dump::default();
    let mut meta: Option<DumpMeta> = None;
    for (i, d) in dumps.into_iter().enumerate() {
        let ns = (i as u64 + 1) << MERGE_ID_SHIFT;
        if let Some(m) = d.meta {
            let acc = meta.get_or_insert(DumpMeta::default());
            acc.version = acc.version.max(m.version);
            acc.events += m.events;
            acc.overflowed += m.overflowed;
            acc.trace_dropped += m.trace_dropped;
        }
        for mut e in d.events {
            e.id |= ns;
            if e.kind == EventKind::Match && e.aux != 0 {
                e.aux |= ns;
            }
            out.events.push(e);
        }
        out.bad_lines
            .extend(d.bad_lines.into_iter().map(|b| format!("dump {i}: {b}")));
    }
    out.meta = meta;
    out.events.sort_by_key(|e| (e.t_ns, e.id));
    out
}

// ---- timeline reconstruction -------------------------------------------------

/// Per-phase latency attribution for one transfer, in nanoseconds.
///
/// `wait + pack + unpack + copy == e2e` exactly on the serial engine (copy
/// is the residual); `wire` is simulated time that overlaps the others and
/// is reported alongside, not summed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Phases {
    /// First post → match: time spent waiting for the partner to arrive.
    pub wait: u64,
    /// Sum of pack-callback durations.
    pub pack: u64,
    /// Modeled wire time (simulated, not CPU time).
    pub wire: u64,
    /// Sum of unpack-callback durations.
    pub unpack: u64,
    /// Active time outside the pack/unpack callbacks: staging memcpys,
    /// matching bookkeeping, pipeline scheduling.
    pub copy: u64,
    /// First post → terminal event.
    pub e2e: u64,
}

/// One reconstructed transfer timeline, keyed by the send-side id.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Send-side transfer id (the canonical one).
    pub id: u64,
    /// Receive-post id joined via the match event's `aux` (0 when the
    /// recorder was off at receive-post time).
    pub recv_id: u64,
    /// Sender rank.
    pub src: i64,
    /// Receiver rank.
    pub dst: i64,
    /// Message tag.
    pub tag: i64,
    /// Payload bytes.
    pub bytes: u64,
    /// Transfer protocol.
    pub method: Method,
    /// Send-post timestamp.
    pub post_send_ns: u64,
    /// Receive-post timestamp, when the join succeeded.
    pub post_recv_ns: Option<u64>,
    /// Match timestamp.
    pub match_ns: u64,
    /// Terminal timestamp (complete, or the error event).
    pub end_ns: u64,
    /// Error code when the transfer failed (fabric `flight_code`, or 100
    /// for a core-layer finish failure).
    pub error: Option<u64>,
    /// Pack fragments observed.
    pub frags_packed: usize,
    /// Unpack fragments observed.
    pub frags_unpacked: usize,
    /// Σ pack-callback durations.
    pub pack_ns: u64,
    /// Σ unpack-callback durations.
    pub unpack_ns: u64,
    /// Modeled wire duration.
    pub wire_ns: u64,
}

impl Timeline {
    /// Timestamp of the earliest post (send, or the joined receive).
    pub fn first_post_ns(&self) -> u64 {
        match self.post_recv_ns {
            Some(r) => r.min(self.post_send_ns),
            None => self.post_send_ns,
        }
    }

    /// Attribute this transfer's latency to phases.
    pub fn phases(&self) -> Phases {
        let first = self.first_post_ns();
        let active = self.end_ns.saturating_sub(self.match_ns);
        Phases {
            wait: self.match_ns.saturating_sub(first),
            pack: self.pack_ns,
            wire: self.wire_ns,
            unpack: self.unpack_ns,
            copy: active.saturating_sub(self.pack_ns + self.unpack_ns),
            e2e: self.end_ns.saturating_sub(first),
        }
    }

    /// The wall-clock phase that dominates the end-to-end time (`wire` is
    /// excluded: it is modeled time overlapping the real phases).
    pub fn critical_phase(&self) -> &'static str {
        let p = self.phases();
        [
            ("wait", p.wait),
            ("pack", p.pack),
            ("unpack", p.unpack),
            ("copy", p.copy),
        ]
        .into_iter()
        .max_by_key(|&(_, v)| v)
        .map(|(n, _)| n)
        .unwrap_or("wait")
    }
}

/// The result of reconstructing every timeline in a dump.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Dump header, passed through for the report.
    pub meta: Option<DumpMeta>,
    /// Matched transfers that reached `complete` cleanly.
    pub completed: Vec<Timeline>,
    /// Matched transfers that ended in (or were followed by) an error.
    pub errored: Vec<Timeline>,
    /// Sends posted but never matched in this dump — normal at shutdown,
    /// not a defect.
    pub pending_sends: usize,
    /// Receives posted but never matched.
    pub pending_recvs: usize,
    /// Unmatched posts that ended in an error event (cancel / shutdown).
    pub failed_posts: usize,
    /// Timelines that could not be reconstructed because the ring
    /// overflowed and dropped their early events (only counted when the
    /// header reports overflow; otherwise these are malformed).
    pub truncated: usize,
    /// Timeline defects, one human-readable reason each. Empty on a
    /// healthy dump — `mpicd-inspect` exits nonzero otherwise.
    pub malformed: Vec<String>,
}

/// Reconstruct and validate every timeline in a dump.
pub fn analyze(dump: &Dump) -> Analysis {
    let mut a = Analysis {
        meta: dump.meta,
        ..Analysis::default()
    };
    // Unreadable dump lines are malformed input by definition.
    a.malformed.extend(dump.bad_lines.iter().cloned());
    // With a reported ring overflow, incomplete timelines are expected
    // (their early events were dropped) and counted as truncated instead
    // of malformed. Internal inconsistencies stay malformed regardless.
    let lossy = dump.meta.is_some_and(|m| m.overflowed > 0);

    let mut by_id: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for e in &dump.events {
        by_id.entry(e.id).or_default().push(e);
    }
    // recv-post id → send id, from each match event's aux.
    let mut joined: BTreeMap<u64, u64> = BTreeMap::new();
    // core-layer finish failures land on the *receive* request's id.
    let mut recv_errors: BTreeMap<u64, u64> = BTreeMap::new();
    for e in &dump.events {
        if e.kind == EventKind::Match && e.aux != 0 {
            joined.insert(e.aux, e.id);
        }
    }
    for (&id, evs) in &by_id {
        if joined.contains_key(&id) {
            if let Some(err) = evs.iter().find(|e| e.kind == EventKind::Error) {
                recv_errors.insert(id, err.aux);
            }
        }
    }

    for (&id, evs) in &by_id {
        let count = |k: EventKind| evs.iter().filter(|e| e.kind == k).count();
        let first = |k: EventKind| evs.iter().find(|e| e.kind == k);
        let n_match = count(EventKind::Match);

        if n_match == 0 {
            if joined.contains_key(&id) {
                // A receive post consumed by some transfer's match event;
                // its timestamp is read from here when that timeline is
                // built. Anything beyond post + finish-error is a defect.
                if count(EventKind::PostRecv) != 1 {
                    a.malformed.push(format!(
                        "id {id}: joined receive post has {} post_recv events",
                        count(EventKind::PostRecv)
                    ));
                } else if evs
                    .iter()
                    .any(|e| !matches!(e.kind, EventKind::PostRecv | EventKind::Error))
                {
                    a.malformed
                        .push(format!("id {id}: unexpected events on a receive post"));
                }
            } else if count(EventKind::PostRecv) > 0 || count(EventKind::PostSend) > 0 {
                if count(EventKind::Error) > 0 {
                    a.failed_posts += 1;
                } else if count(EventKind::PostRecv) > 0 {
                    a.pending_recvs += 1;
                } else {
                    a.pending_sends += 1;
                }
            } else if lossy {
                a.truncated += 1;
            } else {
                a.malformed.push(format!(
                    "id {id}: orphan events with no post or match ({} events)",
                    evs.len()
                ));
            }
            continue;
        }

        // Matched transfer: the id is the send-side id.
        if n_match > 1 {
            a.malformed.push(format!("id {id}: {n_match} match events"));
            continue;
        }
        let m = first(EventKind::Match).unwrap();
        let post = first(EventKind::PostSend);
        if post.is_none() && !lossy {
            a.malformed
                .push(format!("id {id}: matched transfer has no post_send"));
            continue;
        }
        if count(EventKind::PostSend) > 1 {
            a.malformed.push(format!("id {id}: duplicate post_send"));
            continue;
        }
        if count(EventKind::PostRecv) > 0 {
            a.malformed
                .push(format!("id {id}: id used as both send and receive post"));
            continue;
        }
        let complete = first(EventKind::Complete);
        if count(EventKind::Complete) > 1 {
            a.malformed.push(format!("id {id}: duplicate complete"));
            continue;
        }
        if count(EventKind::WireModeled) > 1 {
            a.malformed.push(format!("id {id}: duplicate wire_modeled"));
            continue;
        }
        let error = first(EventKind::Error);
        let end = match (complete, error) {
            (Some(c), _) => c,
            (None, Some(e)) => e,
            (None, None) => {
                if lossy {
                    a.truncated += 1;
                } else {
                    a.malformed.push(format!(
                        "id {id}: matched transfer has no complete or error"
                    ));
                }
                continue;
            }
        };

        // Join the receive post via the match event's aux.
        let recv_id = m.aux;
        let recv_post = if recv_id == 0 {
            None
        } else {
            match by_id
                .get(&recv_id)
                .and_then(|r| r.iter().find(|e| e.kind == EventKind::PostRecv))
            {
                Some(p) => Some(p.t_ns),
                None => {
                    if lossy {
                        None
                    } else {
                        a.malformed.push(format!(
                            "id {id}: match references missing receive post {recv_id}"
                        ));
                        continue;
                    }
                }
            }
        };

        let mut t = Timeline {
            id,
            recv_id,
            src: m.src,
            dst: m.dst,
            tag: m.tag,
            bytes: m.bytes,
            method: m.method,
            post_send_ns: post.map_or(m.t_ns, |p| p.t_ns),
            post_recv_ns: recv_post,
            match_ns: m.t_ns,
            end_ns: end.t_ns,
            error: error
                .map(|e| e.aux)
                .or_else(|| recv_errors.get(&recv_id).copied()),
            frags_packed: 0,
            frags_unpacked: 0,
            pack_ns: 0,
            unpack_ns: 0,
            wire_ns: first(EventKind::WireModeled).map_or(0, |w| w.dur_ns),
        };

        // Ordering invariants: posts precede the match, the terminal event
        // follows it, and every fragment lies inside [match, terminal].
        let mut bad = false;
        if post.is_some_and(|p| p.t_ns > t.match_ns) || recv_post.is_some_and(|r| r > t.match_ns) {
            a.malformed
                .push(format!("id {id}: post after match (clock went backwards?)"));
            bad = true;
        }
        if t.end_ns < t.match_ns {
            a.malformed
                .push(format!("id {id}: terminal event before match"));
            bad = true;
        }
        for e in evs {
            match e.kind {
                EventKind::FragPacked => {
                    t.frags_packed += 1;
                    t.pack_ns += e.dur_ns;
                }
                EventKind::FragUnpacked => {
                    t.frags_unpacked += 1;
                    t.unpack_ns += e.dur_ns;
                }
                _ => continue,
            }
            if e.t_ns < t.match_ns || e.t_ns > t.end_ns {
                a.malformed.push(format!(
                    "id {id}: fragment at {} outside [{}, {}]",
                    e.t_ns, t.match_ns, t.end_ns
                ));
                bad = true;
            }
        }
        if bad {
            continue;
        }
        if t.error.is_some() {
            a.errored.push(t);
        } else {
            a.completed.push(t);
        }
    }
    a
}

// ---- report ------------------------------------------------------------------

/// Rendering knobs for [`render_report`].
#[derive(Debug, Clone, Copy)]
pub struct ReportOptions {
    /// How many of the slowest transfers to list individually.
    pub top: usize,
    /// Straggler threshold: flag transfers slower than this multiple of
    /// their (method, size-class) median end-to-end time.
    pub straggler_factor: f64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self {
            top: 10,
            straggler_factor: 4.0,
        }
    }
}

/// Nearest-rank percentile over a sorted slice (0 on empty input).
fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Human-friendly nanosecond label.
fn fmt_ns(ns: u64) -> String {
    if ns >= 10_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Size class of a payload: log2 bucket, so 1KiB and 1.5KiB compare while
/// 1KiB and 1MiB do not.
fn size_class(bytes: u64) -> u32 {
    bytes.max(1).ilog2()
}

/// Render the human report. Contains the literal line
/// `malformed timelines: N` — CI greps for the `0` case.
pub fn render_report(a: &Analysis, opts: &ReportOptions, source: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "flight recorder report — {source}");
    if let Some(m) = a.meta {
        let _ = writeln!(
            out,
            "events: {} (dump v{}), ring overflow: {} lost, trace drops: {}",
            m.events, m.version, m.overflowed, m.trace_dropped
        );
        if m.overflowed > 0 {
            let _ = writeln!(
                out,
                "WARNING: flight ring overflowed — {} events lost; timelines may be \
                 truncated. Raise MPICD_FLIGHT_CAP.",
                m.overflowed
            );
        }
    } else {
        let _ = writeln!(out, "events: no flight_meta header (legacy dump?)");
    }
    let _ = writeln!(
        out,
        "transfers: {} completed, {} errored, {} pending sends, {} pending recvs, \
         {} failed posts, {} truncated",
        a.completed.len(),
        a.errored.len(),
        a.pending_sends,
        a.pending_recvs,
        a.failed_posts,
        a.truncated
    );
    let _ = writeln!(out, "malformed timelines: {}", a.malformed.len());
    for reason in a.malformed.iter().take(20) {
        let _ = writeln!(out, "  ! {reason}");
    }
    if a.malformed.len() > 20 {
        let _ = writeln!(out, "  ! ... and {} more", a.malformed.len() - 20);
    }
    for t in &a.errored {
        let _ = writeln!(
            out,
            "error: id {} {}->{} tag {} code {}",
            t.id,
            t.src,
            t.dst,
            t.tag,
            t.error.unwrap_or(0)
        );
    }

    // Per-method phase percentiles.
    let _ = writeln!(out, "\nphase latency by method [p50 / p99 / max]:");
    const PHASES: [&str; 6] = ["e2e", "wait", "pack", "wire", "unpack", "copy"];
    for method in [
        Method::Eager,
        Method::Rendezvous,
        Method::Pipelined,
        Method::Unknown,
    ] {
        let of_method: Vec<&Timeline> = a.completed.iter().filter(|t| t.method == method).collect();
        if of_method.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  {} (n={}):", method.as_str(), of_method.len());
        for phase in PHASES {
            let mut vals: Vec<u64> = of_method
                .iter()
                .map(|t| {
                    let p = t.phases();
                    match phase {
                        "e2e" => p.e2e,
                        "wait" => p.wait,
                        "pack" => p.pack,
                        "wire" => p.wire,
                        "unpack" => p.unpack,
                        _ => p.copy,
                    }
                })
                .collect();
            vals.sort_unstable();
            let _ = writeln!(
                out,
                "    {:<7} {:>10} / {:>10} / {:>10}",
                phase,
                fmt_ns(pct(&vals, 0.50)),
                fmt_ns(pct(&vals, 0.99)),
                fmt_ns(*vals.last().unwrap())
            );
        }
    }

    // Top-N slowest, with the per-phase breakdown and critical path.
    let mut by_e2e: Vec<&Timeline> = a.completed.iter().collect();
    by_e2e.sort_by_key(|t| std::cmp::Reverse(t.phases().e2e));
    if !by_e2e.is_empty() && opts.top > 0 {
        let _ = writeln!(
            out,
            "\ntop {} slowest transfers (by e2e):",
            opts.top.min(by_e2e.len())
        );
        for (i, t) in by_e2e.iter().take(opts.top).enumerate() {
            let p = t.phases();
            let _ = writeln!(
                out,
                "  #{} id {} {}->{} tag {} {}B {}: e2e {} = wait {} + pack {} + unpack {} \
                 + copy {} (wire {}, {}p/{}u frags)  critical: {}",
                i + 1,
                t.id,
                t.src,
                t.dst,
                t.tag,
                t.bytes,
                t.method.as_str(),
                fmt_ns(p.e2e),
                fmt_ns(p.wait),
                fmt_ns(p.pack),
                fmt_ns(p.unpack),
                fmt_ns(p.copy),
                fmt_ns(p.wire),
                t.frags_packed,
                t.frags_unpacked,
                t.critical_phase()
            );
        }
    }

    // Stragglers: e2e far above the median of their (method, size-class)
    // peers, only in classes with enough samples to trust the median.
    let mut classes: BTreeMap<(u8, u32), Vec<u64>> = BTreeMap::new();
    for t in &a.completed {
        classes
            .entry((t.method as u8, size_class(t.bytes)))
            .or_default()
            .push(t.phases().e2e);
    }
    for vals in classes.values_mut() {
        vals.sort_unstable();
    }
    let _ = writeln!(
        out,
        "\nstragglers (> {:.1}x class median e2e, classes with >= 8 samples):",
        opts.straggler_factor
    );
    let mut stragglers = 0usize;
    for t in &by_e2e {
        let class = (t.method as u8, size_class(t.bytes));
        let vals = &classes[&class];
        if vals.len() < 8 {
            continue;
        }
        let median = pct(vals, 0.50);
        let e2e = t.phases().e2e;
        if median > 0 && e2e as f64 > opts.straggler_factor * median as f64 {
            stragglers += 1;
            if stragglers <= 20 {
                let _ = writeln!(
                    out,
                    "  id {} {} {}-class: e2e {} vs median {} ({:.1}x), critical: {}",
                    t.id,
                    t.method.as_str(),
                    size_label(1usize << class.1),
                    fmt_ns(e2e),
                    fmt_ns(median),
                    e2e as f64 / median as f64,
                    t.critical_phase()
                );
            }
        }
    }
    if stragglers == 0 {
        let _ = writeln!(out, "  (none)");
    } else if stragglers > 20 {
        let _ = writeln!(out, "  ... and {} more", stragglers - 20);
    }
    out
}

// ---- JSON output -------------------------------------------------------------

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// enough for the reason strings this module generates.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the analysis as one machine-readable JSON object (the `--json`
/// flag of `mpicd-inspect`): summary counts, malformed reasons, and every
/// reconstructed timeline with its phase attribution.
pub fn render_json(a: &Analysis, source: &str) -> String {
    let mut out = String::new();
    out.push_str("{\"source\":\"");
    out.push_str(&json_escape(source));
    out.push_str("\",\"meta\":");
    match a.meta {
        Some(m) => {
            let _ = write!(
                out,
                "{{\"version\":{},\"events\":{},\"overflowed\":{},\"trace_dropped\":{}}}",
                m.version, m.events, m.overflowed, m.trace_dropped
            );
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"summary\":{{\"completed\":{},\"errored\":{},\"pending_sends\":{},\
         \"pending_recvs\":{},\"failed_posts\":{},\"truncated\":{},\"malformed\":{}}}",
        a.completed.len(),
        a.errored.len(),
        a.pending_sends,
        a.pending_recvs,
        a.failed_posts,
        a.truncated,
        a.malformed.len()
    );
    out.push_str(",\"malformed\":[");
    for (i, m) in a.malformed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(m));
        out.push('"');
    }
    out.push_str("],\"transfers\":[");
    for (i, t) in a.completed.iter().chain(a.errored.iter()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let p = t.phases();
        let _ = write!(
            out,
            "{{\"id\":{},\"recv_id\":{},\"src\":{},\"dst\":{},\"tag\":{},\"bytes\":{},\
             \"method\":\"{}\",\"post_send_ns\":{},\"post_recv_ns\":{},\"match_ns\":{},\
             \"end_ns\":{},\"error\":{},\"frags_packed\":{},\"frags_unpacked\":{},\
             \"phases\":{{\"wait\":{},\"pack\":{},\"wire\":{},\"unpack\":{},\"copy\":{},\
             \"e2e\":{}}}}}",
            t.id,
            t.recv_id,
            t.src,
            t.dst,
            t.tag,
            t.bytes,
            t.method.as_str(),
            t.post_send_ns,
            t.post_recv_ns.map_or("null".to_string(), |v| v.to_string()),
            t.match_ns,
            t.end_ns,
            t.error.map_or("null".to_string(), |v| v.to_string()),
            t.frags_packed,
            t.frags_unpacked,
            p.wait,
            p.pack,
            p.wire,
            p.unpack,
            p.copy,
            p.e2e
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(kind: &str, id: u64, t: u64, dur: u64, bytes: u64, method: &str, aux: u64) -> String {
        format!(
            "{{\"kind\":\"{kind}\",\"id\":{id},\"t_ns\":{t},\"dur_ns\":{dur},\"src\":0,\
             \"dst\":1,\"tag\":7,\"bytes\":{bytes},\"method\":\"{method}\",\"aux\":{aux}}}"
        )
    }

    fn meta(events: u64, overflowed: u64) -> String {
        format!(
            "{{\"kind\":\"flight_meta\",\"version\":1,\"events\":{events},\
             \"overflowed\":{overflowed},\"trace_dropped\":0}}"
        )
    }

    /// One healthy pipelined transfer: posts at 100/200, match at 300,
    /// one pack frag and one unpack frag, complete at 1000.
    fn healthy() -> String {
        [
            meta(7, 0),
            line("post_recv", 2, 100, 0, 64, "unknown", 0),
            line("post_send", 1, 200, 0, 64, "pipelined", 0),
            line("match", 1, 300, 0, 64, "pipelined", 2),
            line("frag_packed", 1, 400, 50, 64, "unknown", 0),
            line("frag_unpacked", 1, 500, 80, 64, "unknown", 0),
            line("wire_modeled", 1, 300, 900, 64, "unknown", 0),
            line("complete", 1, 1000, 0, 64, "pipelined", 0),
        ]
        .join("\n")
    }

    #[test]
    fn parses_and_reconstructs_a_healthy_transfer() {
        let dump = parse_dump(&healthy()).unwrap();
        assert_eq!(dump.meta.unwrap().events, 7);
        assert_eq!(dump.events.len(), 7);

        let a = analyze(&dump);
        assert!(a.malformed.is_empty(), "{:?}", a.malformed);
        assert_eq!(a.completed.len(), 1);
        let t = &a.completed[0];
        assert_eq!((t.id, t.recv_id), (1, 2));
        assert_eq!(t.post_recv_ns, Some(100));
        assert_eq!(t.method, Method::Pipelined);
        let p = t.phases();
        assert_eq!(p.e2e, 900); // 1000 - min(100, 200)
        assert_eq!(p.wait, 200); // 300 - 100
        assert_eq!(p.pack, 50);
        assert_eq!(p.unpack, 80);
        assert_eq!(p.wire, 900);
        assert_eq!(p.copy, 700 - 130); // active 700 minus callbacks
        assert_eq!(p.wait + p.pack + p.unpack + p.copy, p.e2e);
        assert_eq!(t.critical_phase(), "copy");
    }

    #[test]
    fn pending_and_failed_posts_are_not_malformed() {
        let text = [
            line("post_send", 1, 10, 0, 8, "eager", 0),
            line("post_recv", 2, 20, 0, 8, "unknown", 0),
            line("post_send", 3, 30, 0, 8, "eager", 0),
            line("error", 3, 40, 0, 8, "unknown", 9),
        ]
        .join("\n");
        let a = analyze(&parse_dump(&text).unwrap());
        assert!(a.malformed.is_empty(), "{:?}", a.malformed);
        assert_eq!(a.pending_sends, 1);
        assert_eq!(a.pending_recvs, 1);
        assert_eq!(a.failed_posts, 1);
        assert!(a.completed.is_empty());
    }

    #[test]
    fn missing_terminal_and_orphans_are_malformed() {
        let text = [
            line("post_send", 1, 10, 0, 8, "eager", 0),
            line("match", 1, 20, 0, 8, "eager", 0),
            line("frag_packed", 9, 30, 5, 8, "unknown", 0),
        ]
        .join("\n");
        let a = analyze(&parse_dump(&text).unwrap());
        assert_eq!(a.malformed.len(), 2, "{:?}", a.malformed);
        assert!(a.malformed.iter().any(|m| m.contains("no complete")));
        assert!(a.malformed.iter().any(|m| m.contains("orphan")));
        let report = render_report(&a, &ReportOptions::default(), "test");
        assert!(report.contains("malformed timelines: 2"));
    }

    #[test]
    fn overflow_downgrades_missing_events_to_truncated() {
        let text = [
            meta(2, 100),
            line("match", 1, 20, 0, 8, "eager", 0),
            line("complete", 1, 30, 0, 8, "eager", 0),
            line("frag_packed", 9, 30, 5, 8, "unknown", 0),
        ]
        .join("\n");
        let a = analyze(&parse_dump(&text).unwrap());
        assert!(a.malformed.is_empty(), "{:?}", a.malformed);
        // The matched transfer survives (post time falls back to match
        // time); the orphan fragment is counted as truncated.
        assert_eq!(a.completed.len(), 1);
        assert_eq!(a.truncated, 1);
        let report = render_report(&a, &ReportOptions::default(), "test");
        assert!(report.contains("WARNING"));
        assert!(report.contains("malformed timelines: 0"));
    }

    #[test]
    fn ordering_violations_are_malformed() {
        let text = [
            line("post_send", 1, 50, 0, 8, "eager", 0),
            line("match", 1, 20, 0, 8, "eager", 0),
            line("complete", 1, 30, 0, 8, "eager", 0),
        ]
        .join("\n");
        let a = analyze(&parse_dump(&text).unwrap());
        assert!(a.malformed.iter().any(|m| m.contains("post after match")));
        assert!(a.completed.is_empty());
    }

    #[test]
    fn finish_errors_on_the_recv_id_mark_the_transfer_errored() {
        let text = [
            line("post_recv", 2, 10, 0, 8, "unknown", 0),
            line("post_send", 1, 20, 0, 8, "eager", 0),
            line("match", 1, 30, 0, 8, "eager", 2),
            line("complete", 1, 40, 0, 8, "eager", 0),
            line("error", 2, 50, 0, 8, "unknown", 100),
        ]
        .join("\n");
        let a = analyze(&parse_dump(&text).unwrap());
        assert!(a.malformed.is_empty(), "{:?}", a.malformed);
        assert_eq!(a.errored.len(), 1);
        assert_eq!(a.errored[0].error, Some(100));
    }

    #[test]
    fn malformed_lines_are_parse_errors() {
        assert!(parse_dump("{\"kind\":\"post_send\"").is_err());
        assert!(parse_dump("{\"kind\":\"warp_drive\",\"id\":1}").is_err());
        assert!(parse_dump("not json at all").is_err());
        assert!(parse_dump("").unwrap().events.is_empty());
    }

    #[test]
    fn report_lists_slowest_and_stragglers() {
        let mut lines = vec![meta(0, 0)];
        // 9 fast eager transfers and 1 straggler in the same size class.
        for i in 0..10u64 {
            let base = i * 1000;
            let dur = if i == 9 { 500 } else { 10 };
            lines.push(line("post_send", i + 1, base, 0, 100, "eager", 0));
            lines.push(line("match", i + 1, base + 5, 0, 100, "eager", 0));
            lines.push(line("complete", i + 1, base + 5 + dur, 0, 100, "eager", 0));
        }
        let a = analyze(&parse_dump(&lines.join("\n")).unwrap());
        assert_eq!(a.completed.len(), 10);
        let report = render_report(
            &a,
            &ReportOptions {
                top: 3,
                straggler_factor: 4.0,
            },
            "synthetic",
        );
        assert!(report.contains("top 3 slowest"));
        assert!(report.contains("id 10"), "{report}");
        assert!(report.contains("stragglers"));
        assert!(
            report.contains("33.7x") || !report.contains("(none)"),
            "{report}"
        );
        assert!(report.contains("malformed timelines: 0"));
    }

    #[test]
    fn causal_fields_parse_and_default() {
        let text = "{\"kind\":\"match\",\"id\":1,\"t_ns\":5,\"dur_ns\":0,\"src\":0,\"dst\":1,\
                    \"tag\":7,\"bytes\":8,\"method\":\"eager\",\"aux\":2,\"lc\":9,\"parent\":4}";
        let d = parse_dump(text).unwrap();
        assert_eq!((d.events[0].lc, d.events[0].parent), (9, 4));
        // v1 dumps (no causal fields) stay readable with lc = parent = 0.
        let d1 = parse_dump(&healthy()).unwrap();
        assert!(d1.events.iter().all(|e| e.lc == 0 && e.parent == 0));
    }

    #[test]
    fn merge_namespaces_ids_and_remaps_match_aux() {
        let d1 = parse_dump(&healthy()).unwrap();
        let d2 = parse_dump(&healthy()).unwrap();
        let merged = merge_dumps(vec![d1, d2]);
        assert_eq!(merged.meta.unwrap().events, 14, "meta counters summed");
        let a = analyze(&merged);
        assert!(a.malformed.is_empty(), "{:?}", a.malformed);
        assert_eq!(a.completed.len(), 2);
        let ids: Vec<u64> = a.completed.iter().map(|t| t.id).collect();
        assert!(ids.contains(&((1u64 << MERGE_ID_SHIFT) | 1)));
        assert!(ids.contains(&((2u64 << MERGE_ID_SHIFT) | 1)));
        // The recv-post join survived the remap in both namespaces.
        assert!(a
            .completed
            .iter()
            .all(|t| t.recv_id & ((1 << MERGE_ID_SHIFT) - 1) == 2));
    }

    #[test]
    fn json_output_is_well_formed_and_complete() {
        let a = analyze(&parse_dump(&healthy()).unwrap());
        let j = render_json(&a, "x\"y");
        assert!(j.contains("\"source\":\"x\\\"y\""));
        assert!(j.contains("\"completed\":1"));
        assert!(j.contains("\"malformed\":0"));
        assert!(j.contains("\"e2e\":900"));
        assert!(j.contains("\"post_recv_ns\":100"));
        assert_eq!(json_escape("a\\b\nc"), "a\\\\b\\u000ac");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(pct(&v, 0.50), 6);
        assert_eq!(pct(&v, 0.99), 10);
        assert_eq!(pct(&[], 0.5), 0);
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(25_000), "25.0us");
        assert_eq!(fmt_ns(25_000_000), "25.0ms");
    }
}
