#![warn(missing_docs)]
#![deny(unsafe_code)]
//! # mpicd-bench — the paper's evaluation harness
//!
//! One binary per figure/table of the paper (see `src/bin/`); this library
//! holds the shared machinery:
//!
//! * [`harness`] — OSU-style latency/bandwidth pingpong measurement with
//!   warmup, repetitions and the paper's 4-run averaging (error bars);
//!   combines measured wall time with the fabric's modeled wire time.
//! * [`methods`] — the Rust transfer methods of §V-A (custom /
//!   manual-pack / derived-datatype / raw bytes) over the paper's types.
//! * [`pickle_run`] — the threaded pingpong driver for the Python-style
//!   strategies of §V-B.
//! * [`ddt`] — the DDTBench method runners of §V-C.
//! * [`report`] — aligned table output (one table per figure).
//! * [`phase`] — per-phase breakdown (pack/unpack CPU, wire, copies)
//!   snapshotted from the `mpicd-obs` registry per measured cell.
//! * [`flight`] — flight-recorder dump analysis behind the
//!   `mpicd-inspect` binary: timeline reconstruction, per-transfer
//!   latency attribution, and the straggler report.
//! * [`critical`] — cross-rank happens-before DAG over the reconstructed
//!   timelines and the critical-path / slack / per-rank-blame report
//!   (`mpicd-inspect critical-path`).
//! * [`regress`] — `BENCH_*.json` parsing and the p50/p99 regression
//!   comparator behind the `bench_compare` CI gate.
//! * [`soak`] — the record-stream soak harness behind `mpicd-soak`:
//!   client ranks streaming `Register` batches to aggregators under live
//!   telemetry, with the freelist zero-growth and sampled-flight
//!   well-formedness verdicts CI gates on.
//! * [`healthview`] — health-snapshot stream (`MPICD_HEALTH_MS`) parsing
//!   and rendering behind `mpicd-inspect health`.
//!
//! All binaries accept `MPICD_BENCH_QUICK=1` to run a fast smoke sweep
//! (used by tests) and print the same table shape as the full run. With
//! `MPICD_TRACE=1` they additionally write a Chrome trace (see
//! [`obs_finish`]) and populate the CPU columns of the phase tables.

pub mod critical;
pub mod ddt;
pub mod flight;
pub mod harness;
pub mod healthview;
pub mod methods;
pub mod phase;
pub mod pickle_run;
pub mod regress;
pub mod report;
pub mod soak;

pub use harness::{Config, Sample};
pub use phase::{PhaseProbe, PhaseTable, Phases};
pub use report::Table;

/// End-of-run observability flush, called by every figure binary: when
/// tracing is enabled this writes the Chrome trace file and prints the
/// metric summary to stderr; when disabled it does nothing.
pub fn obs_finish() {
    if let Some(path) = mpicd_obs::flush() {
        eprintln!("wrote Chrome trace to {}", path.display());
    }
}

/// Write a table as `BENCH_<stem>.json` when `MPICD_BENCH_JSON` is set
/// (to a directory path, or `1` for the current directory). CI sets this
/// and uploads the emitted files as a workflow artifact; locally it is a
/// no-op unless asked for. Returns the path written, if any.
pub fn emit_json(stem: &str, table: &Table) -> Option<std::path::PathBuf> {
    let dest = std::env::var("MPICD_BENCH_JSON").ok()?;
    if dest.is_empty() || dest == "0" {
        return None;
    }
    let dir = if dest == "1" {
        std::path::PathBuf::from(".")
    } else {
        std::path::PathBuf::from(dest)
    };
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("BENCH_{stem}.json"));
    match std::fs::write(&path, table.render_json()) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            None
        }
    }
}

/// Standard power-of-two size sweep `[lo, hi]` (bytes).
pub fn size_sweep(lo: usize, hi: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut s = lo;
    while s <= hi {
        v.push(s);
        s *= 2;
    }
    v
}

/// Whether quick (smoke-test) mode is enabled.
pub fn quick_mode() -> bool {
    std::env::var("MPICD_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_powers_of_two() {
        assert_eq!(size_sweep(64, 512), vec![64, 128, 256, 512]);
        assert_eq!(size_sweep(1024, 1024), vec![1024]);
    }
}
