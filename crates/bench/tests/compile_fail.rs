//! Zero-dependency compile-fail harness for `derive_datatype!`'s const
//! layout proofs.
//!
//! Each `.rs` file in `tests/compile_fail/` is compiled with plain `rustc
//! --edition 2021 --crate-type lib` against the already-built `mpicd`
//! rlib (no trybuild, no extra deps). Lines of the form
//!
//! ```text
//! //~ ERROR: <substring>
//! ```
//!
//! pin the expected diagnostics: the case must fail to compile and the
//! compiler's stderr must contain every annotated substring. A case with
//! no annotations is a compile-**pass** control and must build cleanly —
//! this keeps the harness honest (a broken macro that rejects everything
//! would fail the control, not silently "pass" the fail cases).

use std::path::{Path, PathBuf};
use std::process::Command;

/// `target/<profile>/deps` — where this test binary and every rlib live.
fn deps_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    let dir = exe.parent().expect("parent of test binary");
    if dir.file_name().is_some_and(|n| n == "deps") {
        dir.to_path_buf()
    } else {
        dir.join("deps")
    }
}

/// The newest `lib<stem>-<hash>.rlib` in `deps` (stale hashes may linger).
fn newest_rlib(deps: &Path, stem: &str) -> PathBuf {
    let prefix = format!("lib{stem}-");
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in std::fs::read_dir(deps).expect("read deps dir") {
        let path = entry.expect("deps entry").path();
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if !(name.starts_with(&prefix) && name.ends_with(".rlib")) {
            continue;
        }
        let modified = path
            .metadata()
            .and_then(|m| m.modified())
            .expect("rlib mtime");
        if best.as_ref().is_none_or(|(t, _)| modified > *t) {
            best = Some((modified, path));
        }
    }
    best.unwrap_or_else(|| panic!("no lib{stem}-*.rlib in {}", deps.display()))
        .1
}

/// Expected-error substrings annotated in a case file.
fn expected_errors(source: &str) -> Vec<String> {
    source
        .lines()
        .filter_map(|l| l.trim().strip_prefix("//~ ERROR:"))
        .map(|s| s.trim().to_string())
        .collect()
}

#[test]
fn derive_datatype_layout_proofs_are_compile_errors() {
    let deps = deps_dir();
    let rlib = newest_rlib(&deps, "mpicd");
    let cases_dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("compile_fail");
    let out_dir = std::env::temp_dir().join(format!("mpicd-compile-fail-{}", std::process::id()));
    std::fs::create_dir_all(&out_dir).expect("create out dir");

    let mut cases: Vec<PathBuf> = std::fs::read_dir(&cases_dir)
        .expect("compile_fail cases dir")
        .map(|e| e.expect("case entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    cases.sort();
    assert!(
        cases.len() >= 4,
        "expected the pinned case set, found {cases:?}"
    );

    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let mut failures = Vec::new();
    for case in &cases {
        let name = case.file_stem().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(case).expect("read case");
        let expected = expected_errors(&source);

        let output = Command::new(&rustc)
            .arg("--edition")
            .arg("2021")
            .arg("--crate-type")
            .arg("lib")
            .arg("--emit=metadata")
            .arg("--out-dir")
            .arg(&out_dir)
            .arg("--extern")
            .arg(format!("mpicd={}", rlib.display()))
            .arg("-L")
            .arg(format!("dependency={}", deps.display()))
            .arg(case)
            .output()
            .expect("spawn rustc");
        let stderr = String::from_utf8_lossy(&output.stderr);

        if expected.is_empty() {
            if !output.status.success() {
                failures.push(format!(
                    "{name}: compile-pass control failed to build:\n{stderr}"
                ));
            }
            continue;
        }
        if output.status.success() {
            failures.push(format!(
                "{name}: expected a compile error ({expected:?}) but the case built"
            ));
            continue;
        }
        for want in &expected {
            if !stderr.contains(want.as_str()) {
                failures.push(format!(
                    "{name}: diagnostic missing expected substring {want:?}; stderr was:\n{stderr}"
                ));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&out_dir);
    assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
}
