//! `mpicd-inspect` parser robustness: malformed, truncated, and
//! interleaved multi-rank dumps, with the binary's exit-code contract
//! pinned (0 = healthy, 1 = usage/unreadable, 2 = malformed timelines).
//!
//! Corruption is injected with the workspace's seeded xorshift64* PRNG so
//! failures replay exactly.

use mpicd_bench::critical::critical_path;
use mpicd_bench::flight::{analyze, merge_dumps, parse_dump};
use mpicd_bench::regress::{parse_json, Json};
use mpicd_obs::rng::XorShift64Star;
use std::path::PathBuf;
use std::process::Command;

fn event_line(kind: &str, id: u64, t: u64, src: i64, dst: i64, aux: u64) -> String {
    format!(
        "{{\"kind\":\"{kind}\",\"id\":{id},\"t_ns\":{t},\"dur_ns\":0,\"src\":{src},\
         \"dst\":{dst},\"tag\":7,\"bytes\":256,\"method\":\"eager\",\"aux\":{aux}}}"
    )
}

/// One complete transfer: post_recv, post_send, match (joining the recv
/// post via aux), complete.
fn transfer(id: u64, recv_id: u64, t0: u64, src: i64, dst: i64) -> Vec<String> {
    vec![
        event_line("post_recv", recv_id, t0, src, dst, 0),
        event_line("post_send", id, t0 + 10, src, dst, 0),
        event_line("match", id, t0 + 20, src, dst, recv_id),
        event_line("complete", id, t0 + 50, src, dst, 0),
    ]
}

/// A clean single-process dump with `n` transfers.
fn clean_dump(n: u64) -> String {
    let mut lines = vec![format!(
        "{{\"kind\":\"flight_meta\",\"version\":2,\"events\":{},\"overflowed\":0,\
         \"trace_dropped\":0}}",
        n * 4
    )];
    for i in 0..n {
        lines.extend(transfer(2 * i + 1, 2 * i + 2, 100 * (i + 1), 0, 1));
    }
    lines.join("\n")
}

fn write_temp(name: &str, text: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mpicd-inspect-{}-{name}", std::process::id()));
    std::fs::write(&path, text).unwrap();
    path
}

fn run_inspect(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mpicd-inspect"))
        .args(args)
        .output()
        .expect("spawn mpicd-inspect");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

// ---------------------------------------------------------------------------
// Exit-code contract
// ---------------------------------------------------------------------------

#[test]
fn healthy_dump_exits_zero() {
    let path = write_temp("healthy.jsonl", &clean_dump(5));
    let (code, stdout, _) = run_inspect(&[path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, 0);
    assert!(stdout.contains("malformed timelines: 0"), "{stdout}");
}

#[test]
fn missing_file_and_usage_errors_exit_one() {
    let (code, _, stderr) = run_inspect(&["/nonexistent/definitely-not-here.jsonl"]);
    assert_eq!(code, 1, "{stderr}");
    let (code, _, stderr) = run_inspect(&[]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
    let (code, _, stderr) = run_inspect(&["--top", "not-a-number", "x.jsonl"]);
    assert_eq!(code, 1, "{stderr}");
    // A file that is not a flight dump at all is unreadable, not
    // "malformed timelines".
    let path = write_temp("not-a-dump.txt", "hello\nworld\n");
    let (code, _, stderr) = run_inspect(&[path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, 1, "{stderr}");
}

#[test]
fn semantically_malformed_dump_exits_two() {
    // A match with no posts behind it: parses fine, reconstructs wrong.
    let text = event_line("match", 1, 100, 0, 1, 2);
    let path = write_temp("orphan-match.jsonl", &text);
    let (code, stdout, _) = run_inspect(&[path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, 2, "{stdout}");
    assert!(!stdout.contains("malformed timelines: 0"), "{stdout}");
}

#[test]
fn corrupt_line_amid_valid_events_exits_two() {
    let mut text = clean_dump(3);
    text.push_str("\n{\"kind\":\"post_send\",CORRUPTED GARBAGE\n");
    let path = write_temp("corrupt-line.jsonl", &text);
    let (code, stdout, _) = run_inspect(&[path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, 2, "{stdout}");
    assert!(stdout.contains("malformed timelines: 1"), "{stdout}");
}

// ---------------------------------------------------------------------------
// Truncation
// ---------------------------------------------------------------------------

#[test]
fn truncated_tail_is_reported_not_fatal() {
    let full = clean_dump(4);
    // Cut mid-way through the final line, as a crashed writer would.
    let cut = &full[..full.len() - 17];
    let dump = parse_dump(cut).expect("partial dump stays readable");
    assert_eq!(dump.bad_lines.len(), 1, "{:?}", dump.bad_lines);
    let a = analyze(&dump);
    assert!(!a.malformed.is_empty());
    // The untouched transfers all reconstruct.
    assert_eq!(a.completed.len(), 3, "first three transfers intact");
}

#[test]
fn every_truncation_point_parses_or_rejects_cleanly() {
    let full = clean_dump(2);
    for cut in 0..full.len() {
        // Whatever the cut, the parser must not panic, and any Ok dump
        // must analyze without panicking.
        if let Ok(d) = parse_dump(&full[..cut]) {
            let a = analyze(&d);
            let _ = critical_path(&a);
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded corruption
// ---------------------------------------------------------------------------

#[test]
fn seeded_byte_corruption_never_panics() {
    let clean = clean_dump(8);
    let mut rng = XorShift64Star::new(0x5EED);
    for _trial in 0..200 {
        let mut bytes = clean.as_bytes().to_vec();
        for _ in 0..rng.range(1, 8) {
            let pos = rng.range(0, bytes.len());
            bytes[pos] = (rng.next_u64() & 0x7f) as u8; // keep it UTF-8
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        // Contract: parse either rejects the file or yields a dump whose
        // analysis (and critical path) complete without panicking, and
        // corruption never silently inflates the transfer count.
        if let Ok(d) = parse_dump(&text) {
            let a = analyze(&d);
            assert!(
                a.completed.len() + a.errored.len() <= 8,
                "corruption fabricated transfers"
            );
            let _ = critical_path(&a);
        }
    }
}

#[test]
fn seeded_line_swaps_are_order_independent() {
    // The analyzer keys on ids and timestamps, not file order: shuffling
    // whole lines must reconstruct the identical timeline set.
    let clean = clean_dump(6);
    let baseline = analyze(&parse_dump(&clean).unwrap());
    let mut lines: Vec<&str> = clean.lines().collect();
    let mut rng = XorShift64Star::new(42);
    for _ in 0..50 {
        let (i, j) = (rng.range(0, lines.len()), rng.range(0, lines.len()));
        lines.swap(i, j);
        let a = analyze(&parse_dump(&lines.join("\n")).unwrap());
        assert_eq!(a.completed.len(), baseline.completed.len());
        assert!(a.malformed.is_empty(), "{:?}", a.malformed);
    }
}

// ---------------------------------------------------------------------------
// Interleaved multi-rank dumps
// ---------------------------------------------------------------------------

/// Two per-process dumps whose local ids collide (both start at 1) and
/// whose events interleave in time; the second relays to a third rank
/// after the first completes.
fn two_rank_dumps() -> (String, String) {
    let d0 = [transfer(1, 2, 100, 0, 1), transfer(3, 4, 300, 0, 1)]
        .concat()
        .join("\n");
    let d1 = [
        transfer(1, 2, 160, 1, 2), // same local ids as dump 0
        transfer(3, 4, 360, 1, 2),
    ]
    .concat()
    .join("\n");
    (d0, d1)
}

#[test]
fn merged_dumps_keep_colliding_ids_apart() {
    let (d0, d1) = two_rank_dumps();
    let merged = merge_dumps(vec![parse_dump(&d0).unwrap(), parse_dump(&d1).unwrap()]);
    let a = analyze(&merged);
    assert!(a.malformed.is_empty(), "{:?}", a.malformed);
    assert_eq!(a.completed.len(), 4, "two transfers per process");
    // Ids from different processes live in disjoint namespaces.
    let mut ids: Vec<u64> = a.completed.iter().map(|t| t.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 4, "no id collisions after merge");
}

#[test]
fn inspect_merges_multiple_dump_files() {
    let (d0, d1) = two_rank_dumps();
    let p0 = write_temp("rank0.jsonl", &d0);
    let p1 = write_temp("rank1.jsonl", &d1);
    let (code, stdout, _) = run_inspect(&[
        "critical-path",
        "--json",
        p0.to_str().unwrap(),
        p1.to_str().unwrap(),
    ]);
    let _ = std::fs::remove_file(&p0);
    let _ = std::fs::remove_file(&p1);
    assert_eq!(code, 0, "{stdout}");
    let v = parse_json(&stdout).expect("critical-path --json is valid JSON");
    assert_eq!(v.get("malformed").and_then(Json::as_f64), Some(0.0));
    assert_eq!(v.get("transfers").and_then(Json::as_f64), Some(4.0));
    let path = v.get("path").and_then(Json::as_arr).unwrap();
    assert!(!path.is_empty(), "non-empty critical path");
    // Acceptance: the path's phase weights sum to the measured makespan.
    let makespan = v.get("makespan_ns").and_then(Json::as_f64).unwrap();
    let total = v
        .get("phases")
        .and_then(|p| p.get("total"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(makespan > 0.0);
    assert!(
        (total - makespan).abs() <= makespan * 0.10,
        "path total {total} vs makespan {makespan}"
    );
}

#[test]
fn report_json_mode_is_valid_json() {
    let path = write_temp("report-json.jsonl", &clean_dump(3));
    let (code, stdout, _) = run_inspect(&["--json", path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, 0);
    let v = parse_json(&stdout).expect("report --json is valid JSON");
    let transfers = v.get("transfers").and_then(Json::as_arr).unwrap();
    assert_eq!(transfers.len(), 3);
    let summary = v.get("summary").unwrap();
    assert_eq!(summary.get("completed").and_then(Json::as_f64), Some(3.0));
    assert_eq!(summary.get("malformed").and_then(Json::as_f64), Some(0.0));
}
