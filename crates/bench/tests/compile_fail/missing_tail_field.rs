//! Compile-fail: the omitted trailing `pad` field hides entirely inside
//! what the size accounting would take for repr(C) tail padding — only the
//! exhaustiveness proof can catch it.
//~ ERROR: missing field `pad` in initializer

#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Padded {
    pub value: f64,
    pub id: i32,
    pub pad: [u8; 2],
}

mpicd::derive_datatype!(for Padded { value: f64, id: i32 });
