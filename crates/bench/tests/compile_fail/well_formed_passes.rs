//! Compile-pass control: a correct nested declaration (both macro forms)
//! sails through every layout proof. No `//~ ERROR` annotations — the
//! harness asserts this case compiles cleanly.

mpicd::derive_datatype! {
    /// Inner struct with tail padding (f64 + i32 + 4 bytes).
    pub struct Inner {
        rho: f64,
        mat: i32,
    }
}

#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outer {
    pub pos: [f64; 3],
    pub cell: Inner,
    pub id: i64,
}

mpicd::derive_datatype!(for Outer { pos: [f64; 3], cell: Inner, id: i64 });
