//! Compile-fail: the declaration omits field `b`, so the exhaustiveness
//! proof (rebuild from exactly the declared fields) must reject it.
//~ ERROR: missing field `b` in initializer

#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gapped {
    pub a: f64,
    pub b: i32,
    pub c: i32,
}

mpicd::derive_datatype!(for Gapped { a: f64, c: i32 });
