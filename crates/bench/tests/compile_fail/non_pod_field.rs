//! Compile-fail: `bool` is not a DatatypeField (receiving arbitrary bytes
//! into a bool is undefined behaviour), so the POD proof must reject it.
//~ ERROR: DatatypeField` is not satisfied

mpicd::derive_datatype! {
    pub struct Flagged {
        on: bool,
        value: f64,
    }
}
