//! Compile-fail: fields listed out of declaration order, so the repr(C)
//! offset replay disagrees with the real `offset_of!` values.
//~ ERROR: is not at its declared repr(C) offset

#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: i32,
}

mpicd::derive_datatype!(for Point { y: i32, x: f64 });
