//! Workspace conformance lints, run as ordinary tests.
//!
//! Three source-scanning checks that keep code and documentation from
//! drifting apart (PRs 2–4 each added env knobs and obs counters by hand;
//! these tests close that hole):
//!
//! 1. every `MPICD_*` env knob referenced in source appears in the knob
//!    documentation in `DESIGN.md`;
//! 2. every `obs` counter/histogram and telemetry series/sketch name
//!    emitted by production code appears in `docs/ARCHITECTURE.md`;
//! 3. memory-ordering audit: `Ordering::SeqCst` is forbidden outside a
//!    justified allowlist, and the model-checked modules
//!    (`obs::flight`, `fabric::pipeline`) must not import
//!    `std::sync::atomic` directly — atomics there have to come through
//!    the `mpicd_obs::sync::atomic` seam so `--cfg mpicd_check` can swap
//!    in the instrumented primitives.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/bench -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels under the workspace root")
        .to_path_buf()
}

/// Every `.rs` file under the workspace's source trees (skips `target/`).
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = ["crates", "tests", "examples"]
        .iter()
        .map(|d| root.join(d))
        .collect();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    assert!(out.len() > 20, "source walk found too few files: {out:?}");
    out.sort();
    out
}

fn read(p: &Path) -> String {
    std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// All matches of a simple scanner over `text`: `prefix` followed by
/// characters from `set`.
fn scan(text: &str, prefix: &str, set: impl Fn(char) -> bool) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (i, _) in text.match_indices(prefix) {
        let rest = &text[i..];
        let end = rest
            .char_indices()
            .skip(prefix.len())
            .find(|&(_, c)| !set(c))
            .map_or(rest.len(), |(j, _)| j);
        out.insert(rest[..end].to_string());
    }
    out
}

/// Strip the conventional trailing `#[cfg(test)] mod … { … }` block plus
/// doc-comment lines, leaving production code only.
fn production_code(src: &str) -> String {
    let cut = src.find("#[cfg(test)]").unwrap_or(src.len());
    src[..cut]
        .lines()
        .filter(|l| {
            let t = l.trim_start();
            !t.starts_with("//")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn every_env_knob_is_documented_in_design_md() {
    let root = workspace_root();
    let design = read(&root.join("DESIGN.md"));
    let documented = scan(&design, "MPICD_", |c| {
        c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'
    });

    let mut undocumented = BTreeSet::new();
    for f in rust_sources(&root) {
        let src = read(&f);
        for knob in scan(&src, "MPICD_", |c| {
            c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'
        }) {
            // `MPICD_` alone is the scanner's own prefix, not a knob.
            if knob != "MPICD_" && !documented.contains(&knob) {
                undocumented.insert(format!("{knob} (first seen in {})", f.display()));
            }
        }
    }
    assert!(
        undocumented.is_empty(),
        "env knobs read in source but missing from the DESIGN.md knob tables:\n  {}",
        undocumented.into_iter().collect::<Vec<_>>().join("\n  ")
    );
}

#[test]
fn every_env_knob_is_documented_in_performance_md() {
    // docs/PERFORMANCE.md is the single-page tuning guide; its knob
    // tables must cover the full `MPICD_*` surface, not a subset.
    let root = workspace_root();
    let perf = read(&root.join("docs/PERFORMANCE.md"));
    let documented = scan(&perf, "MPICD_", |c| {
        c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'
    });

    let mut undocumented = BTreeSet::new();
    for f in rust_sources(&root) {
        let src = read(&f);
        for knob in scan(&src, "MPICD_", |c| {
            c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'
        }) {
            if knob != "MPICD_" && !documented.contains(&knob) {
                undocumented.insert(format!("{knob} (first seen in {})", f.display()));
            }
        }
    }
    assert!(
        undocumented.is_empty(),
        "env knobs read in source but missing from the docs/PERFORMANCE.md tables:\n  {}",
        undocumented.into_iter().collect::<Vec<_>>().join("\n  ")
    );
}

#[test]
fn every_obs_counter_is_documented_in_architecture_md() {
    let root = workspace_root();
    let arch = read(&root.join("docs/ARCHITECTURE.md"));

    let mut undocumented = BTreeSet::new();
    for f in rust_sources(&root) {
        // Integration-test files exercise the registries with throwaway
        // names; only production emitters are load-bearing.
        if f.components()
            .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "examples")
        {
            continue;
        }
        let code = production_code(&read(&f));
        for (pat, skip) in [
            ("counter(\"", "counter(\"".len()),
            ("histogram(\"", "histogram(\"".len()),
            ("series(\"", "series(\"".len()),
            ("sketch(\"", "sketch(\"".len()),
            ("gauge(\"", "gauge(\"".len()),
        ] {
            for (i, _) in code.match_indices(pat) {
                let rest = &code[i + skip..];
                let Some(end) = rest.find('"') else { continue };
                let name = &rest[..end];
                // Only audit namespaced metric names (`area.metric`);
                // single-word names are throwaway locals in examples.
                if name.contains('.') && !arch.contains(name) {
                    undocumented.insert(format!("{name} (emitted in {})", f.display()));
                }
            }
        }
    }
    assert!(
        undocumented.is_empty(),
        "obs metrics emitted by production code but missing from \
         docs/ARCHITECTURE.md:\n  {}",
        undocumented.into_iter().collect::<Vec<_>>().join("\n  ")
    );
}

/// Paths (workspace-relative prefixes) allowed to use `Ordering::SeqCst`,
/// each with a standing justification.
const SEQCST_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/bench/tests/conformance.rs",
        "the audit itself must name the pattern it scans for",
    ),
    (
        "crates/check/",
        "the model checker implements and litmus-tests SeqCst semantics",
    ),
    (
        "crates/capi/",
        "FFI boundary keeps conservative orderings; exempt like the unsafe wall",
    ),
    (
        "crates/core/src/communicator.rs",
        "test-only helper counter in the in-file test module",
    ),
    (
        "tests/tests/",
        "cross-crate integration harnesses use conservative orderings, not \
         protocol code",
    ),
];

#[test]
fn seqcst_is_confined_to_the_allowlist() {
    let root = workspace_root();
    let mut violations = Vec::new();
    for f in rust_sources(&root) {
        let rel = f
            .strip_prefix(&root)
            .expect("source under root")
            .to_string_lossy()
            .replace('\\', "/");
        if SEQCST_ALLOWLIST.iter().any(|(p, _)| rel.starts_with(p)) {
            continue;
        }
        for (n, line) in read(&f).lines().enumerate() {
            let t = line.trim_start();
            if t.starts_with("//") {
                continue;
            }
            if t.contains("SeqCst") {
                violations.push(format!("{rel}:{}: {}", n + 1, t));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "SeqCst outside the allowlist — prefer Acquire/Release (and extend \
         SEQCST_ALLOWLIST with a justification if it is truly needed):\n  {}",
        violations.join("\n  ")
    );
}

#[test]
fn checked_modules_use_the_sync_seam_not_raw_atomics() {
    let root = workspace_root();
    for rel in ["crates/obs/src/flight.rs", "crates/fabric/src/pipeline.rs"] {
        let src = read(&root.join(rel));
        for (n, line) in src.lines().enumerate() {
            let t = line.trim_start();
            if t.starts_with("//") {
                continue;
            }
            assert!(
                !t.contains("std::sync::atomic"),
                "{rel}:{}: model-checked module must import atomics from \
                 `mpicd_obs::sync::atomic` (the `--cfg mpicd_check` seam), \
                 not `std::sync::atomic`: {t}",
                n + 1
            );
        }
    }
}
