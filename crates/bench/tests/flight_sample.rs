//! Sampled-recorder soundness: with `MPICD_FLIGHT_SAMPLE=N` the flight
//! recorder keeps every Nth transfer end to end and drops the rest
//! entirely, so a sampled dump must *always* analyze clean — whole
//! timelines or nothing, never a partial one. Runs in its own process
//! (the recorder and its sample tick are process-global) as one
//! sequential test sweeping seeded workloads across sample rates.

use mpicd::types::as_bytes;
use mpicd::{transfer_typed, World};
use mpicd_bench::flight::{analyze, read_dump};
use mpicd_bench::soak::Register;
use mpicd_obs::flight;
use mpicd_obs::XorShift64Star;
use std::sync::Arc;

#[test]
fn sampled_dumps_are_always_well_formed() {
    let world = World::new(4);
    let ty = Arc::new(Register::datatype().commit().unwrap());
    let stride = std::mem::size_of::<Register>();
    let path =
        std::env::temp_dir().join(format!("mpicd-flight-sample-{}.jsonl", std::process::id()));

    // Seeded: the whole sweep is reproducible from this constant.
    let mut rng = XorShift64Star::new(0x5eed_50a4);
    flight::set_enabled(true);
    // The ring is never cleared, so each sweep's dump also carries every
    // earlier sweep's events; judge per-sweep counts by differencing.
    let mut prev_completed = 0usize;
    for &rate in &[1u64, 4, 64] {
        flight::set_sample(rate);
        let transfers = rng.range(200, 300);
        for i in 0..transfers {
            let batch = rng.range(1, 97);
            let records: Vec<Register> = (0..batch).map(Register::generate).collect();
            let mut rbytes = vec![0u8; batch * stride];
            let (src, dst) = ((i % 2) + 2, i % 2);
            transfer_typed(
                &world.comm(src),
                &world.comm(dst),
                as_bytes(&records),
                &mut rbytes,
                batch,
                &ty,
                i as i32,
            )
            .unwrap();
        }

        let n = flight::dump_jsonl(&path).unwrap();
        let a = analyze(&read_dump(&path).unwrap());

        // The one property sampling must never break: zero malformed
        // timelines, at any rate. Unsampled transfers are wholly absent
        // (id 0 is never recorded), so nothing partial can appear.
        assert!(
            a.malformed.is_empty(),
            "rate {rate}: malformed sampled timelines: {:?}",
            a.malformed
        );
        let sampled = a.completed.len() - prev_completed;
        prev_completed = a.completed.len();
        assert!(
            sampled > 0,
            "rate {rate}: some timelines sampled out of {n} events"
        );
        if rate == 1 {
            assert!(
                sampled >= transfers,
                "rate 1 keeps every transfer ({sampled} < {transfers})"
            );
        } else {
            // Send and receive posts share the tick stream, so sends are
            // sampled at most ceil(2 * transfers / rate) times per sweep
            // (the dump also still holds earlier sweeps' events).
            assert!(
                sampled < transfers,
                "rate {rate} must drop most transfers ({sampled} of {transfers})"
            );
        }
        // Every reconstructed timeline is complete: send post, match and
        // completion all present (analyze() would flag them malformed
        // otherwise, but pin the end-to-end shape explicitly too).
        for t in &a.completed {
            assert!(t.id != 0, "id 0 never reaches a dump");
            assert!(t.post_send_ns > 0 && t.match_ns > 0 && t.end_ns > 0);
        }
    }
    flight::set_enabled(false);
    flight::set_sample(1);
    let _ = std::fs::remove_file(&path);
}
