//! End-to-end tests for cross-rank datatype signature enforcement
//! (`MPICD_TYPECHECK`) and the structural-key machinery behind it.
//!
//! Covers the ISSUE acceptance pair — `{f64, f64, i32}` sent into a
//! receive posted as `{f64, i32, f64}` — on both the in-process typed path
//! and the marshalled-header path, in all three knob modes, plus the
//! cross-constructor key64 property over every DDTBench pattern and the
//! pack-engine byte-identity property for `derive_datatype!` types.

use mpicd::derive::slice_pack;
use mpicd::fabric::{FabricError, MatchConfig, PipelineConfig, TypecheckMode, WireModel};
use mpicd::{transfer_typed, Communicator, StaticDatatype, World};
use mpicd_datatype::engine::{DatatypePacker, DatatypeUnpacker};
use mpicd_datatype::Committed;
use mpicd_datatype::{
    key64, marshal_with_header, signature64, structural_key, type_map, unmarshal_with_header,
    Datatype, Primitive,
};
use mpicd_obs::causal::CausalContext;
use std::sync::Arc;

/// Two-rank world with the typecheck mode pinned programmatically so the
/// tests cannot race on the `MPICD_TYPECHECK` environment variable.
fn world(mode: TypecheckMode) -> World {
    World::with_config(
        2,
        WireModel::default(),
        PipelineConfig::serial(),
        MatchConfig::default().with_typecheck(mode),
    )
}

/// The acceptance pair: same primitives, different order, laid out at
/// their natural repr(C) offsets. Same MPI *signature*, different
/// structural keys.
fn acceptance_pair() -> (Datatype, Datatype) {
    let ffi = Datatype::structure(vec![
        (1, 0, Datatype::predefined(Primitive::Double)),
        (1, 8, Datatype::predefined(Primitive::Double)),
        (1, 16, Datatype::predefined(Primitive::Int32)),
    ]);
    let fif = Datatype::structure(vec![
        (1, 0, Datatype::predefined(Primitive::Double)),
        (1, 8, Datatype::predefined(Primitive::Int32)),
        (1, 16, Datatype::predefined(Primitive::Double)),
    ]);
    (ffi, fif)
}

/// Drive one typed message `a → b` with *different* declared types on each
/// side — the cross-rank disagreement the typecheck exists to catch. Both
/// posts are nonblocking (a deferred send would deadlock a blocking call on
/// one thread); returns the receive outcome in bytes.
fn typed_exchange(
    a: &Communicator,
    b: &Communicator,
    sregion: &[u8],
    rregion: &mut [u8],
    sty: &Arc<Committed>,
    rty: &Arc<Committed>,
) -> Result<usize, FabricError> {
    // SAFETY: both regions outlive the waits below.
    let sreq = unsafe {
        a.post_typed_send(sregion.as_ptr(), 1, sty, b.rank(), 0)
            .unwrap()
    };
    let rreq = unsafe {
        b.post_typed_recv(rregion.as_mut_ptr(), 1, rty, a.rank() as i32, 0)
            .unwrap()
    };
    let out = rreq.wait().map(|env| env.bytes);
    sreq.wait()
        .expect("the sender completes even when the receiver rejects the type");
    out
}

#[test]
fn enforce_rejects_mismatched_typed_pair() {
    let (ffi, fif) = acceptance_pair();
    let (sent_sig, expected_sig) = (signature64(&ffi), signature64(&fif));
    assert_ne!(sent_sig, expected_sig, "the pair must have distinct keys");

    let w = world(TypecheckMode::Enforce);
    let (a, b) = w.pair();
    let sty = ffi.commit().map(Arc::new).unwrap();
    let rty = fif.commit().map(Arc::new).unwrap();
    let sregion = vec![0x5Au8; sty.extent()];
    let mut rregion = vec![0u8; rty.extent()];
    let err = typed_exchange(&a, &b, &sregion, &mut rregion, &sty, &rty).unwrap_err();
    match err {
        FabricError::TypeMismatch { sent, expected } => {
            assert_eq!(sent, sent_sig);
            assert_eq!(expected, expected_sig);
        }
        other => panic!("expected TypeMismatch, got {other:?}"),
    }
    assert_eq!(w.fabric().stats().type_mismatch, 1);
    assert!(
        rregion.iter().all(|&b| b == 0),
        "enforce must reject before any bytes are unpacked"
    );
}

#[test]
fn warn_counts_and_delivers() {
    let (ffi, fif) = acceptance_pair();
    let w = world(TypecheckMode::Warn);
    let (a, b) = w.pair();
    let sty = ffi.commit().map(Arc::new).unwrap();
    let rty = fif.commit().map(Arc::new).unwrap();
    let sregion = vec![0x5Au8; sty.extent()];
    let mut rregion = vec![0u8; rty.extent()];
    let bytes = typed_exchange(&a, &b, &sregion, &mut rregion, &sty, &rty).unwrap();
    assert_eq!(bytes, sty.size());
    assert_eq!(w.fabric().stats().type_mismatch, 1);
    assert!(rregion.iter().any(|&b| b != 0), "warn mode still delivers");
}

#[test]
fn off_is_silent() {
    let (ffi, fif) = acceptance_pair();
    let w = world(TypecheckMode::Off);
    let (a, b) = w.pair();
    let sty = ffi.commit().map(Arc::new).unwrap();
    let rty = fif.commit().map(Arc::new).unwrap();
    let sregion = vec![0x5Au8; sty.extent()];
    let mut rregion = vec![0u8; rty.extent()];
    typed_exchange(&a, &b, &sregion, &mut rregion, &sty, &rty).unwrap();
    assert_eq!(w.fabric().stats().type_mismatch, 0);
}

#[test]
fn matched_pair_passes_all_modes() {
    for mode in [
        TypecheckMode::Off,
        TypecheckMode::Warn,
        TypecheckMode::Enforce,
    ] {
        let (ffi, _) = acceptance_pair();
        let w = world(mode);
        let (a, b) = w.pair();
        let ty = ffi.commit().map(Arc::new).unwrap();
        let sregion: Vec<u8> = (0..ty.extent() as u8).collect();
        let mut rregion = vec![0u8; ty.extent()];
        let st = transfer_typed(&a, &b, &sregion, &mut rregion, 1, &ty, 0).unwrap();
        assert_eq!(st.bytes, ty.size());
        assert_eq!(w.fabric().stats().type_mismatch, 0, "mode {mode:?}");
        // The type map covers bytes 0..20 (two doubles + one i32); those
        // must arrive intact in every mode.
        assert_eq!(rregion[..20], sregion[..20], "mode {mode:?}");
    }
}

#[test]
fn marshalled_header_carries_signature_to_the_fabric() {
    // Sender side: marshal the datatype with its structural key in the
    // 0xC6 header frame, as the context path does for marshalled sends.
    let (ffi, fif) = acceptance_pair();
    let sig = signature64(&ffi);
    let wire = marshal_with_header(&ffi, CausalContext::default(), sig);

    // Receiver side: decode the frame; the key survives the round trip
    // and still matches the decoded type's own key.
    let (decoded, _ctx, wire_sig) = unmarshal_with_header(&wire).unwrap();
    assert_eq!(wire_sig, sig);
    assert_eq!(signature64(&decoded), sig);

    // Drive the decoded type into a mismatched posted receive under
    // enforce: the fabric rejects with exactly the marshalled key.
    let w = world(TypecheckMode::Enforce);
    let (a, b) = w.pair();
    let sty = decoded.commit().map(Arc::new).unwrap();
    let rty = fif.commit().map(Arc::new).unwrap();
    let sregion = vec![1u8; sty.extent()];
    let mut rregion = vec![0u8; rty.extent()];
    let err = typed_exchange(&a, &b, &sregion, &mut rregion, &sty, &rty).unwrap_err();
    match err {
        FabricError::TypeMismatch { sent, expected } => {
            assert_eq!(sent, wire_sig, "fabric enforces the marshalled key");
            assert_eq!(expected, signature64(&fif));
        }
        other => panic!("expected TypeMismatch, got {other:?}"),
    }
}

#[test]
fn ddtbench_key_collisions_imply_identical_type_maps() {
    // StructuralKey is a hash; the safety claim is that across every
    // DDTBench pattern (at several sizes) a key collision only ever
    // happens between byte-identical type maps.
    let mut types = Vec::new();
    for name in mpicd_ddtbench::BENCHMARKS {
        for target in [4 << 10, 64 << 10] {
            let t = mpicd_ddtbench::make(name, target).datatype();
            types.push((format!("{name}@{target}"), t));
        }
    }
    let mut distinct = std::collections::HashSet::new();
    for (name, t) in &types {
        let k = key64(&structural_key(t));
        assert_ne!(k, 0, "{name}: key64 never returns the unchecked sentinel");
        assert_eq!(k, signature64(t), "{name}: signature64 is key64 of the key");
        distinct.insert(k);
    }
    assert!(distinct.len() > 1, "patterns must not all collide");
    for (i, (na, a)) in types.iter().enumerate() {
        for (nb, b) in &types[i + 1..] {
            if key64(&structural_key(a)) == key64(&structural_key(b)) {
                assert_eq!(
                    type_map(a),
                    type_map(b),
                    "{na} and {nb} collide on key64 but have different maps"
                );
                assert_eq!(a.extent(), b.extent(), "{na} vs {nb}: extent committed too");
            }
        }
    }
}

mpicd::derive_datatype! {
    /// DDTBench-flavoured particle record: array + nested struct + tail.
    pub struct Body {
        pos: [f64; 3],
        vel: [f32; 2],
        charge: i16,
        id: i64,
    }
}

#[test]
fn derived_types_pack_identically_across_engines() {
    let bodies: Vec<Body> = (0..7)
        .map(|i| Body {
            pos: [i as f64, i as f64 * 0.5, -1.0],
            vel: [i as f32, 2.0],
            charge: i as i16 - 3,
            id: 1_000 + i as i64,
        })
        .collect();

    // Plan-compiled path, exactly as a derived send would pack.
    let mut planned = vec![0u8; bodies.len() * Body::committed().size()];
    {
        let mut ctx = slice_pack(&bodies);
        let mut off = 0;
        while off < planned.len() {
            let used = mpicd::CustomPack::pack(&mut ctx, off, &mut planned[off..]).unwrap();
            assert!(used > 0, "packer must make progress");
            off += used;
        }
    }

    // Interpreted and convertor engines over the same description.
    let dt = Body::datatype();
    for (engine, committed) in [
        ("interpreted", dt.commit_interpreted().unwrap()),
        ("convertor", dt.commit_convertor().unwrap()),
    ] {
        let committed = Arc::new(committed);
        // SAFETY: `bodies` outlives the packer; len covers all elements.
        let packer = unsafe {
            DatatypePacker::new(
                committed.clone(),
                bodies.as_ptr() as *const u8,
                bodies.len(),
            )
        };
        let mut out = vec![0u8; packer.packed_size()];
        let written = packer.pack_at(0, &mut out);
        assert_eq!(written, out.len());
        assert_eq!(out, planned, "{engine} engine disagrees with the plan");

        // And the unpack side round-trips the fields bit-for-bit.
        let mut back = vec![
            Body {
                pos: [0.0; 3],
                vel: [0.0; 2],
                charge: 0,
                id: 0,
            };
            bodies.len()
        ];
        // SAFETY: `back` outlives the unpacker; len covers all elements.
        let mut unpacker =
            unsafe { DatatypeUnpacker::new(committed, back.as_mut_ptr() as *mut u8, back.len()) };
        assert_eq!(unpacker.unpack(0, &out), out.len());
        assert_eq!(back, bodies, "{engine} engine round-trip");
    }
}
