//! End-to-end flight-recorder acceptance over the DDTBench patterns: with
//! the serial transfer engine, `mpicd-inspect`'s analyzer must reconstruct
//! a complete timeline for 100% of transfers and the per-phase attribution
//! must sum to the end-to-end time within 5%.
//!
//! Serial engine on purpose: the copy phase is the exact residual of the
//! active window only when fragments don't overlap in time. The parallel
//! engine's well-formedness is covered by the fabric's pipeline test.

use mpicd::World;
use mpicd_bench::ddt::{one_way, DdtMethod, DdtScratch};
use mpicd_bench::flight::{analyze, read_dump};
use mpicd_ddtbench::{make, BENCHMARKS};
use mpicd_fabric::{PipelineConfig, WireModel};
use mpicd_obs::flight;

#[test]
fn inspect_reconstructs_every_ddtbench_transfer() {
    flight::set_enabled(true);
    let size = 32 * 1024;

    let world = World::with_model_and_pipeline(2, WireModel::default(), PipelineConfig::serial());
    let (a, b) = world.pair();
    for name in BENCHMARKS {
        let sender = make(name, size);
        let bytes = sender.bytes();
        let mut receiver = make(name, size);
        let mut scratch = DdtScratch::new(bytes);
        for method in DdtMethod::all() {
            // Unsupported method/pattern combinations probe as false and
            // move no data; everything that runs is recorded.
            one_way(&a, &b, &*sender, &mut *receiver, &mut scratch, method);
        }
    }
    flight::set_enabled(false);

    let path = std::env::temp_dir().join(format!("mpicd-flight-e2e-{}.jsonl", std::process::id()));
    let n = flight::dump_jsonl(&path).unwrap();
    assert!(n > 0, "the run recorded events");
    let dump = read_dump(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(dump.meta.unwrap().overflowed, 0, "ring did not overflow");

    let analysis = analyze(&dump);
    assert!(analysis.malformed.is_empty(), "{:#?}", analysis.malformed);
    assert!(analysis.errored.is_empty(), "{:#?}", analysis.errored);

    // 100% reconstruction: every posted send became a completed timeline
    // (every wait returned before the dump, so nothing may stay pending).
    let posted_sends = dump
        .events
        .iter()
        .filter(|e| e.kind == mpicd_obs::flight::EventKind::PostSend)
        .count();
    assert!(posted_sends > 0);
    assert_eq!(analysis.completed.len(), posted_sends, "no lost timelines");
    assert_eq!(analysis.pending_sends, 0);
    assert_eq!(analysis.pending_recvs, 0);
    assert_eq!(analysis.truncated, 0);

    // Every timeline joined its receive post and attribution is airtight:
    // wait + pack + unpack + copy within 5% of end-to-end.
    for t in &analysis.completed {
        assert_ne!(t.recv_id, 0, "id {}: receive post joined", t.id);
        assert!(t.post_recv_ns.is_some(), "id {}: recv post found", t.id);
        let p = t.phases();
        let sum = p.wait + p.pack + p.unpack + p.copy;
        let tol = (p.e2e / 20).max(1);
        assert!(
            sum.abs_diff(p.e2e) <= tol,
            "id {}: phases sum {} vs e2e {} (tol {})",
            t.id,
            sum,
            p.e2e,
            tol
        );
    }
}
