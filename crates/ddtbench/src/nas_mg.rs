//! NAS MG ghost-cell exchanges.
//!
//! * `NAS_MG_x` — the x-face gathers *single doubles* down a row stride:
//!   the worst case for memory regions (thousands of 8-byte regions).
//! * `NAS_MG_y` — the y-face gathers whole contiguous rows: a small number
//!   of multi-KiB regions, where region transfer wins (Fig 10).

use crate::nestpat::NestPattern;
use crate::pattern::PatternInfo;
use mpicd::LoopNest;

/// The x-face: strided single doubles.
pub struct NasMgX;

impl NasMgX {
    /// Build a workload of roughly `target_bytes` payload.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(target_bytes: usize) -> NestPattern {
        let ny = 32usize;
        let nx = 16usize; // row length the face column strides across
        let nz = (target_bytes / (8 * ny)).max(1);
        let s_j = (nx * 8) as isize; // one double per row
        let s_k = ny as isize * s_j;
        let nest = LoopNest::new(vec![nz, ny], vec![s_k, s_j], 8).expect("valid nest");
        let dt = NestPattern::nest_datatype(&nest);
        NestPattern::new(
            PatternInfo {
                name: "NAS_MG_x",
                mpi_datatypes: "strided vector",
                loop_structure: "2 nested loops (non-contiguous)",
                memory_regions: true,
            },
            nest,
            dt,
            0x2C01,
        )
    }
}

/// The y-face: contiguous rows at a plane stride.
pub struct NasMgY;

impl NasMgY {
    /// Build a workload of roughly `target_bytes` payload.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(target_bytes: usize) -> NestPattern {
        let row = 4096usize; // one contiguous x-row of 512 doubles
        let nz = (target_bytes / row).max(1);
        let s_k = (2 * row) as isize; // planes are twice the row apart
        let nest = LoopNest::new(vec![nz], vec![s_k], row).expect("valid nest");
        let dt = NestPattern::nest_datatype(&nest);
        NestPattern::new(
            PatternInfo {
                name: "NAS_MG_y",
                mpi_datatypes: "strided vector",
                loop_structure: "2 nested loops (non-contiguous)",
                memory_regions: true,
            },
            nest,
            dt,
            0x2C02,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    #[test]
    fn mg_x_has_many_tiny_regions() {
        let p = NasMgX::new(1 << 16);
        let runs = p.region_runs();
        assert_eq!(runs.len(), p.bytes() / 8);
        assert!(runs.len() > 4000);
        assert!(runs.iter().all(|(_, l)| *l == 8));
    }

    #[test]
    fn mg_y_has_few_large_regions() {
        let p = NasMgY::new(1 << 20);
        let runs = p.region_runs();
        assert_eq!(runs.len(), 256);
        assert!(runs.iter().all(|(_, l)| *l == 4096));
    }

    #[test]
    fn roundtrip_via_typed_pack() {
        for make in [NasMgX::new as fn(usize) -> NestPattern, NasMgY::new] {
            let p = make(32 * 1024);
            let mut manual = Vec::new();
            p.pack_manual(&mut manual);
            let typed = p.committed().pack_slice(p.base(), 1).unwrap();
            assert_eq!(manual, typed);
        }
    }
}
