//! MILC su3 lattice-QCD face exchange: a five-deep loop nest (four
//! dimension loops over a contiguous run of su3 vectors) with a non-unit
//! stride at the innermost dimension — DDTBench's `MILC_su3_zdown`.
//!
//! The four outer dimensions are small (2×2×2×2), so the nest decomposes
//! into a *small number of large* contiguous regions: the case where the
//! paper finds memory regions beat packing (Fig 10).

use crate::nestpat::NestPattern;
use crate::pattern::PatternInfo;
use mpicd::LoopNest;

/// Bytes of one su3 vector (three complex doubles).
pub const SU3_VECTOR: usize = 48;

/// Trip count of each of the four outer loops.
pub const OUTER_DIM: usize = 2;

/// The MILC face-exchange pattern.
pub struct Milc;

impl Milc {
    /// Build a workload of roughly `target_bytes` payload.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(target_bytes: usize) -> NestPattern {
        let cells = OUTER_DIM.pow(4); // 16 contiguous runs
                                      // Run length: a block of contiguous su3 vectors per innermost
                                      // iteration, sized so 16 runs reach the target.
        let run = ((target_bytes / cells).max(SU3_VECTOR) / SU3_VECTOR) * SU3_VECTOR;
        // Innermost stride skips every other block (non-unit stride); the
        // outer dimensions are dense over the strided sub-lattice.
        let s2 = 2 * run as isize;
        let s3 = OUTER_DIM as isize * s2;
        let s4 = OUTER_DIM as isize * s3;
        let s5 = OUTER_DIM as isize * s4;
        let nest = LoopNest::new(
            vec![OUTER_DIM, OUTER_DIM, OUTER_DIM, OUTER_DIM],
            vec![s5, s4, s3, s2],
            run,
        )
        .expect("valid nest");
        let dt = NestPattern::nest_datatype(&nest);
        NestPattern::new(
            PatternInfo {
                name: "MILC",
                mpi_datatypes: "strided vector",
                loop_structure: "5 nested loops (non-unit stride)",
                memory_regions: true,
            },
            nest,
            dt,
            0x3A1C,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    #[test]
    fn payload_close_to_target() {
        let p = Milc::new(1 << 20);
        let b = p.bytes();
        assert!(((1 << 20) * 9 / 10..=1 << 20).contains(&b), "bytes = {b}");
    }

    #[test]
    fn few_large_regions() {
        let p = Milc::new(1 << 20);
        let runs = p.region_runs();
        assert_eq!(runs.len(), 16, "2^4 contiguous runs, none mergeable");
        assert!(runs[0].1 >= 48 * 1000, "large runs");
    }

    #[test]
    fn five_loop_structure() {
        let p = Milc::new(4096);
        // 4 explicit dims + the contiguous run = the paper's 5 loops.
        assert_eq!(p.nest().depth(), 4);
        assert_eq!(p.bytes() % SU3_VECTOR, 0);
    }

    #[test]
    fn minimum_size_still_valid() {
        let p = Milc::new(1);
        assert_eq!(p.bytes(), 16 * SU3_VECTOR);
    }
}
