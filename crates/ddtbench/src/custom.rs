//! Reusable custom-API contexts for the DDTBench patterns.
//!
//! * [`NestPack`]/[`NestUnpack`] — packing through a [`LoopNest`], the
//!   suspendable nested-loop traversal (the paper's coroutine experiment).
//! * [`RunsPack`]/[`RunsUnpack`] — packing an explicit run list (LAMMPS's
//!   irregular index gather).
//! * [`RegionsPack`]/[`RegionsUnpack`] — no packing at all: every
//!   contiguous run is exposed as a memory region (the "custom regions"
//!   variant of Fig 10).

// Audited unsafe: benchmark datatype raw-memory callbacks; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use mpicd::datatype::{
    CustomPack, CustomUnpack, RandomAccessPacker, RandomAccessUnpacker, RecvRegion, SendRegion,
};
use mpicd::{Error, LoopNest, Result};
use std::marker::PhantomData;

/// Pack context driving a [`LoopNest`].
pub struct NestPack<'a> {
    nest: LoopNest,
    base: *const u8,
    _borrow: PhantomData<&'a [u8]>,
}

unsafe impl Send for NestPack<'_> {}

// SAFETY: packing only reads the borrowed slab; concurrent `pack_at` calls
// are safe on any ranges.
unsafe impl Sync for NestPack<'_> {}

impl<'a> NestPack<'a> {
    /// Pack the nest's runs out of `slab`.
    pub fn new(nest: LoopNest, slab: &'a [u8]) -> Self {
        let (min, max) = nest.span();
        assert!(min >= 0 && max as usize <= slab.len(), "nest within slab");
        Self {
            nest,
            base: slab.as_ptr(),
            _borrow: PhantomData,
        }
    }
}

impl CustomPack for NestPack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.nest.packed_size())
    }
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        // SAFETY: span checked against the borrowed slab in `new`.
        Ok(unsafe { self.nest.pack_segment(self.base, offset, dst) })
    }
    fn inorder(&self) -> bool {
        false
    }
    fn random_access(&self) -> Option<&dyn RandomAccessPacker> {
        Some(self)
    }
}

impl RandomAccessPacker for NestPack<'_> {
    fn pack_at(&self, offset: usize, dst: &mut [u8]) -> std::result::Result<usize, i32> {
        // SAFETY: span checked against the borrowed slab in `new`; the nest
        // addresses any packed offset directly, so disjoint fragments can
        // be produced concurrently.
        Ok(unsafe { self.nest.pack_segment(self.base, offset, dst) })
    }
}

/// Unpack context driving a [`LoopNest`].
pub struct NestUnpack<'a> {
    nest: LoopNest,
    base: *mut u8,
    _borrow: PhantomData<&'a mut [u8]>,
}

unsafe impl Send for NestUnpack<'_> {}

// SAFETY: `unpack_at` writes only the runs addressed by the packed range it
// is handed; the parallel engine guarantees disjoint ranges, which map to
// disjoint runs of the slab.
unsafe impl Sync for NestUnpack<'_> {}

impl<'a> NestUnpack<'a> {
    /// Scatter incoming runs into `slab`.
    pub fn new(nest: LoopNest, slab: &'a mut [u8]) -> Self {
        let (min, max) = nest.span();
        assert!(min >= 0 && max as usize <= slab.len(), "nest within slab");
        Self {
            nest,
            base: slab.as_mut_ptr(),
            _borrow: PhantomData,
        }
    }
}

impl CustomUnpack for NestUnpack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.nest.packed_size())
    }
    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()> {
        // SAFETY: span checked in `new`; exclusive borrow held for 'a.
        unsafe { self.nest.unpack_segment(self.base, offset, src) };
        Ok(())
    }
    fn random_access(&self) -> Option<&dyn RandomAccessUnpacker> {
        Some(self)
    }
}

impl RandomAccessUnpacker for NestUnpack<'_> {
    fn unpack_at(&self, offset: usize, src: &[u8]) -> std::result::Result<(), i32> {
        // SAFETY: span checked in `new`; disjoint packed ranges scatter to
        // disjoint runs (see the `Sync` justification).
        unsafe { self.nest.unpack_segment(self.base, offset, src) };
        Ok(())
    }
}

/// Pack context over an explicit, uniform-length run list.
pub struct RunsPack<'a> {
    offsets: Vec<isize>,
    run_len: usize,
    base: *const u8,
    _borrow: PhantomData<&'a [u8]>,
}

unsafe impl Send for RunsPack<'_> {}

// SAFETY: packing only reads the borrowed slab.
unsafe impl Sync for RunsPack<'_> {}

impl<'a> RunsPack<'a> {
    /// Pack `offsets.len()` runs of `run_len` bytes out of `slab`.
    pub fn new(offsets: Vec<isize>, run_len: usize, slab: &'a [u8]) -> Self {
        debug_assert!(offsets
            .iter()
            .all(|o| *o >= 0 && (*o as usize + run_len) <= slab.len()));
        Self {
            offsets,
            run_len,
            base: slab.as_ptr(),
            _borrow: PhantomData,
        }
    }

    fn total(&self) -> usize {
        self.offsets.len() * self.run_len
    }

    /// Stateless gather of `[offset, offset + dst)` of the packed stream.
    fn gather(&self, offset: usize, dst: &mut [u8]) -> usize {
        if self.run_len == 0 {
            return 0;
        }
        let total = self.total();
        let mut at = offset;
        let mut done = 0usize;
        while at < total && done < dst.len() {
            let run = at / self.run_len;
            let within = at % self.run_len;
            let n = (self.run_len - within).min(dst.len() - done);
            // SAFETY: offsets validated against the slab in `new`.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.base.offset(self.offsets[run] + within as isize),
                    dst.as_mut_ptr().add(done),
                    n,
                );
            }
            at += n;
            done += n;
        }
        done
    }
}

impl CustomPack for RunsPack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.total())
    }

    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        Ok(self.gather(offset, dst))
    }

    fn inorder(&self) -> bool {
        false
    }

    fn random_access(&self) -> Option<&dyn RandomAccessPacker> {
        Some(self)
    }
}

impl RandomAccessPacker for RunsPack<'_> {
    fn pack_at(&self, offset: usize, dst: &mut [u8]) -> std::result::Result<usize, i32> {
        Ok(self.gather(offset, dst))
    }
}

/// Unpack counterpart of [`RunsPack`].
pub struct RunsUnpack<'a> {
    offsets: Vec<isize>,
    run_len: usize,
    base: *mut u8,
    _borrow: PhantomData<&'a mut [u8]>,
}

unsafe impl Send for RunsUnpack<'_> {}

// SAFETY: disjoint packed ranges scatter to disjoint runs of the slab (the
// parallel engine's contract), so concurrent `unpack_at` calls are safe.
unsafe impl Sync for RunsUnpack<'_> {}

impl<'a> RunsUnpack<'a> {
    /// Scatter incoming runs into `slab`.
    pub fn new(offsets: Vec<isize>, run_len: usize, slab: &'a mut [u8]) -> Self {
        debug_assert!(offsets
            .iter()
            .all(|o| *o >= 0 && (*o as usize + run_len) <= slab.len()));
        Self {
            offsets,
            run_len,
            base: slab.as_mut_ptr(),
            _borrow: PhantomData,
        }
    }

    /// Stateless scatter of a packed-stream range into the run list.
    fn scatter(&self, offset: usize, src: &[u8]) -> Result<()> {
        if self.run_len == 0 {
            return Ok(());
        }
        let total = self.offsets.len() * self.run_len;
        if offset + src.len() > total {
            return Err(Error::InvalidHeader("run-list unpack overflow"));
        }
        let mut at = offset;
        let mut done = 0usize;
        while done < src.len() {
            let run = at / self.run_len;
            let within = at % self.run_len;
            let n = (self.run_len - within).min(src.len() - done);
            // SAFETY: offsets validated in `new`; exclusive borrow.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr().add(done),
                    self.base.offset(self.offsets[run] + within as isize),
                    n,
                );
            }
            at += n;
            done += n;
        }
        Ok(())
    }
}

impl CustomUnpack for RunsUnpack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.offsets.len() * self.run_len)
    }

    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()> {
        self.scatter(offset, src)
    }

    fn random_access(&self) -> Option<&dyn RandomAccessUnpacker> {
        Some(self)
    }
}

impl RandomAccessUnpacker for RunsUnpack<'_> {
    fn unpack_at(&self, offset: usize, src: &[u8]) -> std::result::Result<(), i32> {
        self.scatter(offset, src).map_err(|e| e.code())
    }
}

/// Merge adjacent `(offset, len)` runs (fewer, larger regions).
pub fn merge_runs(mut runs: Vec<(isize, usize)>) -> Vec<(isize, usize)> {
    let mut out: Vec<(isize, usize)> = Vec::with_capacity(runs.len());
    for (off, len) in runs.drain(..) {
        match out.last_mut() {
            Some((o, l)) if *o + *l as isize == off => *l += len,
            _ => out.push((off, len)),
        }
    }
    out
}

/// Region-only pack context: nothing is packed; every run is a region.
pub struct RegionsPack<'a> {
    runs: Vec<(isize, usize)>,
    base: *const u8,
    _borrow: PhantomData<&'a [u8]>,
}

unsafe impl Send for RegionsPack<'_> {}

impl<'a> RegionsPack<'a> {
    /// Expose `runs` of `slab` as regions.
    pub fn new(runs: Vec<(isize, usize)>, slab: &'a [u8]) -> Self {
        debug_assert!(runs
            .iter()
            .all(|(o, l)| *o >= 0 && (*o as usize + l) <= slab.len()));
        Self {
            runs,
            base: slab.as_ptr(),
            _borrow: PhantomData,
        }
    }
}

impl CustomPack for RegionsPack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(0)
    }
    fn pack(&mut self, _offset: usize, _dst: &mut [u8]) -> Result<usize> {
        Ok(0) // nothing in the packed stream
    }
    fn regions(&mut self) -> Result<Vec<SendRegion>> {
        Ok(self
            .runs
            .iter()
            .map(|(off, len)| SendRegion {
                // SAFETY: runs validated in `new`.
                ptr: unsafe { self.base.offset(*off) },
                len: *len,
            })
            .collect())
    }
    fn inorder(&self) -> bool {
        false
    }
}

/// Region-only unpack context.
pub struct RegionsUnpack<'a> {
    runs: Vec<(isize, usize)>,
    base: *mut u8,
    _borrow: PhantomData<&'a mut [u8]>,
}

unsafe impl Send for RegionsUnpack<'_> {}

impl<'a> RegionsUnpack<'a> {
    /// Receive directly into `runs` of `slab`.
    pub fn new(runs: Vec<(isize, usize)>, slab: &'a mut [u8]) -> Self {
        debug_assert!(runs
            .iter()
            .all(|(o, l)| *o >= 0 && (*o as usize + l) <= slab.len()));
        Self {
            runs,
            base: slab.as_mut_ptr(),
            _borrow: PhantomData,
        }
    }
}

impl CustomUnpack for RegionsUnpack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(0)
    }
    fn unpack(&mut self, _offset: usize, _src: &[u8]) -> Result<()> {
        Err(Error::InvalidHeader(
            "regions-only receive got packed bytes",
        ))
    }
    fn regions(&mut self) -> Result<Vec<RecvRegion>> {
        Ok(self
            .runs
            .iter()
            .map(|(off, len)| RecvRegion {
                // SAFETY: runs validated in `new`; exclusive borrow.
                ptr: unsafe { self.base.offset(*off) },
                len: *len,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_pack_gathers_in_order() {
        let slab: Vec<u8> = (0..32).collect();
        let mut p = RunsPack::new(vec![8, 0, 24], 4, &slab);
        assert_eq!(p.packed_size().unwrap(), 12);
        let mut out = vec![0u8; 12];
        assert_eq!(p.pack(0, &mut out).unwrap(), 12);
        assert_eq!(out, vec![8, 9, 10, 11, 0, 1, 2, 3, 24, 25, 26, 27]);
    }

    #[test]
    fn runs_pack_partial_offsets() {
        let slab: Vec<u8> = (0..32).collect();
        let mut p = RunsPack::new(vec![0, 16], 8, &slab);
        let mut out = vec![0u8; 5];
        assert_eq!(p.pack(6, &mut out).unwrap(), 5);
        assert_eq!(out, vec![6, 7, 16, 17, 18]);
    }

    #[test]
    fn runs_unpack_inverts() {
        let src: Vec<u8> = (0..12).collect();
        let mut slab = vec![0xAAu8; 32];
        {
            let mut u = RunsUnpack::new(vec![8, 0, 24], 4, &mut slab);
            u.unpack(0, &src).unwrap();
        }
        assert_eq!(&slab[8..12], &[0, 1, 2, 3]);
        assert_eq!(&slab[0..4], &[4, 5, 6, 7]);
        assert_eq!(&slab[24..28], &[8, 9, 10, 11]);
        assert_eq!(slab[4], 0xAA, "untouched bytes preserved");
    }

    #[test]
    fn merge_runs_collapses_adjacent() {
        assert_eq!(
            merge_runs(vec![(0, 4), (4, 4), (16, 8), (24, 8), (40, 4)]),
            vec![(0, 8), (16, 16), (40, 4)]
        );
    }

    #[test]
    fn regions_pack_exposes_runs() {
        let slab: Vec<u8> = (0..64).collect();
        let mut p = RegionsPack::new(vec![(0, 16), (32, 8)], &slab);
        assert_eq!(p.packed_size().unwrap(), 0);
        let regions = p.regions().unwrap();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].len, 16);
        assert_eq!(regions[1].len, 8);
        assert_eq!(regions[0].ptr, slab.as_ptr());
    }

    #[test]
    fn regions_unpack_rejects_packed_bytes() {
        let mut slab = vec![0u8; 16];
        let mut u = RegionsUnpack::new(vec![(0, 16)], &mut slab);
        assert!(u.unpack(0, &[1, 2]).is_err());
    }
}
