//! WRF halo exchanges: a *struct of strided vectors* — several 3-D fields,
//! each contributing a strided sub-volume to the same message. The loop
//! nests run 3–5 deep and are non-contiguous, which (per Table I) makes
//! memory regions impracticable; the custom datatype uses packing only.

use crate::nestpat::NestPattern;
use crate::pattern::PatternInfo;
use mpicd::LoopNest;
use mpicd_datatype::Datatype;

/// Number of 3-D fields in the halo (e.g. u and v wind components).
pub const FIELDS: usize = 2;

/// Build the struct-of-nests datatype: one nested-hvector sub-type per
/// field, placed at the field's slab displacement via
/// `MPI_Type_create_struct`.
fn struct_of_nests(per_field: &LoopNest, field_stride: isize) -> Datatype {
    let sub = NestPattern::nest_datatype(per_field);
    Datatype::structure(
        (0..FIELDS)
            .map(|f| (1usize, f as isize * field_stride, sub.clone()))
            .collect(),
    )
}

/// Wrap a per-field nest into the full pattern (field loop outermost).
fn build(
    name: &'static str,
    loops: &'static str,
    per_field: LoopNest,
    field_stride: isize,
    seed: u64,
) -> NestPattern {
    let mut dims = vec![FIELDS];
    dims.extend_from_slice(per_field.dims());
    let mut strides = vec![field_stride];
    strides.extend_from_slice(per_field.strides());
    let nest = LoopNest::new(dims, strides, per_field.run_len()).expect("valid nest");
    let dt = struct_of_nests(&per_field, field_stride);
    NestPattern::new(
        PatternInfo {
            name,
            mpi_datatypes: "struct of strided vectors",
            loop_structure: loops,
            memory_regions: false,
        },
        nest,
        dt,
        seed,
    )
}

/// The x-direction halo: ghost-width runs of 4 doubles, strided in y and z.
pub struct WrfXVec;

impl WrfXVec {
    /// Build a workload of roughly `target_bytes` payload.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(target_bytes: usize) -> NestPattern {
        let ghost = 32usize; // bytes per run (4 doubles)
        let ny = 16usize;
        let nz = (target_bytes / (FIELDS * ny * ghost)).max(1);
        let s_j = 4 * ghost as isize; // row stride (gap after the ghost run)
        let s_k = ny as isize * s_j;
        let per_field = LoopNest::new(vec![nz, ny], vec![s_k, s_j], ghost).expect("valid nest");
        let field_stride = nz as isize * s_k;
        build(
            "WRF_x_vec",
            "3/4 nested loops (non-contiguous)",
            per_field,
            field_stride,
            0x4D01,
        )
    }
}

/// The y-direction halo: whole x-rows for a 2-row ghost band, strided in z.
pub struct WrfYVec;

impl WrfYVec {
    /// Build a workload of roughly `target_bytes` payload.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(target_bytes: usize) -> NestPattern {
        let row = 512usize; // contiguous x-row bytes (64 doubles)
        let ghost_j = 2usize;
        let nz = (target_bytes / (FIELDS * ghost_j * row)).max(1);
        let s_j = 2 * row as isize; // ghost rows are every other row
        let s_k = 8 * row as isize; // plane stride
        let per_field = LoopNest::new(vec![nz, ghost_j], vec![s_k, s_j], row).expect("valid nest");
        let field_stride = nz as isize * s_k;
        build(
            "WRF_y_vec",
            "4/5 nested loops (non-contiguous)",
            per_field,
            field_stride,
            0x4D02,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    #[test]
    fn struct_datatype_matches_nest_order() {
        for make in [WrfXVec::new as fn(usize) -> NestPattern, WrfYVec::new] {
            let p = make(64 * 1024);
            let mut manual = Vec::new();
            p.pack_manual(&mut manual);
            let typed = p.committed().pack_slice(p.base(), 1).unwrap();
            assert_eq!(manual, typed, "{}", p.info().name);
        }
    }

    #[test]
    fn regions_are_disabled() {
        let mut p = WrfXVec::new(4096);
        assert!(p.region_pack_ctx().is_none());
        assert!(p.region_unpack_ctx().is_none());
    }

    #[test]
    fn both_fields_contribute() {
        let p = WrfYVec::new(1 << 16);
        assert_eq!(p.nest().dims()[0], FIELDS);
        assert_eq!(p.bytes() % FIELDS, 0);
    }

    #[test]
    fn loop_depths_match_table1() {
        assert_eq!(WrfXVec::new(4096).nest().depth(), 3);
        assert_eq!(WrfYVec::new(4096).nest().depth(), 3);
    }
}
