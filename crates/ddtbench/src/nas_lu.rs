//! NAS LU face exchanges.
//!
//! * `NAS_LU_x` — the x-direction face is **contiguous** in memory (the
//!   derived datatype collapses to `MPI_Type_contiguous`); manual code
//!   still writes 2 nested loops. One giant region.
//! * `NAS_LU_y` — the y-direction face gathers 5-double flux vectors at a
//!   non-contiguous stride: many tiny runs, the case where the paper finds
//!   region transfer *loses* to packing (Fig 10).

use crate::nestpat::NestPattern;
use crate::pattern::PatternInfo;
use mpicd::LoopNest;
use mpicd_datatype::{Datatype, Primitive};

/// Bytes of one flux vector (5 doubles), the LU unit of transfer.
pub const FLUX: usize = 40;

/// The contiguous x-face.
pub struct NasLuX;

impl NasLuX {
    /// Build a workload of roughly `target_bytes` payload.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(target_bytes: usize) -> NestPattern {
        let bytes = (target_bytes.max(FLUX) / FLUX) * FLUX;
        // The whole face is one contiguous run.
        let nest = LoopNest::new(vec![1], vec![0], bytes).expect("valid nest");
        // What the application declares: MPI_Type_contiguous over doubles.
        let dt = Datatype::contiguous(bytes / 8, Datatype::Predefined(Primitive::Double));
        NestPattern::new(
            PatternInfo {
                name: "NAS_LU_x",
                mpi_datatypes: "contiguous",
                loop_structure: "2 nested loops",
                memory_regions: true,
            },
            nest,
            dt,
            0x1B01,
        )
    }
}

/// The strided y-face.
pub struct NasLuY;

impl NasLuY {
    /// Build a workload of roughly `target_bytes` payload.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(target_bytes: usize) -> NestPattern {
        // ny flux vectors per plane, nz planes; each flux vector strided by
        // 4 flux widths in x (non-contiguous).
        let ny = 32usize;
        let nz = (target_bytes / (FLUX * ny)).max(1);
        let s_j = 4 * FLUX as isize; // gap between flux vectors in a plane
        let s_k = ny as isize * s_j; // plane stride
        let nest = LoopNest::new(vec![nz, ny], vec![s_k, s_j], FLUX).expect("valid nest");
        let dt = NestPattern::nest_datatype(&nest);
        NestPattern::new(
            PatternInfo {
                name: "NAS_LU_y",
                mpi_datatypes: "strided vector",
                loop_structure: "2 nested loops (non-contiguous)",
                memory_regions: true,
            },
            nest,
            dt,
            0x1B02,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    #[test]
    fn lu_x_is_contiguous() {
        let p = NasLuX::new(64 * 1024);
        assert!(p.committed().is_contiguous());
        assert_eq!(p.region_runs().len(), 1, "one giant region");
        assert_eq!(p.bytes() % FLUX, 0);
    }

    #[test]
    fn lu_y_is_gapped_with_many_small_regions() {
        let p = NasLuY::new(64 * 1024);
        assert!(!p.committed().is_contiguous());
        let runs = p.region_runs();
        assert!(runs.len() > 1000, "many regions: {}", runs.len());
        assert!(runs.iter().all(|(_, l)| *l == FLUX), "each tiny");
    }

    #[test]
    fn payloads_near_target() {
        for target in [4096usize, 1 << 16, 1 << 20] {
            let x = NasLuX::new(target).bytes();
            let y = NasLuY::new(target).bytes();
            assert!(x.abs_diff(target) <= FLUX, "x: {x} vs {target}");
            assert!(y.abs_diff(target) <= FLUX * 32, "y: {y} vs {target}");
        }
    }
}
