//! Generic [`Pattern`] implementation for loop-nest-shaped benchmarks
//! (MILC, NAS LU/MG, WRF). Each benchmark module supplies geometry (a
//! [`LoopNest`]) plus the matching derived datatype; everything else —
//! manual packing, custom contexts, region extraction — is shared here.

// Audited unsafe: nested-pattern raw-memory callbacks; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::custom::{merge_runs, NestPack, NestUnpack, RegionsPack, RegionsUnpack};
use crate::pattern::{fill_slab, Pattern, PatternInfo};
use mpicd::datatype::{CustomPack, CustomUnpack};
use mpicd::LoopNest;
use mpicd_datatype::{Committed, Datatype, Primitive};
use std::sync::Arc;

/// A DDTBench pattern whose access shape is a rectangular loop nest.
pub struct NestPattern {
    info: PatternInfo,
    slab: Vec<u8>,
    nest: LoopNest,
    datatype: Datatype,
    committed: Arc<Committed>,
}

impl NestPattern {
    /// Build from geometry. `datatype` must describe exactly the bytes the
    /// nest touches, in the same pack order (validated here by size and in
    /// the integration tests byte-for-byte).
    pub fn new(info: PatternInfo, nest: LoopNest, datatype: Datatype, seed: u64) -> Self {
        let (min, max) = nest.span();
        assert!(min >= 0, "nest offsets must be non-negative");
        let mut slab = vec![0u8; max as usize];
        fill_slab(&mut slab, seed);
        // Open MPI-style convertor view: the baseline the paper measures.
        let committed = Arc::new(datatype.commit_convertor().expect("valid datatype"));
        assert_eq!(
            committed.size(),
            nest.packed_size(),
            "{}: datatype and nest disagree on payload size",
            info.name
        );
        Self {
            info,
            slab,
            nest,
            datatype,
            committed,
        }
    }

    /// Derived datatype equivalent of a nest: a byte run wrapped in one
    /// hvector per dimension (inner → outer).
    pub fn nest_datatype(nest: &LoopNest) -> Datatype {
        // Describe the run in the widest primitive that divides it (what an
        // application would declare), so the convertor model interprets at
        // realistic granularity.
        let mut t = if nest.run_len().is_multiple_of(8) {
            Datatype::contiguous(nest.run_len() / 8, Datatype::Predefined(Primitive::Double))
        } else {
            Datatype::contiguous(nest.run_len(), Datatype::Predefined(Primitive::Byte))
        };
        for d in (0..nest.depth()).rev() {
            t = Datatype::hvector(nest.dims()[d], 1, nest.strides()[d], t);
        }
        t
    }

    /// The nest's runs as merged `(offset, len)` regions.
    pub fn region_runs(&self) -> Vec<(isize, usize)> {
        let total = self.nest.total_runs();
        let runs = (0..total)
            .map(|r| (self.nest.offset_of_run(r), self.nest.run_len()))
            .collect();
        merge_runs(runs)
    }

    /// The loop nest (geometry inspection / tests).
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }
}

impl Pattern for NestPattern {
    fn info(&self) -> PatternInfo {
        self.info
    }

    fn bytes(&self) -> usize {
        self.nest.packed_size()
    }

    fn pack_manual(&self, out: &mut Vec<u8>) {
        out.clear();
        out.resize(self.bytes(), 0);
        // The hand-written loop nest, expressed through the suspendable
        // cursor (the straight-line equivalent of the app's pack loops).
        let mut cur = self.nest.cursor();
        // SAFETY: slab sized to the nest's span in `new`.
        let n = unsafe { cur.pack_into(self.slab.as_ptr(), out) };
        debug_assert_eq!(n, out.len());
    }

    fn unpack_manual(&mut self, data: &[u8]) {
        let mut cur = self.nest.cursor();
        // SAFETY: as above; exclusive access via &mut self.
        unsafe { cur.unpack_from(self.slab.as_mut_ptr(), data) };
    }

    fn committed(&self) -> Arc<Committed> {
        Arc::clone(&self.committed)
    }

    fn datatype(&self) -> Datatype {
        self.datatype.clone()
    }

    fn base(&self) -> &[u8] {
        &self.slab
    }

    fn base_mut(&mut self) -> &mut [u8] {
        &mut self.slab
    }

    fn custom_pack_ctx(&self) -> Box<dyn CustomPack + '_> {
        Box::new(NestPack::new(self.nest.clone(), &self.slab))
    }

    fn custom_unpack_ctx(&mut self) -> Box<dyn CustomUnpack + '_> {
        Box::new(NestUnpack::new(self.nest.clone(), &mut self.slab))
    }

    fn region_pack_ctx(&self) -> Option<Box<dyn CustomPack + '_>> {
        if !self.info.memory_regions {
            return None;
        }
        Some(Box::new(RegionsPack::new(self.region_runs(), &self.slab)))
    }

    fn region_unpack_ctx(&mut self) -> Option<Box<dyn CustomUnpack + '_>> {
        if !self.info.memory_regions {
            return None;
        }
        let runs = self.region_runs();
        Some(Box::new(RegionsUnpack::new(runs, &mut self.slab)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NestPattern {
        let nest = LoopNest::new(vec![3, 4], vec![512, 64], 32).unwrap();
        let dt = NestPattern::nest_datatype(&nest);
        NestPattern::new(
            PatternInfo {
                name: "sample",
                mpi_datatypes: "strided vector",
                loop_structure: "2 nested loops",
                memory_regions: true,
            },
            nest,
            dt,
            42,
        )
    }

    #[test]
    fn datatype_matches_nest_pack_order() {
        let p = sample();
        let mut manual = Vec::new();
        p.pack_manual(&mut manual);
        let typed = p.committed().pack_slice(p.base(), 1).unwrap();
        assert_eq!(manual, typed, "typemap pack equals loop-nest pack");
    }

    #[test]
    fn custom_ctx_packs_identically() {
        let p = sample();
        let mut manual = Vec::new();
        p.pack_manual(&mut manual);
        let mut ctx = p.custom_pack_ctx();
        assert_eq!(ctx.packed_size().unwrap(), manual.len());
        let mut out = vec![0u8; manual.len()];
        let mut off = 0;
        while off < out.len() {
            let n = ctx.pack(off, &mut out[off..]).unwrap();
            assert!(n > 0);
            off += n;
        }
        assert_eq!(out, manual);
    }

    #[test]
    fn region_runs_cover_payload() {
        let p = sample();
        let total: usize = p.region_runs().iter().map(|(_, l)| l).sum();
        assert_eq!(total, p.bytes());
        // 12 runs of 32 bytes, none adjacent (stride 64 > 32).
        assert_eq!(p.region_runs().len(), 12);
    }

    #[test]
    fn unpack_manual_restores() {
        let mut p = sample();
        let mut before = Vec::new();
        p.pack_manual(&mut before);
        p.clear();
        let mut cleared = Vec::new();
        p.pack_manual(&mut cleared);
        assert!(cleared.iter().all(|b| *b == 0));
        p.unpack_manual(&before);
        let mut after = Vec::new();
        p.pack_manual(&mut after);
        assert_eq!(after, before);
    }

    #[test]
    fn checksum_tracks_payload_only() {
        let mut p = sample();
        let c1 = p.checksum();
        // Mutate a gap byte (offset 32..64 of the first row is a gap).
        p.base_mut()[40] ^= 0xFF;
        assert_eq!(p.checksum(), c1, "gap bytes not communicated");
        p.base_mut()[0] ^= 0xFF;
        assert_ne!(p.checksum(), c1, "payload bytes are");
    }
}
