//! LAMMPS atom exchange: a single loop gathering one `double` from each of
//! six per-atom arrays (positions ×3, velocities ×3) at non-unit-stride
//! index positions — DDTBench's `LAMMPS_atomic` pattern.
//!
//! The access is *irregular* (an index list, not a rectangular nest), so:
//! the derived datatype is an `hindexed` over doubles, the custom pack
//! context is a run-list gather, and memory regions are impracticable
//! (every run is a lone 8-byte double) — exactly Table I's row.

use crate::custom::{RunsPack, RunsUnpack};
use crate::pattern::{fill_slab, Pattern, PatternInfo};
use mpicd::datatype::{CustomPack, CustomUnpack};
use mpicd_datatype::{Committed, Datatype, Primitive};
use std::sync::Arc;

/// Number of per-atom arrays gathered (x, y, z, vx, vy, vz).
pub const ARRAYS: usize = 6;

/// Bytes communicated per exchanged atom.
pub const BYTES_PER_ATOM: usize = ARRAYS * 8;

/// The LAMMPS exchange pattern.
pub struct Lammps {
    /// Six arrays of `cap` doubles each, in one slab (array `s` starts at
    /// byte `s * cap * 8`).
    slab: Vec<u8>,
    /// Byte offsets of the gathered doubles, in pack order
    /// (atom-major: atom 0's six values, then atom 1's, …).
    offsets: Vec<isize>,
    atoms: usize,
    committed: Arc<Committed>,
}

impl Lammps {
    /// Build a workload of roughly `target_bytes` communicated payload.
    pub fn new(target_bytes: usize) -> Self {
        let atoms = (target_bytes / BYTES_PER_ATOM).max(1);
        // Ghost atoms sit at every other index — the non-unit stride.
        let cap = 2 * atoms;
        let mut slab = vec![0u8; ARRAYS * cap * 8];
        fill_slab(&mut slab, 0x11AA);

        let mut offsets = Vec::with_capacity(atoms * ARRAYS);
        for i in 0..atoms {
            let idx = 2 * i;
            for s in 0..ARRAYS {
                offsets.push(((s * cap + idx) * 8) as isize);
            }
        }

        // hindexed over MPI_DOUBLE with one block per gathered value — what
        // the application would build with MPI_Type_create_hindexed.
        let blocks: Vec<(usize, isize)> = offsets.iter().map(|o| (1usize, *o)).collect();
        let dt = Datatype::hindexed(blocks, Datatype::Predefined(Primitive::Double));
        let committed = Arc::new(dt.commit_convertor().expect("valid hindexed type"));
        debug_assert_eq!(committed.size(), atoms * BYTES_PER_ATOM);

        Self {
            slab,
            offsets,
            atoms,
            committed,
        }
    }

    /// Number of exchanged atoms.
    pub fn atoms(&self) -> usize {
        self.atoms
    }
}

impl Pattern for Lammps {
    fn info(&self) -> PatternInfo {
        PatternInfo {
            name: "LAMMPS",
            mpi_datatypes: "indexed, struct",
            loop_structure: "single loop, 6 arrays (non-unit stride)",
            memory_regions: false,
        }
    }

    fn bytes(&self) -> usize {
        self.atoms * BYTES_PER_ATOM
    }

    fn pack_manual(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.bytes());
        // The single application loop: gather six doubles per atom.
        for chunk in self.offsets.chunks_exact(ARRAYS) {
            for off in chunk {
                out.extend_from_slice(&self.slab[*off as usize..*off as usize + 8]);
            }
        }
    }

    fn unpack_manual(&mut self, data: &[u8]) {
        for (off, val) in self.offsets.iter().zip(data.chunks_exact(8)) {
            self.slab[*off as usize..*off as usize + 8].copy_from_slice(val);
        }
    }

    fn committed(&self) -> Arc<Committed> {
        Arc::clone(&self.committed)
    }

    fn datatype(&self) -> Datatype {
        let blocks: Vec<(usize, isize)> = self.offsets.iter().map(|o| (1usize, *o)).collect();
        Datatype::hindexed(blocks, Datatype::Predefined(Primitive::Double))
    }

    fn base(&self) -> &[u8] {
        &self.slab
    }

    fn base_mut(&mut self) -> &mut [u8] {
        &mut self.slab
    }

    fn custom_pack_ctx(&self) -> Box<dyn CustomPack + '_> {
        Box::new(RunsPack::new(self.offsets.clone(), 8, &self.slab))
    }

    fn custom_unpack_ctx(&mut self) -> Box<dyn CustomUnpack + '_> {
        let offsets = self.offsets.clone();
        Box::new(RunsUnpack::new(offsets, 8, &mut self.slab))
    }

    fn region_pack_ctx(&self) -> Option<Box<dyn CustomPack + '_>> {
        None // lone 8-byte doubles: regions impracticable (Table I)
    }

    fn region_unpack_ctx(&mut self) -> Option<Box<dyn CustomUnpack + '_>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_target() {
        let p = Lammps::new(48 * 100);
        assert_eq!(p.atoms(), 100);
        assert_eq!(p.bytes(), 4800);
        assert!(Lammps::new(1).atoms() == 1, "minimum one atom");
    }

    #[test]
    fn manual_pack_matches_datatype_pack() {
        let p = Lammps::new(2000);
        let mut manual = Vec::new();
        p.pack_manual(&mut manual);
        let typed = p.committed().pack_slice(p.base(), 1).unwrap();
        assert_eq!(manual, typed);
    }

    #[test]
    fn custom_ctx_matches_manual() {
        let p = Lammps::new(2000);
        let mut manual = Vec::new();
        p.pack_manual(&mut manual);
        let mut ctx = p.custom_pack_ctx();
        let mut out = vec![0u8; manual.len()];
        let mut off = 0;
        while off < out.len() {
            off += ctx.pack(off, &mut out[off..]).unwrap();
        }
        assert_eq!(out, manual);
    }

    #[test]
    fn unpack_restores_cleared_payload() {
        let mut p = Lammps::new(1024);
        let c = p.checksum();
        let mut packed = Vec::new();
        p.pack_manual(&mut packed);
        p.clear();
        assert_ne!(p.checksum(), c);
        p.unpack_manual(&packed);
        assert_eq!(p.checksum(), c);
    }

    #[test]
    fn no_region_variant() {
        let mut p = Lammps::new(100);
        assert!(p.region_pack_ctx().is_none());
        assert!(p.region_unpack_ctx().is_none());
        assert!(!p.info().memory_regions);
    }

    #[test]
    fn gathered_offsets_skip_every_other_index() {
        let p = Lammps::new(48 * 4); // 4 atoms
                                     // Atom 1's x-array offset is at index 8 of a 8-double array (cap=8).
        assert_eq!(p.offsets[ARRAYS], (2 * 8) as isize);
    }
}
