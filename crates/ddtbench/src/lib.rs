#![warn(missing_docs)]
#![deny(unsafe_code)]
//! # mpicd-ddtbench — the DDTBench subset of the paper (§V-C)
//!
//! DDTBench (Schneider, Gerstenberger, Hoefler — EuroMPI 2012) collects the
//! data-access patterns of real MPI applications as pingpong
//! micro-benchmarks. The paper reproduces a subset and compares, per
//! pattern: manual packing, MPI-datatype packing, direct MPI-datatype
//! communication, and the proposed custom datatype API with packing and/or
//! memory regions. This crate implements the same patterns (Table I):
//!
//! | benchmark | MPI datatypes | loop structure | memory regions |
//! |---|---|---|---|
//! | LAMMPS    | indexed, struct | single loop, 6 arrays (non-unit stride) | — |
//! | MILC      | strided vector  | 5 nested loops (non-unit stride)        | ✓ |
//! | NAS_LU_x  | contiguous      | 2 nested loops                          | ✓ |
//! | NAS_LU_y  | strided vector  | 2 nested loops (non-contiguous)         | ✓ |
//! | NAS_MG_x  | strided vector  | 2 nested loops (non-contiguous)         | ✓ |
//! | NAS_MG_y  | strided vector  | 2 nested loops (non-contiguous)         | ✓ |
//! | WRF_x_vec | struct of strided vectors | 3/4 nested loops (non-contiguous) | — |
//! | WRF_y_vec | struct of strided vectors | 4/5 nested loops (non-contiguous) | — |
//!
//! Every pattern provides all transfer methods over identical data, so the
//! harness (and the tests here) can check that each method moves exactly
//! the same bytes.

pub mod custom;
pub mod lammps;
pub mod milc;
pub mod nas_lu;
pub mod nas_mg;
pub mod nestpat;
pub mod pattern;
pub mod wrf;

pub use pattern::{table1, Pattern, PatternInfo};

/// Every benchmark name, in the paper's Fig 10 order.
pub const BENCHMARKS: [&str; 8] = [
    "LAMMPS",
    "MILC",
    "NAS_LU_x",
    "NAS_LU_y",
    "NAS_MG_x",
    "NAS_MG_y",
    "WRF_x_vec",
    "WRF_y_vec",
];

/// Instantiate a benchmark pattern targeting roughly `target_bytes` of
/// communicated payload. Panics on an unknown name (see [`BENCHMARKS`]).
pub fn make(name: &str, target_bytes: usize) -> Box<dyn Pattern> {
    match name {
        "LAMMPS" => Box::new(lammps::Lammps::new(target_bytes)),
        "MILC" => Box::new(milc::Milc::new(target_bytes)),
        "NAS_LU_x" => Box::new(nas_lu::NasLuX::new(target_bytes)),
        "NAS_LU_y" => Box::new(nas_lu::NasLuY::new(target_bytes)),
        "NAS_MG_x" => Box::new(nas_mg::NasMgX::new(target_bytes)),
        "NAS_MG_y" => Box::new(nas_mg::NasMgY::new(target_bytes)),
        "WRF_x_vec" => Box::new(wrf::WrfXVec::new(target_bytes)),
        "WRF_y_vec" => Box::new(wrf::WrfYVec::new(target_bytes)),
        other => panic!("unknown DDTBench pattern {other:?}"),
    }
}
