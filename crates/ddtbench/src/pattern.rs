//! The common interface every DDTBench pattern implements, plus the
//! Table I metadata.

use mpicd::datatype::{CustomPack, CustomUnpack};
use mpicd_datatype::{Committed, Datatype};
use std::sync::Arc;

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternInfo {
    /// Benchmark name.
    pub name: &'static str,
    /// "MPI Datatypes" column.
    pub mpi_datatypes: &'static str,
    /// "Loop Structure" column.
    pub loop_structure: &'static str,
    /// "Memory Regions" column (✓ where region transfer makes sense).
    pub memory_regions: bool,
}

/// The paper's Table I.
pub fn table1() -> Vec<PatternInfo> {
    vec![
        PatternInfo {
            name: "LAMMPS",
            mpi_datatypes: "indexed, struct",
            loop_structure: "single loop, 6 arrays (non-unit stride)",
            memory_regions: false,
        },
        PatternInfo {
            name: "MILC",
            mpi_datatypes: "strided vector",
            loop_structure: "5 nested loops (non-unit stride)",
            memory_regions: true,
        },
        PatternInfo {
            name: "NAS_LU_x",
            mpi_datatypes: "contiguous",
            loop_structure: "2 nested loops",
            memory_regions: true,
        },
        PatternInfo {
            name: "NAS_LU_y",
            mpi_datatypes: "strided vector",
            loop_structure: "2 nested loops (non-contiguous)",
            memory_regions: true,
        },
        PatternInfo {
            name: "NAS_MG_x",
            mpi_datatypes: "strided vector",
            loop_structure: "2 nested loops (non-contiguous)",
            memory_regions: true,
        },
        PatternInfo {
            name: "NAS_MG_y",
            mpi_datatypes: "strided vector",
            loop_structure: "2 nested loops (non-contiguous)",
            memory_regions: true,
        },
        PatternInfo {
            name: "WRF_x_vec",
            mpi_datatypes: "struct of strided vectors",
            loop_structure: "3/4 nested loops (non-contiguous)",
            memory_regions: false,
        },
        PatternInfo {
            name: "WRF_y_vec",
            mpi_datatypes: "struct of strided vectors",
            loop_structure: "4/5 nested loops (non-contiguous)",
            memory_regions: false,
        },
    ]
}

/// A DDTBench data-access pattern with every transfer method attached.
///
/// All methods communicate the identical payload over the identical
/// application state, so results are directly comparable:
///
/// * `pack_manual`/`unpack_manual` — hand-written packing loops,
/// * `committed` + `base`/`base_mut` — the classic derived-datatype path,
/// * `custom_*_ctx` — the paper's custom serialization API (packing),
/// * `region_*_ctx` — the custom API exposing memory regions instead of
///   packing (only where Table I marks regions as sensible).
pub trait Pattern: Send {
    /// Table I row for this pattern.
    fn info(&self) -> PatternInfo;

    /// Communicated payload bytes.
    fn bytes(&self) -> usize;

    /// Hand-written packing loop (the DDTBench "manual" method).
    fn pack_manual(&self, out: &mut Vec<u8>);

    /// Hand-written unpacking loop; scatters `data` back into the
    /// application state.
    fn unpack_manual(&mut self, data: &[u8]);

    /// The derived datatype describing one face/exchange (count = 1),
    /// relative to [`Self::base`].
    fn committed(&self) -> Arc<Committed>;

    /// The uncommitted datatype tree behind [`Self::committed`], so
    /// callers (the pack-plan ablation) can recommit it with a different
    /// engine flavor (`commit` / `commit_interpreted` / `commit_convertor`).
    fn datatype(&self) -> Datatype;

    /// The raw application state the datatype addresses.
    fn base(&self) -> &[u8];

    /// Mutable view of the application state (receive side).
    fn base_mut(&mut self) -> &mut [u8];

    /// Custom-API pack context (packing variant).
    fn custom_pack_ctx(&self) -> Box<dyn CustomPack + '_>;

    /// Custom-API unpack context (packing variant).
    fn custom_unpack_ctx(&mut self) -> Box<dyn CustomUnpack + '_>;

    /// Custom-API context exposing memory regions (`None` where
    /// impracticable — LAMMPS scattered doubles, WRF loop nests).
    fn region_pack_ctx(&self) -> Option<Box<dyn CustomPack + '_>>;

    /// Receive-side counterpart of [`Self::region_pack_ctx`].
    fn region_unpack_ctx(&mut self) -> Option<Box<dyn CustomUnpack + '_>>;

    /// Checksum over the *communicated* bytes (gaps excluded) for
    /// cross-method verification.
    fn checksum(&self) -> u64 {
        let mut out = Vec::with_capacity(self.bytes());
        self.pack_manual(&mut out);
        fnv1a(&out)
    }

    /// Reset the communicated portion of the state to a sentinel so a
    /// subsequent receive is observable.
    fn clear(&mut self) {
        let zeros = vec![0u8; self.bytes()];
        self.unpack_manual(&zeros);
    }
}

/// FNV-1a over a byte slice (cheap, deterministic verification hash).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic slab fill used by the generators.
pub fn fill_slab(slab: &mut [u8], seed: u64) {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for (i, b) in slab.iter_mut().enumerate() {
        if i % 8 == 0 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        *b = (x >> ((i % 8) * 8)) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_benchmarks() {
        let t = table1();
        assert_eq!(t.len(), 8);
        assert_eq!(
            t.iter().map(|r| r.name).collect::<Vec<_>>(),
            crate::BENCHMARKS.to_vec()
        );
    }

    #[test]
    fn regions_column_matches_paper() {
        for row in table1() {
            let expect = matches!(
                row.name,
                "MILC" | "NAS_LU_x" | "NAS_LU_y" | "NAS_MG_x" | "NAS_MG_y"
            );
            assert_eq!(row.memory_regions, expect, "{}", row.name);
        }
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn fill_slab_is_deterministic() {
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        fill_slab(&mut a, 7);
        fill_slab(&mut b, 7);
        assert_eq!(a, b);
        fill_slab(&mut b, 8);
        assert_ne!(a, b);
    }
}
