//! The custom serialization interface — the paper's Listings 2–5 as Rust
//! traits.
//!
//! A custom datatype is described *per operation* by a pack context (send
//! side) or unpack context (receive side). In the C API these are a bundle
//! of function pointers plus an opaque state object created by `statefn`
//! and released by `freefn`; in Rust, the context value itself is the state
//! (constructed by [`Buffer::send_view`](crate::Buffer::send_view), dropped
//! when the operation completes).

// Audited unsafe: datatype access to caller-owned memory; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::error::Result;
use mpicd_fabric::{FragmentPacker, IovEntry, IovEntryMut};
pub use mpicd_fabric::{RandomAccessPacker, RandomAccessUnpacker};

/// A contiguous memory region exposed for zero-copy sending
/// (one entry of `regionfn`'s output arrays).
#[derive(Debug, Clone, Copy)]
pub struct SendRegion {
    /// Base address. Must stay valid and unmodified until the operation
    /// completes.
    pub ptr: *const u8,
    /// Length in bytes.
    pub len: usize,
}

unsafe impl Send for SendRegion {}

impl SendRegion {
    /// Expose a slice as a region.
    pub fn from_slice(s: &[u8]) -> Self {
        Self {
            ptr: s.as_ptr(),
            len: s.len(),
        }
    }

    /// Expose a typed slice as a region of raw bytes.
    pub fn from_typed<T: Copy>(s: &[T]) -> Self {
        Self {
            ptr: s.as_ptr().cast(),
            len: std::mem::size_of_val(s),
        }
    }
}

/// A contiguous memory region exposed for zero-copy receiving.
#[derive(Debug, Clone, Copy)]
pub struct RecvRegion {
    /// Base address. Must stay valid and exclusively available until the
    /// operation completes.
    pub ptr: *mut u8,
    /// Length in bytes.
    pub len: usize,
}

unsafe impl Send for RecvRegion {}

impl RecvRegion {
    /// Expose a mutable slice as a region.
    pub fn from_slice(s: &mut [u8]) -> Self {
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
        }
    }

    /// Expose a typed mutable slice as a region of raw bytes.
    pub fn from_typed<T: Copy>(s: &mut [T]) -> Self {
        Self {
            ptr: s.as_mut_ptr().cast(),
            len: std::mem::size_of_val(s),
        }
    }
}

/// Send-side custom serialization context (pack state).
///
/// Equivalent to the paper's `queryfn` + `packfn` + `region_countfn` +
/// `regionfn` callbacks operating on one buffer/count pair, with the state
/// object folded into `self`.
///
/// # Safety-relevant contract
/// Regions returned by [`Self::regions`] must point into memory owned by
/// (or borrowed by) this context and stay valid until the context is
/// dropped.
///
/// # Example
///
/// The paper's canonical shape — a small packed header plus a zero-copy
/// payload region — sent as **one** message through
/// [`Communicator::send_custom`](crate::Communicator::send_custom):
///
/// ```
/// use mpicd::{CustomPack, CustomUnpack, RecvRegion, Result, SendRegion, World};
///
/// /// Sends an 8-byte length header in-band; the payload travels as a
/// /// zero-copy memory region after the packed stream.
/// struct Pack<'a> { data: &'a [u8] }
///
/// impl CustomPack for Pack<'_> {
///     fn packed_size(&self) -> Result<usize> { Ok(8) }
///     fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
///         let hdr = (self.data.len() as u64).to_le_bytes();
///         let n = dst.len().min(8 - offset);
///         dst[..n].copy_from_slice(&hdr[offset..offset + n]);
///         Ok(n)
///     }
///     fn regions(&mut self) -> Result<Vec<SendRegion>> {
///         Ok(vec![SendRegion::from_slice(self.data)])
///     }
/// }
///
/// struct Unpack<'a> { len: u64, data: &'a mut [u8] }
///
/// impl CustomUnpack for Unpack<'_> {
///     fn packed_size(&self) -> Result<usize> { Ok(8) }
///     fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()> {
///         let mut hdr = self.len.to_le_bytes();
///         hdr[offset..offset + src.len()].copy_from_slice(src);
///         self.len = u64::from_le_bytes(hdr);
///         Ok(())
///     }
///     fn regions(&mut self) -> Result<Vec<RecvRegion>> {
///         Ok(vec![RecvRegion::from_slice(self.data)])
///     }
/// }
///
/// let world = World::new(2);
/// let (rank0, rank1) = world.pair();
/// let payload = vec![7u8; 4096];
/// let mut recv = vec![0u8; 4096];
/// let mut ctx = Unpack { len: 0, data: &mut recv };
/// std::thread::scope(|s| {
///     s.spawn(|| rank0.send_custom(Box::new(Pack { data: &payload }), 1, 0).unwrap());
///     s.spawn(|| rank1.recv_custom(&mut ctx, 0, 0).unwrap());
/// });
/// assert_eq!(ctx.len, 4096);
/// drop(ctx);
/// assert_eq!(recv, payload);
/// ```
pub trait CustomPack: Send {
    /// Total number of bytes [`Self::pack`] will produce (`queryfn`).
    fn packed_size(&self) -> Result<usize>;

    /// Produce packed bytes starting at virtual byte `offset` into `dst`.
    ///
    /// May fill `dst` only partially (return `used < dst.len()`); the
    /// engine re-invokes at the advanced offset. Must make progress: a
    /// return of `Ok(0)` while bytes remain aborts the operation.
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize>;

    /// Contiguous regions to send directly after the packed stream
    /// (`region_countfn` + `regionfn`). Default: none (pure packing).
    fn regions(&mut self) -> Result<Vec<SendRegion>> {
        Ok(Vec::new())
    }

    /// Whether fragments must reach the peer's unpacker in order
    /// (Listing 2's `inorder` flag). Defaults to `true`, the conservative
    /// choice; implementations that are offset-addressed can return `false`
    /// to let advanced transports reorder.
    fn inorder(&self) -> bool {
        true
    }

    /// Offset-addressed concurrent view of this context, if it has one.
    ///
    /// Returning `Some` asserts that [`RandomAccessPacker::pack_at`] calls
    /// with disjoint offset ranges may run concurrently from several
    /// threads; the fabric's parallel fragment pipeline then packs this
    /// send's fragments in parallel. The default (`None`) keeps the context
    /// on the serial engine — correct for any stateful/streaming packer.
    fn random_access(&self) -> Option<&dyn RandomAccessPacker> {
        None
    }

    /// 64-bit structural signature of the datatype this context serializes,
    /// compared against the receiver's under `MPICD_TYPECHECK` (see
    /// `mpicd_datatype::signature64`). The default `0` means "unchecked" —
    /// hand-written contexts with no declared type map opt out.
    fn type_signature(&self) -> u64 {
        0
    }
}

/// Receive-side custom serialization context (unpack state).
pub trait CustomUnpack: Send {
    /// Exact number of packed-stream bytes this receive expects. The
    /// receive side must know component lengths in advance (paper §VI);
    /// protocols that cannot know ship a header first (see `mpicd-pickle`).
    fn packed_size(&self) -> Result<usize>;

    /// Consume a fragment whose first byte is virtual offset `offset` of
    /// the packed stream (`unpackfn`).
    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()>;

    /// Contiguous destinations for the directly-sent regions.
    fn regions(&mut self) -> Result<Vec<RecvRegion>> {
        Ok(Vec::new())
    }

    /// Called once after every packed byte and region has arrived; a last
    /// chance to validate and finish reconstruction.
    fn finish(&mut self) -> Result<()> {
        Ok(())
    }

    /// Offset-addressed concurrent view of this context, if it has one.
    ///
    /// Returning `Some` asserts that [`RandomAccessUnpacker::unpack_at`]
    /// calls with disjoint packed-stream ranges write disjoint memory and
    /// may run concurrently. The default (`None`) keeps the context on the
    /// serial engine.
    fn random_access(&self) -> Option<&dyn RandomAccessUnpacker> {
        None
    }

    /// 64-bit structural signature of the datatype this context expects,
    /// compared against the sender's under `MPICD_TYPECHECK`. The default
    /// `0` means "unchecked".
    fn type_signature(&self) -> u64 {
        0
    }
}

// ---- adapters into the fabric's generic-datatype path ----------------------

/// Wraps a `CustomPack` as a fabric fragment packer.
pub(crate) struct PackAdapter<'a>(pub Box<dyn CustomPack + 'a>);

impl FragmentPacker for PackAdapter<'_> {
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> std::result::Result<usize, i32> {
        self.0.pack(offset, dst).map_err(|e| e.code())
    }

    fn random_access(&self) -> Option<&dyn RandomAccessPacker> {
        self.0.random_access()
    }
}

pub(crate) fn send_regions_to_iov(regions: &[SendRegion]) -> Vec<IovEntry> {
    regions
        .iter()
        .map(|r| IovEntry {
            ptr: r.ptr,
            len: r.len,
        })
        .collect()
}

pub(crate) fn recv_regions_to_iov(regions: &[RecvRegion]) -> Vec<IovEntryMut> {
    regions
        .iter()
        .map(|r| IovEntryMut {
            ptr: r.ptr,
            len: r.len,
        })
        .collect()
}

/// Convenience `CustomPack` for a borrowed byte slice plus a pre-packed
/// header — useful in tests and simple protocols.
pub struct HeaderAndRegion<'a> {
    header: Vec<u8>,
    region: &'a [u8],
}

impl<'a> HeaderAndRegion<'a> {
    /// Pack `header` in-band and expose `region` for direct transfer.
    pub fn new(header: Vec<u8>, region: &'a [u8]) -> Self {
        Self { header, region }
    }
}

impl CustomPack for HeaderAndRegion<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.header.len())
    }

    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        let n = dst.len().min(self.header.len() - offset);
        dst[..n].copy_from_slice(&self.header[offset..offset + n]);
        Ok(n)
    }

    fn regions(&mut self) -> Result<Vec<SendRegion>> {
        Ok(vec![SendRegion::from_slice(self.region)])
    }

    fn inorder(&self) -> bool {
        false // offset-addressed; order-independent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    #[test]
    fn regions_from_typed_slices() {
        let data = [1i32, 2, 3];
        let r = SendRegion::from_typed(&data);
        assert_eq!(r.len, 12);
        let mut out = [0f64; 4];
        let r = RecvRegion::from_typed(&mut out);
        assert_eq!(r.len, 32);
    }

    #[test]
    fn header_and_region_packs_header() {
        let body = [9u8; 100];
        let mut ctx = HeaderAndRegion::new(vec![1, 2, 3, 4], &body);
        assert_eq!(ctx.packed_size().unwrap(), 4);
        let mut dst = [0u8; 2];
        assert_eq!(ctx.pack(0, &mut dst).unwrap(), 2);
        assert_eq!(dst, [1, 2]);
        assert_eq!(ctx.pack(2, &mut dst).unwrap(), 2);
        assert_eq!(dst, [3, 4]);
        let regions = ctx.regions().unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].len, 100);
        assert!(!ctx.inorder());
    }

    #[test]
    fn adapter_translates_error_codes() {
        struct Failing;
        impl CustomPack for Failing {
            fn packed_size(&self) -> Result<usize> {
                Ok(8)
            }
            fn pack(&mut self, _offset: usize, _dst: &mut [u8]) -> Result<usize> {
                Err(Error::Serialization(55))
            }
        }
        let mut a = PackAdapter(Box::new(Failing));
        let mut buf = [0u8; 8];
        assert_eq!(FragmentPacker::pack(&mut a, 0, &mut buf), Err(55));
    }
}
