//! Resumable nested-loop packing — the Rust answer to the paper's C++
//! coroutine experiment (§V-C, Listing 9).
//!
//! Fragment-granular packing must be able to *suspend in the middle of a
//! loop nest* and resume in a later callback. The paper prototypes this
//! with `std::generator`; here we provide two equivalent mechanisms:
//!
//! * [`LoopNest`] — a declarative description of a rectangular loop nest
//!   (per-dimension trip counts and byte strides over a contiguous run).
//!   Because every run has the same length, a packed offset maps onto loop
//!   indices by mixed-radix decomposition, giving *random access*: any
//!   fragment can be produced or consumed independently, in any order.
//! * [`SuspendableCursor`] — an explicit state machine that stores the
//!   current loop indices and position, resuming exactly where it stopped
//!   (no divisions on the hot path). This is the literal translation of
//!   Listing 9's suspended coroutine, and is what the DDTBench custom
//!   packers use for their 2–5-deep nests.

// Audited unsafe: offset-addressed cursors over raw memory; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::error::{Error, Result};
use mpicd_obs::Counter;
use std::sync::{Arc, OnceLock};

/// Process-global counters for the suspendable cursor — how many
/// fragment-granular pack/unpack calls the Listing 9 analogue served, and
/// how many of them *suspended mid-nest* (fragment boundary fell inside the
/// loop nest) rather than finishing the traversal. Plain relaxed counters,
/// always on; they surface in `mpicd_obs::export::summary()` and the
/// `MPICD_METRICS_JSON` snapshot.
struct CursorMetrics {
    pack_calls: Arc<Counter>,
    unpack_calls: Arc<Counter>,
    suspensions: Arc<Counter>,
}

fn cursor_metrics() -> &'static CursorMetrics {
    static METRICS: OnceLock<CursorMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = mpicd_obs::global();
        CursorMetrics {
            pack_calls: g.counter("core.cursor.pack_calls"),
            unpack_calls: g.counter("core.cursor.unpack_calls"),
            suspensions: g.counter("core.cursor.suspensions"),
        }
    })
}

/// A rectangular loop nest over contiguous runs of bytes.
///
/// Iteration is lexicographic over `dims` (outermost first); the run at
/// indices `i₀, i₁, …` starts at byte `Σ iₖ · strides[k]` from the base and
/// is `run_len` bytes long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    dims: Vec<usize>,
    strides: Vec<isize>,
    run_len: usize,
    /// `suffix[d]` = product of `dims[d+1..]` — how many runs one step of
    /// dimension `d` spans. Precomputed at construction so the per-fragment
    /// random-access path decomposes a flat run index with one div/mod
    /// chain instead of re-deriving the radices every call.
    suffix: Vec<usize>,
}

impl LoopNest {
    /// Describe a loop nest. `dims` and `strides` must have equal length.
    pub fn new(dims: Vec<usize>, strides: Vec<isize>, run_len: usize) -> Result<Self> {
        if dims.len() != strides.len() {
            return Err(Error::Unsupported("dims/strides length mismatch"));
        }
        let mut suffix = vec![1usize; dims.len()];
        for d in (0..dims.len().saturating_sub(1)).rev() {
            suffix[d] = suffix[d + 1] * dims[d + 1];
        }
        Ok(Self {
            dims,
            strides,
            run_len,
            suffix,
        })
    }

    /// Total number of contiguous runs.
    pub fn total_runs(&self) -> usize {
        self.dims.iter().product()
    }

    /// Total packed bytes.
    pub fn packed_size(&self) -> usize {
        self.total_runs() * self.run_len
    }

    /// Number of dimensions.
    pub fn depth(&self) -> usize {
        self.dims.len()
    }

    /// Length of one contiguous run in bytes.
    pub fn run_len(&self) -> usize {
        self.run_len
    }

    /// Per-dimension trip counts (outermost first).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Per-dimension byte strides (outermost first).
    pub fn strides(&self) -> &[isize] {
        &self.strides
    }

    /// Byte offset (from base) of run `run` (mixed-radix decomposition of
    /// the flat run index, using the precomputed suffix products).
    pub fn offset_of_run(&self, mut run: usize) -> isize {
        let mut off = 0isize;
        for d in 0..self.dims.len() {
            let idx = (run / self.suffix[d]) % self.dims[d];
            run %= self.suffix[d];
            off += idx as isize * self.strides[d];
        }
        off
    }

    /// `(min, max)` byte offsets touched, for bounds checking: min start and
    /// max end over all runs.
    pub fn span(&self) -> (isize, isize) {
        if self.total_runs() == 0 || self.run_len == 0 {
            return (0, 0);
        }
        let mut min = 0isize;
        let mut max = 0isize;
        for d in 0..self.dims.len() {
            let reach = (self.dims[d] as isize - 1) * self.strides[d];
            if reach < 0 {
                min += reach;
            } else {
                max += reach;
            }
        }
        (min, max + self.run_len as isize)
    }

    /// Produce packed bytes `[offset, offset + dst.len())`.
    ///
    /// # Safety
    /// `base` must be valid for reads over the nest's whole [`Self::span`].
    pub unsafe fn pack_segment(&self, base: *const u8, offset: usize, dst: &mut [u8]) -> usize {
        self.segment_op(offset, dst.len(), |mem, seg, n| {
            std::ptr::copy_nonoverlapping(base.offset(mem), dst.as_mut_ptr().add(seg), n);
        })
    }

    /// Consume packed bytes `[offset, offset + src.len())`.
    ///
    /// # Safety
    /// `base` must be valid for writes over the nest's whole [`Self::span`].
    pub unsafe fn unpack_segment(&self, base: *mut u8, offset: usize, src: &[u8]) -> usize {
        self.segment_op(offset, src.len(), |mem, seg, n| {
            std::ptr::copy_nonoverlapping(src.as_ptr().add(seg), base.offset(mem), n);
        })
    }

    fn segment_op(
        &self,
        offset: usize,
        seg_len: usize,
        mut op: impl FnMut(isize, usize, usize),
    ) -> usize {
        if self.run_len == 0 {
            return 0;
        }
        let total = self.packed_size();
        if offset >= total {
            return 0;
        }
        let mut run = offset / self.run_len;
        let mut within = offset % self.run_len;
        // Decompose the starting run once (suffix-product div/mod chain),
        // then advance odometer-style — subsequent runs cost a few adds,
        // not a full mixed-radix decomposition each.
        let mut indices = vec![0usize; self.dims.len()];
        let mut mem = 0isize;
        let mut r = run;
        for (d, slot) in indices.iter_mut().enumerate() {
            let idx = (r / self.suffix[d]) % self.dims[d];
            r %= self.suffix[d];
            *slot = idx;
            mem += idx as isize * self.strides[d];
        }
        let mut done = 0usize;
        let runs = self.total_runs();
        while run < runs && done < seg_len {
            let n = (self.run_len - within).min(seg_len - done);
            op(mem + within as isize, done, n);
            done += n;
            within += n;
            if within == self.run_len {
                run += 1;
                within = 0;
                for d in (0..indices.len()).rev() {
                    indices[d] += 1;
                    mem += self.strides[d];
                    if indices[d] < self.dims[d] {
                        break;
                    }
                    mem -= self.dims[d] as isize * self.strides[d];
                    indices[d] = 0;
                }
            }
        }
        done
    }

    /// Safe full pack: bounds-checked against `src`.
    pub fn pack_slice(&self, src: &[u8]) -> Result<Vec<u8>> {
        self.check_bounds(src.len())?;
        let mut out = vec![0u8; self.packed_size()];
        // SAFETY: bounds checked.
        let n = unsafe { self.pack_segment(src.as_ptr(), 0, &mut out) };
        debug_assert_eq!(n, out.len());
        Ok(out)
    }

    /// Safe full unpack: bounds-checked against `dst`.
    pub fn unpack_slice(&self, packed: &[u8], dst: &mut [u8]) -> Result<()> {
        self.check_bounds(dst.len())?;
        if packed.len() < self.packed_size() {
            return Err(Error::InvalidHeader("packed stream shorter than nest"));
        }
        // SAFETY: bounds checked.
        unsafe { self.unpack_segment(dst.as_mut_ptr(), 0, packed) };
        Ok(())
    }

    fn check_bounds(&self, region: usize) -> Result<()> {
        let (min, max) = self.span();
        if min < 0 {
            return Err(Error::Unsupported(
                "negative offsets need the raw (unsafe) API",
            ));
        }
        if max as usize > region {
            return Err(Error::LengthMismatch {
                expected: max as usize,
                got: region,
            });
        }
        Ok(())
    }

    /// Begin a suspendable traversal (Listing 9 analogue).
    pub fn cursor(&self) -> SuspendableCursor<'_> {
        SuspendableCursor {
            nest: self,
            indices: vec![0; self.dims.len()],
            within: 0,
            current: 0,
            finished: self.total_runs() == 0 || self.run_len == 0,
        }
    }
}

/// Explicit-state resumable traversal of a [`LoopNest`] — suspend anywhere
/// (even mid-run), resume without recomputing indices.
///
/// This is the coroutine replacement: where Listing 9 does `co_yield` inside
/// the `m`-loop and later resumes, the cursor stores the live indices in
/// `self` and each [`Self::pack_into`] call continues the same traversal.
pub struct SuspendableCursor<'a> {
    nest: &'a LoopNest,
    /// Current loop indices, outermost first.
    indices: Vec<usize>,
    /// Bytes already consumed of the current run.
    within: usize,
    /// Memory offset of the current run's start.
    current: isize,
    finished: bool,
}

impl SuspendableCursor<'_> {
    /// Has the traversal emitted every byte?
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Current loop indices (outermost first) — observable suspension state.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Pack as many bytes as fit into `dst`, suspending mid-nest when the
    /// fragment fills. Returns bytes written.
    ///
    /// # Safety
    /// `base` must be valid for reads over the nest's whole span.
    pub unsafe fn pack_into(&mut self, base: *const u8, dst: &mut [u8]) -> usize {
        let m = cursor_metrics();
        m.pack_calls.inc();
        let mut done = 0usize;
        while !self.finished && done < dst.len() {
            let n = (self.nest.run_len - self.within).min(dst.len() - done);
            std::ptr::copy_nonoverlapping(
                base.offset(self.current + self.within as isize),
                dst.as_mut_ptr().add(done),
                n,
            );
            done += n;
            self.within += n;
            if self.within == self.nest.run_len {
                self.within = 0;
                self.advance();
            }
        }
        if !self.finished {
            m.suspensions.inc();
        }
        done
    }

    /// Unpack as many bytes as `src` provides, suspending mid-nest.
    ///
    /// # Safety
    /// `base` must be valid for writes over the nest's whole span.
    pub unsafe fn unpack_from(&mut self, base: *mut u8, src: &[u8]) -> usize {
        let m = cursor_metrics();
        m.unpack_calls.inc();
        let mut done = 0usize;
        while !self.finished && done < src.len() {
            let n = (self.nest.run_len - self.within).min(src.len() - done);
            std::ptr::copy_nonoverlapping(
                src.as_ptr().add(done),
                base.offset(self.current + self.within as isize),
                n,
            );
            done += n;
            self.within += n;
            if self.within == self.nest.run_len {
                self.within = 0;
                self.advance();
            }
        }
        if !self.finished {
            m.suspensions.inc();
        }
        done
    }

    /// Odometer step over the loop indices (innermost fastest), maintaining
    /// the current memory offset incrementally — no divisions.
    fn advance(&mut self) {
        for d in (0..self.indices.len()).rev() {
            self.indices[d] += 1;
            self.current += self.nest.strides[d];
            if self.indices[d] < self.nest.dims[d] {
                return;
            }
            // Wrap this dimension and carry outward.
            self.current -= self.nest.dims[d] as isize * self.nest.strides[d];
            self.indices[d] = 0;
        }
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NAS_LU_y-like pattern: pack a column slab out of a 2-D array.
    /// dims = [DIM3-1, DIM1], run = one f64.
    fn lu_y_nest(dim1: usize, dim3: usize) -> LoopNest {
        LoopNest::new(vec![dim3 - 1, dim1], vec![(dim1 * 8) as isize, 8], 8).unwrap()
    }

    #[test]
    fn packed_size_and_span() {
        let nest = lu_y_nest(10, 5);
        assert_eq!(nest.total_runs(), 40);
        assert_eq!(nest.packed_size(), 320);
        let (min, max) = nest.span();
        assert_eq!(min, 0);
        assert_eq!(max, (3 * 80 + 9 * 8 + 8) as isize);
    }

    #[test]
    fn offset_of_run_mixed_radix() {
        let nest = LoopNest::new(vec![2, 3], vec![100, 10], 4).unwrap();
        assert_eq!(nest.offset_of_run(0), 0);
        assert_eq!(nest.offset_of_run(1), 10);
        assert_eq!(nest.offset_of_run(2), 20);
        assert_eq!(nest.offset_of_run(3), 100);
        assert_eq!(nest.offset_of_run(5), 120);
    }

    /// The naive per-call decomposition `offset_of_run` used before the
    /// suffix products were hoisted to construction time.
    fn naive_offset_of_run(nest: &LoopNest, mut run: usize) -> isize {
        let mut off = 0isize;
        for d in (0..nest.dims().len()).rev() {
            let idx = run % nest.dims()[d];
            run /= nest.dims()[d];
            off += idx as isize * nest.strides()[d];
        }
        off
    }

    #[test]
    fn suffix_products_match_naive_decomposition() {
        for nest in [
            LoopNest::new(vec![2, 3], vec![100, 10], 4).unwrap(),
            LoopNest::new(vec![5, 4, 3, 2], vec![-700, 130, -17, 8], 3).unwrap(),
            LoopNest::new(vec![7], vec![32], 16).unwrap(),
            LoopNest::new(Vec::new(), Vec::new(), 8).unwrap(),
        ] {
            for run in 0..nest.total_runs() {
                assert_eq!(
                    nest.offset_of_run(run),
                    naive_offset_of_run(&nest, run),
                    "dims {:?} run {run}",
                    nest.dims()
                );
            }
        }
    }

    #[test]
    fn pack_slice_gathers_strided_runs() {
        let nest = LoopNest::new(vec![3], vec![8], 4).unwrap(); // every other 4 bytes
        let src: Vec<u8> = (0..24).collect();
        let packed = nest.pack_slice(&src).unwrap();
        assert_eq!(packed, vec![0, 1, 2, 3, 8, 9, 10, 11, 16, 17, 18, 19]);
    }

    #[test]
    fn unpack_inverts_pack() {
        let nest = lu_y_nest(7, 4);
        let (_, max) = nest.span();
        let src: Vec<u8> = (0..max as usize).map(|i| (i % 251) as u8).collect();
        let packed = nest.pack_slice(&src).unwrap();
        let mut dst = vec![0u8; max as usize];
        nest.unpack_slice(&packed, &mut dst).unwrap();
        let repacked = nest.pack_slice(&dst).unwrap();
        assert_eq!(repacked, packed);
    }

    #[test]
    fn segments_agree_with_full_pack_any_granularity() {
        let nest = lu_y_nest(13, 6);
        let (_, max) = nest.span();
        let src: Vec<u8> = (0..max as usize).map(|i| (i * 7 % 256) as u8).collect();
        let full = nest.pack_slice(&src).unwrap();
        for frag in [1usize, 3, 8, 17, 64, 1000] {
            let mut acc = Vec::new();
            let mut off = 0;
            loop {
                let mut buf = vec![0u8; frag];
                let n = unsafe { nest.pack_segment(src.as_ptr(), off, &mut buf) };
                if n == 0 {
                    break;
                }
                acc.extend_from_slice(&buf[..n]);
                off += n;
            }
            assert_eq!(acc, full, "fragment size {frag}");
        }
    }

    #[test]
    fn cursor_suspends_mid_run_and_matches_offset_api() {
        let nest = lu_y_nest(9, 5);
        let (_, max) = nest.span();
        let src: Vec<u8> = (0..max as usize).map(|i| (i * 3 % 256) as u8).collect();
        let full = nest.pack_slice(&src).unwrap();

        let mut cur = nest.cursor();
        let mut acc = Vec::new();
        // Fragment sizes chosen to split runs (run_len = 8) awkwardly.
        for frag in [5usize, 3, 11, 7].iter().cycle() {
            if cur.is_finished() {
                break;
            }
            let mut buf = vec![0u8; *frag];
            let n = unsafe { cur.pack_into(src.as_ptr(), &mut buf) };
            acc.extend_from_slice(&buf[..n]);
        }
        assert_eq!(acc, full);
        assert!(cur.is_finished());
    }

    #[test]
    fn cursor_unpack_reconstructs() {
        let nest = LoopNest::new(vec![4, 3], vec![48, 16], 8).unwrap();
        let (_, max) = nest.span();
        let src: Vec<u8> = (0..max as usize).map(|i| (255 - i % 256) as u8).collect();
        let packed = nest.pack_slice(&src).unwrap();

        let mut dst = vec![0u8; max as usize];
        let mut cur = nest.cursor();
        let mut at = 0usize;
        for frag in [9usize, 1, 30, 100] {
            if cur.is_finished() {
                break;
            }
            let take = frag.min(packed.len() - at);
            let n = unsafe { cur.unpack_from(dst.as_mut_ptr(), &packed[at..at + take]) };
            at += n;
        }
        assert_eq!(nest.pack_slice(&dst).unwrap(), packed);
    }

    #[test]
    fn cursor_indices_visible_at_suspension() {
        let nest = LoopNest::new(vec![2, 4], vec![64, 16], 16).unwrap();
        let src = vec![1u8; 256];
        let mut cur = nest.cursor();
        // Consume exactly 3 runs (48 bytes): indices should sit at [0, 3].
        let mut buf = vec![0u8; 48];
        unsafe { cur.pack_into(src.as_ptr(), &mut buf) };
        assert_eq!(cur.indices(), &[0, 3]);
    }

    #[test]
    fn cursor_counters_track_calls_and_suspensions() {
        let nest = LoopNest::new(vec![2, 4], vec![64, 16], 16).unwrap();
        let src = vec![1u8; 256];
        let m = cursor_metrics();
        let (calls0, susp0) = (m.pack_calls.get(), m.suspensions.get());
        let mut cur = nest.cursor();
        // Two partial fragments (suspended mid-nest), then the remainder.
        let mut buf = vec![0u8; 48];
        unsafe { cur.pack_into(src.as_ptr(), &mut buf) };
        unsafe { cur.pack_into(src.as_ptr(), &mut buf) };
        let mut rest = vec![0u8; 128];
        unsafe { cur.pack_into(src.as_ptr(), &mut rest) };
        assert!(cur.is_finished());
        // Other tests exercise cursors concurrently, so the deltas are lower
        // bounds on the process-global counters.
        assert!(m.pack_calls.get() - calls0 >= 3);
        assert!(m.suspensions.get() - susp0 >= 2);
    }

    #[test]
    fn bounds_rejected_for_short_regions() {
        let nest = LoopNest::new(vec![4], vec![16], 8).unwrap();
        let short = vec![0u8; 40]; // needs 3*16+8 = 56
        assert!(nest.pack_slice(&short).is_err());
    }

    #[test]
    fn mismatched_dims_rejected() {
        assert!(LoopNest::new(vec![2, 3], vec![10], 4).is_err());
    }
}
