//! Point-to-point communication: worlds, communicators, blocking and scoped
//! nonblocking operations.
//!
//! Three send/receive paths exist, matching the methods compared throughout
//! the paper's evaluation:
//!
//! 1. **contiguous** — the buffer is already dense bytes ([`Buffer`] yields
//!    [`SendView::Contiguous`]); sent directly (the `rsmpi-bytes-baseline`).
//! 2. **custom** — the buffer serializes through the callback interface;
//!    the wire carries *one* message whose scatter/gather list is
//!    `[packed stream, region…]` (the paper's proposal).
//! 3. **typed** — classic MPI derived datatypes via the `mpicd-datatype`
//!    engine ([`Communicator::send_typed`]); contiguous committed types are
//!    sent directly, gapped ones stream through the type-map pack engine
//!    (the `rsmpi`/Open MPI baseline).

// Audited unsafe: FFI-style buffer handoff into the fabric; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::buffer::{Buffer, BufferMut, RecvView, SendView};
use crate::datatype::{
    recv_regions_to_iov, send_regions_to_iov, CustomPack, CustomUnpack, PackAdapter,
};
use crate::error::{Error, Result};
use mpicd_datatype::engine::{DatatypePacker, DatatypeUnpacker};
use mpicd_datatype::Committed;
use mpicd_fabric::{
    Endpoint, Fabric, FragmentPacker, FragmentUnpacker, IovEntry, IovEntryMut, RecvDesc, Request,
    SendDesc, Tag, WireModel,
};
use std::marker::PhantomData;
use std::sync::Arc;

/// Completion information (MPI's `MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank of the peer that sent the message.
    pub source: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload bytes transferred.
    pub bytes: usize,
}

impl From<mpicd_fabric::matching::Envelope> for Status {
    fn from(e: mpicd_fabric::matching::Envelope) -> Self {
        Self {
            source: e.source,
            tag: e.tag,
            bytes: e.bytes,
        }
    }
}

/// Tag reserved for [`Communicator::barrier`].
const BARRIER_TAG: Tag = i32::MAX - 7;

/// Flight-recorder `Error` aux code for a receive whose `finish()` hook
/// failed *after* the wire transfer completed. Kept above the
/// `FabricError::flight_code` range (1–10) so analyzers can tell transport
/// failures from receiver-side deserialization failures.
const FLIGHT_FINISH_FAILED: u64 = 100;

/// Record a flight `Error` event against `req`'s transfer id (no-op when
/// the recorder was off at post time).
fn flight_finish_error(req: &Request) {
    let fid = req.flight_id();
    if fid != 0 {
        mpicd_obs::flight::record(
            mpicd_obs::flight::FlightEvent::new(mpicd_obs::flight::EventKind::Error, fid)
                .aux(FLIGHT_FINISH_FAILED),
        );
    }
}

/// An in-process MPI world (all ranks share one simulated fabric).
pub struct World {
    fabric: Fabric,
}

impl World {
    /// A world of `size` ranks with the default wire model.
    pub fn new(size: usize) -> Self {
        Self {
            fabric: Fabric::new(size),
        }
    }

    /// A world with an explicit wire model (latency, bandwidth, thresholds).
    pub fn with_model(size: usize, model: WireModel) -> Self {
        Self {
            fabric: Fabric::with_model(size, model),
        }
    }

    /// A world with an explicit wire model *and* fragment-pipeline
    /// configuration, overriding the `MPICD_PIPELINE*` environment knobs
    /// (used by the ablation harness to sweep thread counts).
    pub fn with_model_and_pipeline(
        size: usize,
        model: WireModel,
        pipeline: mpicd_fabric::PipelineConfig,
    ) -> Self {
        Self {
            fabric: Fabric::with_model_and_pipeline(size, model, pipeline),
        }
    }

    /// The fully-explicit constructor: wire model, pipeline, and matching
    /// configuration (match buckets + `MPICD_TYPECHECK` mode), ignoring the
    /// environment. Tests pin the typecheck mode through this so parallel
    /// test binaries never race on the process environment.
    pub fn with_config(
        size: usize,
        model: WireModel,
        pipeline: mpicd_fabric::PipelineConfig,
        matching: mpicd_fabric::MatchConfig,
    ) -> Self {
        Self {
            fabric: Fabric::with_config(size, model, pipeline, matching),
        }
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.fabric.size()
    }

    /// The underlying fabric (wire ledger, traffic statistics).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Communicator for `rank`.
    pub fn comm(&self, rank: usize) -> Communicator {
        Communicator {
            ep: self.fabric.endpoint(rank).expect("rank in range"),
        }
    }

    /// Convenience: communicators for ranks 0 and 1 (the pingpong pair).
    pub fn pair(&self) -> (Communicator, Communicator) {
        assert!(self.size() >= 2, "pair() needs at least two ranks");
        (self.comm(0), self.comm(1))
    }

    /// Communicators for every rank, in rank order.
    pub fn comms(&self) -> Vec<Communicator> {
        (0..self.size()).map(|r| self.comm(r)).collect()
    }
}

/// A rank's handle for point-to-point communication.
#[derive(Clone)]
pub struct Communicator {
    ep: Endpoint,
}

impl Communicator {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.ep.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.ep.size()
    }

    /// Access to the underlying fabric endpoint (statistics, wire ledger).
    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }

    // ---- blocking operations -----------------------------------------------

    /// Blocking send of any [`Buffer`].
    pub fn send<B: Buffer + ?Sized>(&self, buf: &B, dest: usize, tag: Tag) -> Result<Status> {
        let _sp = mpicd_obs::span!("comm.send", "core");
        let req = match buf.send_view() {
            SendView::Contiguous(bytes) => {
                // SAFETY: we wait below, so `bytes` outlives the operation.
                unsafe {
                    self.ep
                        .post_send(SendDesc::Contig(IovEntry::from_slice(bytes)), dest, tag)?
                }
            }
            SendView::Custom(ctx) => {
                // SAFETY: we wait below, so the context (and the regions it
                // references) outlive the operation.
                unsafe { self.post_custom_send(ctx, dest, tag)? }
            }
        };
        Ok(req.wait()?.into())
    }

    /// Blocking receive into any [`BufferMut`].
    pub fn recv<B: BufferMut + ?Sized>(
        &self,
        buf: &mut B,
        source: i32,
        tag: Tag,
    ) -> Result<Status> {
        let _sp = mpicd_obs::span!("comm.recv", "core");
        match buf.recv_view() {
            RecvView::Contiguous(bytes) => {
                // SAFETY: we wait before returning.
                let req = unsafe {
                    self.ep.post_recv(
                        RecvDesc::Contig(IovEntryMut::from_slice(bytes)),
                        source,
                        tag,
                    )?
                };
                Ok(req.wait()?.into())
            }
            RecvView::Custom(mut ctx) => {
                // SAFETY: `ctx` stays alive on this stack frame until after
                // the wait; the fabric stops using the pointer at completion.
                let req = unsafe { self.post_custom_recv(&mut *ctx, source, tag)? };
                let env = req.wait()?;
                if let Err(e) = ctx.finish() {
                    flight_finish_error(&req);
                    return Err(e);
                }
                Ok(env.into())
            }
        }
    }

    /// Blocking send through an explicit custom-serialization context
    /// (bypassing the [`Buffer`] trait — used by the C API and protocol
    /// layers that assemble contexts at runtime).
    pub fn send_custom(
        &self,
        ctx: Box<dyn CustomPack + '_>,
        dest: usize,
        tag: Tag,
    ) -> Result<Status> {
        let _sp = mpicd_obs::span!("comm.send_custom", "core");
        // SAFETY: we wait below, so the context and its regions outlive the
        // operation.
        let req = unsafe { self.post_custom_send(ctx, dest, tag)? };
        Ok(req.wait()?.into())
    }

    /// Blocking receive through an explicit custom-deserialization context.
    /// Runs `finish()` after completion.
    pub fn recv_custom(
        &self,
        ctx: &mut (dyn CustomUnpack + '_),
        source: i32,
        tag: Tag,
    ) -> Result<Status> {
        let _sp = mpicd_obs::span!("comm.recv_custom", "core");
        // SAFETY: `ctx` outlives the wait below.
        let req = unsafe { self.post_custom_recv(ctx, source, tag)? };
        let env = req.wait()?;
        if let Err(e) = ctx.finish() {
            flight_finish_error(&req);
            return Err(e);
        }
        Ok(env.into())
    }

    /// Blocking send with a classic derived datatype (the Open MPI/rsmpi
    /// baseline). `region` is the memory holding `count` elements laid out
    /// with the committed type's extent.
    pub fn send_typed(
        &self,
        region: &[u8],
        count: usize,
        ty: &Arc<Committed>,
        dest: usize,
        tag: Tag,
    ) -> Result<Status> {
        ty.check_bounds(count, region.len())?;
        let _sp = mpicd_obs::span!("comm.send_typed", "core", ty.size() * count);
        // SAFETY: we wait below, so `region` outlives the operation.
        let req = unsafe { self.post_typed_send(region.as_ptr(), count, ty, dest, tag)? };
        Ok(req.wait()?.into())
    }

    /// Blocking receive with a classic derived datatype.
    pub fn recv_typed(
        &self,
        region: &mut [u8],
        count: usize,
        ty: &Arc<Committed>,
        source: i32,
        tag: Tag,
    ) -> Result<Status> {
        ty.check_bounds(count, region.len())?;
        let _sp = mpicd_obs::span!("comm.recv_typed", "core", ty.size() * count);
        // SAFETY: we wait below.
        let req = unsafe { self.post_typed_recv(region.as_mut_ptr(), count, ty, source, tag)? };
        Ok(req.wait()?.into())
    }

    /// Nonblocking probe (like `MPI_Iprobe`).
    pub fn iprobe(&self, source: i32, tag: Tag) -> Option<Status> {
        self.ep.iprobe(source, tag).map(Into::into)
    }

    /// Blocking probe (like `MPI_Probe`).
    pub fn probe(&self, source: i32, tag: Tag) -> Status {
        self.ep.probe(source, tag).into()
    }

    /// Nonblocking matched probe (`MPI_Improbe`): atomically claims the
    /// earliest matching message so a later [`Self::mrecv`] cannot race
    /// with other threads of this rank (the locking problem the paper
    /// attributes to probe-based multi-message protocols, §II-C/§VI).
    pub fn improbe(&self, source: i32, tag: Tag) -> Option<(Status, MatchedMessage)> {
        self.ep
            .improbe(source, tag)
            .map(|(env, msg)| (env.into(), MatchedMessage { msg }))
    }

    /// Blocking matched probe (`MPI_Mprobe`).
    pub fn mprobe(&self, source: i32, tag: Tag) -> (Status, MatchedMessage) {
        let (env, msg) = self.ep.mprobe(source, tag);
        (env.into(), MatchedMessage { msg })
    }

    /// Receive a matched message into a contiguous buffer (`MPI_Mrecv`).
    pub fn mrecv(&self, buf: &mut [u8], msg: MatchedMessage) -> Result<Status> {
        let _sp = mpicd_obs::span!("comm.mrecv", "core", buf.len());
        // SAFETY: we wait before returning.
        let req = unsafe {
            self.ep
                .post_mrecv(RecvDesc::Contig(IovEntryMut::from_slice(buf)), msg.msg)?
        };
        Ok(req.wait()?.into())
    }

    /// Combined send + receive (`MPI_Sendrecv`): posts both nonblocking,
    /// then waits — deadlock-free regardless of peer ordering, the idiom
    /// halo-exchange codes rely on.
    pub fn sendrecv<S, R>(
        &self,
        sbuf: &S,
        dest: usize,
        stag: Tag,
        rbuf: &mut R,
        source: i32,
        rtag: Tag,
    ) -> Result<Status>
    where
        S: Buffer + ?Sized,
        R: BufferMut + ?Sized,
    {
        let _sp = mpicd_obs::span!("comm.sendrecv", "core");
        // Post the receive first, then the send, then wait on both — all
        // borrows live until the end of this call.
        match rbuf.recv_view() {
            RecvView::Contiguous(bytes) => {
                // SAFETY: waited below.
                let rreq = unsafe {
                    self.ep.post_recv(
                        RecvDesc::Contig(IovEntryMut::from_slice(bytes)),
                        source,
                        rtag,
                    )?
                };
                let sreq = self.post_any_send(sbuf, dest, stag)?;
                let status = rreq.wait()?.into();
                sreq.wait()?;
                Ok(status)
            }
            RecvView::Custom(mut ctx) => {
                // SAFETY: ctx outlives the waits below.
                let rreq = unsafe { self.post_custom_recv(&mut *ctx, source, rtag)? };
                let sreq = self.post_any_send(sbuf, dest, stag)?;
                let env = rreq.wait()?;
                if let Err(e) = ctx.finish() {
                    flight_finish_error(&rreq);
                    // Drain the send so the borrow is not left lent out.
                    let _ = sreq.wait();
                    return Err(e);
                }
                sreq.wait()?;
                Ok(env.into())
            }
        }
    }

    /// Post a send for any [`Buffer`] view (helper for [`Self::sendrecv`]).
    fn post_any_send<S: Buffer + ?Sized>(
        &self,
        sbuf: &S,
        dest: usize,
        tag: Tag,
    ) -> Result<Request> {
        match sbuf.send_view() {
            SendView::Contiguous(bytes) => {
                // SAFETY: callers wait before the borrow ends.
                Ok(unsafe {
                    self.ep
                        .post_send(SendDesc::Contig(IovEntry::from_slice(bytes)), dest, tag)?
                })
            }
            // SAFETY: as above.
            SendView::Custom(ctx) => unsafe { self.post_custom_send(ctx, dest, tag) },
        }
    }

    /// Block until every rank has entered the barrier. Requires ranks to be
    /// driven by concurrent threads (a central gather-then-release).
    pub fn barrier(&self) -> Result<()> {
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        let _sp = mpicd_obs::span!("comm.barrier", "core");
        let mut byte = [0u8; 1];
        if self.rank() == 0 {
            for src in 1..n {
                self.ep.recv_bytes(&mut byte, src as i32, BARRIER_TAG)?;
            }
            for dst in 1..n {
                self.ep.send_bytes(&byte, dst, BARRIER_TAG)?;
            }
        } else {
            self.ep.send_bytes(&byte, 0, BARRIER_TAG)?;
            self.ep.recv_bytes(&mut byte, 0, BARRIER_TAG)?;
        }
        Ok(())
    }

    // ---- scoped nonblocking operations --------------------------------------

    /// Run `f` with a [`Scope`] for nonblocking operations. Every operation
    /// posted in the scope is waited before `scope` returns, which is what
    /// makes lending buffers to the fabric sound.
    ///
    /// ```
    /// use mpicd::World;
    /// let world = World::new(2);
    /// let (c0, c1) = world.pair();
    /// let data = vec![1i32, 2, 3];
    /// let mut out = vec![0i32; 3];
    /// // Single-threaded nonblocking pingpong (deterministic benchmarking).
    /// c0.scope(|s| s.isend(&data, 1, 0)).unwrap();
    /// c1.scope(|s| s.irecv(&mut out, 0, 0)).unwrap();
    /// assert_eq!(out, data);
    /// ```
    pub fn scope<'env, R>(&self, f: impl FnOnce(&mut Scope<'env, '_>) -> Result<R>) -> Result<R> {
        let mut scope = Scope {
            comm: self,
            pending: Vec::new(),
            _env: PhantomData,
        };
        let r = f(&mut scope);
        let waited = scope.finish_all();
        match (r, waited) {
            (Ok(v), Ok(())) => Ok(v),
            (Err(e), _) => Err(e),
            (_, Err(e)) => Err(e),
        }
    }

    // ---- descriptor builders (shared by blocking + scoped paths) -----------

    /// Post a nonblocking custom-serialization send without a scope (used
    /// by the C API, whose callers manage buffer lifetimes manually).
    ///
    /// # Safety
    /// The context and all regions it references must outlive the request.
    pub unsafe fn post_custom_send<'a>(
        &self,
        mut ctx: Box<dyn CustomPack + 'a>,
        dest: usize,
        tag: Tag,
    ) -> Result<Request> {
        let packed_size = ctx.packed_size()?;
        let regions = ctx.regions()?;
        let inorder = ctx.inorder();
        let sig = ctx.type_signature();
        let iov = send_regions_to_iov(&regions);
        let packer: Box<dyn FragmentPacker + 'a> = Box::new(PackAdapter(ctx));
        // SAFETY: lifetime extension justified by this function's contract.
        let packer: Box<dyn FragmentPacker + 'static> = std::mem::transmute(packer);
        Ok(self.ep.post_send_sig(
            SendDesc::Generic {
                packer,
                packed_size,
                regions: iov,
                inorder,
            },
            dest,
            tag,
            sig,
        )?)
    }

    /// Post a nonblocking custom-deserialization receive without a scope.
    /// The caller must keep `ctx` alive and untouched until the request
    /// completes (and run `finish()` itself if desired).
    ///
    /// # Safety
    /// `ctx` must outlive the request and not be accessed until it completes.
    pub unsafe fn post_custom_recv(
        &self,
        ctx: &mut (dyn CustomUnpack + '_),
        source: i32,
        tag: Tag,
    ) -> Result<Request> {
        let packed_size = ctx.packed_size()?;
        let regions = ctx.regions()?;
        let sig = ctx.type_signature();
        let iov = recv_regions_to_iov(&regions);
        let ptr: *mut (dyn CustomUnpack + '_) = ctx;
        // SAFETY: lifetime extension justified by this function's contract.
        let ptr: *mut (dyn CustomUnpack + 'static) = std::mem::transmute(ptr);
        Ok(self.ep.post_recv_sig(
            RecvDesc::Generic {
                unpacker: Box::new(UnpackPtr(ptr)),
                packed_size,
                regions: iov,
            },
            source,
            tag,
            sig,
        )?)
    }

    /// Post a nonblocking derived-datatype send without a scope (used by
    /// the benchmark harness and the C API).
    ///
    /// # Safety
    /// `base` must stay valid for reads of `count` elements of `ty` until
    /// the request completes.
    pub unsafe fn post_typed_send(
        &self,
        base: *const u8,
        count: usize,
        ty: &Arc<Committed>,
        dest: usize,
        tag: Tag,
    ) -> Result<Request> {
        // The committed type's structural signature rides along so the
        // receiver can verify the pair under MPICD_TYPECHECK — on the fast
        // path too: dense bytes through the wrong type map are still wrong.
        let sig = ty.signature64();
        if ty.is_contiguous() {
            // Fast path: dense types go out as raw bytes (what Open MPI does
            // for `struct-simple-no-gap` in Fig 6).
            let entry = IovEntry {
                ptr: base,
                len: ty.size() * count,
            };
            Ok(self
                .ep
                .post_send_sig(SendDesc::Contig(entry), dest, tag, sig)?)
        } else {
            // Gapped types stream through the type-map pack engine, fragment
            // by fragment — Open MPI's convertor behaviour (slow in Fig 5).
            let packer = DatatypePacker::new(Arc::clone(ty), base, count);
            let packed_size = packer.packed_size();
            // `inorder: false`: the type-map engine addresses any stream
            // offset directly, so fragments may arrive (or be produced by
            // the parallel pipeline) in any order.
            Ok(self.ep.post_send_sig(
                SendDesc::Generic {
                    packer: Box::new(DtPack(packer)),
                    packed_size,
                    regions: Vec::new(),
                    inorder: false,
                },
                dest,
                tag,
                sig,
            )?)
        }
    }

    /// Post a nonblocking derived-datatype receive without a scope.
    ///
    /// # Safety
    /// `base` must stay valid for writes of `count` elements of `ty` until
    /// the request completes, with no other access in between.
    pub unsafe fn post_typed_recv(
        &self,
        base: *mut u8,
        count: usize,
        ty: &Arc<Committed>,
        source: i32,
        tag: Tag,
    ) -> Result<Request> {
        let sig = ty.signature64();
        if ty.is_contiguous() {
            let entry = IovEntryMut {
                ptr: base,
                len: ty.size() * count,
            };
            Ok(self
                .ep
                .post_recv_sig(RecvDesc::Contig(entry), source, tag, sig)?)
        } else {
            let unpacker = DatatypeUnpacker::new(Arc::clone(ty), base, count);
            let packed_size = unpacker.packed_size();
            Ok(self.ep.post_recv_sig(
                RecvDesc::Generic {
                    unpacker: Box::new(DtUnpack(unpacker)),
                    packed_size,
                    regions: Vec::new(),
                },
                source,
                tag,
                sig,
            )?)
        }
    }
}

/// A message claimed by a matched probe, consumable only via
/// [`Communicator::mrecv`].
#[derive(Debug)]
pub struct MatchedMessage {
    msg: mpicd_fabric::fabric::Message,
}

/// Fabric adapter for the derived-datatype pack engine. Opts into the
/// parallel fragment pipeline: the committed plan addresses any stream
/// offset directly, so disjoint fragments can be packed concurrently.
struct DtPack(DatatypePacker);

impl FragmentPacker for DtPack {
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> std::result::Result<usize, i32> {
        Ok(self.0.pack(offset, dst))
    }

    fn random_access(&self) -> Option<&dyn mpicd_fabric::RandomAccessPacker> {
        Some(self)
    }
}

impl mpicd_fabric::RandomAccessPacker for DtPack {
    fn pack_at(&self, offset: usize, dst: &mut [u8]) -> std::result::Result<usize, i32> {
        Ok(self.0.pack_at(offset, dst))
    }
}

/// Fabric adapter for the derived-datatype unpack engine. Opts into the
/// parallel pipeline: disjoint packed ranges scatter to disjoint typemap
/// blocks, so concurrent unpacking is safe.
struct DtUnpack(DatatypeUnpacker);

impl FragmentUnpacker for DtUnpack {
    fn unpack(&mut self, offset: usize, src: &[u8]) -> std::result::Result<(), i32> {
        self.0.unpack(offset, src);
        Ok(())
    }

    fn random_access(&self) -> Option<&dyn mpicd_fabric::RandomAccessUnpacker> {
        Some(self)
    }
}

impl mpicd_fabric::RandomAccessUnpacker for DtUnpack {
    fn unpack_at(&self, offset: usize, src: &[u8]) -> std::result::Result<(), i32> {
        self.0.unpack_at(offset, src);
        Ok(())
    }
}

/// Fabric adapter delivering fragments through a raw context pointer whose
/// owner outlives the request (see `post_custom_recv`).
struct UnpackPtr(*mut (dyn CustomUnpack + 'static));

// SAFETY: exclusive access alternates between poster and fabric; the post
// contract forbids concurrent use.
unsafe impl Send for UnpackPtr {}

impl FragmentUnpacker for UnpackPtr {
    fn unpack(&mut self, offset: usize, src: &[u8]) -> std::result::Result<(), i32> {
        // SAFETY: the owner keeps the context alive and untouched until
        // completion.
        unsafe { (*self.0).unpack(offset, src) }.map_err(|e| e.code())
    }

    fn random_access(&self) -> Option<&dyn mpicd_fabric::RandomAccessUnpacker> {
        // SAFETY: as above; the view borrows from the live context.
        unsafe { (*self.0).random_access() }
    }
}

/// A pending operation inside a [`Scope`].
struct PendingOp<'env> {
    request: Request,
    /// Receive contexts are kept here so `finish()` can run after completion.
    recv_ctx: Option<Box<dyn CustomUnpack + 'env>>,
}

/// Collects nonblocking operations; everything is waited when the scope
/// ends (or cancelled-then-waited if the closure errors or panics).
pub struct Scope<'env, 'c> {
    comm: &'c Communicator,
    pending: Vec<PendingOp<'env>>,
    _env: PhantomData<&'env mut ()>,
}

impl<'env> Scope<'env, '_> {
    /// Nonblocking send (like `MPI_Isend`).
    pub fn isend<B: Buffer + ?Sized>(&mut self, buf: &'env B, dest: usize, tag: Tag) -> Result<()> {
        let request = match buf.send_view() {
            SendView::Contiguous(bytes) => {
                // SAFETY: the borrow lasts for 'env, which outlives the
                // enclosing `scope` call, which waits.
                unsafe {
                    self.comm.ep.post_send(
                        SendDesc::Contig(IovEntry::from_slice(bytes)),
                        dest,
                        tag,
                    )?
                }
            }
            // SAFETY: as above.
            SendView::Custom(ctx) => unsafe { self.comm.post_custom_send(ctx, dest, tag)? },
        };
        self.pending.push(PendingOp {
            request,
            recv_ctx: None,
        });
        Ok(())
    }

    /// Nonblocking receive (like `MPI_Irecv`).
    pub fn irecv<B: BufferMut + ?Sized>(
        &mut self,
        buf: &'env mut B,
        source: i32,
        tag: Tag,
    ) -> Result<()> {
        match buf.recv_view() {
            RecvView::Contiguous(bytes) => {
                // SAFETY: see `isend`.
                let request = unsafe {
                    self.comm.ep.post_recv(
                        RecvDesc::Contig(IovEntryMut::from_slice(bytes)),
                        source,
                        tag,
                    )?
                };
                self.pending.push(PendingOp {
                    request,
                    recv_ctx: None,
                });
            }
            RecvView::Custom(mut ctx) => {
                // SAFETY: the context is stored in `pending` and outlives
                // the request; `finish_all` runs `finish()` after the wait.
                let request = unsafe { self.comm.post_custom_recv(&mut *ctx, source, tag)? };
                self.pending.push(PendingOp {
                    request,
                    recv_ctx: Some(ctx),
                });
            }
        }
        Ok(())
    }

    /// Nonblocking derived-datatype send.
    pub fn isend_typed(
        &mut self,
        region: &'env [u8],
        count: usize,
        ty: &Arc<Committed>,
        dest: usize,
        tag: Tag,
    ) -> Result<()> {
        ty.check_bounds(count, region.len())?;
        // SAFETY: see `isend`.
        let request = unsafe {
            self.comm
                .post_typed_send(region.as_ptr(), count, ty, dest, tag)?
        };
        self.pending.push(PendingOp {
            request,
            recv_ctx: None,
        });
        Ok(())
    }

    /// Nonblocking derived-datatype receive.
    pub fn irecv_typed(
        &mut self,
        region: &'env mut [u8],
        count: usize,
        ty: &Arc<Committed>,
        source: i32,
        tag: Tag,
    ) -> Result<()> {
        ty.check_bounds(count, region.len())?;
        // SAFETY: see `isend`.
        let request = unsafe {
            self.comm
                .post_typed_recv(region.as_mut_ptr(), count, ty, source, tag)?
        };
        self.pending.push(PendingOp {
            request,
            recv_ctx: None,
        });
        Ok(())
    }

    /// Nonblocking send through an explicit custom-serialization context.
    pub fn isend_custom(
        &mut self,
        ctx: Box<dyn CustomPack + 'env>,
        dest: usize,
        tag: Tag,
    ) -> Result<()> {
        // SAFETY: 'env outlives the enclosing `scope` call, which waits.
        let request = unsafe { self.comm.post_custom_send(ctx, dest, tag)? };
        self.pending.push(PendingOp {
            request,
            recv_ctx: None,
        });
        Ok(())
    }

    /// Nonblocking receive through an explicit custom-deserialization
    /// context; `finish()` runs when the scope waits.
    pub fn irecv_custom(
        &mut self,
        mut ctx: Box<dyn CustomUnpack + 'env>,
        source: i32,
        tag: Tag,
    ) -> Result<()> {
        // SAFETY: the context is stored in `pending` until the wait.
        let request = unsafe { self.comm.post_custom_recv(&mut *ctx, source, tag)? };
        self.pending.push(PendingOp {
            request,
            recv_ctx: Some(ctx),
        });
        Ok(())
    }

    /// Number of not-yet-waited operations.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Wait for every pending operation; first error wins but everything is
    /// drained (so no buffer stays lent to the fabric).
    fn finish_all(&mut self) -> Result<()> {
        let _sp = mpicd_obs::span!("comm.wait", "core");
        let mut first_err: Option<Error> = None;
        for mut op in self.pending.drain(..) {
            match op.request.wait() {
                Ok(_) => {
                    if let Some(ctx) = op.recv_ctx.as_mut() {
                        if let Err(e) = ctx.finish() {
                            flight_finish_error(&op.request);
                            first_err.get_or_insert(e);
                        }
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(Error::Fabric(e));
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // The closure panicked (normal exits drain via finish_all): cancel
        // what we can, then wait so no borrowed buffer stays lent out.
        for op in &self.pending {
            op.request.cancel();
        }
        for op in self.pending.drain(..) {
            let _ = op.request.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpicd_datatype::Datatype;

    #[test]
    fn contiguous_send_recv() {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let data = vec![1i32, 2, 3, 4];
        let mut out = vec![0i32; 4];
        c0.scope(|s| s.isend(&data, 1, 0)).unwrap();
        let st = c1.recv(&mut out, 0, 0).unwrap();
        assert_eq!(out, data);
        assert_eq!(st.bytes, 16);
        assert_eq!(st.source, 0);
    }

    #[test]
    fn scoped_pingpong_single_thread() {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let data = vec![0.5f64; 128];
        let mut echo = vec![0f64; 128];
        for _ in 0..10 {
            c0.scope(|s| s.isend(&data, 1, 0)).unwrap();
            let mut tmp = vec![0f64; 128];
            c1.recv(&mut tmp, 0, 0).unwrap();
            c1.scope(|s| s.isend(&tmp, 0, 1)).unwrap();
            c0.recv(&mut echo, 1, 1).unwrap();
        }
        assert_eq!(echo, data);
    }

    #[test]
    fn typed_gapped_roundtrip() {
        // struct-simple over the derived-datatype engine.
        let ty = Arc::new(
            Datatype::structure(vec![
                (3, 0, Datatype::of::<i32>()),
                (1, 16, Datatype::of::<f64>()),
            ])
            .commit()
            .unwrap(),
        );
        assert!(!ty.is_contiguous());
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let src: Vec<u8> = (0..240).map(|i| i as u8).collect(); // 10 elements
        let mut dst = vec![0u8; 240];
        std::thread::scope(|s| {
            s.spawn(|| c0.send_typed(&src, 10, &ty, 1, 0).unwrap());
            s.spawn(|| c1.recv_typed(&mut dst, 10, &ty, 0, 0).unwrap());
        });
        for e in 0..10 {
            let b = e * 24;
            assert_eq!(&dst[b..b + 12], &src[b..b + 12], "ints of element {e}");
            assert_eq!(&dst[b + 16..b + 24], &src[b + 16..b + 24], "double of {e}");
        }
        // Gap bytes were never written.
        assert_eq!(&dst[12..16], &[0u8; 4]);
    }

    #[test]
    fn typed_contiguous_uses_fast_path() {
        let ty = Arc::new(
            Datatype::structure(vec![
                (2, 0, Datatype::of::<i32>()),
                (1, 8, Datatype::of::<f64>()),
            ])
            .commit()
            .unwrap(),
        );
        assert!(ty.is_contiguous());
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let src = vec![7u8; 160];
        let mut dst = vec![0u8; 160];
        std::thread::scope(|s| {
            s.spawn(|| c0.send_typed(&src, 10, &ty, 1, 0).unwrap());
            s.spawn(|| c1.recv_typed(&mut dst, 10, &ty, 0, 0).unwrap());
        });
        assert_eq!(dst, src);
        // Fast path = eager contiguous message.
        assert_eq!(world.fabric().stats().eager, 1);
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let world = World::new(4);
        let comms = world.comms();
        let counter = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    c.barrier().unwrap();
                    assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 4);
                });
            }
        });
    }

    #[test]
    fn probe_sees_pending_message() {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        assert!(c1.iprobe(-1, -2).is_none());
        c0.scope(|s| s.isend(&[1u8, 2, 3][..], 1, 5)).unwrap();
        let st = c1.iprobe(0, 5).expect("message pending");
        assert_eq!(st.bytes, 3);
        let mut out = [0u8; 3];
        c1.recv(&mut out[..], 0, 5).unwrap();
    }

    #[test]
    fn sendrecv_ring_does_not_deadlock() {
        // Every rank sendrecvs simultaneously around a ring — the pattern
        // that deadlocks with naive blocking send+recv.
        let world = World::new(4);
        let comms = world.comms();
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| {
                    let right = (c.rank() + 1) % 4;
                    let left = (c.rank() + 3) % 4;
                    // Rendezvous-sized so no eager buffering can hide a deadlock.
                    let send = vec![c.rank() as i64; 50_000];
                    let mut recv = vec![0i64; 50_000];
                    let st = c
                        .sendrecv(&send, right, 5, &mut recv, left as i32, 5)
                        .unwrap();
                    assert_eq!(st.source, left);
                    assert!(recv.iter().all(|v| *v == left as i64));
                });
            }
        });
    }

    #[test]
    fn sendrecv_custom_types() {
        let world = World::new(2);
        let comms = world.comms();
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| {
                    let peer = 1 - c.rank();
                    let send: Vec<Vec<i32>> = vec![vec![c.rank() as i32; 10]];
                    let mut recv: Vec<Vec<i32>> = vec![vec![-1; 10]];
                    c.sendrecv(&send, peer, 0, &mut recv, peer as i32, 0)
                        .unwrap();
                    assert_eq!(recv[0], vec![peer as i32; 10]);
                });
            }
        });
    }

    #[test]
    fn status_reports_wildcard_matches() {
        let world = World::new(3);
        let c2 = world.comm(2);
        world.comm(1).scope(|s| s.isend(&[9u8][..], 2, 42)).unwrap();
        let mut b = [0u8; 1];
        let st = c2
            .recv(&mut b[..], mpicd_fabric::ANY_SOURCE, mpicd_fabric::ANY_TAG)
            .unwrap();
        assert_eq!(st.source, 1);
        assert_eq!(st.tag, 42);
    }
}
