//! Single-threaded transfer helpers: drive both ends of a message from one
//! thread, deterministically.
//!
//! Benchmarks on a simulated fabric want zero scheduler noise, which means
//! one thread plays both ranks. Blocking calls would deadlock (a rendezvous
//! send cannot complete until the peer posts its receive), so these helpers
//! post both sides nonblocking, then wait — the safe composition of the
//! unsafe `post_*` entry points.

// Audited unsafe: raw base-pointer exchange plumbing; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::buffer::{Buffer, BufferMut, RecvView, SendView};
use crate::communicator::{Communicator, Status};
use crate::error::Result;
use mpicd_datatype::Committed;
use mpicd_fabric::{IovEntry, IovEntryMut, RecvDesc, SendDesc, Tag};
use std::sync::Arc;

/// Move one message `sbuf@a → rbuf@b` with both ranks driven from the
/// calling thread. Returns the receive status.
pub fn transfer<B, C>(
    a: &Communicator,
    b: &Communicator,
    sbuf: &B,
    rbuf: &mut C,
    tag: Tag,
) -> Result<Status>
where
    B: Buffer + ?Sized,
    C: BufferMut + ?Sized,
{
    let _sp = mpicd_obs::span!("comm.transfer", "core");
    // Post the send first (it pends until matched for custom/rendezvous
    // payloads), then the receive, which triggers the matched transfer.
    let sreq = match sbuf.send_view() {
        SendView::Contiguous(bytes) => {
            // SAFETY: waited below, buffers borrowed for the whole call.
            unsafe {
                a.endpoint().post_send(
                    SendDesc::Contig(IovEntry::from_slice(bytes)),
                    b.rank(),
                    tag,
                )?
            }
        }
        // SAFETY: as above.
        SendView::Custom(ctx) => unsafe { a.post_custom_send(ctx, b.rank(), tag)? },
    };
    let status = match rbuf.recv_view() {
        RecvView::Contiguous(bytes) => {
            // SAFETY: as above.
            let rreq = unsafe {
                b.endpoint().post_recv(
                    RecvDesc::Contig(IovEntryMut::from_slice(bytes)),
                    a.rank() as i32,
                    tag,
                )?
            };
            rreq.wait()?.into()
        }
        RecvView::Custom(mut ctx) => {
            // SAFETY: ctx lives on this frame past the wait.
            let rreq = unsafe { b.post_custom_recv(&mut *ctx, a.rank() as i32, tag)? };
            let env = rreq.wait()?;
            ctx.finish()?;
            env.into()
        }
    };
    sreq.wait()?;
    Ok(status)
}

/// Derived-datatype variant of [`transfer`].
pub fn transfer_typed(
    a: &Communicator,
    b: &Communicator,
    sregion: &[u8],
    rregion: &mut [u8],
    count: usize,
    ty: &Arc<Committed>,
    tag: Tag,
) -> Result<Status> {
    ty.check_bounds(count, sregion.len())?;
    ty.check_bounds(count, rregion.len())?;
    let _sp = mpicd_obs::span!("comm.transfer_typed", "core", ty.size() * count);
    // SAFETY: waited below; regions borrowed for the whole call.
    let sreq = unsafe { a.post_typed_send(sregion.as_ptr(), count, ty, b.rank(), tag)? };
    let rreq = unsafe { b.post_typed_recv(rregion.as_mut_ptr(), count, ty, a.rank() as i32, tag)? };
    let status = rreq.wait()?.into();
    sreq.wait()?;
    Ok(status)
}

/// Explicit-context variant of [`transfer`] (custom serialization on both
/// ends, e.g. the DDTBench patterns).
pub fn transfer_custom(
    a: &Communicator,
    b: &Communicator,
    sctx: Box<dyn crate::CustomPack + '_>,
    rctx: &mut (dyn crate::CustomUnpack + '_),
    tag: Tag,
) -> Result<Status> {
    let _sp = mpicd_obs::span!("comm.transfer_custom", "core");
    // SAFETY: waited below; contexts outlive the call.
    let sreq = unsafe { a.post_custom_send(sctx, b.rank(), tag)? };
    let rreq = unsafe { b.post_custom_recv(rctx, a.rank() as i32, tag)? };
    let env = rreq.wait()?;
    rctx.finish()?;
    sreq.wait()?;
    Ok(env.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::World;
    use crate::types::StructSimple;

    #[test]
    fn single_thread_contiguous() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = vec![3i64; 100];
        let mut recv = vec![0i64; 100];
        let st = transfer(&a, &b, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send);
        assert_eq!(st.bytes, 800);
    }

    #[test]
    fn single_thread_custom_rendezvous_sized() {
        // Custom payloads never take the eager path; this proves the
        // single-threaded composition cannot deadlock.
        let world = World::new(2);
        let (a, b) = world.pair();
        let send: Vec<StructSimple> = (0..10_000).map(StructSimple::generate).collect();
        let mut recv = vec![StructSimple::default(); 10_000];
        transfer(&a, &b, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send);
    }

    #[test]
    fn single_thread_typed() {
        let ty = Arc::new(StructSimple::datatype().commit().unwrap());
        let world = World::new(2);
        let (a, b) = world.pair();
        let send: Vec<StructSimple> = (0..500).map(StructSimple::generate).collect();
        let mut recv = vec![StructSimple::default(); 500];
        let sbytes = crate::types::as_bytes(&send);
        // SAFETY: POD struct; engine writes only data bytes.
        let rbytes = unsafe { crate::types::as_bytes_mut(&mut recv) };
        transfer_typed(&a, &b, sbytes, rbytes, 500, &ty, 0).unwrap();
        assert_eq!(recv, send);
    }

    #[test]
    fn pingpong_loop_many_iterations() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let mut x: Vec<Vec<i32>> = crate::vecvec::generate(16, 64);
        let mut y: Vec<Vec<i32>> = vec![vec![0; 64]; 16];
        for _ in 0..50 {
            transfer(&a, &b, &x, &mut y, 0).unwrap();
            transfer(&b, &a, &y, &mut x, 1).unwrap();
        }
        assert_eq!(x, crate::vecvec::generate(16, 64));
        assert_eq!(world.fabric().stats().messages, 100, "2 per iteration");
    }
}
