//! The paper's Rust evaluation types (Listings 6–8) with all three transfer
//! methods wired up:
//!
//! * **custom** — [`Buffer`]/[`BufferMut`] impls using the custom
//!   serialization API (packed scalar fields + a zero-copy region for the
//!   `data` array where present);
//! * **manual-pack** — `pack_*`/`unpack_*` helpers that serialize into one
//!   contiguous buffer sent as bytes;
//! * **derived datatype** — `*_datatype()` constructors for the
//!   `mpicd-datatype` engine (the rsmpi/Open MPI baseline).
//!
//! All three structs are `#[repr(C)]`, so — exactly as the paper notes for
//! Listing 6/7 — a 4-byte gap forms between `c` and `d` in [`StructVec`]
//! and [`StructSimple`], while [`StructSimpleNoGap`] is dense.

// Audited unsafe: byte-view casts of plain-old-data types; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::buffer::{Buffer, BufferMut, RecvView, SendView};
use crate::datatype::{CustomPack, CustomUnpack, RecvRegion, SendRegion};
use crate::error::Result;
use mpicd_datatype::Datatype;

/// Length of [`StructVec::data`] in `i32`s (8 KiB, as in Listing 6).
pub const STRUCT_VEC_DATA_LEN: usize = 2048;

/// Packed bytes of the scalar fields `a, b, c, d` (no gap): 3×4 + 8.
pub const SCALAR_PACKED: usize = 20;

/// Listing 6: scalar fields that must be packed plus a buffer best sent as
/// a memory region.
#[repr(C)]
#[derive(Clone, Debug, PartialEq)]
pub struct StructVec {
    /// First scalar field.
    pub a: i32,
    /// Second scalar field.
    pub b: i32,
    /// Third scalar field (a 4-byte gap follows, from f64 alignment).
    pub c: i32,
    /// Double field at offset 16.
    pub d: f64,
    /// The bulk payload, sent as a memory region by the custom method.
    pub data: [i32; STRUCT_VEC_DATA_LEN],
}

impl StructVec {
    /// Deterministic workload element (benchmark generator).
    pub fn generate(i: usize) -> Self {
        let mut data = [0i32; STRUCT_VEC_DATA_LEN];
        for (j, x) in data.iter_mut().enumerate() {
            *x = (i * 131 + j) as i32;
        }
        Self {
            a: i as i32,
            b: (i * 2) as i32,
            c: (i * 3) as i32,
            d: i as f64 * 0.5,
            data,
        }
    }

    /// The derived-datatype description (what rsmpi's macro would emit).
    pub fn datatype() -> Datatype {
        Datatype::structure(vec![
            (3, 0, Datatype::of::<i32>()),
            (1, 16, Datatype::of::<f64>()),
            (STRUCT_VEC_DATA_LEN, 24, Datatype::of::<i32>()),
        ])
    }
}

impl Default for StructVec {
    fn default() -> Self {
        Self {
            a: 0,
            b: 0,
            c: 0,
            d: 0.0,
            data: [0; STRUCT_VEC_DATA_LEN],
        }
    }
}

/// Listing 7: scalar fields only, with the same gap — the pure-packing
/// stress test.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StructSimple {
    /// First scalar field.
    pub a: i32,
    /// Second scalar field.
    pub b: i32,
    /// Third scalar field (a 4-byte gap follows).
    pub c: i32,
    /// Double field at offset 16.
    pub d: f64,
}

impl StructSimple {
    /// Deterministic workload element.
    pub fn generate(i: usize) -> Self {
        Self {
            a: i as i32,
            b: (i * 2) as i32,
            c: (i * 3) as i32,
            d: i as f64 * 0.25,
        }
    }

    /// The derived-datatype description.
    pub fn datatype() -> Datatype {
        Datatype::structure(vec![
            (3, 0, Datatype::of::<i32>()),
            (1, 16, Datatype::of::<f64>()),
        ])
    }
}

/// Listing 8: no third integer, no gap — needs no packing at all.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StructSimpleNoGap {
    /// First scalar field.
    pub a: i32,
    /// Second scalar field.
    pub b: i32,
    /// Double field at offset 8 — no gap.
    pub c: f64,
}

impl StructSimpleNoGap {
    /// Deterministic workload element.
    pub fn generate(i: usize) -> Self {
        Self {
            a: i as i32,
            b: (i * 2) as i32,
            c: i as f64 * 0.125,
        }
    }

    /// The derived-datatype description (contiguous).
    pub fn datatype() -> Datatype {
        Datatype::structure(vec![
            (2, 0, Datatype::of::<i32>()),
            (1, 8, Datatype::of::<f64>()),
        ])
    }
}

// ---- shared scalar-field packing arithmetic ---------------------------------
//
// Both gapped structs pack their scalars as 20-byte records:
// packed [0, 12)  <-> memory [0, 12)   (a, b, c)
// packed [12, 20) <-> memory [16, 24)  (d, skipping the gap)

const SCALAR_BLOCKS: [(usize, usize, usize); 2] = [(0, 0, 12), (12, 16, 8)];

/// Copy packed-record bytes `[offset, offset + dst.len())` out of `count`
/// elements of stride `stride` based at `base`.
///
/// # Safety
/// `base` must be valid for reads of `count * stride` bytes.
unsafe fn pack_scalars(
    base: *const u8,
    stride: usize,
    count: usize,
    offset: usize,
    dst: &mut [u8],
) -> usize {
    let total = SCALAR_PACKED * count;
    let mut at = offset;
    let mut done = 0usize;
    while at < total && done < dst.len() {
        let within = at % SCALAR_PACKED;
        if within == 0 && total - at >= SCALAR_PACKED && dst.len() - done >= SCALAR_PACKED {
            // Whole record: compile-time-constant copies — the straight-line
            // code a hand-written application packer compiles to.
            let src = base.add((at / SCALAR_PACKED) * stride);
            let out = dst.as_mut_ptr().add(done);
            std::ptr::copy_nonoverlapping(src, out, 12);
            std::ptr::copy_nonoverlapping(src.add(16), out.add(12), 8);
            at += SCALAR_PACKED;
            done += SCALAR_PACKED;
        } else {
            // Fragment head/tail: general byte-range arithmetic.
            let elem = at / SCALAR_PACKED;
            let (poff, moff, len) = SCALAR_BLOCKS[usize::from(within >= 12)];
            let skip = within - poff;
            let n = (len - skip).min(dst.len() - done);
            std::ptr::copy_nonoverlapping(
                base.add(elem * stride + moff + skip),
                dst.as_mut_ptr().add(done),
                n,
            );
            at += n;
            done += n;
        }
    }
    done
}

/// Scatter packed-record bytes into `count` elements of stride `stride`.
///
/// # Safety
/// `base` must be valid for writes of `count * stride` bytes.
unsafe fn unpack_scalars(
    base: *mut u8,
    stride: usize,
    count: usize,
    offset: usize,
    src: &[u8],
) -> usize {
    let total = SCALAR_PACKED * count;
    let mut at = offset;
    let mut done = 0usize;
    while at < total && done < src.len() {
        let within = at % SCALAR_PACKED;
        if within == 0 && total - at >= SCALAR_PACKED && src.len() - done >= SCALAR_PACKED {
            // Whole record: constant-length copies (see pack_scalars).
            let input = src.as_ptr().add(done);
            let out = base.add((at / SCALAR_PACKED) * stride);
            std::ptr::copy_nonoverlapping(input, out, 12);
            std::ptr::copy_nonoverlapping(input.add(12), out.add(16), 8);
            at += SCALAR_PACKED;
            done += SCALAR_PACKED;
        } else {
            let elem = at / SCALAR_PACKED;
            let (poff, moff, len) = SCALAR_BLOCKS[usize::from(within >= 12)];
            let skip = within - poff;
            let n = (len - skip).min(src.len() - done);
            std::ptr::copy_nonoverlapping(
                src.as_ptr().add(done),
                base.add(elem * stride + moff + skip),
                n,
            );
            at += n;
            done += n;
        }
    }
    done
}

// ---- StructVec: custom = packed scalars + one region per element -----------

struct StructVecPack<'a>(&'a [StructVec]);

impl CustomPack for StructVecPack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(SCALAR_PACKED * self.0.len())
    }
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        // SAFETY: slice-backed base pointer, stride = size_of::<StructVec>().
        Ok(unsafe {
            pack_scalars(
                self.0.as_ptr().cast(),
                std::mem::size_of::<StructVec>(),
                self.0.len(),
                offset,
                dst,
            )
        })
    }
    fn regions(&mut self) -> Result<Vec<SendRegion>> {
        Ok(self
            .0
            .iter()
            .map(|e| SendRegion::from_typed(&e.data))
            .collect())
    }
    fn inorder(&self) -> bool {
        false
    }
}

struct StructVecUnpack<'a>(&'a mut [StructVec]);

impl CustomUnpack for StructVecUnpack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(SCALAR_PACKED * self.0.len())
    }
    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()> {
        // SAFETY: slice-backed base pointer, exclusive borrow.
        unsafe {
            unpack_scalars(
                self.0.as_mut_ptr().cast(),
                std::mem::size_of::<StructVec>(),
                self.0.len(),
                offset,
                src,
            );
        }
        Ok(())
    }
    fn regions(&mut self) -> Result<Vec<RecvRegion>> {
        Ok(self
            .0
            .iter_mut()
            .map(|e| RecvRegion::from_typed(&mut e.data))
            .collect())
    }
}

// SAFETY: the contexts reference only the borrowed slice.
unsafe impl Buffer for [StructVec] {
    fn send_view(&self) -> SendView<'_> {
        SendView::Custom(Box::new(StructVecPack(self)))
    }
}

// SAFETY: as above, exclusively borrowed.
unsafe impl BufferMut for [StructVec] {
    fn recv_view(&mut self) -> RecvView<'_> {
        RecvView::Custom(Box::new(StructVecUnpack(self)))
    }
}

// SAFETY: delegates to slices.
unsafe impl Buffer for Vec<StructVec> {
    fn send_view(&self) -> SendView<'_> {
        self.as_slice().send_view()
    }
}

// SAFETY: as above.
unsafe impl BufferMut for Vec<StructVec> {
    fn recv_view(&mut self) -> RecvView<'_> {
        self.as_mut_slice().recv_view()
    }
}

// ---- StructSimple: custom = pure packing ------------------------------------

struct StructSimplePack<'a>(&'a [StructSimple]);

impl CustomPack for StructSimplePack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(SCALAR_PACKED * self.0.len())
    }
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        // SAFETY: slice-backed base pointer, stride 24.
        Ok(unsafe {
            pack_scalars(
                self.0.as_ptr().cast(),
                std::mem::size_of::<StructSimple>(),
                self.0.len(),
                offset,
                dst,
            )
        })
    }
    fn inorder(&self) -> bool {
        false
    }
}

struct StructSimpleUnpack<'a>(&'a mut [StructSimple]);

impl CustomUnpack for StructSimpleUnpack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(SCALAR_PACKED * self.0.len())
    }
    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()> {
        // SAFETY: slice-backed base pointer, exclusive borrow.
        unsafe {
            unpack_scalars(
                self.0.as_mut_ptr().cast(),
                std::mem::size_of::<StructSimple>(),
                self.0.len(),
                offset,
                src,
            );
        }
        Ok(())
    }
}

// SAFETY: the contexts reference only the borrowed slice.
unsafe impl Buffer for [StructSimple] {
    fn send_view(&self) -> SendView<'_> {
        SendView::Custom(Box::new(StructSimplePack(self)))
    }
}

// SAFETY: as above.
unsafe impl BufferMut for [StructSimple] {
    fn recv_view(&mut self) -> RecvView<'_> {
        RecvView::Custom(Box::new(StructSimpleUnpack(self)))
    }
}

// SAFETY: delegates to slices.
unsafe impl Buffer for Vec<StructSimple> {
    fn send_view(&self) -> SendView<'_> {
        self.as_slice().send_view()
    }
}

// SAFETY: as above.
unsafe impl BufferMut for Vec<StructSimple> {
    fn recv_view(&mut self) -> RecvView<'_> {
        self.as_mut_slice().recv_view()
    }
}

// ---- StructSimpleNoGap: dense, no packing needed ----------------------------

// SAFETY: `#[repr(C)]` with fields 4+4+8 leaves no padding; any byte pattern
// in `a`/`b` is a valid i32 and in `c` a valid f64.
unsafe impl Buffer for [StructSimpleNoGap] {
    fn send_view(&self) -> SendView<'_> {
        let bytes = unsafe {
            std::slice::from_raw_parts(self.as_ptr().cast::<u8>(), std::mem::size_of_val(self))
        };
        SendView::Contiguous(bytes)
    }
}

// SAFETY: as above.
unsafe impl BufferMut for [StructSimpleNoGap] {
    fn recv_view(&mut self) -> RecvView<'_> {
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(
                self.as_mut_ptr().cast::<u8>(),
                std::mem::size_of_val(self),
            )
        };
        RecvView::Contiguous(bytes)
    }
}

// SAFETY: delegates to slices.
unsafe impl Buffer for Vec<StructSimpleNoGap> {
    fn send_view(&self) -> SendView<'_> {
        self.as_slice().send_view()
    }
}

// SAFETY: as above.
unsafe impl BufferMut for Vec<StructSimpleNoGap> {
    fn recv_view(&mut self) -> RecvView<'_> {
        self.as_mut_slice().recv_view()
    }
}

// ---- manual packing ----------------------------------------------------------

/// Manually pack struct-simple elements into a dense 20-bytes-per-element
/// buffer (the paper's `manual-pack` method).
pub fn pack_struct_simple(elems: &[StructSimple]) -> Vec<u8> {
    let mut out = vec![0u8; SCALAR_PACKED * elems.len()];
    // SAFETY: freshly sized buffer, slice-backed source.
    unsafe {
        pack_scalars(
            elems.as_ptr().cast(),
            std::mem::size_of::<StructSimple>(),
            elems.len(),
            0,
            &mut out,
        );
    }
    out
}

/// Inverse of [`pack_struct_simple`].
pub fn unpack_struct_simple(bytes: &[u8], out: &mut [StructSimple]) -> Result<()> {
    let needed = SCALAR_PACKED * out.len();
    if bytes.len() < needed {
        return Err(crate::error::Error::InvalidHeader(
            "packed struct-simple buffer too short",
        ));
    }
    // SAFETY: exclusive slice-backed destination.
    unsafe {
        unpack_scalars(
            out.as_mut_ptr().cast(),
            std::mem::size_of::<StructSimple>(),
            out.len(),
            0,
            &bytes[..needed],
        );
    }
    Ok(())
}

/// Manually pack struct-vec elements: 20 scalar bytes then the 8 KiB data
/// array, per element.
pub fn pack_struct_vec(elems: &[StructVec]) -> Vec<u8> {
    let per = SCALAR_PACKED + STRUCT_VEC_DATA_LEN * 4;
    let mut out = vec![0u8; per * elems.len()];
    for (i, e) in elems.iter().enumerate() {
        let at = i * per;
        out[at..at + 4].copy_from_slice(&e.a.to_ne_bytes());
        out[at + 4..at + 8].copy_from_slice(&e.b.to_ne_bytes());
        out[at + 8..at + 12].copy_from_slice(&e.c.to_ne_bytes());
        out[at + 12..at + 20].copy_from_slice(&e.d.to_ne_bytes());
        out[at + 20..at + per].copy_from_slice(crate::buffer::scalar_bytes(&e.data));
    }
    out
}

/// Inverse of [`pack_struct_vec`].
pub fn unpack_struct_vec(bytes: &[u8], out: &mut [StructVec]) -> Result<()> {
    let per = SCALAR_PACKED + STRUCT_VEC_DATA_LEN * 4;
    if bytes.len() < per * out.len() {
        return Err(crate::error::Error::InvalidHeader(
            "packed struct-vec buffer too short",
        ));
    }
    for (i, e) in out.iter_mut().enumerate() {
        let at = i * per;
        e.a = i32::from_ne_bytes(bytes[at..at + 4].try_into().unwrap());
        e.b = i32::from_ne_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        e.c = i32::from_ne_bytes(bytes[at + 8..at + 12].try_into().unwrap());
        e.d = f64::from_ne_bytes(bytes[at + 12..at + 20].try_into().unwrap());
        crate::buffer::scalar_bytes_mut(&mut e.data).copy_from_slice(&bytes[at + 20..at + per]);
    }
    Ok(())
}

/// View a slice of any of the three structs as raw bytes (for the
/// derived-datatype path, which addresses memory through the typemap).
pub fn as_bytes<T>(elems: &[T]) -> &[u8] {
    // SAFETY: read-only byte view of plain-old-data structs.
    unsafe { std::slice::from_raw_parts(elems.as_ptr().cast(), std::mem::size_of_val(elems)) }
}

/// Mutable raw-byte view (derived-datatype receive path).
///
/// # Safety
/// Only sound for `#[repr(C)]` plain-old-data element types where every bit
/// pattern is valid (true for the three benchmark structs; the typemap
/// engine never writes gap bytes).
pub unsafe fn as_bytes_mut<T>(elems: &mut [T]) -> &mut [u8] {
    std::slice::from_raw_parts_mut(elems.as_mut_ptr().cast(), std::mem::size_of_val(elems))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::World;

    #[test]
    fn layout_matches_paper() {
        assert_eq!(std::mem::size_of::<StructSimple>(), 24);
        assert_eq!(std::mem::size_of::<StructSimpleNoGap>(), 16);
        assert_eq!(
            std::mem::size_of::<StructVec>(),
            24 + 4 * STRUCT_VEC_DATA_LEN
        );
        assert_eq!(std::mem::offset_of!(StructSimple, d), 16, "gap before d");
        assert_eq!(std::mem::offset_of!(StructSimpleNoGap, c), 8, "no gap");
        assert_eq!(std::mem::offset_of!(StructVec, data), 24);
    }

    #[test]
    fn datatype_descriptions_agree_with_layout() {
        let c = StructSimple::datatype().commit().unwrap();
        assert_eq!(c.size(), 20);
        assert_eq!(c.extent(), 24);
        assert!(!c.is_contiguous());

        let c = StructSimpleNoGap::datatype().commit().unwrap();
        assert_eq!(c.size(), 16);
        assert!(c.is_contiguous());

        let c = StructVec::datatype().commit().unwrap();
        assert_eq!(c.size(), 20 + 4 * STRUCT_VEC_DATA_LEN);
        assert_eq!(c.extent(), std::mem::size_of::<StructVec>());
    }

    #[test]
    fn struct_simple_custom_roundtrip() {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let send: Vec<StructSimple> = (0..100).map(StructSimple::generate).collect();
        let mut recv = vec![StructSimple::default(); 100];
        std::thread::scope(|s| {
            s.spawn(|| c0.send(&send, 1, 0).unwrap());
            s.spawn(|| {
                c1.recv(&mut recv, 0, 0).unwrap();
            });
        });
        assert_eq!(recv, send);
        // Wire carried only packed bytes: 20 per element.
        assert_eq!(world.fabric().stats().bytes, 2000);
    }

    #[test]
    fn struct_vec_custom_roundtrip_single_message() {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let send: Vec<StructVec> = (0..4).map(StructVec::generate).collect();
        let mut recv = vec![StructVec::default(); 4];
        std::thread::scope(|s| {
            s.spawn(|| c0.send(&send, 1, 0).unwrap());
            s.spawn(|| {
                c1.recv(&mut recv, 0, 0).unwrap();
            });
        });
        assert_eq!(recv, send);
        let stats = world.fabric().stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.regions, 5, "packed segment + 4 data regions");
    }

    #[test]
    fn struct_simple_no_gap_is_contiguous_view() {
        let v: Vec<StructSimpleNoGap> = (0..3).map(StructSimpleNoGap::generate).collect();
        match crate::buffer::Buffer::send_view(&v) {
            SendView::Contiguous(b) => assert_eq!(b.len(), 48),
            _ => panic!("expected contiguous"),
        };
    }

    #[test]
    fn no_gap_roundtrip() {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let send: Vec<StructSimpleNoGap> = (0..50).map(StructSimpleNoGap::generate).collect();
        let mut recv = vec![StructSimpleNoGap::default(); 50];
        std::thread::scope(|s| {
            s.spawn(|| c0.send(&send, 1, 0).unwrap());
            s.spawn(|| {
                c1.recv(&mut recv, 0, 0).unwrap();
            });
        });
        assert_eq!(recv, send);
    }

    #[test]
    fn manual_pack_struct_simple_roundtrip() {
        let elems: Vec<StructSimple> = (0..7).map(StructSimple::generate).collect();
        let packed = pack_struct_simple(&elems);
        assert_eq!(packed.len(), 140);
        let mut out = vec![StructSimple::default(); 7];
        unpack_struct_simple(&packed, &mut out).unwrap();
        assert_eq!(out, elems);
    }

    #[test]
    fn manual_pack_struct_vec_roundtrip() {
        let elems: Vec<StructVec> = (0..3).map(StructVec::generate).collect();
        let packed = pack_struct_vec(&elems);
        assert_eq!(packed.len(), 3 * (20 + 8192));
        let mut out = vec![StructVec::default(); 3];
        unpack_struct_vec(&packed, &mut out).unwrap();
        assert_eq!(out, elems);
    }

    #[test]
    fn derived_datatype_roundtrip_struct_vec() {
        let ty = std::sync::Arc::new(StructVec::datatype().commit().unwrap());
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let send: Vec<StructVec> = (0..2).map(StructVec::generate).collect();
        let mut recv = vec![StructVec::default(); 2];
        std::thread::scope(|s| {
            s.spawn(|| {
                c0.send_typed(as_bytes(&send), 2, &ty, 1, 0).unwrap();
            });
            s.spawn(|| {
                // SAFETY: POD struct, typemap writes only data bytes.
                let bytes = unsafe { as_bytes_mut(&mut recv) };
                c1.recv_typed(bytes, 2, &ty, 0, 0).unwrap();
            });
        });
        assert_eq!(recv, send);
    }

    #[test]
    fn scalar_pack_segments_are_offset_addressed() {
        let elems: Vec<StructSimple> = (0..5).map(StructSimple::generate).collect();
        let full = pack_struct_simple(&elems);
        // Reassemble via misaligned segment calls.
        let mut acc = vec![0u8; full.len()];
        for (start, len) in [(0usize, 7usize), (7, 13), (20, 33), (53, 47)] {
            let mut buf = vec![0u8; len];
            let n = unsafe { pack_scalars(elems.as_ptr().cast(), 24, 5, start, &mut buf) };
            acc[start..start + n].copy_from_slice(&buf[..n]);
        }
        assert_eq!(acc, full);
    }
}
