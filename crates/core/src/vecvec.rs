//! The paper's *double-vec* dynamic type: `Vec<Vec<T>>`.
//!
//! A vector of vectors cannot be described by classic derived datatypes at
//! all — every subvector is a separate heap allocation, so there is no fixed
//! typemap ("RSMPI and MPI in general would not support this type"). With
//! custom serialization it becomes one message:
//!
//! * **packed stream** — a small header: subvector count followed by each
//!   subvector's byte length;
//! * **regions** — each subvector's storage, sent/received zero-copy.
//!
//! The receive side must already hold subvectors of the right lengths (the
//! paper's receive-length limitation, §VI); `finish()` validates the header
//! against the actual allocation and fails the receive on mismatch.

// Audited unsafe: ragged-buffer raw views; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::buffer::{Buffer, BufferMut, RecvView, SendView};
use crate::datatype::{CustomPack, CustomUnpack, RecvRegion, SendRegion};
use crate::error::{Error, Result};
use mpicd_datatype::primitive::Scalar;

/// Byte length of the double-vec header for `n` subvectors.
pub fn header_len(n: usize) -> usize {
    8 + 8 * n
}

/// Serialize the double-vec header (count + per-subvector byte lengths).
pub fn encode_header<T: Scalar>(vecs: &[Vec<T>]) -> Vec<u8> {
    let mut h = Vec::with_capacity(header_len(vecs.len()));
    h.extend_from_slice(&(vecs.len() as u64).to_le_bytes());
    for v in vecs {
        h.extend_from_slice(&((std::mem::size_of::<T>() * v.len()) as u64).to_le_bytes());
    }
    h
}

/// Parse a double-vec header into per-subvector byte lengths.
pub fn decode_header(bytes: &[u8]) -> Result<Vec<usize>> {
    if bytes.len() < 8 {
        return Err(Error::InvalidHeader("double-vec header shorter than count"));
    }
    let n = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
    if bytes.len() != header_len(n) {
        return Err(Error::InvalidHeader("double-vec header length mismatch"));
    }
    Ok((0..n)
        .map(|i| {
            let at = 8 + 8 * i;
            u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize
        })
        .collect())
}

/// Send context: header packs, subvectors travel as regions.
struct VecVecPack<'a, T: Scalar> {
    header: Vec<u8>,
    vecs: &'a [Vec<T>],
}

impl<T: Scalar> CustomPack for VecVecPack<'_, T> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.header.len())
    }

    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        let n = dst.len().min(self.header.len() - offset);
        dst[..n].copy_from_slice(&self.header[offset..offset + n]);
        Ok(n)
    }

    fn regions(&mut self) -> Result<Vec<SendRegion>> {
        Ok(self
            .vecs
            .iter()
            .map(|v| SendRegion::from_typed(v))
            .collect())
    }

    fn inorder(&self) -> bool {
        false // header writes are offset-addressed
    }
}

/// Receive context: header lands in a scratch buffer, regions point into
/// the preallocated subvectors; `finish` validates the shape.
struct VecVecUnpack<'a, T: Scalar> {
    header: Vec<u8>,
    vecs: &'a mut [Vec<T>],
}

impl<T: Scalar> CustomUnpack for VecVecUnpack<'_, T> {
    fn packed_size(&self) -> Result<usize> {
        Ok(header_len(self.vecs.len()))
    }

    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()> {
        if offset + src.len() > self.header.len() {
            return Err(Error::InvalidHeader("double-vec header overflow"));
        }
        self.header[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }

    fn regions(&mut self) -> Result<Vec<RecvRegion>> {
        Ok(self
            .vecs
            .iter_mut()
            .map(|v| RecvRegion::from_typed(v.as_mut_slice()))
            .collect())
    }

    fn finish(&mut self) -> Result<()> {
        let lens = decode_header(&self.header)?;
        if lens.len() != self.vecs.len() {
            return Err(Error::LengthMismatch {
                expected: self.vecs.len(),
                got: lens.len(),
            });
        }
        for (i, (len, v)) in lens.iter().zip(self.vecs.iter()).enumerate() {
            let have = std::mem::size_of::<T>() * v.len();
            if *len != have {
                let _ = i;
                return Err(Error::LengthMismatch {
                    expected: have,
                    got: *len,
                });
            }
        }
        Ok(())
    }
}

// SAFETY: the pack context references only `self`'s subvector storage, which
// the `&self` borrow keeps alive and immutable for the view's lifetime.
unsafe impl<T: Scalar> Buffer for [Vec<T>] {
    fn send_view(&self) -> SendView<'_> {
        SendView::Custom(Box::new(VecVecPack {
            header: encode_header(self),
            vecs: self,
        }))
    }
}

// SAFETY: the unpack context references only `self`'s subvector storage,
// exclusively borrowed for the view's lifetime.
unsafe impl<T: Scalar> BufferMut for [Vec<T>] {
    fn recv_view(&mut self) -> RecvView<'_> {
        let n = self.len();
        RecvView::Custom(Box::new(VecVecUnpack {
            header: vec![0u8; header_len(n)],
            vecs: self,
        }))
    }
}

// SAFETY: delegates to the slice implementations above.
unsafe impl<T: Scalar> Buffer for Vec<Vec<T>> {
    fn send_view(&self) -> SendView<'_> {
        self.as_slice().send_view()
    }
}

// SAFETY: as above.
unsafe impl<T: Scalar> BufferMut for Vec<Vec<T>> {
    fn recv_view(&mut self) -> RecvView<'_> {
        self.as_mut_slice().recv_view()
    }
}

// ---- manual packing (the paper's `manual-pack` comparison method) ----------

/// Fully serialize a double-vec into one contiguous buffer (header + data).
/// This is what language bindings do today: allocate a buffer as large as
/// the data and copy everything through it.
pub fn pack_double_vec<T: Scalar>(vecs: &[Vec<T>]) -> Vec<u8> {
    let data_len: usize = vecs
        .iter()
        .map(|v| std::mem::size_of::<T>() * v.len())
        .sum();
    let mut out = Vec::with_capacity(header_len(vecs.len()) + data_len);
    out.extend_from_slice(&encode_header(vecs));
    for v in vecs {
        out.extend_from_slice(crate::buffer::scalar_bytes(v));
    }
    out
}

/// Deserialize a manually packed double-vec into preallocated subvectors,
/// validating the header shape.
pub fn unpack_double_vec<T: Scalar>(bytes: &[u8], out: &mut [Vec<T>]) -> Result<()> {
    let hlen = header_len(out.len());
    if bytes.len() < hlen {
        return Err(Error::InvalidHeader("packed double-vec too short"));
    }
    let lens = decode_header(&bytes[..hlen])?;
    if lens.len() != out.len() {
        return Err(Error::LengthMismatch {
            expected: out.len(),
            got: lens.len(),
        });
    }
    let mut at = hlen;
    for (len, v) in lens.iter().zip(out.iter_mut()) {
        let have = std::mem::size_of::<T>() * v.len();
        if *len != have {
            return Err(Error::LengthMismatch {
                expected: have,
                got: *len,
            });
        }
        if at + len > bytes.len() {
            return Err(Error::InvalidHeader("packed double-vec data truncated"));
        }
        crate::buffer::scalar_bytes_mut(v).copy_from_slice(&bytes[at..at + len]);
        at += len;
    }
    Ok(())
}

/// Build a double-vec of `n` subvectors of `sub_len` elements each, filled
/// with a deterministic pattern (benchmark/test workload generator).
pub fn generate<T: Scalar + From<u8>>(n: usize, sub_len: usize) -> Vec<Vec<T>> {
    (0..n)
        .map(|i| {
            (0..sub_len)
                .map(|j| T::from(((i * 31 + j * 7) % 251) as u8))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::World;

    #[test]
    fn header_roundtrip() {
        let vecs: Vec<Vec<i32>> = vec![vec![1, 2, 3], vec![], vec![4]];
        let h = encode_header(&vecs);
        assert_eq!(h.len(), header_len(3));
        assert_eq!(decode_header(&h).unwrap(), vec![12, 0, 4]);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode_header(&[0u8; 4]).is_err());
        let mut h = encode_header(&[vec![1i32]]);
        h.push(0); // trailing garbage
        assert!(decode_header(&h).is_err());
    }

    #[test]
    fn custom_roundtrip_over_fabric() {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let send: Vec<Vec<i32>> = generate(8, 100);
        let mut recv: Vec<Vec<i32>> = vec![vec![0; 100]; 8];
        std::thread::scope(|s| {
            s.spawn(|| c0.send(&send, 1, 0).unwrap());
            s.spawn(|| {
                c1.recv(&mut recv, 0, 0).unwrap();
            });
        });
        assert_eq!(recv, send);
        // One message regardless of subvector count.
        assert_eq!(world.fabric().stats().messages, 1);
        // 1 packed segment + 8 regions visible to the wire.
        assert_eq!(world.fabric().stats().regions, 9);
    }

    #[test]
    fn shape_mismatch_fails_receive() {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let send: Vec<Vec<i32>> = vec![vec![1, 2, 3], vec![4, 5, 6]];
        // Same total bytes, different split: 4 + 2 elements.
        let mut recv: Vec<Vec<i32>> = vec![vec![0; 4], vec![0; 2]];
        std::thread::scope(|s| {
            s.spawn(|| {
                let _ = c0.send(&send, 1, 0);
            });
            s.spawn(|| {
                let err = c1.recv(&mut recv, 0, 0).unwrap_err();
                assert!(matches!(err, Error::LengthMismatch { .. }));
            });
        });
    }

    #[test]
    fn manual_pack_roundtrip() {
        let vecs: Vec<Vec<f64>> = vec![vec![1.5, 2.5], vec![3.5]];
        let packed = pack_double_vec(&vecs);
        assert_eq!(packed.len(), header_len(2) + 24);
        let mut out: Vec<Vec<f64>> = vec![vec![0.0; 2], vec![0.0; 1]];
        unpack_double_vec(&packed, &mut out).unwrap();
        assert_eq!(out, vecs);
    }

    #[test]
    fn manual_unpack_validates_shape() {
        let vecs: Vec<Vec<i32>> = vec![vec![1, 2]];
        let packed = pack_double_vec(&vecs);
        let mut wrong: Vec<Vec<i32>> = vec![vec![0; 3]];
        assert!(matches!(
            unpack_double_vec(&packed, &mut wrong),
            Err(Error::LengthMismatch { .. })
        ));
    }

    #[test]
    fn generate_is_deterministic() {
        let a: Vec<Vec<i32>> = generate(4, 16);
        let b: Vec<Vec<i32>> = generate(4, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].len(), 16);
    }

    #[test]
    fn empty_double_vec_roundtrips() {
        let world = World::new(2);
        let (c0, c1) = world.pair();
        let send: Vec<Vec<i32>> = vec![];
        let mut recv: Vec<Vec<i32>> = vec![];
        std::thread::scope(|s| {
            s.spawn(|| c0.send(&send, 1, 0).unwrap());
            s.spawn(|| {
                c1.recv(&mut recv, 0, 0).unwrap();
            });
        });
        assert!(recv.is_empty());
    }
}
