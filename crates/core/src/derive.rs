//! Support types for [`derive_datatype!`](crate::derive_datatype) —
//! statically verified classic datatypes.
//!
//! The macro in [`crate::macros`] proves at compile time that a declared
//! field list matches a `#[repr(C)]` struct's real layout; this module
//! holds the pieces the generated code leans on:
//!
//! * [`DatatypeField`] — the unsafe marker bound every declared field must
//!   satisfy: a POD type with a classic datatype description. `bool` is
//!   deliberately **not** a field type (receiving arbitrary bytes into a
//!   `bool` is undefined behaviour).
//! * [`StaticDatatype`] — the per-type entry point the macro implements: a
//!   [`Datatype`] description with true offsets, the committed
//!   (plan-compiled) form built once per process, and the 64-bit structural
//!   signature that travels in the transfer header for `MPICD_TYPECHECK`.
//! * [`TypedPack`]/[`TypedUnpack`] — custom-serialization contexts that
//!   route a derived value through the committed pack plan and attach the
//!   signature, so every derived send/receive is checkable on the wire.
//! * [`repr_c_round_up`] — the `#[repr(C)]` field-placement rule, `const`
//!   so the macro's layout proofs replay it at compile time.

// Audited unsafe: raw-pointer pack contexts over caller-owned memory plus
// POD field markers; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::datatype::{CustomPack, CustomUnpack, RandomAccessPacker, RandomAccessUnpacker};
use crate::error::Result;
use mpicd_datatype::engine::{DatatypePacker, DatatypeUnpacker};
use mpicd_datatype::{Committed, Datatype, Primitive};
use std::marker::PhantomData;
use std::sync::Arc;

/// A field type [`derive_datatype!`](crate::derive_datatype) accepts.
///
/// # Safety
/// Implementors must be plain-old-data with no padding of their own unless
/// [`Self::field_datatype`] describes exactly which bytes are live: the
/// generated pack/unpack contexts copy the type-map blocks bytewise, and
/// every bit pattern the peer may send into those blocks must be a valid
/// value. (`bool` fails that test and has no impl.)
pub unsafe trait DatatypeField: Copy + Send + Sync + 'static {
    /// The classic derived-datatype description of this field type,
    /// relative to the field's own base address.
    fn field_datatype() -> Datatype;
}

macro_rules! impl_field {
    ($($t:ty => $p:expr),* $(,)?) => {
        $(
            // SAFETY: fixed-size numeric POD; every bit pattern is a valid
            // value and the primitive describes the full layout.
            unsafe impl DatatypeField for $t {
                fn field_datatype() -> Datatype {
                    Datatype::predefined($p)
                }
            }
        )*
    };
}

impl_field!(
    u8 => Primitive::Byte,
    i8 => Primitive::Byte,
    u16 => Primitive::Int16,
    i16 => Primitive::Int16,
    u32 => Primitive::Int32,
    i32 => Primitive::Int32,
    u64 => Primitive::Int64,
    i64 => Primitive::Int64,
    f32 => Primitive::Float,
    f64 => Primitive::Double,
);

// SAFETY: an array of POD elements is POD; `contiguous` describes exactly
// N back-to-back elements, which is the array layout guarantee.
unsafe impl<T: DatatypeField, const N: usize> DatatypeField for [T; N] {
    fn field_datatype() -> Datatype {
        Datatype::contiguous(N, T::field_datatype())
    }
}

/// A type whose classic-datatype description was generated (and layout-
/// proved) by [`derive_datatype!`](crate::derive_datatype).
pub trait StaticDatatype {
    /// The full datatype description: a struct of the declared fields at
    /// their true (`offset_of!`) byte offsets.
    fn datatype() -> Datatype;

    /// The committed, plan-compiled form — built once per process and
    /// shared by every operation on this type.
    fn committed() -> &'static Arc<Committed>;

    /// The 64-bit structural signature shipped in the transfer header and
    /// compared under `MPICD_TYPECHECK`.
    fn signature() -> u64 {
        Self::committed().signature64()
    }
}

/// The `#[repr(C)]` field-placement rule: the next field starts at the
/// running offset rounded up to the field's alignment. `const` so the
/// macro's compile-time layout proofs can replay the algorithm.
pub const fn repr_c_round_up(cursor: usize, align: usize) -> usize {
    cursor.div_ceil(align) * align
}

/// Send context for a derived value: packs through the committed plan and
/// attaches the structural signature. Always used as a `Custom` view (even
/// for gap-free types) so the signature travels with every derived send.
pub struct TypedPack<'a> {
    packer: DatatypePacker,
    sig: u64,
    _borrow: PhantomData<&'a [u8]>,
}

impl TypedPack<'_> {
    /// Pack `count` elements of `ty` based at `base`.
    ///
    /// # Safety
    /// `base` must stay valid for reads over every type-map block of all
    /// `count` elements for the context's lifetime.
    pub unsafe fn new(ty: &Arc<Committed>, base: *const u8, count: usize) -> Self {
        Self {
            // SAFETY: forwarded from this constructor's contract.
            packer: unsafe { DatatypePacker::new(Arc::clone(ty), base, count) },
            sig: ty.signature64(),
            _borrow: PhantomData,
        }
    }
}

impl CustomPack for TypedPack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.packer.packed_size())
    }

    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        Ok(self.packer.pack(offset, dst))
    }

    fn inorder(&self) -> bool {
        false // the committed plan addresses any stream offset directly
    }

    fn random_access(&self) -> Option<&dyn RandomAccessPacker> {
        Some(self)
    }

    fn type_signature(&self) -> u64 {
        self.sig
    }
}

impl RandomAccessPacker for TypedPack<'_> {
    fn pack_at(&self, offset: usize, dst: &mut [u8]) -> std::result::Result<usize, i32> {
        Ok(self.packer.pack_at(offset, dst))
    }
}

/// Receive context for a derived value: scatters through the committed
/// plan and declares the expected structural signature.
pub struct TypedUnpack<'a> {
    unpacker: DatatypeUnpacker,
    sig: u64,
    _borrow: PhantomData<&'a mut [u8]>,
}

impl TypedUnpack<'_> {
    /// Unpack into `count` elements of `ty` based at `base`.
    ///
    /// # Safety
    /// `base` must stay valid for writes over every type-map block of all
    /// `count` elements for the context's lifetime, with no other access
    /// in between.
    pub unsafe fn new(ty: &Arc<Committed>, base: *mut u8, count: usize) -> Self {
        Self {
            // SAFETY: forwarded from this constructor's contract.
            unpacker: unsafe { DatatypeUnpacker::new(Arc::clone(ty), base, count) },
            sig: ty.signature64(),
            _borrow: PhantomData,
        }
    }
}

impl CustomUnpack for TypedUnpack<'_> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.unpacker.packed_size())
    }

    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()> {
        self.unpacker.unpack(offset, src);
        Ok(())
    }

    fn random_access(&self) -> Option<&dyn RandomAccessUnpacker> {
        Some(self)
    }

    fn type_signature(&self) -> u64 {
        self.sig
    }
}

impl RandomAccessUnpacker for TypedUnpack<'_> {
    fn unpack_at(&self, offset: usize, src: &[u8]) -> std::result::Result<(), i32> {
        self.unpacker.unpack_at(offset, src);
        Ok(())
    }
}

/// Safe pack context over a slice of derived elements — one typed message
/// of `items.len()` extent-spaced elements. (The orphan rule keeps
/// `derive_datatype!` from generating `Buffer for [T]` in downstream
/// crates, so slices go through this helper and
/// [`Communicator::send_custom`](crate::Communicator::send_custom) or
/// [`transfer_custom`](crate::transfer_custom).)
pub fn slice_pack<T: StaticDatatype + DatatypeField>(items: &[T]) -> TypedPack<'_> {
    // SAFETY: the borrow ties the base pointer's validity to the context's
    // lifetime; the layout proofs pin extent == size_of, so `len` elements
    // cover exactly the slice.
    unsafe { TypedPack::new(T::committed(), items.as_ptr().cast(), items.len()) }
}

/// Safe unpack context over a mutable slice of derived elements.
pub fn slice_unpack<T: StaticDatatype + DatatypeField>(items: &mut [T]) -> TypedUnpack<'_> {
    // SAFETY: the exclusive borrow guarantees sole access for the
    // context's lifetime; type-map blocks stay inside the slice.
    unsafe { TypedUnpack::new(T::committed(), items.as_mut_ptr().cast(), items.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_fields_describe_their_layout() {
        for (size, dt) in [
            (1, u8::field_datatype()),
            (2, i16::field_datatype()),
            (4, u32::field_datatype()),
            (8, i64::field_datatype()),
            (4, f32::field_datatype()),
            (8, f64::field_datatype()),
        ] {
            assert_eq!(dt.size(), size);
            assert_eq!(dt.extent(), size);
        }
    }

    #[test]
    fn arrays_are_contiguous_fields() {
        let dt = <[f64; 3]>::field_datatype();
        assert_eq!(dt.size(), 24);
        let nested = <[[i32; 2]; 4]>::field_datatype();
        assert_eq!(nested.size(), 32);
    }

    #[test]
    fn repr_c_cursor_rule() {
        assert_eq!(repr_c_round_up(0, 8), 0);
        assert_eq!(repr_c_round_up(1, 8), 8);
        assert_eq!(repr_c_round_up(12, 4), 12);
        assert_eq!(repr_c_round_up(13, 1), 13);
    }
}
