//! Round-based communication schedules and a virtual-clock cost model for
//! the collective algorithms in [`crate::collective`].
//!
//! Running a real 4096-thread world to compare collective algorithms is
//! infeasible; instead, each algorithm's communication pattern is expressed
//! as a *schedule* — a sequence of rounds, each a set of messages that
//! proceed concurrently — and replayed against a [`VirtualClock`] whose
//! per-hop costs come from the fabric's [`WireModel`]. The schedules mirror
//! the real implementations message-for-message (a consistency test in
//! `collective.rs` pins schedule message/byte counts to actual fabric
//! traffic), so a schedule makespan is the modeled completion time of the
//! real code at that scale.
//!
//! The same machinery powers algorithm *selection*: `auto` collectives
//! compute candidate makespans at the actual (rank count, size) point and
//! pick the winner, which makes the Träff-style self-consistency guideline
//! ("a smarter algorithm must never lose to the naive one where it is
//! selected") hold by construction.

use mpicd_fabric::WireModel;

/// One modeled point-to-point message within a schedule round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: usize,
}

/// Consumer of a schedule: receives each round's concurrent message set in
/// schedule order. Implemented by [`VirtualClock`] (cost model) and
/// [`MsgCounter`] (traffic accounting).
pub trait RoundSink {
    /// Observe one round. Messages within a round are concurrent;
    /// successive rounds are dependent (a rank's round-`k + 1` traffic
    /// starts after its round-`k` traffic).
    fn round(&mut self, msgs: &[Msg]);
}

/// Per-rank virtual clocks advanced by replaying a schedule.
///
/// Each round is costed against a snapshot of the clocks at round entry: a
/// message starts at `max(clock[src], clock[dst])` under the snapshot,
/// takes [`WireModel::message_time_ns`] (eager/rendezvous chosen by size),
/// and advances both endpoints to its end time. The makespan is the
/// maximum clock after the last round.
pub struct VirtualClock {
    model: WireModel,
    clock: Vec<f64>,
    snap: Vec<f64>,
}

impl VirtualClock {
    /// Zeroed clocks for `ranks` ranks costed under `model`.
    pub fn new(ranks: usize, model: WireModel) -> Self {
        Self {
            model,
            clock: vec![0.0; ranks],
            snap: vec![0.0; ranks],
        }
    }

    /// The modeled completion time (ns) of everything replayed so far.
    pub fn makespan_ns(&self) -> f64 {
        self.clock.iter().cloned().fold(0.0, f64::max)
    }
}

impl RoundSink for VirtualClock {
    fn round(&mut self, msgs: &[Msg]) {
        self.snap.copy_from_slice(&self.clock);
        for m in msgs {
            let start = self.snap[m.src].max(self.snap[m.dst]);
            let end = start
                + self
                    .model
                    .message_time_ns(m.bytes, 1, self.model.is_rendezvous(m.bytes));
            self.clock[m.src] = self.clock[m.src].max(end);
            self.clock[m.dst] = self.clock[m.dst].max(end);
        }
    }
}

/// Message and byte totals of a schedule (for consistency checks against
/// real fabric traffic).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MsgCounter {
    /// Total messages across all rounds.
    pub messages: u64,
    /// Total payload bytes across all rounds.
    pub bytes: u64,
}

impl RoundSink for MsgCounter {
    fn round(&mut self, msgs: &[Msg]) {
        self.messages += msgs.len() as u64;
        self.bytes += msgs.iter().map(|m| m.bytes as u64).sum::<u64>();
    }
}

/// Element range of ring chunk `c` when `n` elements split across `p`
/// ranks (chunks differ by at most one element).
fn chunk_bounds(n: usize, p: usize, c: usize) -> (usize, usize) {
    (c * n / p, (c + 1) * n / p)
}

fn chunk_len(n: usize, p: usize, c: usize) -> usize {
    let (lo, hi) = chunk_bounds(n, p, c);
    hi - lo
}

/// Binomial-tree broadcast of `bytes` from `root` (the `bcast`
/// implementation's tree, MPICH vrank rotation).
pub fn sched_bcast_binomial(p: usize, root: usize, bytes: usize, sink: &mut impl RoundSink) {
    if p <= 1 {
        return;
    }
    let real = |v: usize| (v + root) % p;
    let mut mask = 1usize;
    let mut round = Vec::new();
    while mask < p {
        round.clear();
        for v in 0..mask.min(p) {
            if v + mask < p {
                round.push(Msg {
                    src: real(v),
                    dst: real(v + mask),
                    bytes,
                });
            }
        }
        sink.round(&round);
        mask <<= 1;
    }
}

/// Flat gather of one `block`-byte block per rank to `root`: the root
/// receives serially, one message per round (the central loop in
/// `gather_bytes`).
pub fn sched_gather_flat(p: usize, root: usize, block: usize, sink: &mut impl RoundSink) {
    for r in 0..p {
        if r != root {
            sink.round(&[Msg {
                src: r,
                dst: root,
                bytes: block,
            }]);
        }
    }
}

/// Binomial-tree gather: subtree leaders forward their accumulated blocks,
/// doubling the payload per level (log₂ p rounds).
pub fn sched_gather_binomial(p: usize, root: usize, block: usize, sink: &mut impl RoundSink) {
    if p <= 1 {
        return;
    }
    let real = |v: usize| (v + root) % p;
    let mut mask = 1usize;
    let mut round = Vec::new();
    while mask < p {
        round.clear();
        // At level `mask`, every vrank with that bit set sends its subtree
        // (min(mask, p - v) blocks) to vrank v - mask.
        let mut v = mask;
        while v < p {
            if v & mask != 0 {
                round.push(Msg {
                    src: real(v),
                    dst: real(v - mask),
                    bytes: mask.min(p - v) * block,
                });
            }
            v += mask;
        }
        sink.round(&round);
        mask <<= 1;
    }
}

/// Flat scatter from `root`, one message per round (the central loop in
/// `scatter_bytes`).
pub fn sched_scatter_flat(p: usize, root: usize, block: usize, sink: &mut impl RoundSink) {
    for r in 0..p {
        if r != root {
            sink.round(&[Msg {
                src: root,
                dst: r,
                bytes: block,
            }]);
        }
    }
}

/// Binomial-tree scatter: the mirror of [`sched_gather_binomial`], payload
/// halving per level from the root outward.
pub fn sched_scatter_binomial(p: usize, root: usize, block: usize, sink: &mut impl RoundSink) {
    if p <= 1 {
        return;
    }
    let real = |v: usize| (v + root) % p;
    let mut top = 1usize;
    while top < p {
        top <<= 1;
    }
    let mut mask = top >> 1;
    let mut round = Vec::new();
    while mask > 0 {
        round.clear();
        let mut v = 0usize;
        while v < p {
            // v is a subtree leader holding its children's blocks; at this
            // level it peels off the upper half for child v + mask.
            if v & mask == 0 && v + mask < p {
                round.push(Msg {
                    src: real(v),
                    dst: real(v + mask),
                    bytes: mask.min(p - (v + mask)) * block,
                });
            }
            v += mask;
        }
        sink.round(&round);
        mask >>= 1;
    }
}

/// Central allreduce over `n` elements of `elem` bytes: everyone sends to
/// rank 0 (received serially), followed by a binomial broadcast — the
/// original `allreduce_f64` pattern.
pub fn sched_allreduce_central(p: usize, n: usize, elem: usize, sink: &mut impl RoundSink) {
    if p <= 1 {
        return;
    }
    for r in 1..p {
        sink.round(&[Msg {
            src: r,
            dst: 0,
            bytes: n * elem,
        }]);
    }
    sched_bcast_binomial(p, 0, n * elem, sink);
}

/// Ring allreduce: a reduce-scatter pass then an allgather pass, each
/// `p - 1` rounds of `p` concurrent neighbor messages carrying one chunk
/// (`≈ n / p` elements).
pub fn sched_allreduce_ring(p: usize, n: usize, elem: usize, sink: &mut impl RoundSink) {
    if p <= 1 {
        return;
    }
    let mut round = Vec::with_capacity(p);
    // Reduce-scatter: step s, rank r sends chunk (r - s) mod p rightward.
    for s in 0..p - 1 {
        round.clear();
        for r in 0..p {
            let c = (r + p - s % p) % p;
            round.push(Msg {
                src: r,
                dst: (r + 1) % p,
                bytes: chunk_len(n, p, c) * elem,
            });
        }
        sink.round(&round);
    }
    // Allgather: step s, rank r sends chunk (r + 1 - s) mod p rightward.
    for s in 0..p - 1 {
        round.clear();
        for r in 0..p {
            let c = (r + 1 + p - s % p) % p;
            round.push(Msg {
                src: r,
                dst: (r + 1) % p,
                bytes: chunk_len(n, p, c) * elem,
            });
        }
        sink.round(&round);
    }
}

/// Recursive-doubling allreduce (MPICH non-power-of-two variant): the
/// first `2 × rem` ranks fold even→odd, the surviving power-of-two group
/// pairwise-exchanges full vectors for log₂ rounds, then the fold unwinds.
pub fn sched_allreduce_rd(p: usize, n: usize, elem: usize, sink: &mut impl RoundSink) {
    if p <= 1 {
        return;
    }
    let bytes = n * elem;
    let mut pof2 = 1usize;
    while pof2 * 2 <= p {
        pof2 *= 2;
    }
    let rem = p - pof2;
    let mut round = Vec::new();
    if rem > 0 {
        round.clear();
        for e in (0..2 * rem).step_by(2) {
            round.push(Msg {
                src: e,
                dst: e + 1,
                bytes,
            });
        }
        sink.round(&round);
    }
    let real = |v: usize| if v < rem { v * 2 + 1 } else { v + rem };
    let mut mask = 1usize;
    while mask < pof2 {
        round.clear();
        for v in 0..pof2 {
            let peer = v ^ mask;
            // A sendrecv exchange is two messages; emit the v < peer pair
            // once with both directions.
            if v < peer {
                round.push(Msg {
                    src: real(v),
                    dst: real(peer),
                    bytes,
                });
                round.push(Msg {
                    src: real(peer),
                    dst: real(v),
                    bytes,
                });
            }
        }
        sink.round(&round);
        mask <<= 1;
    }
    if rem > 0 {
        round.clear();
        for e in (0..2 * rem).step_by(2) {
            round.push(Msg {
                src: e + 1,
                dst: e,
                bytes,
            });
        }
        sink.round(&round);
    }
}

/// Makespan (ns) of a schedule builder at `p` ranks under `model`.
pub fn makespan_ns(p: usize, model: &WireModel, build: impl FnOnce(&mut VirtualClock)) -> f64 {
    let mut clock = VirtualClock::new(p, *model);
    build(&mut clock);
    clock.makespan_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(f: impl FnOnce(&mut MsgCounter)) -> MsgCounter {
        let mut c = MsgCounter::default();
        f(&mut c);
        c
    }

    #[test]
    fn bcast_binomial_message_count() {
        // A broadcast reaches p - 1 ranks with exactly p - 1 messages.
        for p in [1usize, 2, 3, 5, 8, 13, 64] {
            for root in [0, p - 1] {
                let c = count(|s| sched_bcast_binomial(p, root, 100, s));
                assert_eq!(c.messages, (p - 1) as u64, "p={p} root={root}");
                assert_eq!(c.bytes, 100 * (p - 1) as u64);
            }
        }
    }

    #[test]
    fn gather_schedules_carry_every_block_once() {
        for p in [1usize, 2, 3, 6, 8, 17] {
            for root in [0, p / 2] {
                let flat = count(|s| sched_gather_flat(p, root, 8, s));
                let tree = count(|s| sched_gather_binomial(p, root, 8, s));
                // Every non-root block crosses the wire; the tree forwards
                // blocks multiple times, so only flat equals p - 1 blocks.
                assert_eq!(flat.bytes, 8 * (p - 1) as u64);
                assert!(tree.bytes >= flat.bytes);
                // Binomial has ⌈log₂ p⌉ levels ⇒ far fewer serialized
                // root receives. Message totals still cover every subtree.
                assert_eq!(flat.messages, (p - 1) as u64);
                // Each vrank sends to its parent exactly once.
                assert_eq!(tree.messages, (p - 1) as u64);
            }
        }
    }

    #[test]
    fn scatter_binomial_mirrors_gather() {
        for p in [2usize, 3, 6, 8, 17] {
            for root in [0, p - 1] {
                let g = count(|s| sched_gather_binomial(p, root, 8, s));
                let sc = count(|s| sched_scatter_binomial(p, root, 8, s));
                assert_eq!(g.messages, sc.messages, "p={p} root={root}");
                assert_eq!(g.bytes, sc.bytes, "p={p} root={root}");
            }
        }
    }

    #[test]
    fn ring_moves_two_passes_of_the_vector() {
        // Reduce-scatter + allgather each carry (p-1)/p of the vector per
        // rank: total bytes = 2 (p-1) n elem.
        for p in [2usize, 4, 5, 8] {
            let n = 40;
            let c = count(|s| sched_allreduce_ring(p, n, 8, s));
            assert_eq!(c.messages, (2 * p * (p - 1)) as u64);
            assert_eq!(c.bytes, (2 * (p - 1) * n * 8) as u64);
        }
    }

    #[test]
    fn rd_exchanges_full_vectors_per_level() {
        for p in [2usize, 4, 8, 16] {
            let c = count(|s| sched_allreduce_rd(p, 16, 8, s));
            // Power of two: log2(p) rounds of p messages.
            assert_eq!(c.messages, (p * p.ilog2() as usize) as u64);
        }
        // Non-power-of-two adds the fold and unfold messages.
        let c = count(|s| sched_allreduce_rd(6, 16, 8, s));
        assert_eq!(c.messages, 2 + 4 * 2 + 2);
    }

    #[test]
    fn virtual_clock_respects_round_dependencies() {
        // Two dependent rounds on the same pair cost twice one message;
        // two concurrent disjoint messages cost the same as one.
        let m = WireModel::default();
        let one = m.message_time_ns(100, 1, false);
        let mut vc = VirtualClock::new(4, m);
        vc.round(&[
            Msg {
                src: 0,
                dst: 1,
                bytes: 100,
            },
            Msg {
                src: 2,
                dst: 3,
                bytes: 100,
            },
        ]);
        assert!((vc.makespan_ns() - one).abs() < 1e-6);
        vc.round(&[Msg {
            src: 1,
            dst: 2,
            bytes: 100,
        }]);
        assert!((vc.makespan_ns() - 2.0 * one).abs() < 1e-6);
    }

    #[test]
    fn binomial_bcast_beats_flat_serialization_in_model() {
        // log p concurrent rounds vs p - 1 serialized sends.
        let m = WireModel::default();
        let p = 256;
        let tree = makespan_ns(p, &m, |c| sched_bcast_binomial(p, 0, 1024, c));
        let flat = makespan_ns(p, &m, |c| sched_scatter_flat(p, 0, 1024, c));
        assert!(tree < flat / 4.0, "tree {tree} flat {flat}");
    }
}
