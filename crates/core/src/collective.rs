//! Collective operations — the paper's stated future work ("We also leave
//! the integration with collective operations as future work, which we
//! acknowledge as a requirement for standardization of our approach").
//!
//! This module demonstrates that integration: binomial-tree broadcast and
//! central gather/scatter built from the point-to-point layer, with the
//! broadcast accepting **custom-serialized buffers** — every hop re-invokes
//! the type's pack/unpack contexts, so a `Vec<Vec<i32>>` (or any custom
//! [`Buffer`]) can be broadcast as easily as raw bytes.
//!
//! All collectives here are blocking and must be entered by every rank
//! (ranks on separate threads), like their MPI namesakes. Tags in the
//! reserved collective range keep them out of the application tag space.

use crate::buffer::{Buffer, BufferMut};
use crate::communicator::Communicator;
use crate::error::{Error, Result};
use mpicd_fabric::Tag;
use mpicd_obs::telemetry;
use std::sync::{Arc, OnceLock};

/// Reserved tag for broadcast traffic.
const BCAST_TAG: Tag = i32::MAX - 11;
/// Reserved tag for gather traffic.
const GATHER_TAG: Tag = i32::MAX - 12;
/// Reserved tag for scatter traffic.
const SCATTER_TAG: Tag = i32::MAX - 13;
/// Reserved tag for reduce traffic.
const REDUCE_TAG: Tag = i32::MAX - 14;

/// Name of the collective that owns a reserved tag, if any.
///
/// `mpicd-inspect` uses this mapping to group flight-recorder transfers
/// into collective operations (a bcast tree's hops all carry the
/// reserved bcast tag) when reconstructing per-collective critical
/// paths.
pub fn collective_tag_name(tag: Tag) -> Option<&'static str> {
    match tag {
        BCAST_TAG => Some("bcast"),
        GATHER_TAG => Some("gather"),
        SCATTER_TAG => Some("scatter"),
        REDUCE_TAG => Some("reduce"),
        _ => None,
    }
}

/// Lazily-registered per-collective latency sketch (entry-to-exit wall
/// time of this rank's participation). One relaxed load when telemetry
/// is off; the registry lock is only ever taken once per op name.
fn coll_sketch(
    cell: &'static OnceLock<Arc<telemetry::Sketch>>,
    name: &'static str,
) -> &'static telemetry::Sketch {
    cell.get_or_init(|| telemetry::sketch(name))
}

static BCAST_NS: OnceLock<Arc<telemetry::Sketch>> = OnceLock::new();
static GATHER_NS: OnceLock<Arc<telemetry::Sketch>> = OnceLock::new();
static SCATTER_NS: OnceLock<Arc<telemetry::Sketch>> = OnceLock::new();
static ALLREDUCE_NS: OnceLock<Arc<telemetry::Sketch>> = OnceLock::new();

/// Time one collective invocation into its latency sketch. Returns a
/// guard so every `?`-exit records too (failures are the interesting
/// latencies).
struct CollTimer {
    t0: u64,
    cell: &'static OnceLock<Arc<telemetry::Sketch>>,
    name: &'static str,
}

impl CollTimer {
    fn start(cell: &'static OnceLock<Arc<telemetry::Sketch>>, name: &'static str) -> Self {
        Self {
            t0: telemetry::clock(),
            cell,
            name,
        }
    }
}

impl Drop for CollTimer {
    fn drop(&mut self) {
        if self.t0 != 0 {
            coll_sketch(self.cell, self.name).record(telemetry::clock().saturating_sub(self.t0));
        }
    }
}

/// Binomial-tree broadcast of any buffer that can be both sent and
/// received (root sends its contents; everyone else's `buf` is
/// overwritten). Custom-serialized types work: each forwarding hop packs
/// and unpacks through the type's own contexts.
pub fn bcast<B: Buffer + BufferMut + ?Sized>(
    comm: &Communicator,
    buf: &mut B,
    root: usize,
) -> Result<()> {
    let size = comm.size();
    if root >= size {
        return Err(Error::Fabric(mpicd_fabric::FabricError::InvalidRank {
            rank: root,
            world: size,
        }));
    }
    if size == 1 {
        return Ok(());
    }
    let _sp = mpicd_obs::span!("coll.bcast", "core");
    let _tm = CollTimer::start(&BCAST_NS, "coll.bcast_ns");
    // Rotate ranks so the root is virtual rank 0 (MPICH's binomial tree).
    let vrank = (comm.rank() + size - root) % size;

    // Receive phase: wait for the parent (the rank that differs in this
    // rank's lowest set bit).
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask != 0 {
            let parent = ((vrank - mask) + root) % size;
            comm.recv(buf, parent as i32, BCAST_TAG)?;
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children at descending offsets below the bit
    // we received on.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < size {
            let child = (vrank + mask + root) % size;
            comm.send(&*buf, child, BCAST_TAG)?;
        }
        mask >>= 1;
    }
    Ok(())
}

/// Gather equal-length byte blocks to `root`. Non-roots pass `recv = None`;
/// the root receives `size × send.len()` bytes, rank-major.
pub fn gather_bytes(
    comm: &Communicator,
    send: &[u8],
    recv: Option<&mut Vec<u8>>,
    root: usize,
) -> Result<()> {
    let size = comm.size();
    let _sp = mpicd_obs::span!("coll.gather", "core", send.len());
    let _tm = CollTimer::start(&GATHER_NS, "coll.gather_ns");
    if comm.rank() == root {
        let out = recv.ok_or(Error::Unsupported("root must supply a receive buffer"))?;
        out.clear();
        out.resize(size * send.len(), 0);
        out[root * send.len()..(root + 1) * send.len()].copy_from_slice(send);
        for r in 0..size {
            if r == root {
                continue;
            }
            let dst = &mut out[r * send.len()..(r + 1) * send.len()];
            let st = comm.recv(dst, r as i32, GATHER_TAG)?;
            if st.bytes != send.len() {
                return Err(Error::LengthMismatch {
                    expected: send.len(),
                    got: st.bytes,
                });
            }
        }
    } else {
        comm.send(send, root, GATHER_TAG)?;
    }
    Ok(())
}

/// Scatter equal-length byte blocks from `root`. The root passes the full
/// rank-major buffer; everyone receives their block into `recv`.
pub fn scatter_bytes(
    comm: &Communicator,
    send: Option<&[u8]>,
    recv: &mut [u8],
    root: usize,
) -> Result<()> {
    let size = comm.size();
    let _sp = mpicd_obs::span!("coll.scatter", "core", recv.len());
    let _tm = CollTimer::start(&SCATTER_NS, "coll.scatter_ns");
    if comm.rank() == root {
        let all = send.ok_or(Error::Unsupported("root must supply the send buffer"))?;
        if all.len() != size * recv.len() {
            return Err(Error::LengthMismatch {
                expected: size * recv.len(),
                got: all.len(),
            });
        }
        for r in 0..size {
            let block = &all[r * recv.len()..(r + 1) * recv.len()];
            if r == root {
                recv.copy_from_slice(block);
            } else {
                comm.send(block, r, SCATTER_TAG)?;
            }
        }
    } else {
        let st = comm.recv(recv, root as i32, SCATTER_TAG)?;
        if st.bytes != recv.len() {
            return Err(Error::LengthMismatch {
                expected: recv.len(),
                got: st.bytes,
            });
        }
    }
    Ok(())
}

/// Elementwise reduction operators for [`allreduce_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `MPI_SUM`
    Sum,
    /// `MPI_MIN`
    Min,
    /// `MPI_MAX`
    Max,
}

impl ReduceOp {
    fn apply(self, acc: &mut [f64], other: &[f64]) {
        match self {
            Self::Sum => acc.iter_mut().zip(other).for_each(|(a, b)| *a += b),
            Self::Min => acc.iter_mut().zip(other).for_each(|(a, b)| *a = a.min(*b)),
            Self::Max => acc.iter_mut().zip(other).for_each(|(a, b)| *a = a.max(*b)),
        }
    }
}

/// All-reduce over `f64` slices: central reduce at rank 0, then broadcast.
/// `buf` holds this rank's contribution on entry, the reduction on exit.
pub fn allreduce_f64(comm: &Communicator, buf: &mut [f64], op: ReduceOp) -> Result<()> {
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    let _sp = mpicd_obs::span!("coll.allreduce", "core", buf.len() * 8);
    let _tm = CollTimer::start(&ALLREDUCE_NS, "coll.allreduce_ns");
    if comm.rank() == 0 {
        let mut incoming = vec![0f64; buf.len()];
        for r in 1..size {
            comm.recv(&mut incoming, r as i32, REDUCE_TAG)?;
            op.apply(buf, &incoming);
        }
    } else {
        comm.send(&*buf, 0, REDUCE_TAG)?;
    }
    bcast(comm, buf, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::World;

    fn run_all<F>(n: usize, f: F)
    where
        F: Fn(&Communicator) + Sync,
    {
        let world = World::new(n);
        let comms = world.comms();
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| f(c));
            }
        });
    }

    #[test]
    fn bcast_bytes_all_sizes_and_roots() {
        for n in [1usize, 2, 3, 4, 7, 8] {
            for root in [0, n - 1] {
                run_all(n, |c| {
                    let mut buf = if c.rank() == root {
                        (0..97u8).collect::<Vec<u8>>()
                    } else {
                        vec![0u8; 97]
                    };
                    bcast(c, &mut buf, root).unwrap();
                    assert_eq!(buf, (0..97u8).collect::<Vec<u8>>(), "rank {}", c.rank());
                });
            }
        }
    }

    #[test]
    fn bcast_custom_double_vec() {
        // The headline capability: broadcasting a dynamic custom type.
        run_all(4, |c| {
            let reference: Vec<Vec<i32>> = vec![vec![1, 2, 3], vec![9; 100], vec![-5]];
            let mut buf = if c.rank() == 2 {
                reference.clone()
            } else {
                reference.iter().map(|v| vec![0; v.len()]).collect()
            };
            bcast(c, &mut buf, 2).unwrap();
            assert_eq!(buf, reference, "rank {}", c.rank());
        });
    }

    #[test]
    fn gather_collects_rank_blocks() {
        run_all(4, |c| {
            let mine = vec![c.rank() as u8; 16];
            if c.rank() == 1 {
                let mut all = Vec::new();
                gather_bytes(c, &mine, Some(&mut all), 1).unwrap();
                for r in 0..4 {
                    assert_eq!(&all[r * 16..(r + 1) * 16], vec![r as u8; 16].as_slice());
                }
            } else {
                gather_bytes(c, &mine, None, 1).unwrap();
            }
        });
    }

    #[test]
    fn scatter_distributes_rank_blocks() {
        run_all(3, |c| {
            let mut mine = vec![0u8; 8];
            if c.rank() == 0 {
                let all: Vec<u8> = (0..3u8).flat_map(|r| vec![r * 10; 8]).collect();
                scatter_bytes(c, Some(&all), &mut mine, 0).unwrap();
            } else {
                scatter_bytes(c, None, &mut mine, 0).unwrap();
            }
            assert_eq!(mine, vec![c.rank() as u8 * 10; 8]);
        });
    }

    #[test]
    fn allreduce_sum_min_max() {
        for (op, expect) in [
            (
                ReduceOp::Sum,
                [0.0 + 1.0 + 2.0 + 3.0, 4.0 * 10.0 + 0.0 + 1.0 + 2.0 + 3.0],
            ),
            (ReduceOp::Min, [0.0, 10.0]),
            (ReduceOp::Max, [3.0, 13.0]),
        ] {
            run_all(4, |c| {
                let r = c.rank() as f64;
                let mut buf = [r, 10.0 + r];
                allreduce_f64(c, &mut buf, op).unwrap();
                assert_eq!(buf, expect, "op {op:?} rank {}", c.rank());
            });
        }
    }

    #[test]
    fn bcast_invalid_root_rejected() {
        let world = World::new(2);
        let c = world.comm(0);
        let mut buf = vec![0u8; 4];
        assert!(bcast(&c, &mut buf, 9).is_err());
    }

    #[test]
    fn gather_root_without_buffer_rejected() {
        let world = World::new(1);
        let c = world.comm(0);
        assert!(matches!(
            gather_bytes(&c, &[1, 2], None, 0),
            Err(Error::Unsupported(_))
        ));
    }
}
