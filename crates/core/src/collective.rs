//! Collective operations — the paper's stated future work ("We also leave
//! the integration with collective operations as future work, which we
//! acknowledge as a requirement for standardization of our approach").
//!
//! This module demonstrates that integration: binomial-tree broadcast and
//! central gather/scatter built from the point-to-point layer, with the
//! broadcast accepting **custom-serialized buffers** — every hop re-invokes
//! the type's pack/unpack contexts, so a `Vec<Vec<i32>>` (or any custom
//! [`Buffer`]) can be broadcast as easily as raw bytes.
//!
//! All collectives here are blocking and must be entered by every rank
//! (ranks on separate threads), like their MPI namesakes. Tags in the
//! reserved collective range keep them out of the application tag space.

use crate::buffer::{Buffer, BufferMut};
use crate::coll_sched::{
    makespan_ns, sched_allreduce_central, sched_allreduce_rd, sched_allreduce_ring,
    sched_gather_binomial, sched_gather_flat,
};
use crate::communicator::Communicator;
use crate::error::{Error, Result};
use mpicd_fabric::{Tag, WireModel};
use mpicd_obs::telemetry;
use std::sync::{Arc, OnceLock};

/// Reserved tag for broadcast traffic.
const BCAST_TAG: Tag = i32::MAX - 11;
/// Reserved tag for gather traffic.
const GATHER_TAG: Tag = i32::MAX - 12;
/// Reserved tag for scatter traffic.
const SCATTER_TAG: Tag = i32::MAX - 13;
/// Reserved tag for reduce traffic.
const REDUCE_TAG: Tag = i32::MAX - 14;

/// Name of the collective that owns a reserved tag, if any.
///
/// `mpicd-inspect` uses this mapping to group flight-recorder transfers
/// into collective operations (a bcast tree's hops all carry the
/// reserved bcast tag) when reconstructing per-collective critical
/// paths.
pub fn collective_tag_name(tag: Tag) -> Option<&'static str> {
    match tag {
        BCAST_TAG => Some("bcast"),
        GATHER_TAG => Some("gather"),
        SCATTER_TAG => Some("scatter"),
        REDUCE_TAG => Some("reduce"),
        _ => None,
    }
}

/// Allreduce algorithm choice.
///
/// Knob: `MPICD_COLL_ALLREDUCE` = `auto` (default) | `central` | `ring` |
/// `rd`. `Auto` compares modeled schedule makespans at the actual
/// (rank count, vector size) point and keeps the naive central algorithm
/// unless a smarter one is a clear (≥5%) win — the Träff self-consistency
/// guideline by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// Select by modeled makespan at the call's size and rank count.
    Auto,
    /// Reduce at rank 0, then binomial broadcast (the naive baseline).
    Central,
    /// Ring reduce-scatter + allgather: bandwidth-optimal for large
    /// vectors (`2 (p-1)/p · n` bytes per rank, no root bottleneck).
    Ring,
    /// Recursive doubling: `log₂ p` full-vector exchanges — latency-
    /// optimal for small vectors at large rank counts.
    RecursiveDoubling,
}

/// Tree-vs-flat choice for gather/scatter.
///
/// Knob: `MPICD_COLL_TREE` = `auto` (default) | `flat` | `binomial`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeAlgo {
    /// Select by modeled makespan at the call's size and rank count.
    Auto,
    /// The root sends/receives every block itself (the naive baseline).
    Flat,
    /// Binomial tree: `⌈log₂ p⌉` levels, payload doubling toward the root.
    Binomial,
}

/// Parse an `MPICD_COLL_ALLREDUCE` value.
pub(crate) fn parse_allreduce(s: &str) -> Option<AllreduceAlgo> {
    match s.to_ascii_lowercase().as_str() {
        "auto" => Some(AllreduceAlgo::Auto),
        "central" => Some(AllreduceAlgo::Central),
        "ring" => Some(AllreduceAlgo::Ring),
        "rd" | "recursive-doubling" => Some(AllreduceAlgo::RecursiveDoubling),
        _ => None,
    }
}

/// Parse an `MPICD_COLL_TREE` value.
pub(crate) fn parse_tree(s: &str) -> Option<TreeAlgo> {
    match s.to_ascii_lowercase().as_str() {
        "auto" => Some(TreeAlgo::Auto),
        "flat" => Some(TreeAlgo::Flat),
        "binomial" => Some(TreeAlgo::Binomial),
        _ => None,
    }
}

/// The process-wide allreduce algorithm from `MPICD_COLL_ALLREDUCE`
/// (read once; unknown values warn on stderr and fall back to `Auto`).
fn allreduce_algo_env() -> AllreduceAlgo {
    static A: OnceLock<AllreduceAlgo> = OnceLock::new();
    *A.get_or_init(|| {
        let v = mpicd_obs::config::env_choice(
            "MPICD_COLL_ALLREDUCE",
            &["auto", "central", "ring", "rd", "recursive-doubling"],
            "auto",
        );
        parse_allreduce(v).expect("env_choice returns a listed value")
    })
}

/// The process-wide gather/scatter algorithm from `MPICD_COLL_TREE`
/// (read once; unknown values warn on stderr and fall back to `Auto`).
fn tree_algo_env() -> TreeAlgo {
    static A: OnceLock<TreeAlgo> = OnceLock::new();
    *A.get_or_init(|| {
        let v =
            mpicd_obs::config::env_choice("MPICD_COLL_TREE", &["auto", "flat", "binomial"], "auto");
        parse_tree(v).expect("env_choice returns a listed value")
    })
}

/// Keep the naive algorithm unless the challenger is at least this much
/// faster in the model (stability margin against model noise).
const SELECT_MARGIN: f64 = 1.05;

/// Resolve `Auto` for an allreduce of `n` elements of `elem` bytes at `p`
/// ranks. Never returns `Auto`; never returns an algorithm whose modeled
/// makespan exceeds the central baseline's.
pub fn select_allreduce(p: usize, n: usize, elem: usize, model: &WireModel) -> AllreduceAlgo {
    if p <= 2 {
        return AllreduceAlgo::Central;
    }
    let central = makespan_ns(p, model, |c| sched_allreduce_central(p, n, elem, c));
    let ring = makespan_ns(p, model, |c| sched_allreduce_ring(p, n, elem, c));
    let rd = makespan_ns(p, model, |c| sched_allreduce_rd(p, n, elem, c));
    let (best, best_ns) = if ring <= rd {
        (AllreduceAlgo::Ring, ring)
    } else {
        (AllreduceAlgo::RecursiveDoubling, rd)
    };
    if best_ns * SELECT_MARGIN < central {
        best
    } else {
        AllreduceAlgo::Central
    }
}

/// Resolve `Auto` for a gather/scatter of `block`-byte blocks at `p`
/// ranks (the scatter schedule mirrors the gather one, so one selector
/// serves both directions).
pub fn select_tree(p: usize, block: usize, model: &WireModel) -> TreeAlgo {
    if p <= 2 {
        return TreeAlgo::Flat;
    }
    let flat = makespan_ns(p, model, |c| sched_gather_flat(p, 0, block, c));
    let tree = makespan_ns(p, model, |c| sched_gather_binomial(p, 0, block, c));
    if tree * SELECT_MARGIN < flat {
        TreeAlgo::Binomial
    } else {
        TreeAlgo::Flat
    }
}

/// Lazily-registered per-collective latency sketch (entry-to-exit wall
/// time of this rank's participation). One relaxed load when telemetry
/// is off; the registry lock is only ever taken once per op name.
fn coll_sketch(
    cell: &'static OnceLock<Arc<telemetry::Sketch>>,
    name: &'static str,
) -> &'static telemetry::Sketch {
    cell.get_or_init(|| telemetry::sketch(name))
}

static BCAST_NS: OnceLock<Arc<telemetry::Sketch>> = OnceLock::new();
static GATHER_NS: OnceLock<Arc<telemetry::Sketch>> = OnceLock::new();
static SCATTER_NS: OnceLock<Arc<telemetry::Sketch>> = OnceLock::new();
static ALLREDUCE_NS: OnceLock<Arc<telemetry::Sketch>> = OnceLock::new();

/// Time one collective invocation into its latency sketch. Returns a
/// guard so every `?`-exit records too (failures are the interesting
/// latencies).
struct CollTimer {
    t0: u64,
    cell: &'static OnceLock<Arc<telemetry::Sketch>>,
    name: &'static str,
}

impl CollTimer {
    fn start(cell: &'static OnceLock<Arc<telemetry::Sketch>>, name: &'static str) -> Self {
        Self {
            t0: telemetry::clock(),
            cell,
            name,
        }
    }
}

impl Drop for CollTimer {
    fn drop(&mut self) {
        if self.t0 != 0 {
            coll_sketch(self.cell, self.name).record(telemetry::clock().saturating_sub(self.t0));
        }
    }
}

/// Binomial-tree broadcast of any buffer that can be both sent and
/// received (root sends its contents; everyone else's `buf` is
/// overwritten). Custom-serialized types work: each forwarding hop packs
/// and unpacks through the type's own contexts.
pub fn bcast<B: Buffer + BufferMut + ?Sized>(
    comm: &Communicator,
    buf: &mut B,
    root: usize,
) -> Result<()> {
    let size = comm.size();
    if root >= size {
        return Err(Error::Fabric(mpicd_fabric::FabricError::InvalidRank {
            rank: root,
            world: size,
        }));
    }
    if size == 1 {
        return Ok(());
    }
    let _sp = mpicd_obs::span!("coll.bcast", "core");
    let _tm = CollTimer::start(&BCAST_NS, "coll.bcast_ns");
    // Rotate ranks so the root is virtual rank 0 (MPICH's binomial tree).
    let vrank = (comm.rank() + size - root) % size;

    // Receive phase: wait for the parent (the rank that differs in this
    // rank's lowest set bit).
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask != 0 {
            let parent = ((vrank - mask) + root) % size;
            comm.recv(buf, parent as i32, BCAST_TAG)?;
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children at descending offsets below the bit
    // we received on.
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < size {
            let child = (vrank + mask + root) % size;
            comm.send(&*buf, child, BCAST_TAG)?;
        }
        mask >>= 1;
    }
    Ok(())
}

/// Gather equal-length byte blocks to `root`. Non-roots pass `recv = None`;
/// the root receives `size × send.len()` bytes, rank-major. The algorithm
/// follows `MPICD_COLL_TREE` (default: modeled-makespan auto-selection).
pub fn gather_bytes(
    comm: &Communicator,
    send: &[u8],
    recv: Option<&mut Vec<u8>>,
    root: usize,
) -> Result<()> {
    gather_bytes_with(comm, send, recv, root, tree_algo_env())
}

/// [`gather_bytes`] with an explicit algorithm choice.
pub fn gather_bytes_with(
    comm: &Communicator,
    send: &[u8],
    recv: Option<&mut Vec<u8>>,
    root: usize,
    algo: TreeAlgo,
) -> Result<()> {
    let size = comm.size();
    if root >= size {
        return Err(Error::Fabric(mpicd_fabric::FabricError::InvalidRank {
            rank: root,
            world: size,
        }));
    }
    let _sp = mpicd_obs::span!("coll.gather", "core", send.len());
    let _tm = CollTimer::start(&GATHER_NS, "coll.gather_ns");
    let algo = match algo {
        TreeAlgo::Auto => select_tree(size, send.len(), comm.endpoint().model()),
        a => a,
    };
    match algo {
        TreeAlgo::Binomial => gather_binomial(comm, send, recv, root),
        _ => gather_flat(comm, send, recv, root),
    }
}

/// The original central gather: the root receives every block itself.
fn gather_flat(
    comm: &Communicator,
    send: &[u8],
    recv: Option<&mut Vec<u8>>,
    root: usize,
) -> Result<()> {
    let size = comm.size();
    if comm.rank() == root {
        let out = recv.ok_or(Error::Unsupported("root must supply a receive buffer"))?;
        out.clear();
        out.resize(size * send.len(), 0);
        out[root * send.len()..(root + 1) * send.len()].copy_from_slice(send);
        for r in 0..size {
            if r == root {
                continue;
            }
            let dst = &mut out[r * send.len()..(r + 1) * send.len()];
            let st = comm.recv(dst, r as i32, GATHER_TAG)?;
            if st.bytes != send.len() {
                return Err(Error::LengthMismatch {
                    expected: send.len(),
                    got: st.bytes,
                });
            }
        }
    } else {
        comm.send(send, root, GATHER_TAG)?;
    }
    Ok(())
}

/// Binomial-tree gather: `⌈log₂ p⌉` levels, each non-leaf folding its
/// whole subtree into one contiguous message toward the root.
fn gather_binomial(
    comm: &Communicator,
    send: &[u8],
    recv: Option<&mut Vec<u8>>,
    root: usize,
) -> Result<()> {
    let size = comm.size();
    let blk = send.len();
    let vrank = (comm.rank() + size - root) % size;
    let real = |v: usize| (v + root) % size;
    // `acc` holds this rank's subtree vrank-major and contiguous: own
    // block first, then each child's subtree as it arrives (the child at
    // offset `mask` covers vranks `vrank+mask .. vrank+mask+cnt`).
    let mut acc = send.to_vec();
    let mut mask = 1usize;
    while mask < size {
        if vrank & mask != 0 {
            // Every child has reported; fold the subtree into the parent.
            comm.send(&acc, real(vrank - mask), GATHER_TAG)?;
            break;
        }
        let child = vrank + mask;
        if child < size {
            let cnt = mask.min(size - child);
            let off = acc.len();
            acc.resize(off + cnt * blk, 0);
            let st = comm.recv(&mut acc[off..], real(child) as i32, GATHER_TAG)?;
            if st.bytes != cnt * blk {
                return Err(Error::LengthMismatch {
                    expected: cnt * blk,
                    got: st.bytes,
                });
            }
        }
        mask <<= 1;
    }
    if vrank == 0 {
        let out = recv.ok_or(Error::Unsupported("root must supply a receive buffer"))?;
        out.clear();
        out.resize(size * blk, 0);
        // Remap the vrank-major accumulation back to rank-major output.
        for v in 0..size {
            out[real(v) * blk..(real(v) + 1) * blk].copy_from_slice(&acc[v * blk..(v + 1) * blk]);
        }
    }
    Ok(())
}

/// Scatter equal-length byte blocks from `root`. The root passes the full
/// rank-major buffer; everyone receives their block into `recv`. The
/// algorithm follows `MPICD_COLL_TREE` (default: auto-selection).
pub fn scatter_bytes(
    comm: &Communicator,
    send: Option<&[u8]>,
    recv: &mut [u8],
    root: usize,
) -> Result<()> {
    scatter_bytes_with(comm, send, recv, root, tree_algo_env())
}

/// [`scatter_bytes`] with an explicit algorithm choice.
pub fn scatter_bytes_with(
    comm: &Communicator,
    send: Option<&[u8]>,
    recv: &mut [u8],
    root: usize,
    algo: TreeAlgo,
) -> Result<()> {
    let size = comm.size();
    if root >= size {
        return Err(Error::Fabric(mpicd_fabric::FabricError::InvalidRank {
            rank: root,
            world: size,
        }));
    }
    let _sp = mpicd_obs::span!("coll.scatter", "core", recv.len());
    let _tm = CollTimer::start(&SCATTER_NS, "coll.scatter_ns");
    let algo = match algo {
        TreeAlgo::Auto => select_tree(size, recv.len(), comm.endpoint().model()),
        a => a,
    };
    match algo {
        TreeAlgo::Binomial => scatter_binomial(comm, send, recv, root),
        _ => scatter_flat(comm, send, recv, root),
    }
}

/// The original central scatter: the root sends every block itself.
fn scatter_flat(
    comm: &Communicator,
    send: Option<&[u8]>,
    recv: &mut [u8],
    root: usize,
) -> Result<()> {
    let size = comm.size();
    if comm.rank() == root {
        let all = send.ok_or(Error::Unsupported("root must supply the send buffer"))?;
        if all.len() != size * recv.len() {
            return Err(Error::LengthMismatch {
                expected: size * recv.len(),
                got: all.len(),
            });
        }
        for r in 0..size {
            let block = &all[r * recv.len()..(r + 1) * recv.len()];
            if r == root {
                recv.copy_from_slice(block);
            } else {
                comm.send(block, r, SCATTER_TAG)?;
            }
        }
    } else {
        let st = comm.recv(recv, root as i32, SCATTER_TAG)?;
        if st.bytes != recv.len() {
            return Err(Error::LengthMismatch {
                expected: recv.len(),
                got: st.bytes,
            });
        }
    }
    Ok(())
}

/// Binomial-tree scatter — the mirror of [`gather_binomial`]: each node
/// receives its whole subtree's blocks in one message, then peels off and
/// forwards the upper half at every descending tree level.
fn scatter_binomial(
    comm: &Communicator,
    send: Option<&[u8]>,
    recv: &mut [u8],
    root: usize,
) -> Result<()> {
    let size = comm.size();
    let blk = recv.len();
    let vrank = (comm.rank() + size - root) % size;
    let real = |v: usize| (v + root) % size;
    // Obtain this rank's subtree slice (vrank-major, own block first) and
    // the tree level at which forwarding starts.
    let (mut mask, tmp): (usize, Vec<u8>) = if vrank == 0 {
        let all = send.ok_or(Error::Unsupported("root must supply the send buffer"))?;
        if all.len() != size * blk {
            return Err(Error::LengthMismatch {
                expected: size * blk,
                got: all.len(),
            });
        }
        // Remap rank-major input to vrank-major so subtrees are contiguous.
        let mut t = vec![0u8; size * blk];
        for v in 0..size {
            t[v * blk..(v + 1) * blk].copy_from_slice(&all[real(v) * blk..(real(v) + 1) * blk]);
        }
        let mut m = 1usize;
        while m < size {
            m <<= 1;
        }
        (m, t)
    } else {
        let mut m = 1usize;
        loop {
            if vrank & m != 0 {
                let cnt = m.min(size - vrank);
                let mut t = vec![0u8; cnt * blk];
                let st = comm.recv(&mut t, real(vrank - m) as i32, SCATTER_TAG)?;
                if st.bytes != cnt * blk {
                    return Err(Error::LengthMismatch {
                        expected: cnt * blk,
                        got: st.bytes,
                    });
                }
                break (m, t);
            }
            m <<= 1;
        }
    };
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < size {
            let child = vrank + mask;
            let cnt = mask.min(size - child);
            comm.send(
                &tmp[mask * blk..(mask + cnt) * blk],
                real(child),
                SCATTER_TAG,
            )?;
        }
        mask >>= 1;
    }
    recv.copy_from_slice(&tmp[..blk]);
    Ok(())
}

/// Elementwise reduction operators for [`allreduce_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `MPI_SUM`
    Sum,
    /// `MPI_MIN`
    Min,
    /// `MPI_MAX`
    Max,
}

impl ReduceOp {
    fn apply(self, acc: &mut [f64], other: &[f64]) {
        match self {
            Self::Sum => acc.iter_mut().zip(other).for_each(|(a, b)| *a += b),
            Self::Min => acc.iter_mut().zip(other).for_each(|(a, b)| *a = a.min(*b)),
            Self::Max => acc.iter_mut().zip(other).for_each(|(a, b)| *a = a.max(*b)),
        }
    }
}

/// All-reduce over `f64` slices. `buf` holds this rank's contribution on
/// entry, the full reduction on exit. The algorithm follows
/// `MPICD_COLL_ALLREDUCE` (default: modeled-makespan auto-selection).
pub fn allreduce_f64(comm: &Communicator, buf: &mut [f64], op: ReduceOp) -> Result<()> {
    allreduce_f64_with(comm, buf, op, allreduce_algo_env())
}

/// [`allreduce_f64`] with an explicit algorithm choice.
pub fn allreduce_f64_with(
    comm: &Communicator,
    buf: &mut [f64],
    op: ReduceOp,
    algo: AllreduceAlgo,
) -> Result<()> {
    let size = comm.size();
    if size == 1 {
        return Ok(());
    }
    let _sp = mpicd_obs::span!("coll.allreduce", "core", buf.len() * 8);
    let _tm = CollTimer::start(&ALLREDUCE_NS, "coll.allreduce_ns");
    let algo = match algo {
        AllreduceAlgo::Auto => select_allreduce(size, buf.len(), 8, comm.endpoint().model()),
        a => a,
    };
    match algo {
        AllreduceAlgo::Ring => allreduce_ring(comm, buf, op),
        AllreduceAlgo::RecursiveDoubling => allreduce_rd(comm, buf, op),
        _ => allreduce_central(comm, buf, op),
    }
}

/// The original central algorithm: reduce at rank 0, binomial broadcast.
fn allreduce_central(comm: &Communicator, buf: &mut [f64], op: ReduceOp) -> Result<()> {
    let size = comm.size();
    if comm.rank() == 0 {
        let mut incoming = vec![0f64; buf.len()];
        for r in 1..size {
            comm.recv(&mut incoming, r as i32, REDUCE_TAG)?;
            op.apply(buf, &incoming);
        }
    } else {
        comm.send(&*buf, 0, REDUCE_TAG)?;
    }
    bcast(comm, buf, 0)
}

/// Ring allreduce: a reduce-scatter pass then an allgather pass, each
/// `p-1` rounds of simultaneous send-right/recv-left. Chunk `c` spans
/// elements `c·n/p .. (c+1)·n/p` (chunks may be empty when `n < p`).
fn allreduce_ring(comm: &Communicator, buf: &mut [f64], op: ReduceOp) -> Result<()> {
    let p = comm.size();
    let rank = comm.rank();
    let n = buf.len();
    let right = (rank + 1) % p;
    let left = (rank + p - 1) % p;
    let bounds = |c: usize| (c * n / p, (c + 1) * n / p);
    // Staging buffers: the outgoing chunk must be copied out of `buf`
    // because the incoming chunk lands in `buf` under a separate borrow.
    let mut stmp = vec![0f64; n.div_ceil(p)];
    let mut rtmp = vec![0f64; n.div_ceil(p)];
    // Reduce-scatter: after step `s` this rank holds the partial sum of
    // chunk `(rank+p-s-1) % p` over `s+1` contributors; after `p-1` steps
    // it owns the complete reduction of chunk `(rank+1) % p`.
    for s in 0..p - 1 {
        let (slo, shi) = bounds((rank + p - s) % p);
        let (rlo, rhi) = bounds((rank + p - s - 1) % p);
        stmp[..shi - slo].copy_from_slice(&buf[slo..shi]);
        comm.sendrecv(
            &stmp[..shi - slo],
            right,
            REDUCE_TAG,
            &mut rtmp[..rhi - rlo],
            left as i32,
            REDUCE_TAG,
        )?;
        op.apply(&mut buf[rlo..rhi], &rtmp[..rhi - rlo]);
    }
    // Allgather: circulate the finished chunks rightward.
    for s in 0..p - 1 {
        let (slo, shi) = bounds((rank + 1 + p - s) % p);
        let (rlo, rhi) = bounds((rank + p - s) % p);
        stmp[..shi - slo].copy_from_slice(&buf[slo..shi]);
        comm.sendrecv(
            &stmp[..shi - slo],
            right,
            REDUCE_TAG,
            &mut rtmp[..rhi - rlo],
            left as i32,
            REDUCE_TAG,
        )?;
        buf[rlo..rhi].copy_from_slice(&rtmp[..rhi - rlo]);
    }
    Ok(())
}

/// Recursive-doubling allreduce (MPICH's non-power-of-two variant): fold
/// the first `2·rem` ranks pairwise so a power-of-two subset survives,
/// run `log₂ pof2` full-vector pairwise exchanges, then unfold.
fn allreduce_rd(comm: &Communicator, buf: &mut [f64], op: ReduceOp) -> Result<()> {
    let p = comm.size();
    let rank = comm.rank();
    let mut pof2 = 1usize;
    while pof2 * 2 <= p {
        pof2 *= 2;
    }
    let rem = p - pof2;
    let mut tmp = vec![0f64; buf.len()];
    // Fold: even ranks below 2·rem donate their vector to the odd
    // neighbour above and sit out the exchange phase.
    let newrank: isize = if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            comm.send(&*buf, rank + 1, REDUCE_TAG)?;
            -1
        } else {
            comm.recv(&mut tmp, (rank - 1) as i32, REDUCE_TAG)?;
            op.apply(buf, &tmp);
            (rank / 2) as isize
        }
    } else {
        (rank - rem) as isize
    };
    // Pairwise exchange among the pof2 survivors.
    if newrank >= 0 {
        let v = newrank as usize;
        let mut mask = 1usize;
        while mask < pof2 {
            let pv = v ^ mask;
            let peer = if pv < rem { pv * 2 + 1 } else { pv + rem };
            comm.sendrecv(&*buf, peer, REDUCE_TAG, &mut tmp, peer as i32, REDUCE_TAG)?;
            op.apply(buf, &tmp);
            mask <<= 1;
        }
    }
    // Unfold: the surviving odd ranks return the result to their partner.
    if rank < 2 * rem {
        if rank.is_multiple_of(2) {
            comm.recv(buf, (rank + 1) as i32, REDUCE_TAG)?;
        } else {
            comm.send(&*buf, rank - 1, REDUCE_TAG)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::World;

    fn run_all<F>(n: usize, f: F)
    where
        F: Fn(&Communicator) + Sync,
    {
        let world = World::new(n);
        let comms = world.comms();
        std::thread::scope(|s| {
            for c in &comms {
                s.spawn(|| f(c));
            }
        });
    }

    #[test]
    fn bcast_bytes_all_sizes_and_roots() {
        for n in [1usize, 2, 3, 4, 7, 8] {
            for root in [0, n - 1] {
                run_all(n, |c| {
                    let mut buf = if c.rank() == root {
                        (0..97u8).collect::<Vec<u8>>()
                    } else {
                        vec![0u8; 97]
                    };
                    bcast(c, &mut buf, root).unwrap();
                    assert_eq!(buf, (0..97u8).collect::<Vec<u8>>(), "rank {}", c.rank());
                });
            }
        }
    }

    #[test]
    fn bcast_custom_double_vec() {
        // The headline capability: broadcasting a dynamic custom type.
        run_all(4, |c| {
            let reference: Vec<Vec<i32>> = vec![vec![1, 2, 3], vec![9; 100], vec![-5]];
            let mut buf = if c.rank() == 2 {
                reference.clone()
            } else {
                reference.iter().map(|v| vec![0; v.len()]).collect()
            };
            bcast(c, &mut buf, 2).unwrap();
            assert_eq!(buf, reference, "rank {}", c.rank());
        });
    }

    #[test]
    fn gather_collects_rank_blocks() {
        run_all(4, |c| {
            let mine = vec![c.rank() as u8; 16];
            if c.rank() == 1 {
                let mut all = Vec::new();
                gather_bytes(c, &mine, Some(&mut all), 1).unwrap();
                for r in 0..4 {
                    assert_eq!(&all[r * 16..(r + 1) * 16], vec![r as u8; 16].as_slice());
                }
            } else {
                gather_bytes(c, &mine, None, 1).unwrap();
            }
        });
    }

    #[test]
    fn scatter_distributes_rank_blocks() {
        run_all(3, |c| {
            let mut mine = vec![0u8; 8];
            if c.rank() == 0 {
                let all: Vec<u8> = (0..3u8).flat_map(|r| vec![r * 10; 8]).collect();
                scatter_bytes(c, Some(&all), &mut mine, 0).unwrap();
            } else {
                scatter_bytes(c, None, &mut mine, 0).unwrap();
            }
            assert_eq!(mine, vec![c.rank() as u8 * 10; 8]);
        });
    }

    #[test]
    fn allreduce_sum_min_max() {
        for (op, expect) in [
            (
                ReduceOp::Sum,
                [0.0 + 1.0 + 2.0 + 3.0, 4.0 * 10.0 + 0.0 + 1.0 + 2.0 + 3.0],
            ),
            (ReduceOp::Min, [0.0, 10.0]),
            (ReduceOp::Max, [3.0, 13.0]),
        ] {
            run_all(4, |c| {
                let r = c.rank() as f64;
                let mut buf = [r, 10.0 + r];
                allreduce_f64(c, &mut buf, op).unwrap();
                assert_eq!(buf, expect, "op {op:?} rank {}", c.rank());
            });
        }
    }

    #[test]
    fn bcast_invalid_root_rejected() {
        let world = World::new(2);
        let c = world.comm(0);
        let mut buf = vec![0u8; 4];
        assert!(bcast(&c, &mut buf, 9).is_err());
    }

    #[test]
    fn gather_root_without_buffer_rejected() {
        let world = World::new(1);
        let c = world.comm(0);
        assert!(matches!(
            gather_bytes(&c, &[1, 2], None, 0),
            Err(Error::Unsupported(_))
        ));
    }

    #[test]
    fn allreduce_algorithms_agree_on_all_shapes() {
        for algo in [
            AllreduceAlgo::Central,
            AllreduceAlgo::Ring,
            AllreduceAlgo::RecursiveDoubling,
        ] {
            for p in [1usize, 2, 3, 4, 5, 7, 8, 12] {
                // Vector lengths below, equal to, and far above the rank
                // count (including n % p != 0 and empty ring chunks).
                for n in [1usize, 3, 4 * p + 1] {
                    run_all(p, |c| {
                        let r = c.rank() as f64;
                        let mut buf: Vec<f64> = (0..n).map(|i| r * 100.0 + i as f64).collect();
                        allreduce_f64_with(c, &mut buf, ReduceOp::Sum, algo).unwrap();
                        let rank_sum: f64 = (0..p).map(|q| q as f64).sum();
                        for (i, v) in buf.iter().enumerate() {
                            let expect = rank_sum * 100.0 + (i * p) as f64;
                            assert!(
                                (v - expect).abs() < 1e-9,
                                "algo {algo:?} p {p} n {n} rank {} elem {i}: {v} != {expect}",
                                c.rank()
                            );
                        }
                    });
                }
            }
        }
    }

    #[test]
    fn allreduce_min_max_survive_smart_algorithms() {
        for algo in [AllreduceAlgo::Ring, AllreduceAlgo::RecursiveDoubling] {
            run_all(5, |c| {
                let r = c.rank() as f64;
                let mut lo = [r, -r];
                allreduce_f64_with(c, &mut lo, ReduceOp::Min, algo).unwrap();
                assert_eq!(lo, [0.0, -4.0], "{algo:?} rank {}", c.rank());
                let mut hi = [r, -r];
                allreduce_f64_with(c, &mut hi, ReduceOp::Max, algo).unwrap();
                assert_eq!(hi, [4.0, 0.0], "{algo:?} rank {}", c.rank());
            });
        }
    }

    #[test]
    fn binomial_gather_scatter_round_trip_all_roots() {
        for p in [1usize, 2, 3, 4, 6, 8, 12] {
            for root in [0, p - 1] {
                run_all(p, |c| {
                    let blk = 5usize;
                    let mine = vec![(c.rank() as u8) ^ 0x5a; blk];
                    if c.rank() == root {
                        let mut all = Vec::new();
                        gather_bytes_with(c, &mine, Some(&mut all), root, TreeAlgo::Binomial)
                            .unwrap();
                        assert_eq!(all.len(), p * blk);
                        for r in 0..p {
                            assert_eq!(
                                &all[r * blk..(r + 1) * blk],
                                vec![(r as u8) ^ 0x5a; blk].as_slice(),
                                "p {p} root {root} block {r}"
                            );
                        }
                    } else {
                        gather_bytes_with(c, &mine, None, root, TreeAlgo::Binomial).unwrap();
                    }
                    let mut back = vec![0u8; blk];
                    if c.rank() == root {
                        let all: Vec<u8> = (0..p).flat_map(|r| vec![r as u8 + 7; blk]).collect();
                        scatter_bytes_with(c, Some(&all), &mut back, root, TreeAlgo::Binomial)
                            .unwrap();
                    } else {
                        scatter_bytes_with(c, None, &mut back, root, TreeAlgo::Binomial).unwrap();
                    }
                    assert_eq!(back, vec![c.rank() as u8 + 7; blk], "p {p} root {root}");
                });
            }
        }
    }

    #[test]
    fn knob_values_parse() {
        assert_eq!(parse_allreduce("RING"), Some(AllreduceAlgo::Ring));
        assert_eq!(parse_allreduce("central"), Some(AllreduceAlgo::Central));
        assert_eq!(
            parse_allreduce("rd"),
            Some(AllreduceAlgo::RecursiveDoubling)
        );
        assert_eq!(
            parse_allreduce("recursive-doubling"),
            Some(AllreduceAlgo::RecursiveDoubling)
        );
        assert_eq!(parse_allreduce("auto"), Some(AllreduceAlgo::Auto));
        assert_eq!(parse_allreduce("bogus"), None);
        assert_eq!(parse_tree("Binomial"), Some(TreeAlgo::Binomial));
        assert_eq!(parse_tree("flat"), Some(TreeAlgo::Flat));
        assert_eq!(parse_tree("auto"), Some(TreeAlgo::Auto));
        assert_eq!(parse_tree(""), None);
    }

    #[test]
    fn selector_never_picks_a_loser() {
        // The Träff self-consistency invariant: whatever Auto resolves to
        // must not be modeled slower than the naive baseline.
        let model = mpicd_fabric::WireModel::infiniband_100g();
        for p in [3usize, 4, 16, 64, 256, 1024] {
            for n in [1usize, 128, 16 * 1024, 128 * 1024] {
                let pick = select_allreduce(p, n, 8, &model);
                assert_ne!(pick, AllreduceAlgo::Auto);
                let cost = |a: AllreduceAlgo| {
                    makespan_ns(p, &model, |c| match a {
                        AllreduceAlgo::Ring => sched_allreduce_ring(p, n, 8, c),
                        AllreduceAlgo::RecursiveDoubling => sched_allreduce_rd(p, n, 8, c),
                        _ => sched_allreduce_central(p, n, 8, c),
                    })
                };
                assert!(
                    cost(pick) <= cost(AllreduceAlgo::Central),
                    "p {p} n {n}: {pick:?} modeled slower than central"
                );
                let tree = select_tree(p, n, &model);
                assert_ne!(tree, TreeAlgo::Auto);
                let tcost = |a: TreeAlgo| {
                    makespan_ns(p, &model, |c| match a {
                        TreeAlgo::Binomial => sched_gather_binomial(p, 0, n, c),
                        _ => sched_gather_flat(p, 0, n, c),
                    })
                };
                assert!(
                    tcost(tree) <= tcost(TreeAlgo::Flat),
                    "p {p} block {n}: {tree:?} modeled slower than flat"
                );
            }
        }
    }

    #[test]
    fn schedules_predict_real_traffic_exactly() {
        // The virtual schedules drive both the selector and the scaling
        // benchmark — pin them to the real implementations by comparing
        // message/byte counts against fabric statistics deltas.
        use crate::coll_sched::{sched_scatter_binomial, MsgCounter};
        struct Case {
            p: usize,
            run: fn(&Communicator),
            sched: fn(usize, &mut MsgCounter),
        }
        let cases = [
            Case {
                p: 4,
                run: |c| {
                    let mut buf = vec![c.rank() as f64; 12];
                    allreduce_f64_with(c, &mut buf, ReduceOp::Sum, AllreduceAlgo::Ring).unwrap();
                },
                sched: |p, m| sched_allreduce_ring(p, 12, 8, m),
            },
            Case {
                p: 6,
                run: |c| {
                    let mut buf = vec![c.rank() as f64; 12];
                    allreduce_f64_with(
                        c,
                        &mut buf,
                        ReduceOp::Sum,
                        AllreduceAlgo::RecursiveDoubling,
                    )
                    .unwrap();
                },
                sched: |p, m| sched_allreduce_rd(p, 12, 8, m),
            },
            Case {
                p: 6,
                run: |c| {
                    let mine = vec![c.rank() as u8; 32];
                    if c.rank() == 0 {
                        let mut all = Vec::new();
                        gather_bytes_with(c, &mine, Some(&mut all), 0, TreeAlgo::Binomial).unwrap();
                    } else {
                        gather_bytes_with(c, &mine, None, 0, TreeAlgo::Binomial).unwrap();
                    }
                },
                sched: |p, m| sched_gather_binomial(p, 0, 32, m),
            },
            Case {
                p: 6,
                run: |c| {
                    let mut mine = vec![0u8; 32];
                    if c.rank() == 0 {
                        let all = vec![9u8; 6 * 32];
                        scatter_bytes_with(c, Some(&all), &mut mine, 0, TreeAlgo::Binomial)
                            .unwrap();
                    } else {
                        scatter_bytes_with(c, None, &mut mine, 0, TreeAlgo::Binomial).unwrap();
                    }
                },
                sched: |p, m| sched_scatter_binomial(p, 0, 32, m),
            },
        ];
        for case in &cases {
            let world = World::new(case.p);
            let before = world.fabric().stats();
            let comms = world.comms();
            std::thread::scope(|s| {
                for c in &comms {
                    s.spawn(|| (case.run)(c));
                }
            });
            let delta = world.fabric().stats().since(&before);
            let mut expect = MsgCounter::default();
            (case.sched)(case.p, &mut expect);
            assert_eq!(
                delta.messages, expect.messages,
                "p {} message count drifted from schedule",
                case.p
            );
            assert_eq!(
                delta.bytes, expect.bytes,
                "p {} byte count drifted from schedule",
                case.p
            );
        }
    }
}
