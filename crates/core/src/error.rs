//! Error handling for mpicd operations.
//!
//! The paper makes error propagation a first-class design point: "each
//! callback returns either MPI_SUCCESS or an error value indicating a
//! failure. Error handling is crucial for serialization libraries that can
//! fail in the case of invalid data." Application callbacks here return
//! [`Result`]; error codes cross the C API boundary as plain integers.

use mpicd_datatype::DatatypeError;
use mpicd_fabric::FabricError;
use std::fmt;

/// Result alias for mpicd operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by mpicd operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Transport-level failure (truncation, invalid rank, shutdown, …).
    Fabric(FabricError),
    /// Derived-datatype engine failure.
    Datatype(DatatypeError),
    /// An application serialization callback failed with this code
    /// (anything nonzero; the C API maps it straight through).
    Serialization(i32),
    /// A received header describes a shape that does not match the posted
    /// receive buffer (e.g. double-vec subvector count or lengths differ).
    LengthMismatch {
        /// What the local buffer provides.
        expected: usize,
        /// What the peer described.
        got: usize,
    },
    /// A received header is structurally invalid.
    InvalidHeader(&'static str),
    /// Operation not supported by this buffer/datatype combination.
    Unsupported(&'static str),
}

impl Error {
    /// Stable integer code for the C API (`MPI_SUCCESS == 0`).
    pub fn code(&self) -> i32 {
        match self {
            Self::Fabric(FabricError::Truncated { .. }) => 101,
            Self::Fabric(FabricError::InvalidRank { .. }) => 102,
            Self::Fabric(FabricError::Cancelled) => 103,
            Self::Fabric(FabricError::ShutDown) => 104,
            Self::Fabric(FabricError::PackFailed(c))
            | Self::Fabric(FabricError::UnpackFailed(c))
            | Self::Fabric(FabricError::QueryFailed(c))
            | Self::Fabric(FabricError::RegionFailed(c)) => *c,
            Self::Fabric(_) => 105,
            Self::Datatype(_) => 110,
            Self::Serialization(c) => *c,
            Self::LengthMismatch { .. } => 120,
            Self::InvalidHeader(_) => 121,
            Self::Unsupported(_) => 122,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fabric(e) => write!(f, "transport: {e}"),
            Self::Datatype(e) => write!(f, "datatype: {e}"),
            Self::Serialization(code) => write!(f, "serialization callback failed: code {code}"),
            Self::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            Self::InvalidHeader(what) => write!(f, "invalid header: {what}"),
            Self::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Fabric(e) => Some(e),
            Self::Datatype(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FabricError> for Error {
    fn from(e: FabricError) -> Self {
        Self::Fabric(e)
    }
}

impl From<DatatypeError> for Error {
    fn from(e: DatatypeError) -> Self {
        Self::Datatype(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_code_roundtrips() {
        assert_eq!(Error::Serialization(77).code(), 77);
    }

    #[test]
    fn fabric_callback_codes_pass_through() {
        assert_eq!(Error::Fabric(FabricError::PackFailed(42)).code(), 42);
        assert_eq!(Error::Fabric(FabricError::UnpackFailed(9)).code(), 9);
    }

    #[test]
    fn conversions() {
        let e: Error = FabricError::Cancelled.into();
        assert_eq!(e, Error::Fabric(FabricError::Cancelled));
        let e: Error = DatatypeError::InvalidArgument("x").into();
        assert!(matches!(e, Error::Datatype(_)));
    }

    #[test]
    fn display_nests() {
        let e = Error::Fabric(FabricError::Cancelled);
        assert!(e.to_string().contains("transport"));
    }
}
