//! How values expose themselves to MPI operations.
//!
//! `mpicd` keeps the paper's two-level scheme: a buffer is either
//! *contiguous* (predefined-type fast path — sent as raw bytes) or *custom*
//! (serialized through the callback interface of [`crate::datatype`]).
//! This corresponds to the `Buffer`/`PackMethod` traits of the original
//! mpicd prototype.

// Audited unsafe: raw user-buffer views behind the paper send/recv traits; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::datatype::{CustomPack, CustomUnpack};
use crate::error::Result;
use mpicd_datatype::primitive::Scalar;

/// Send-side view of a value.
pub enum SendView<'a> {
    /// The value is a dense byte sequence; send directly.
    Contiguous(&'a [u8]),
    /// The value needs custom serialization.
    Custom(Box<dyn CustomPack + 'a>),
}

/// Receive-side view of a value.
pub enum RecvView<'a> {
    /// Receive directly into this dense byte buffer.
    Contiguous(&'a mut [u8]),
    /// Reconstruct through custom deserialization.
    Custom(Box<dyn CustomUnpack + 'a>),
}

/// A value that can be sent.
///
/// # Safety
/// A `Custom` view's pack context must only reference memory that stays
/// valid (and unmodified by anyone else) for the view's lifetime — in
/// particular the [`SendRegion`](crate::SendRegion)s it exposes.
pub unsafe trait Buffer {
    /// Describe this value for one send operation.
    fn send_view(&self) -> SendView<'_>;
}

/// A value that can be received into.
///
/// # Safety
/// A `Custom` view's unpack context must only reference memory exclusively
/// reachable through `self` for the view's lifetime — in particular the
/// [`RecvRegion`](crate::RecvRegion)s it exposes.
pub unsafe trait BufferMut {
    /// Describe this value for one receive operation.
    fn recv_view(&mut self) -> RecvView<'_>;
}

// ---- contiguous implementations --------------------------------------------

/// View a scalar slice as raw bytes.
pub fn scalar_bytes<T: Scalar>(s: &[T]) -> &[u8] {
    // SAFETY: Scalar guarantees plain-old-data with no padding.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast(), std::mem::size_of_val(s)) }
}

/// View a mutable scalar slice as raw bytes.
pub fn scalar_bytes_mut<T: Scalar>(s: &mut [T]) -> &mut [u8] {
    // SAFETY: Scalar guarantees plain-old-data; any bit pattern is valid.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast(), std::mem::size_of_val(s)) }
}

// Concrete impls per scalar type (rather than a blanket over `T: Scalar`)
// so that container types like `Vec<Vec<T>>` can carry their own custom
// `Buffer` impls without coherence conflicts.
macro_rules! impl_scalar_buffers {
    ($($t:ty),* $(,)?) => {
        $(
            // SAFETY: a scalar slice exposes no regions beyond itself.
            unsafe impl Buffer for [$t] {
                fn send_view(&self) -> SendView<'_> {
                    SendView::Contiguous(scalar_bytes(self))
                }
            }

            // SAFETY: as above.
            unsafe impl BufferMut for [$t] {
                fn recv_view(&mut self) -> RecvView<'_> {
                    RecvView::Contiguous(scalar_bytes_mut(self))
                }
            }

            // SAFETY: delegates to the slice implementation.
            unsafe impl Buffer for Vec<$t> {
                fn send_view(&self) -> SendView<'_> {
                    SendView::Contiguous(scalar_bytes(self))
                }
            }

            // SAFETY: as above.
            unsafe impl BufferMut for Vec<$t> {
                fn recv_view(&mut self) -> RecvView<'_> {
                    RecvView::Contiguous(scalar_bytes_mut(self))
                }
            }

            // SAFETY: fixed-size arrays are dense scalar storage.
            unsafe impl<const N: usize> Buffer for [$t; N] {
                fn send_view(&self) -> SendView<'_> {
                    SendView::Contiguous(scalar_bytes(self))
                }
            }

            // SAFETY: as above.
            unsafe impl<const N: usize> BufferMut for [$t; N] {
                fn recv_view(&mut self) -> RecvView<'_> {
                    RecvView::Contiguous(scalar_bytes_mut(self))
                }
            }
        )*
    };
}

impl_scalar_buffers!(u8, i8, i16, i32, i64, f32, f64);

/// Wrap any `CustomPack` constructor as a sendable buffer.
///
/// The constructed context must own its data (`'static`); for borrowing
/// contexts implement [`Buffer`] directly (see `mpicd::vecvec` for a
/// worked example).
///
/// ```
/// use mpicd::buffer::{CustomBuffer, SendView, Buffer};
/// use mpicd::datatype::HeaderAndRegion;
///
/// static BODY: [u8; 64] = [7; 64];
/// let buf = CustomBuffer::new(|| HeaderAndRegion::new(vec![1, 2], &BODY));
/// assert!(matches!(buf.send_view(), SendView::Custom(_)));
/// ```
pub struct CustomBuffer<F> {
    make: F,
}

impl<F> CustomBuffer<F> {
    /// Wrap a context constructor.
    pub fn new(make: F) -> Self {
        Self { make }
    }
}

// SAFETY: the constructed context is bound to `&self`'s lifetime, so the
// regions it references outlive the view by the constructor's own borrows.
unsafe impl<F, C> Buffer for CustomBuffer<F>
where
    F: Fn() -> C,
    C: CustomPack + 'static,
{
    fn send_view(&self) -> SendView<'_> {
        SendView::Custom(Box::new((self.make)()))
    }
}

impl SendView<'_> {
    /// Total bytes this view will put on the wire.
    pub fn wire_bytes(&self) -> Result<usize> {
        match self {
            SendView::Contiguous(b) => Ok(b.len()),
            SendView::Custom(ctx) => {
                // Regions are not yet queried here; packed size only. The
                // communicator adds region lengths when it builds the
                // descriptor.
                ctx.packed_size()
            }
        }
    }

    /// Whether this view uses custom serialization.
    pub fn is_custom(&self) -> bool {
        matches!(self, SendView::Custom(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_slices_are_contiguous() {
        let v = vec![1i32, 2, 3];
        match v.send_view() {
            SendView::Contiguous(b) => assert_eq!(b.len(), 12),
            _ => panic!("expected contiguous"),
        };
    }

    #[test]
    fn scalar_bytes_roundtrip() {
        let mut v = vec![0i64; 4];
        let b = scalar_bytes_mut(&mut v);
        b[0] = 7;
        assert_eq!(v[0], 7);
        assert_eq!(scalar_bytes(&v).len(), 32);
    }

    #[test]
    fn arrays_are_buffers() {
        let a = [1.0f64; 8];
        match a.send_view() {
            SendView::Contiguous(b) => assert_eq!(b.len(), 64),
            _ => panic!("expected contiguous"),
        };
    }

    #[test]
    fn wire_bytes_for_contiguous() {
        let v = vec![0u8; 10];
        assert_eq!(v.send_view().wire_bytes().unwrap(), 10);
        assert!(!v.send_view().is_custom());
    }
}
