#![deny(missing_docs)]
#![deny(unsafe_code)]
//! # mpicd — MPI with custom datatype serialization
//!
//! Rust reproduction of the prototype from *"Improving MPI Language Support
//! Through Custom Datatype Serialization"* (Tronge, Schuchart, Pritchard,
//! Dalcin — SC 2024).
//!
//! The paper proposes a new MPI datatype interface in which the
//! *application* controls buffer packing and the wire representation
//! through callbacks (Listing 2's `MPI_Type_create_custom`):
//!
//! | paper callback | here |
//! |---|---|
//! | `statefn` / `freefn` | creating / dropping a [`CustomPack`]/[`CustomUnpack`] value |
//! | `queryfn` | [`CustomPack::packed_size`] |
//! | `packfn` | [`CustomPack::pack`] (virtual offsets, partial fill allowed) |
//! | `unpackfn` | [`CustomUnpack::unpack`] |
//! | `region_countfn` / `regionfn` | [`CustomPack::regions`] / [`CustomUnpack::regions`] |
//! | `inorder` flag | [`CustomPack::inorder`] |
//!
//! A value opts into communication by implementing [`Buffer`] (send side)
//! and/or [`BufferMut`] (receive side), yielding either a contiguous byte
//! view or a custom-serialization context. On the wire, a custom buffer
//! becomes **one** message whose scatter/gather list starts with the packed
//! stream and continues with the exposed memory regions — exactly the
//! paper's UCX iov layout.
//!
//! ## Quick start
//!
//! ```
//! use mpicd::{World, Buffer, BufferMut};
//!
//! // A two-rank world over the simulated fabric.
//! let world = World::new(2);
//! let (c0, c1) = world.pair();
//!
//! // Vec<Vec<i32>> — the paper's "double-vec" dynamic type — has built-in
//! // custom-serialization support: lengths are packed, subvector payloads
//! // travel as zero-copy memory regions, all in a single message.
//! let send: Vec<Vec<i32>> = vec![vec![1, 2, 3], vec![4, 5]];
//! let mut recv: Vec<Vec<i32>> = vec![vec![0; 3], vec![0; 2]];
//!
//! std::thread::scope(|s| {
//!     s.spawn(|| c0.send(&send, 1, 0).unwrap());
//!     s.spawn(|| { c1.recv(&mut recv, 0, 0).unwrap(); });
//! });
//! assert_eq!(recv, vec![vec![1, 2, 3], vec![4, 5]]);
//! ```

pub mod buffer;
pub mod coll_sched;
pub mod collective;
pub mod communicator;
pub mod containers;
pub mod datatype;
pub mod derive;
pub mod error;
pub mod exchange;
pub mod macros;
pub mod resumable;
pub mod types;
pub mod vecvec;

pub use buffer::{Buffer, BufferMut, RecvView, SendView};
pub use collective::{
    allreduce_f64, allreduce_f64_with, bcast, collective_tag_name, gather_bytes, gather_bytes_with,
    scatter_bytes, scatter_bytes_with, select_allreduce, select_tree, AllreduceAlgo, ReduceOp,
    TreeAlgo,
};
pub use communicator::{Communicator, MatchedMessage, Scope, Status, World};
pub use datatype::{
    CustomPack, CustomUnpack, RandomAccessPacker, RandomAccessUnpacker, RecvRegion, SendRegion,
};
pub use derive::{DatatypeField, StaticDatatype};
pub use error::{Error, Result};
pub use exchange::{transfer, transfer_custom, transfer_typed};
pub use resumable::LoopNest;

/// Re-export of the derived-datatype engine (the classic-MPI baseline).
///
/// Typed sends of derived datatypes go through the engine's resumable
/// pack path; a [`Datatype::commit`](mpicd_datatype::Datatype::commit)
/// additionally compiles a cached pack *plan* (strided-copy program, see
/// [`mpicd_datatype::plan`]) that the fragment packer executes, while
/// [`commit_convertor`](mpicd_datatype::Datatype::commit_convertor)
/// remains the paper-faithful interpreted baseline.
pub use mpicd_datatype as derived;
/// Re-export of the transport substrate for harnesses that need wire-model
/// control or traffic statistics.
pub use mpicd_fabric as fabric;
