//! `custom_struct!` — generated packing, the paper's anticipated ergonomic
//! layer: "In practice an extended Rust MPI implementation supporting our
//! new type interface may implement macros to automatically generate
//! manual packing" (§VII).
//!
//! The macro declares a struct with two field groups and derives the
//! [`Buffer`](crate::Buffer)/[`BufferMut`](crate::BufferMut)
//! implementations:
//!
//! * `scalars { … }` — plain-old-data fields, packed in-band (gap-free,
//!   regardless of the struct's memory layout);
//! * `regions { … }` — `Vec<T>` fields sent/received as zero-copy memory
//!   regions, with length validation on the receive side.
//!
//! ```
//! mpicd::custom_struct! {
//!     /// A halo exchange record.
//!     pub struct Halo {
//!         scalars { step: u64, dt: f64 }
//!         regions { left: Vec<f64>, right: Vec<f64> }
//!     }
//! }
//!
//! let world = mpicd::World::new(2);
//! let (c0, c1) = world.pair();
//! let send = Halo { step: 7, dt: 0.5, left: vec![1.0; 256], right: vec![2.0; 256] };
//! let mut recv = Halo { step: 0, dt: 0.0, left: vec![0.0; 256], right: vec![0.0; 256] };
//! mpicd::transfer(&c0, &c1, &send, &mut recv, 0).unwrap();
//! assert_eq!(recv.step, 7);
//! assert_eq!(recv.left, send.left);
//! ```

// Audited unsafe: macro-generated raw-memory trait impls; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

/// Marker for field types the generated packers may copy bytewise.
///
/// # Safety
/// Implementors must be plain-old-data: no padding, no pointers, every bit
/// pattern valid.
pub unsafe trait PodField: Copy + Send + Sync + 'static {}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(
            // SAFETY: primitive numeric types are POD.
            unsafe impl PodField for $t {}
        )*
    };
}

impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64, bool);

/// Element types allowed in `regions { … }` fields.
///
/// # Safety
/// Same contract as [`PodField`].
pub unsafe trait RegionElem: Copy + Send + Sync + 'static {}

macro_rules! impl_region_elem {
    ($($t:ty),*) => {
        $(
            // SAFETY: primitive numeric types are POD.
            unsafe impl RegionElem for $t {}
        )*
    };
}

impl_region_elem!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Declare a struct with generated custom-serialization support. See the
/// [module documentation](self) for syntax and an example.
#[macro_export]
macro_rules! custom_struct {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            scalars { $($sf:ident : $st:ty),* $(,)? }
            regions { $($rf:ident : Vec<$rt:ty>),* $(,)? }
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq, Default)]
        $vis struct $name {
            $(pub $sf: $st,)*
            $(pub $rf: Vec<$rt>,)*
        }

        const _: () = {
            use $crate::datatype::{CustomPack, CustomUnpack, RecvRegion, SendRegion};

            #[allow(dead_code)]
            fn __assert_pod() {
                fn pod<T: $crate::macros::PodField>() {}
                fn elem<T: $crate::macros::RegionElem>() {}
                $(pod::<$st>();)*
                $(elem::<$rt>();)*
            }

            /// Packed in-band bytes of the scalar group.
            const SCALAR_BYTES: usize = 0 $(+ ::std::mem::size_of::<$st>())*;

            #[allow(unused_variables, unused_mut)]
            fn encode_header(v: &$name) -> Vec<u8> {
                let mut h = Vec::with_capacity(SCALAR_BYTES);
                $(
                    // SAFETY: PodField guarantees a padding-free bytewise view.
                    h.extend_from_slice(unsafe {
                        ::std::slice::from_raw_parts(
                            &v.$sf as *const $st as *const u8,
                            ::std::mem::size_of::<$st>(),
                        )
                    });
                )*
                h
            }

            struct Pack<'a> {
                header: Vec<u8>,
                #[allow(dead_code)] // unread when the regions group is empty
                owner: &'a $name,
            }

            impl CustomPack for Pack<'_> {
                fn packed_size(&self) -> $crate::Result<usize> {
                    Ok(self.header.len())
                }
                fn pack(&mut self, offset: usize, dst: &mut [u8]) -> $crate::Result<usize> {
                    let n = dst.len().min(self.header.len() - offset);
                    dst[..n].copy_from_slice(&self.header[offset..offset + n]);
                    Ok(n)
                }
                fn regions(&mut self) -> $crate::Result<Vec<SendRegion>> {
                    Ok(vec![$(SendRegion::from_typed(self.owner.$rf.as_slice()),)*])
                }
                fn inorder(&self) -> bool {
                    false
                }
            }

            // SAFETY: the context references only memory owned by the
            // borrowed value.
            unsafe impl $crate::Buffer for $name {
                fn send_view(&self) -> $crate::SendView<'_> {
                    __assert_pod();
                    $crate::SendView::Custom(Box::new(Pack {
                        header: encode_header(self),
                        owner: self,
                    }))
                }
            }

            struct Unpack<'a> {
                header: Vec<u8>,
                owner: &'a mut $name,
            }

            impl CustomUnpack for Unpack<'_> {
                fn packed_size(&self) -> $crate::Result<usize> {
                    Ok(SCALAR_BYTES)
                }
                fn unpack(&mut self, offset: usize, src: &[u8]) -> $crate::Result<()> {
                    if offset + src.len() > self.header.len() {
                        return Err($crate::Error::InvalidHeader(concat!(
                            stringify!($name),
                            ": scalar header overflow"
                        )));
                    }
                    self.header[offset..offset + src.len()].copy_from_slice(src);
                    Ok(())
                }
                fn regions(&mut self) -> $crate::Result<Vec<RecvRegion>> {
                    Ok(vec![$(RecvRegion::from_typed(self.owner.$rf.as_mut_slice()),)*])
                }
                fn finish(&mut self) -> $crate::Result<()> {
                    let mut __at = 0usize;
                    $(
                        {
                            let size = ::std::mem::size_of::<$st>();
                            // SAFETY: PodField; header sized to SCALAR_BYTES.
                            unsafe {
                                ::std::ptr::copy_nonoverlapping(
                                    self.header.as_ptr().add(__at),
                                    &mut self.owner.$sf as *mut $st as *mut u8,
                                    size,
                                );
                            }
                            __at += size;
                        }
                    )*
                    let _ = __at;
                    Ok(())
                }
            }

            // SAFETY: the context references only memory exclusively owned
            // by the borrowed value.
            unsafe impl $crate::BufferMut for $name {
                fn recv_view(&mut self) -> $crate::RecvView<'_> {
                    __assert_pod();
                    $crate::RecvView::Custom(Box::new(Unpack {
                        header: vec![0u8; SCALAR_BYTES],
                        owner: self,
                    }))
                }
            }
        };
    };
}

/// Declare (or annotate) a `#[repr(C)]` struct as a statically verified
/// classic datatype.
///
/// Where [`custom_struct!`](crate::custom_struct) repacks scalars gap-free,
/// `derive_datatype!` keeps the struct's *native* layout and describes it
/// with a classic derived datatype at true `offset_of!` offsets — the
/// DDTBench struct-of-struct shapes that C codes build with `offsetof`.
/// The macro generates:
///
/// * a [`Datatype`](mpicd_datatype::Datatype) description (struct of
///   {primitive, fixed-size array, nested derived struct} fields), exposed
///   through [`StaticDatatype`](crate::derive::StaticDatatype);
/// * [`Buffer`](crate::Buffer)/[`BufferMut`](crate::BufferMut) impls that
///   route through the committed pack plan and attach the 64-bit
///   structural signature checked under `MPICD_TYPECHECK` (for slices of
///   derived elements, see [`slice_pack`](crate::derive::slice_pack));
/// * **const layout proofs**: the declared field list must be exhaustive,
///   every field must be a [`DatatypeField`](crate::derive::DatatypeField),
///   offsets must be monotone and match a replay of the `#[repr(C)]`
///   placement algorithm, and the accounting must reach `size_of` — a
///   wrong declaration is a *compile error*, not wire corruption.
///
/// Two forms: declare a new struct (field attributes allowed), or
/// `for Existing { field: Type, … }` to annotate a struct declared
/// elsewhere in the same module (it must be `#[repr(C)]` and `Copy`).
///
/// ```
/// mpicd::derive_datatype! {
///     /// An interior cell: 8-byte double + 4-byte int + tail padding.
///     pub struct Cell {
///         rho: f64,
///         mat: i32,
///     }
/// }
///
/// mpicd::derive_datatype! {
///     /// A particle record nesting `Cell` and a fixed-size array.
///     pub struct Particle {
///         pos: [f64; 3],
///         cell: Cell,
///         id: i64,
///     }
/// }
///
/// use mpicd::derive::StaticDatatype;
/// // The committed type map mirrors the native layout exactly.
/// assert_eq!(Particle::committed().extent(), std::mem::size_of::<Particle>());
/// assert_ne!(Particle::signature(), Cell::signature());
///
/// let world = mpicd::World::new(2);
/// let (c0, c1) = world.pair();
/// let send = Particle { pos: [1.0, 2.0, 3.0], cell: Cell { rho: 0.5, mat: 7 }, id: 9 };
/// let mut recv = Particle { pos: [0.0; 3], cell: Cell { rho: 0.0, mat: 0 }, id: 0 };
/// mpicd::transfer(&c0, &c1, &send, &mut recv, 0).unwrap();
/// assert_eq!(recv, send);
/// ```
#[macro_export]
macro_rules! derive_datatype {
    // Form 1: declare the struct and derive everything.
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                $f:ident : $ft:ty
            ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[repr(C)]
        #[derive(Debug, Clone, Copy, PartialEq)]
        $vis struct $name {
            $(
                $(#[$fmeta])*
                pub $f: $ft,
            )*
        }

        $crate::derive_datatype!(for $name { $($f: $ft),* });
    };

    // Form 2: derive for an existing #[repr(C)] struct in this module.
    (for $name:ident { $($f:ident : $ft:ty),* $(,)? }) => {
        const _: () = {
            // (proof 1) Exhaustiveness: rebuilding the struct from exactly
            // the declared fields is a compile error when the declaration
            // omits a field (E0063 `missing field ... in initializer`) or
            // names one the struct lacks (E0560) — including fields hidden
            // entirely inside what the size accounting would take for tail
            // padding.
            #[allow(dead_code)]
            fn __exhaustive(v: $name) -> $name {
                $name { $($f: v.$f),* }
            }

            // (proof 2) Every declared field packs bytewise: DatatypeField
            // is the POD + datatype-description bound (`bool` is deliberately
            // excluded — receiving arbitrary bytes into one is UB).
            #[allow(dead_code)]
            fn __fields_pack() {
                fn ok<T: $crate::derive::DatatypeField>() {}
                $(ok::<$ft>();)*
            }

            // (proof 3) Layout accounting: replay the #[repr(C)] placement
            // algorithm over the declared fields and demand the real
            // offsets — and the final size — agree. Catches reordered
            // declarations, missing fields, and non-repr(C) structs.
            const _: () = {
                let mut cursor: usize = 0;
                $(
                    cursor = $crate::derive::repr_c_round_up(
                        cursor,
                        ::std::mem::align_of::<$ft>(),
                    );
                    assert!(
                        ::std::mem::offset_of!($name, $f) == cursor,
                        concat!(
                            "derive_datatype!(", stringify!($name), "): field `",
                            stringify!($f),
                            "` is not at its declared repr(C) offset (fields listed out of order, or the struct is not #[repr(C)])"
                        )
                    );
                    cursor += ::std::mem::size_of::<$ft>();
                )*
                assert!(
                    $crate::derive::repr_c_round_up(cursor, ::std::mem::align_of::<$name>())
                        == ::std::mem::size_of::<$name>(),
                    concat!(
                        "derive_datatype!(", stringify!($name),
                        "): declared fields do not account for size_of (a field is missing, or the struct is not #[repr(C)])"
                    )
                );
            };

            fn __datatype() -> $crate::derived::Datatype {
                $crate::derived::Datatype::structure(vec![
                    $(
                        (
                            1,
                            ::std::mem::offset_of!($name, $f) as isize,
                            <$ft as $crate::derive::DatatypeField>::field_datatype(),
                        ),
                    )*
                ])
            }

            impl $crate::derive::StaticDatatype for $name {
                fn datatype() -> $crate::derived::Datatype {
                    __datatype()
                }

                fn committed() -> &'static ::std::sync::Arc<$crate::derived::Committed> {
                    static COMMITTED: ::std::sync::OnceLock<
                        ::std::sync::Arc<$crate::derived::Committed>,
                    > = ::std::sync::OnceLock::new();
                    COMMITTED.get_or_init(|| {
                        ::std::sync::Arc::new(__datatype().commit().expect(
                            "derive_datatype! layout proofs guarantee a committable type",
                        ))
                    })
                }
            }

            // Nested use: a proven struct is itself a field type.
            // SAFETY: the layout proofs above establish the POD/layout
            // contract; the description covers exactly the live bytes.
            unsafe impl $crate::derive::DatatypeField for $name {
                fn field_datatype() -> $crate::derived::Datatype {
                    __datatype()
                }
            }

            // SAFETY: the context reads only the borrowed value's type-map
            // blocks, which the proofs tie to the true layout.
            unsafe impl $crate::Buffer for $name {
                fn send_view(&self) -> $crate::SendView<'_> {
                    // Always a Custom view (even when gap-free) so the
                    // structural signature travels with every derived send.
                    // SAFETY: the view borrows `self` for its lifetime.
                    $crate::SendView::Custom(Box::new(unsafe {
                        $crate::derive::TypedPack::new(
                            <$name as $crate::derive::StaticDatatype>::committed(),
                            self as *const $name as *const u8,
                            1,
                        )
                    }))
                }
            }

            // SAFETY: the context writes only the exclusively borrowed
            // value's type-map blocks; padding is never touched.
            unsafe impl $crate::BufferMut for $name {
                fn recv_view(&mut self) -> $crate::RecvView<'_> {
                    // SAFETY: the view exclusively borrows `self`.
                    $crate::RecvView::Custom(Box::new(unsafe {
                        $crate::derive::TypedUnpack::new(
                            <$name as $crate::derive::StaticDatatype>::committed(),
                            self as *mut $name as *mut u8,
                            1,
                        )
                    }))
                }
            }

            // (Slices cannot get a generated `Buffer` impl here — `[T]` is
            // a foreign type constructor, so the impl would be an orphan in
            // downstream crates. Use `mpicd::derive::slice_pack` /
            // `slice_unpack` for multi-element derived transfers.)
        };
    };
}

#[cfg(test)]
mod tests {
    use crate::communicator::World;

    crate::custom_struct! {
        /// Test record with every field category.
        pub struct Record {
            scalars { id: u64, weight: f64, flag: bool }
            regions { values: Vec<f64>, tags: Vec<i32> }
        }
    }

    crate::custom_struct! {
        struct ScalarsOnly {
            scalars { a: i32, b: i32 }
            regions { }
        }
    }

    crate::custom_struct! {
        pub struct RegionsOnly {
            scalars { }
            regions { payload: Vec<u8> }
        }
    }

    #[test]
    fn roundtrip_full_record() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = Record {
            id: 12345,
            weight: 2.75,
            flag: true,
            values: (0..300).map(|i| i as f64 * 0.5).collect(),
            tags: (0..77).collect(),
        };
        let mut recv = Record {
            values: vec![0.0; 300],
            tags: vec![0; 77],
            ..Record::default()
        };
        crate::transfer(&a, &b, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send);
        // One message: scalars in-band + two regions.
        let stats = world.fabric().stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.regions, 3);
    }

    #[test]
    fn scalars_only_struct() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = ScalarsOnly { a: -7, b: 9 };
        let mut recv = ScalarsOnly::default();
        crate::transfer(&a, &b, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send);
        assert_eq!(world.fabric().stats().bytes, 8);
    }

    #[test]
    fn regions_only_struct() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = RegionsOnly {
            payload: (0..255).collect(),
        };
        let mut recv = RegionsOnly {
            payload: vec![0; 255],
        };
        crate::transfer(&a, &b, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send);
    }

    #[test]
    fn region_length_mismatch_truncates() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = RegionsOnly {
            payload: vec![1; 100],
        };
        let mut recv = RegionsOnly {
            payload: vec![0; 50],
        };
        let err = crate::transfer(&a, &b, &send, &mut recv, 0).unwrap_err();
        assert!(matches!(
            err,
            crate::Error::Fabric(crate::fabric::FabricError::Truncated { .. })
        ));
    }

    #[test]
    fn generated_structs_are_plain_rust() {
        // Clone/Debug/PartialEq/Default all derive.
        let r = Record::default();
        let r2 = r.clone();
        assert_eq!(r, r2);
        assert!(format!("{r:?}").contains("Record"));
    }

    // ---- derive_datatype! ---------------------------------------------------

    use crate::derive::StaticDatatype;

    crate::derive_datatype! {
        /// Gapped interior struct: f64 + i32 + 4 bytes tail padding.
        pub struct Cell {
            rho: f64,
            mat: i32,
        }
    }

    crate::derive_datatype! {
        /// Nested record with a fixed-size array and a derived struct field.
        pub struct Particle {
            pos: [f64; 3],
            cell: Cell,
            id: i64,
        }
    }

    /// The `for Existing { … }` form on a struct declared by hand.
    #[repr(C)]
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Mixed {
        /// Leading small field forces padding before `b`.
        pub a: i16,
        /// 8-aligned field at offset 8.
        pub b: f64,
    }

    crate::derive_datatype!(for Mixed { a: i16, b: f64 });

    #[test]
    fn derived_layout_matches_native() {
        assert_eq!(Cell::committed().extent(), std::mem::size_of::<Cell>());
        assert_eq!(Cell::committed().size(), 12, "live bytes exclude padding");
        assert_eq!(
            Particle::committed().extent(),
            std::mem::size_of::<Particle>()
        );
        assert_eq!(Particle::committed().size(), 24 + 12 + 8);
        assert_eq!(Mixed::committed().extent(), 16);
        assert_eq!(Mixed::committed().size(), 10);
    }

    #[test]
    fn derived_signatures_are_distinct_and_stable() {
        assert_ne!(Cell::signature(), 0);
        assert_ne!(Cell::signature(), Particle::signature());
        assert_ne!(Cell::signature(), Mixed::signature());
        // The signature is the committed type's, byte for byte.
        assert_eq!(Cell::signature(), Cell::committed().signature64());
    }

    #[test]
    fn derived_roundtrip_preserves_fields_not_padding() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = Particle {
            pos: [1.5, -2.5, 3.5],
            cell: Cell { rho: 0.25, mat: 42 },
            id: -9,
        };
        let mut recv = Particle {
            pos: [0.0; 3],
            cell: Cell { rho: 0.0, mat: 0 },
            id: 0,
        };
        crate::transfer(&a, &b, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send);
        // Only the live bytes crossed the wire, not the padding.
        assert_eq!(
            world.fabric().stats().bytes as usize,
            Particle::committed().size()
        );
    }

    #[test]
    fn derived_slices_transfer_as_one_message() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send: Vec<Cell> = (0..64)
            .map(|i| Cell {
                rho: i as f64 * 0.5,
                mat: i,
            })
            .collect();
        let mut recv = vec![Cell { rho: 0.0, mat: 0 }; 64];
        let mut rctx = crate::derive::slice_unpack(&mut recv);
        crate::transfer_custom(
            &a,
            &b,
            Box::new(crate::derive::slice_pack(&send)),
            &mut rctx,
            0,
        )
        .unwrap();
        drop(rctx);
        assert_eq!(recv, send);
        assert_eq!(world.fabric().stats().messages, 1);
    }

    #[test]
    fn mismatched_derived_pair_fails_under_enforce() {
        // {f64,i32} sent into a receive posted as {f64;3,Cell,i64} — the
        // acceptance-criteria shape: enforce rejects before unpacking.
        let world = crate::communicator::World::with_config(
            2,
            crate::fabric::WireModel::default(),
            crate::fabric::PipelineConfig::serial(),
            crate::fabric::MatchConfig::default()
                .with_typecheck(crate::fabric::TypecheckMode::Enforce),
        );
        let (a, b) = world.pair();
        let send = Cell { rho: 1.0, mat: 1 };
        let mut recv = Particle {
            pos: [0.0; 3],
            cell: Cell { rho: 0.0, mat: 0 },
            id: 0,
        };
        let err = crate::transfer(&a, &b, &send, &mut recv, 0).unwrap_err();
        match err {
            crate::Error::Fabric(crate::fabric::FabricError::TypeMismatch { sent, expected }) => {
                assert_eq!(sent, Cell::signature());
                assert_eq!(expected, Particle::signature());
            }
            other => panic!("expected TypeMismatch, got {other:?}"),
        }
        assert_eq!(world.fabric().stats().type_mismatch, 1);
    }
}
