//! `custom_struct!` — generated packing, the paper's anticipated ergonomic
//! layer: "In practice an extended Rust MPI implementation supporting our
//! new type interface may implement macros to automatically generate
//! manual packing" (§VII).
//!
//! The macro declares a struct with two field groups and derives the
//! [`Buffer`](crate::Buffer)/[`BufferMut`](crate::BufferMut)
//! implementations:
//!
//! * `scalars { … }` — plain-old-data fields, packed in-band (gap-free,
//!   regardless of the struct's memory layout);
//! * `regions { … }` — `Vec<T>` fields sent/received as zero-copy memory
//!   regions, with length validation on the receive side.
//!
//! ```
//! mpicd::custom_struct! {
//!     /// A halo exchange record.
//!     pub struct Halo {
//!         scalars { step: u64, dt: f64 }
//!         regions { left: Vec<f64>, right: Vec<f64> }
//!     }
//! }
//!
//! let world = mpicd::World::new(2);
//! let (c0, c1) = world.pair();
//! let send = Halo { step: 7, dt: 0.5, left: vec![1.0; 256], right: vec![2.0; 256] };
//! let mut recv = Halo { step: 0, dt: 0.0, left: vec![0.0; 256], right: vec![0.0; 256] };
//! mpicd::transfer(&c0, &c1, &send, &mut recv, 0).unwrap();
//! assert_eq!(recv.step, 7);
//! assert_eq!(recv.left, send.left);
//! ```

// Audited unsafe: macro-generated raw-memory trait impls; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

/// Marker for field types the generated packers may copy bytewise.
///
/// # Safety
/// Implementors must be plain-old-data: no padding, no pointers, every bit
/// pattern valid.
pub unsafe trait PodField: Copy + Send + Sync + 'static {}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(
            // SAFETY: primitive numeric types are POD.
            unsafe impl PodField for $t {}
        )*
    };
}

impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64, bool);

/// Element types allowed in `regions { … }` fields.
///
/// # Safety
/// Same contract as [`PodField`].
pub unsafe trait RegionElem: Copy + Send + Sync + 'static {}

macro_rules! impl_region_elem {
    ($($t:ty),*) => {
        $(
            // SAFETY: primitive numeric types are POD.
            unsafe impl RegionElem for $t {}
        )*
    };
}

impl_region_elem!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Declare a struct with generated custom-serialization support. See the
/// [module documentation](self) for syntax and an example.
#[macro_export]
macro_rules! custom_struct {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            scalars { $($sf:ident : $st:ty),* $(,)? }
            regions { $($rf:ident : Vec<$rt:ty>),* $(,)? }
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq, Default)]
        $vis struct $name {
            $(pub $sf: $st,)*
            $(pub $rf: Vec<$rt>,)*
        }

        const _: () = {
            use $crate::datatype::{CustomPack, CustomUnpack, RecvRegion, SendRegion};

            #[allow(dead_code)]
            fn __assert_pod() {
                fn pod<T: $crate::macros::PodField>() {}
                fn elem<T: $crate::macros::RegionElem>() {}
                $(pod::<$st>();)*
                $(elem::<$rt>();)*
            }

            /// Packed in-band bytes of the scalar group.
            const SCALAR_BYTES: usize = 0 $(+ ::std::mem::size_of::<$st>())*;

            #[allow(unused_variables, unused_mut)]
            fn encode_header(v: &$name) -> Vec<u8> {
                let mut h = Vec::with_capacity(SCALAR_BYTES);
                $(
                    // SAFETY: PodField guarantees a padding-free bytewise view.
                    h.extend_from_slice(unsafe {
                        ::std::slice::from_raw_parts(
                            &v.$sf as *const $st as *const u8,
                            ::std::mem::size_of::<$st>(),
                        )
                    });
                )*
                h
            }

            struct Pack<'a> {
                header: Vec<u8>,
                #[allow(dead_code)] // unread when the regions group is empty
                owner: &'a $name,
            }

            impl CustomPack for Pack<'_> {
                fn packed_size(&self) -> $crate::Result<usize> {
                    Ok(self.header.len())
                }
                fn pack(&mut self, offset: usize, dst: &mut [u8]) -> $crate::Result<usize> {
                    let n = dst.len().min(self.header.len() - offset);
                    dst[..n].copy_from_slice(&self.header[offset..offset + n]);
                    Ok(n)
                }
                fn regions(&mut self) -> $crate::Result<Vec<SendRegion>> {
                    Ok(vec![$(SendRegion::from_typed(self.owner.$rf.as_slice()),)*])
                }
                fn inorder(&self) -> bool {
                    false
                }
            }

            // SAFETY: the context references only memory owned by the
            // borrowed value.
            unsafe impl $crate::Buffer for $name {
                fn send_view(&self) -> $crate::SendView<'_> {
                    __assert_pod();
                    $crate::SendView::Custom(Box::new(Pack {
                        header: encode_header(self),
                        owner: self,
                    }))
                }
            }

            struct Unpack<'a> {
                header: Vec<u8>,
                owner: &'a mut $name,
            }

            impl CustomUnpack for Unpack<'_> {
                fn packed_size(&self) -> $crate::Result<usize> {
                    Ok(SCALAR_BYTES)
                }
                fn unpack(&mut self, offset: usize, src: &[u8]) -> $crate::Result<()> {
                    if offset + src.len() > self.header.len() {
                        return Err($crate::Error::InvalidHeader(concat!(
                            stringify!($name),
                            ": scalar header overflow"
                        )));
                    }
                    self.header[offset..offset + src.len()].copy_from_slice(src);
                    Ok(())
                }
                fn regions(&mut self) -> $crate::Result<Vec<RecvRegion>> {
                    Ok(vec![$(RecvRegion::from_typed(self.owner.$rf.as_mut_slice()),)*])
                }
                fn finish(&mut self) -> $crate::Result<()> {
                    let mut __at = 0usize;
                    $(
                        {
                            let size = ::std::mem::size_of::<$st>();
                            // SAFETY: PodField; header sized to SCALAR_BYTES.
                            unsafe {
                                ::std::ptr::copy_nonoverlapping(
                                    self.header.as_ptr().add(__at),
                                    &mut self.owner.$sf as *mut $st as *mut u8,
                                    size,
                                );
                            }
                            __at += size;
                        }
                    )*
                    let _ = __at;
                    Ok(())
                }
            }

            // SAFETY: the context references only memory exclusively owned
            // by the borrowed value.
            unsafe impl $crate::BufferMut for $name {
                fn recv_view(&mut self) -> $crate::RecvView<'_> {
                    __assert_pod();
                    $crate::RecvView::Custom(Box::new(Unpack {
                        header: vec![0u8; SCALAR_BYTES],
                        owner: self,
                    }))
                }
            }
        };
    };
}

#[cfg(test)]
mod tests {
    use crate::communicator::World;

    crate::custom_struct! {
        /// Test record with every field category.
        pub struct Record {
            scalars { id: u64, weight: f64, flag: bool }
            regions { values: Vec<f64>, tags: Vec<i32> }
        }
    }

    crate::custom_struct! {
        struct ScalarsOnly {
            scalars { a: i32, b: i32 }
            regions { }
        }
    }

    crate::custom_struct! {
        pub struct RegionsOnly {
            scalars { }
            regions { payload: Vec<u8> }
        }
    }

    #[test]
    fn roundtrip_full_record() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = Record {
            id: 12345,
            weight: 2.75,
            flag: true,
            values: (0..300).map(|i| i as f64 * 0.5).collect(),
            tags: (0..77).collect(),
        };
        let mut recv = Record {
            values: vec![0.0; 300],
            tags: vec![0; 77],
            ..Record::default()
        };
        crate::transfer(&a, &b, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send);
        // One message: scalars in-band + two regions.
        let stats = world.fabric().stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.regions, 3);
    }

    #[test]
    fn scalars_only_struct() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = ScalarsOnly { a: -7, b: 9 };
        let mut recv = ScalarsOnly::default();
        crate::transfer(&a, &b, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send);
        assert_eq!(world.fabric().stats().bytes, 8);
    }

    #[test]
    fn regions_only_struct() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = RegionsOnly {
            payload: (0..255).collect(),
        };
        let mut recv = RegionsOnly {
            payload: vec![0; 255],
        };
        crate::transfer(&a, &b, &send, &mut recv, 0).unwrap();
        assert_eq!(recv, send);
    }

    #[test]
    fn region_length_mismatch_truncates() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send = RegionsOnly {
            payload: vec![1; 100],
        };
        let mut recv = RegionsOnly {
            payload: vec![0; 50],
        };
        let err = crate::transfer(&a, &b, &send, &mut recv, 0).unwrap_err();
        assert!(matches!(
            err,
            crate::Error::Fabric(crate::fabric::FabricError::Truncated { .. })
        ));
    }

    #[test]
    fn generated_structs_are_plain_rust() {
        // Clone/Debug/PartialEq/Default all derive.
        let r = Record::default();
        let r2 = r.clone();
        assert_eq!(r, r2);
        assert!(format!("{r:?}").contains("Record"));
    }
}
