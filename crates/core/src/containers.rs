//! Custom serialization for further standard containers — the paper's
//! §II-B scenario verbatim: "in a list of vectors
//! (`std::list<std::vector<int>>` in C++) each vector is a contiguous
//! memory region that can be transferred by MPI individually. However, a
//! list itself is a non-contiguous container."
//!
//! [`LinkedList<Vec<T>>`] and [`VecDeque<Vec<T>>`] get the same treatment
//! as `Vec<Vec<T>>` (see [`crate::vecvec`]): element byte-lengths pack
//! in-band, each node's storage travels as a zero-copy region, and the
//! receive side validates the incoming shape against its preallocated
//! nodes in `finish()` — the serialize/deserialize flow §II-B describes
//! ("storing the size of each vector… resizing each vector to be able to
//! hold the data").

// Audited unsafe: container memory exposed to the pack engine; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::buffer::{Buffer, BufferMut, RecvView, SendView};
use crate::datatype::{CustomPack, CustomUnpack, RecvRegion, SendRegion};
use crate::error::{Error, Result};
use crate::vecvec::{decode_header, header_len};
use mpicd_datatype::primitive::Scalar;
use std::collections::{LinkedList, VecDeque};

/// Shared pack context over any iterable of `Vec<T>` nodes.
struct NodesPack<'a, T: Scalar> {
    header: Vec<u8>,
    nodes: Vec<&'a Vec<T>>,
}

impl<'a, T: Scalar> NodesPack<'a, T> {
    fn new(nodes: Vec<&'a Vec<T>>) -> Self {
        let mut header = Vec::with_capacity(header_len(nodes.len()));
        header.extend_from_slice(&(nodes.len() as u64).to_le_bytes());
        for v in &nodes {
            header.extend_from_slice(&((std::mem::size_of::<T>() * v.len()) as u64).to_le_bytes());
        }
        Self { header, nodes }
    }
}

impl<T: Scalar> CustomPack for NodesPack<'_, T> {
    fn packed_size(&self) -> Result<usize> {
        Ok(self.header.len())
    }
    fn pack(&mut self, offset: usize, dst: &mut [u8]) -> Result<usize> {
        let n = dst.len().min(self.header.len() - offset);
        dst[..n].copy_from_slice(&self.header[offset..offset + n]);
        Ok(n)
    }
    fn regions(&mut self) -> Result<Vec<SendRegion>> {
        Ok(self
            .nodes
            .iter()
            .map(|v| SendRegion::from_typed(v))
            .collect())
    }
    fn inorder(&self) -> bool {
        false
    }
}

/// Shared unpack context over mutable `Vec<T>` nodes.
struct NodesUnpack<'a, T: Scalar> {
    header: Vec<u8>,
    nodes: Vec<&'a mut Vec<T>>,
}

impl<T: Scalar> CustomUnpack for NodesUnpack<'_, T> {
    fn packed_size(&self) -> Result<usize> {
        Ok(header_len(self.nodes.len()))
    }
    fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<()> {
        if offset + src.len() > self.header.len() {
            return Err(Error::InvalidHeader("list-of-vectors header overflow"));
        }
        self.header[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }
    fn regions(&mut self) -> Result<Vec<RecvRegion>> {
        Ok(self
            .nodes
            .iter_mut()
            .map(|v| RecvRegion::from_typed(v.as_mut_slice()))
            .collect())
    }
    fn finish(&mut self) -> Result<()> {
        let lens = decode_header(&self.header)?;
        if lens.len() != self.nodes.len() {
            return Err(Error::LengthMismatch {
                expected: self.nodes.len(),
                got: lens.len(),
            });
        }
        for (len, v) in lens.iter().zip(self.nodes.iter()) {
            let have = std::mem::size_of::<T>() * v.len();
            if *len != have {
                return Err(Error::LengthMismatch {
                    expected: have,
                    got: *len,
                });
            }
        }
        Ok(())
    }
}

macro_rules! impl_list_buffers {
    ($($container:ident),*) => {
        $(
            // SAFETY: the context references only node storage borrowed
            // from `self` for the view's lifetime.
            unsafe impl<T: Scalar> Buffer for $container<Vec<T>> {
                fn send_view(&self) -> SendView<'_> {
                    SendView::Custom(Box::new(NodesPack::new(self.iter().collect())))
                }
            }

            // SAFETY: as above, exclusively borrowed.
            unsafe impl<T: Scalar> BufferMut for $container<Vec<T>> {
                fn recv_view(&mut self) -> RecvView<'_> {
                    let nodes: Vec<&mut Vec<T>> = self.iter_mut().collect();
                    let header = vec![0u8; header_len(nodes.len())];
                    RecvView::Custom(Box::new(NodesUnpack { header, nodes }))
                }
            }
        )*
    };
}

impl_list_buffers!(LinkedList, VecDeque);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::World;

    #[test]
    fn linked_list_of_vectors_roundtrips() {
        // The paper's §II-B type, one MPI message.
        let world = World::new(2);
        let (a, b) = world.pair();
        let send: LinkedList<Vec<i32>> = [
            (0..100).collect::<Vec<i32>>(),
            vec![7; 3],
            (0..1000).map(|x| -x).collect(),
        ]
        .into_iter()
        .collect();
        let mut recv: LinkedList<Vec<i32>> = [vec![0; 100], vec![0; 3], vec![0; 1000]]
            .into_iter()
            .collect();
        std::thread::scope(|s| {
            s.spawn(|| a.send(&send, 1, 0).unwrap());
            s.spawn(|| {
                b.recv(&mut recv, 0, 0).unwrap();
            });
        });
        assert_eq!(recv, send);
        assert_eq!(world.fabric().stats().messages, 1);
        assert_eq!(world.fabric().stats().regions, 4, "header + 3 nodes");
    }

    #[test]
    fn deque_of_vectors_roundtrips() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send: VecDeque<Vec<f64>> = vec![vec![1.5; 64], vec![], vec![2.5; 8]].into();
        let mut recv: VecDeque<Vec<f64>> = vec![vec![0.0; 64], vec![], vec![0.0; 8]].into();
        std::thread::scope(|s| {
            s.spawn(|| a.send(&send, 1, 0).unwrap());
            s.spawn(|| {
                b.recv(&mut recv, 0, 0).unwrap();
            });
        });
        assert_eq!(recv, send);
    }

    #[test]
    fn node_count_mismatch_fails() {
        let world = World::new(2);
        let (a, b) = world.pair();
        let send: LinkedList<Vec<i32>> = [vec![1, 2], vec![3, 4]].into_iter().collect();
        // Same total bytes, different node count.
        let mut recv: LinkedList<Vec<i32>> = [vec![0; 4]].into_iter().collect();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _ = a.send(&send, 1, 0);
            });
            s.spawn(|| {
                let err = b.recv(&mut recv, 0, 0).unwrap_err();
                assert!(matches!(
                    err,
                    Error::LengthMismatch { .. } | Error::Fabric(_)
                ));
            });
        });
    }
}
