//! Datatype equivalence and signatures.
//!
//! Determining when two MPI datatypes "match" is subtle enough to have its
//! own literature (Kimpe, Goodell, Ross — EuroMPI'10, cited by the paper).
//! MPI distinguishes:
//!
//! * **type signature** — the sequence of primitive types, ignoring
//!   displacements. Send/receive pairs must have compatible signatures.
//! * **type map** — primitives *with* displacements. Two types with equal
//!   maps are interchangeable on the same buffer.
//!
//! Both are derived here by full expansion, which also powers the
//! marshalling check in [`mod@crate::marshal`].

use crate::primitive::Primitive;
use crate::typ::Datatype;

/// Expand the full type map: `(primitive, byte displacement)` in pack order.
pub fn type_map(t: &Datatype) -> Vec<(Primitive, isize)> {
    let mut out = Vec::new();
    expand(t, 0, &mut out);
    out
}

fn expand(t: &Datatype, base: isize, out: &mut Vec<(Primitive, isize)>) {
    match t {
        Datatype::Predefined(p) => out.push((*p, base)),
        _ => {
            // Reuse the generic walker for structure, but we need primitive
            // identities: recurse manually over each constructor.
            match t {
                Datatype::Predefined(_) => unreachable!(),
                Datatype::Contiguous { count, child } => {
                    let ext = child.extent() as isize;
                    for i in 0..*count {
                        expand(child, base + ext * i as isize, out);
                    }
                }
                Datatype::Vector {
                    count,
                    blocklength,
                    stride,
                    child,
                } => {
                    let ext = child.extent() as isize;
                    for i in 0..*count {
                        let start = base + *stride * i as isize * ext;
                        for j in 0..*blocklength {
                            expand(child, start + ext * j as isize, out);
                        }
                    }
                }
                Datatype::Hvector {
                    count,
                    blocklength,
                    stride_bytes,
                    child,
                } => {
                    let ext = child.extent() as isize;
                    for i in 0..*count {
                        let start = base + *stride_bytes * i as isize;
                        for j in 0..*blocklength {
                            expand(child, start + ext * j as isize, out);
                        }
                    }
                }
                Datatype::Indexed { blocks, child } => {
                    let ext = child.extent() as isize;
                    for (bl, displ) in blocks {
                        let start = base + *displ * ext;
                        for j in 0..*bl {
                            expand(child, start + ext * j as isize, out);
                        }
                    }
                }
                Datatype::Hindexed { blocks, child } => {
                    let ext = child.extent() as isize;
                    for (bl, displ) in blocks {
                        let start = base + *displ;
                        for j in 0..*bl {
                            expand(child, start + ext * j as isize, out);
                        }
                    }
                }
                Datatype::Struct { fields } => {
                    for (bl, displ, ft) in fields {
                        let ext = ft.extent() as isize;
                        for j in 0..*bl {
                            expand(ft, base + displ + ext * j as isize, out);
                        }
                    }
                }
                Datatype::Resized { child, .. } => expand(child, base, out),
            }
        }
    }
}

/// The type signature: primitives in pack order, displacements ignored.
pub fn signature(t: &Datatype) -> Vec<Primitive> {
    type_map(t).into_iter().map(|(p, _)| p).collect()
}

/// Same type map ⇒ interchangeable descriptions of the same memory.
pub fn equivalent(a: &Datatype, b: &Datatype) -> bool {
    type_map(a) == type_map(b)
}

/// Same signature ⇒ a send with `a` may be received with `b`
/// (MPI's matching rule; layouts may differ).
pub fn compatible(a: &Datatype, b: &Datatype) -> bool {
    signature(a) == signature(b)
}

/// A hashable structural identity: the full type map plus the placement
/// facts (extent, lower bound) that govern multi-element packing.
///
/// Two types with equal keys are interchangeable descriptions of the same
/// memory *and* place consecutive elements identically, so they can share
/// one compiled pack plan (the [`mod@crate::plan`] registry keys on this).
/// `equivalent(a, b)` plus equal extents implies equal keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructuralKey {
    map: Vec<(Primitive, isize)>,
    extent: usize,
    lb: isize,
}

/// Compute the [`StructuralKey`] of a datatype by full expansion.
pub fn structural_key(t: &Datatype) -> StructuralKey {
    StructuralKey {
        map: type_map(t),
        extent: t.extent(),
        lb: t.lb(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int() -> Datatype {
        Datatype::of::<i32>()
    }
    fn dbl() -> Datatype {
        Datatype::of::<f64>()
    }

    #[test]
    fn different_constructors_same_map() {
        // contiguous(4, int) == vector(2, 2, 2, int) == indexed[(4, 0)]
        let a = Datatype::contiguous(4, int());
        let b = Datatype::vector(2, 2, 2, int());
        let c = Datatype::indexed(vec![(4, 0)], int());
        assert!(equivalent(&a, &b));
        assert!(equivalent(&b, &c));
    }

    #[test]
    fn gap_changes_map_not_signature() {
        let packed = Datatype::structure(vec![(3, 0, int()), (1, 12, dbl())]);
        let gapped = Datatype::structure(vec![(3, 0, int()), (1, 16, dbl())]);
        assert!(!equivalent(&packed, &gapped));
        assert!(compatible(&packed, &gapped), "same primitives in order");
    }

    #[test]
    fn signature_ordering_matters() {
        let id = Datatype::structure(vec![(1, 0, int()), (1, 8, dbl())]);
        let di = Datatype::structure(vec![(1, 0, dbl()), (1, 8, int())]);
        assert!(!compatible(&id, &di));
    }

    #[test]
    fn resized_preserves_map() {
        let t = Datatype::contiguous(2, int());
        let r = Datatype::resized(0, 64, Datatype::contiguous(2, int()));
        assert!(equivalent(&t, &r), "resizing changes extent, not the map");
        assert_ne!(t.extent(), r.extent());
    }

    #[test]
    fn structural_key_tracks_map_and_extent() {
        let t = Datatype::contiguous(2, int());
        let r = Datatype::resized(0, 64, Datatype::contiguous(2, int()));
        assert!(equivalent(&t, &r));
        assert_ne!(
            structural_key(&t),
            structural_key(&r),
            "resizing changes element placement, so plans cannot be shared"
        );
        let v = Datatype::vector(1, 2, 2, int());
        assert_eq!(structural_key(&t), structural_key(&v));
    }

    #[test]
    fn map_matches_walk_totals() {
        let t = Datatype::structure(vec![
            (2, 0, Datatype::vector(2, 1, 2, int())),
            (1, 64, dbl()),
        ]);
        let map = type_map(&t);
        let bytes: usize = map.iter().map(|(p, _)| p.size()).sum();
        assert_eq!(bytes, t.size());
    }
}
