//! Datatype equivalence and signatures.
//!
//! Determining when two MPI datatypes "match" is subtle enough to have its
//! own literature (Kimpe, Goodell, Ross — EuroMPI'10, cited by the paper).
//! MPI distinguishes:
//!
//! * **type signature** — the sequence of primitive types, ignoring
//!   displacements. Send/receive pairs must have compatible signatures.
//! * **type map** — primitives *with* displacements. Two types with equal
//!   maps are interchangeable on the same buffer.
//!
//! Both are derived here by full expansion, which also powers the
//! marshalling check in [`mod@crate::marshal`].

use crate::primitive::Primitive;
use crate::typ::Datatype;

/// Expand the full type map: `(primitive, byte displacement)` in pack order.
pub fn type_map(t: &Datatype) -> Vec<(Primitive, isize)> {
    let mut out = Vec::new();
    expand(t, 0, &mut out);
    out
}

fn expand(t: &Datatype, base: isize, out: &mut Vec<(Primitive, isize)>) {
    match t {
        Datatype::Predefined(p) => out.push((*p, base)),
        _ => {
            // Reuse the generic walker for structure, but we need primitive
            // identities: recurse manually over each constructor.
            match t {
                Datatype::Predefined(_) => unreachable!(),
                Datatype::Contiguous { count, child } => {
                    let ext = child.extent() as isize;
                    for i in 0..*count {
                        expand(child, base + ext * i as isize, out);
                    }
                }
                Datatype::Vector {
                    count,
                    blocklength,
                    stride,
                    child,
                } => {
                    let ext = child.extent() as isize;
                    for i in 0..*count {
                        let start = base + *stride * i as isize * ext;
                        for j in 0..*blocklength {
                            expand(child, start + ext * j as isize, out);
                        }
                    }
                }
                Datatype::Hvector {
                    count,
                    blocklength,
                    stride_bytes,
                    child,
                } => {
                    let ext = child.extent() as isize;
                    for i in 0..*count {
                        let start = base + *stride_bytes * i as isize;
                        for j in 0..*blocklength {
                            expand(child, start + ext * j as isize, out);
                        }
                    }
                }
                Datatype::Indexed { blocks, child } => {
                    let ext = child.extent() as isize;
                    for (bl, displ) in blocks {
                        let start = base + *displ * ext;
                        for j in 0..*bl {
                            expand(child, start + ext * j as isize, out);
                        }
                    }
                }
                Datatype::Hindexed { blocks, child } => {
                    let ext = child.extent() as isize;
                    for (bl, displ) in blocks {
                        let start = base + *displ;
                        for j in 0..*bl {
                            expand(child, start + ext * j as isize, out);
                        }
                    }
                }
                Datatype::Struct { fields } => {
                    for (bl, displ, ft) in fields {
                        let ext = ft.extent() as isize;
                        for j in 0..*bl {
                            expand(ft, base + displ + ext * j as isize, out);
                        }
                    }
                }
                Datatype::Resized { child, .. } => expand(child, base, out),
            }
        }
    }
}

/// The type signature: primitives in pack order, displacements ignored.
pub fn signature(t: &Datatype) -> Vec<Primitive> {
    type_map(t).into_iter().map(|(p, _)| p).collect()
}

/// Same type map ⇒ interchangeable descriptions of the same memory.
pub fn equivalent(a: &Datatype, b: &Datatype) -> bool {
    type_map(a) == type_map(b)
}

/// Same signature ⇒ a send with `a` may be received with `b`
/// (MPI's matching rule; layouts may differ).
pub fn compatible(a: &Datatype, b: &Datatype) -> bool {
    signature(a) == signature(b)
}

/// A hashable structural identity: the full type map plus the placement
/// facts (extent, lower bound) that govern multi-element packing.
///
/// Two types with equal keys are interchangeable descriptions of the same
/// memory *and* place consecutive elements identically, so they can share
/// one compiled pack plan (the [`mod@crate::plan`] registry keys on this).
/// `equivalent(a, b)` plus equal extents implies equal keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StructuralKey {
    map: Vec<(Primitive, isize)>,
    extent: usize,
    lb: isize,
}

/// Compute the [`StructuralKey`] of a datatype by full expansion.
pub fn structural_key(t: &Datatype) -> StructuralKey {
    StructuralKey {
        map: type_map(t),
        extent: t.extent(),
        lb: t.lb(),
    }
}

/// Stable 64-bit digest of a [`StructuralKey`], used as the wire-level
/// type-matching token (the `MPICD_TYPECHECK` enforcement described in
/// DESIGN.md §6i).
///
/// Properties the enforcement layer relies on:
///
/// * **deterministic across processes** — hand-rolled FNV-1a over a fixed
///   little-endian serialization, no `std::hash` randomization;
/// * **structural, not nominal** — two types with identical maps, extents
///   and lower bounds digest identically even when built from different
///   constructors (see `different_constructors_same_key64`);
/// * **never zero** — `0` is reserved as the "unchecked" sentinel for raw
///   byte transfers, so a digest landing on 0 is nudged to 1.
///
/// Note this token is *stricter* than MPI's signature-compatibility rule:
/// it also commits displacements and extent, so a send/recv pair with the
/// same primitive sequence but different layouts mismatches. That is
/// deliberate — the fabric moves type maps, not just signatures.
pub fn key64(k: &StructuralKey) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&(k.map.len() as u64).to_le_bytes());
    for (p, displ) in &k.map {
        eat(&[*p as u8]);
        eat(&(*displ as i64).to_le_bytes());
    }
    eat(&(k.extent as u64).to_le_bytes());
    eat(&(k.lb as i64).to_le_bytes());
    if h == 0 {
        1
    } else {
        h
    }
}

/// The 64-bit structural signature of a datatype: [`key64`] of its
/// [`structural_key`]. This is what [`crate::Committed::signature64`]
/// stores at commit time and what the fabric compares per transfer.
pub fn signature64(t: &Datatype) -> u64 {
    key64(&structural_key(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int() -> Datatype {
        Datatype::of::<i32>()
    }
    fn dbl() -> Datatype {
        Datatype::of::<f64>()
    }

    #[test]
    fn different_constructors_same_map() {
        // contiguous(4, int) == vector(2, 2, 2, int) == indexed[(4, 0)]
        let a = Datatype::contiguous(4, int());
        let b = Datatype::vector(2, 2, 2, int());
        let c = Datatype::indexed(vec![(4, 0)], int());
        assert!(equivalent(&a, &b));
        assert!(equivalent(&b, &c));
    }

    #[test]
    fn gap_changes_map_not_signature() {
        let packed = Datatype::structure(vec![(3, 0, int()), (1, 12, dbl())]);
        let gapped = Datatype::structure(vec![(3, 0, int()), (1, 16, dbl())]);
        assert!(!equivalent(&packed, &gapped));
        assert!(compatible(&packed, &gapped), "same primitives in order");
    }

    #[test]
    fn signature_ordering_matters() {
        let id = Datatype::structure(vec![(1, 0, int()), (1, 8, dbl())]);
        let di = Datatype::structure(vec![(1, 0, dbl()), (1, 8, int())]);
        assert!(!compatible(&id, &di));
    }

    #[test]
    fn resized_preserves_map() {
        let t = Datatype::contiguous(2, int());
        let r = Datatype::resized(0, 64, Datatype::contiguous(2, int()));
        assert!(equivalent(&t, &r), "resizing changes extent, not the map");
        assert_ne!(t.extent(), r.extent());
    }

    #[test]
    fn structural_key_tracks_map_and_extent() {
        let t = Datatype::contiguous(2, int());
        let r = Datatype::resized(0, 64, Datatype::contiguous(2, int()));
        assert!(equivalent(&t, &r));
        assert_ne!(
            structural_key(&t),
            structural_key(&r),
            "resizing changes element placement, so plans cannot be shared"
        );
        let v = Datatype::vector(1, 2, 2, int());
        assert_eq!(structural_key(&t), structural_key(&v));
    }

    #[test]
    fn different_constructors_same_key64() {
        let a = Datatype::contiguous(4, int());
        let b = Datatype::vector(2, 2, 2, int());
        let c = Datatype::indexed(vec![(4, 0)], int());
        assert_eq!(signature64(&a), signature64(&b));
        assert_eq!(signature64(&b), signature64(&c));
    }

    #[test]
    fn key64_separates_layouts_and_reorderings() {
        // Same primitive sequence, different displacement → different digest
        // (the token is stricter than MPI signature compatibility).
        let packed = Datatype::structure(vec![(3, 0, int()), (1, 12, dbl())]);
        let gapped = Datatype::structure(vec![(3, 0, int()), (1, 16, dbl())]);
        assert!(compatible(&packed, &gapped));
        assert_ne!(signature64(&packed), signature64(&gapped));
        // Field reordering (the acceptance-criteria pair).
        let ffi = Datatype::structure(vec![(2, 0, dbl()), (1, 16, int())]);
        let fif = Datatype::structure(vec![(1, 0, dbl()), (1, 8, int()), (1, 16, dbl())]);
        assert_ne!(signature64(&ffi), signature64(&fif));
        // Resizing changes extent → different digest.
        let t = Datatype::contiguous(2, int());
        let r = Datatype::resized(0, 64, Datatype::contiguous(2, int()));
        assert_ne!(signature64(&t), signature64(&r));
    }

    #[test]
    fn key64_is_never_zero() {
        // Zero is the "unchecked" sentinel; even the empty type digests
        // to a nonzero token.
        let empty = Datatype::contiguous(0, int());
        assert_ne!(signature64(&empty), 0);
    }

    #[test]
    fn key64_collisions_imply_identical_maps_seeded_random() {
        // The safety property behind MPICD_TYPECHECK: a 64-bit key
        // collision must only ever pair types with byte-identical type
        // maps (and extents). Exercised over a seeded (deterministic,
        // zero-dep) population of random constructor trees.
        struct XorShift(u64);
        impl XorShift {
            fn next(&mut self) -> u64 {
                self.0 ^= self.0 << 13;
                self.0 ^= self.0 >> 7;
                self.0 ^= self.0 << 17;
                self.0
            }
            fn pick(&mut self, n: u64) -> u64 {
                self.next() % n
            }
        }
        fn random_type(rng: &mut XorShift, depth: u32) -> Datatype {
            let leaf = match rng.pick(4) {
                0 => Datatype::predefined(Primitive::Byte),
                1 => Datatype::predefined(Primitive::Int32),
                2 => Datatype::predefined(Primitive::Double),
                _ => Datatype::predefined(Primitive::Float),
            };
            if depth == 0 {
                return leaf;
            }
            let child = random_type(rng, depth - 1);
            match rng.pick(5) {
                0 => Datatype::contiguous(1 + rng.pick(4) as usize, child),
                1 => Datatype::vector(
                    1 + rng.pick(3) as usize,
                    1 + rng.pick(2) as usize,
                    2 + rng.pick(3) as isize,
                    child,
                ),
                2 => Datatype::indexed(
                    (0..1 + rng.pick(3))
                        .map(|i| (1 + rng.pick(2) as usize, (i * 8) as isize))
                        .collect(),
                    child,
                ),
                3 => {
                    let extent = child.extent().max(1) * (1 + rng.pick(2) as usize);
                    Datatype::resized(0, extent, child)
                }
                _ => Datatype::structure(vec![
                    (1, 0, child),
                    (1 + rng.pick(2) as usize, 64, random_type(rng, depth - 1)),
                ]),
            }
        }

        let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
        let population: Vec<Datatype> = (0..200).map(|_| random_type(&mut rng, 3)).collect();
        let mut by_key: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, t) in population.iter().enumerate() {
            let k = signature64(t);
            assert_ne!(k, 0, "key64 never returns the unchecked sentinel");
            if let Some(&j) = by_key.get(&k) {
                let prev = &population[j];
                assert_eq!(
                    type_map(prev),
                    type_map(t),
                    "types {j} and {i} collide on key64 with different maps"
                );
                assert_eq!(prev.extent(), t.extent(), "extent is committed by the key");
            } else {
                by_key.insert(k, i);
            }
        }
        assert!(by_key.len() > 100, "generator must produce diverse layouts");
    }

    #[test]
    fn map_matches_walk_totals() {
        let t = Datatype::structure(vec![
            (2, 0, Datatype::vector(2, 1, 2, int())),
            (1, 64, dbl()),
        ]);
        let map = type_map(&t);
        let bytes: usize = map.iter().map(|(p, _)| p.size()).sum();
        assert_eq!(bytes, t.size());
    }
}
