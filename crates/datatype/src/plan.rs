//! Commit-time pack-plan compilation.
//!
//! The interpreted engine in [`crate::committed`] walks the merged block
//! list one `(offset, len)` run at a time — every run pays the same loop
//! bookkeeping and a variable-length `memcpy`, no matter how regular the
//! layout is. Real datatype engines recover the regularity instead:
//! TEMPI (Pearson et al., ICS'22) canonicalizes MPI derived datatypes into
//! strided-copy kernels, and Träff et al. show derived-datatype performance
//! hinges on exactly this normalization step.
//!
//! This module does the same at `commit()` time:
//!
//! 1. **Lower** the flattened block list into a short canonical list of
//!    [`PlanOp`]s — contiguous run, 1-D constant-stride block array, fused
//!    two-block interleave, or 2-D nest of block arrays. A million-block
//!    NAS face collapses to one op, and an array-of-struct layout whose
//!    runs alternate between two lengths fuses into one [`PlanOp::Pair`].
//! 2. **Select a copy kernel** per op at compile time ([`Kernel`]): a
//!    straight `memcpy` for contiguous runs, fixed-size copies for the
//!    ubiquitous 4/8/16-byte blocks, wide-word (u64/u128-chunked)
//!    gather/scatter kernels for the remaining small blocks, and a generic
//!    fallback for everything else.
//! 3. **Autotune** the choice at run time: the first large execution of a
//!    cached plan races the legal candidate kernels over disjoint chunks
//!    of the real work (no byte is copied twice) and caches the winner
//!    per (op, size class) alongside the plan — see [`set_tuning`] and
//!    [`set_kernel_policy`].
//! 4. **Cache** compiled plans in a process-wide registry keyed by the
//!    structural type signature ([`crate::equivalence::structural_key`]),
//!    so recommitting an equivalent type — benchmark harnesses and
//!    long-running applications do this constantly — skips compilation
//!    *and* inherits the tuned kernel choices.
//!
//! The executor keeps the engine's resumable contract: any byte range of
//! the packed stream can be produced or consumed independently, so plans
//! drop straight into the fabric's fragmented generic-payload path.
//! Wide-word kernels only ever touch whole blocks; partial head/tail
//! blocks of a segment go through the byte-accurate generic path, so a
//! fragment boundary can fall anywhere — including mid-word.
//!
//! Observability: `plan.cache.hits` / `plan.cache.misses` count registry
//! lookups, `plan.kernel.*_bytes` attribute every copied byte to the
//! kernel that moved it, and `plan.tune.*` count autotuner races and
//! their outcomes (see `mpicd-obs` and `docs/PERFORMANCE.md`). Knobs:
//! `MPICD_PLAN=0` disables compilation (interpreted engine everywhere),
//! `MPICD_PLAN_CACHE=0` disables only the registry,
//! `MPICD_PLAN_CACHE_CAP` bounds it (default 1024 plans),
//! `MPICD_PLAN_TUNE=0` freezes kernel choices at the static mapping, and
//! `MPICD_PLAN_KERNEL` forces one kernel (or the `legacy` pre-wide-word
//! mapping) everywhere it is legal — the ablation/debugging override.

// Audited unsafe: compiled-plan kernels over raw memory; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::equivalence::{structural_key, StructuralKey};
use crate::typ::Datatype;
use mpicd_obs::metrics::Counter;
use mpicd_obs::sync::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Copy kernel selected for an op when the plan is compiled (and possibly
/// replaced at run time by the autotuner — see [`set_tuning`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Unit-stride run: one `memcpy` of the whole op.
    Memcpy,
    /// Strided copy of 4-byte blocks (one `u32` load/store per block).
    Fixed4,
    /// Strided copy of 8-byte blocks (one `u64` load/store per block).
    Fixed8,
    /// Strided copy of 16-byte blocks (one 16-byte load/store per block).
    Fixed16,
    /// Wide-word gather/scatter: groups of blocks that divide 8 bytes move
    /// through one `u64` of the packed stream, with software prefetch
    /// down long strides.
    Gather64,
    /// Wide-word gather/scatter through `u128` packed words — for blocks
    /// dividing 16 bytes (e.g. two 8-byte doubles per packed store).
    Gather128,
    /// Per-block chunked wide copy (overlapping unaligned u128/u64/u32/u16
    /// pieces) for arbitrary small blocks — a 12-byte block is two
    /// overlapping 8-byte moves instead of a byte loop.
    Wide,
    /// Strided copy of arbitrary-length blocks (variable-length copy).
    Generic,
}

impl Kernel {
    /// Static kernel mapping for a strided op whose blocks are `block`
    /// bytes long. The autotuner ([`set_tuning`]) may override this at
    /// run time; `MPICD_PLAN_KERNEL=legacy` restores the pre-wide-word
    /// mapping (4/8/16 fixed, everything else generic).
    ///
    /// ```
    /// use mpicd_datatype::Kernel;
    /// assert_eq!(Kernel::for_block(8), Kernel::Fixed8);
    /// // Small odd blocks ride the wide-word kernels, not the byte loop:
    /// assert_eq!(Kernel::for_block(2), Kernel::Gather64);
    /// assert_eq!(Kernel::for_block(12), Kernel::Wide);
    /// // Very large blocks stay variable-length copies (memcpy wins).
    /// assert_eq!(Kernel::for_block(4096), Kernel::Generic);
    /// ```
    pub fn for_block(block: usize) -> Self {
        match block {
            4 => Kernel::Fixed4,
            8 => Kernel::Fixed8,
            16 => Kernel::Fixed16,
            1 | 2 => Kernel::Gather64,
            b if b <= 64 => Kernel::Wide,
            _ => Kernel::Generic,
        }
    }

    /// The pre-wide-word mapping (PR 2): fixed kernels for 4/8/16-byte
    /// blocks, the generic byte loop for everything else. Kept for the
    /// `legacy` ablation policy.
    fn legacy_for_block(block: usize) -> Self {
        match block {
            4 => Kernel::Fixed4,
            8 => Kernel::Fixed8,
            16 => Kernel::Fixed16,
            _ => Kernel::Generic,
        }
    }

    /// Stable index into the per-kernel byte tallies.
    fn index(self) -> usize {
        match self {
            Kernel::Memcpy => 0,
            Kernel::Fixed4 => 1,
            Kernel::Fixed8 => 2,
            Kernel::Fixed16 => 3,
            Kernel::Gather64 => 4,
            Kernel::Gather128 => 5,
            Kernel::Wide => 6,
            Kernel::Generic => 7,
        }
    }

    /// Inverse of [`Kernel::index`].
    fn from_index(i: usize) -> Option<Kernel> {
        Some(match i {
            0 => Kernel::Memcpy,
            1 => Kernel::Fixed4,
            2 => Kernel::Fixed8,
            3 => Kernel::Fixed16,
            4 => Kernel::Gather64,
            5 => Kernel::Gather128,
            6 => Kernel::Wide,
            7 => Kernel::Generic,
            _ => return None,
        })
    }

    /// Human-readable name (matches the obs counter suffix).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Memcpy => "memcpy",
            Kernel::Fixed4 => "fixed4",
            Kernel::Fixed8 => "fixed8",
            Kernel::Fixed16 => "fixed16",
            Kernel::Gather64 => "gather64",
            Kernel::Gather128 => "gather128",
            Kernel::Wide => "wide",
            Kernel::Generic => "generic",
        }
    }

    /// Kernel for a `MPICD_PLAN_KERNEL`-style name.
    fn parse(name: &str) -> Option<Kernel> {
        Some(match name {
            "memcpy" => Kernel::Memcpy,
            "fixed4" => Kernel::Fixed4,
            "fixed8" => Kernel::Fixed8,
            "fixed16" => Kernel::Fixed16,
            "gather64" => Kernel::Gather64,
            "gather128" => Kernel::Gather128,
            "wide" => Kernel::Wide,
            "generic" => Kernel::Generic,
            _ => return None,
        })
    }

    /// Whether this kernel can execute a strided op with `block`-byte
    /// blocks (the gathers need the block to divide their packed word).
    fn legal_for_block(self, block: usize) -> bool {
        match self {
            Kernel::Memcpy => false, // contiguous runs only
            Kernel::Fixed4 => block == 4,
            Kernel::Fixed8 => block == 8,
            Kernel::Fixed16 => block == 16,
            Kernel::Gather64 => block != 0 && 8 % block == 0,
            Kernel::Gather128 => block != 0 && 16 % block == 0,
            Kernel::Wide | Kernel::Generic => true,
        }
    }

    /// The kernels worth racing for a strided op with `block`-byte blocks,
    /// static choice first. (`Gather64`/`Gather128` with `block == word`
    /// degenerate to the fixed kernels plus software prefetch, which is
    /// why they appear as candidates for 8- and 16-byte blocks.)
    fn candidates(block: usize) -> &'static [Kernel] {
        match block {
            1 | 2 => &[Kernel::Gather64, Kernel::Gather128, Kernel::Generic],
            4 => &[
                Kernel::Fixed4,
                Kernel::Gather64,
                Kernel::Gather128,
                Kernel::Generic,
            ],
            8 => &[
                Kernel::Fixed8,
                Kernel::Gather64,
                Kernel::Gather128,
                Kernel::Generic,
            ],
            16 => &[
                Kernel::Fixed16,
                Kernel::Gather128,
                Kernel::Wide,
                Kernel::Generic,
            ],
            b if b <= 64 => &[Kernel::Wide, Kernel::Generic],
            _ => &[Kernel::Generic, Kernel::Wide],
        }
    }
}

/// Candidate kernels for a fused [`PlanOp::Pair`] op.
const PAIR_CANDIDATES: &[Kernel] = &[Kernel::Wide, Kernel::Generic];

/// Number of distinct [`Kernel`]s (size of the byte tallies).
const KERNELS: usize = 8;

// ---- kernel-selection policy and autotuner state ---------------------------

/// Run-time kernel-selection policy — see [`set_kernel_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPolicy {
    /// Static block-size mapping ([`Kernel::for_block`]) plus the
    /// autotuner when enabled. The default.
    Auto,
    /// The pre-wide-word mapping (fixed4/8/16 for 4/8/16-byte blocks,
    /// generic byte loop otherwise), autotuner off. The ablation baseline.
    Legacy,
    /// Force one kernel everywhere it is legal; ops where it is illegal
    /// keep their static choice. Deterministic — for ablation and debug.
    Force(Kernel),
}

/// Encoded policy: `0` = environment not read yet.
static POLICY: AtomicU8 = AtomicU8::new(0);
/// Tuning toggle: `0` = environment not read yet, `1` = on, `2` = off.
static TUNING: AtomicU8 = AtomicU8::new(0);

fn encode_policy(p: KernelPolicy) -> u8 {
    match p {
        KernelPolicy::Auto => 1,
        KernelPolicy::Legacy => 2,
        KernelPolicy::Force(k) => 3 + k.index() as u8,
    }
}

fn decode_policy(v: u8) -> Option<KernelPolicy> {
    match v {
        0 => None,
        1 => Some(KernelPolicy::Auto),
        2 => Some(KernelPolicy::Legacy),
        v => Some(KernelPolicy::Force(Kernel::from_index(v as usize - 3)?)),
    }
}

/// Accepted `MPICD_PLAN_KERNEL` values (validated loudly on first read).
const POLICY_CHOICES: &[&str] = &[
    "auto",
    "legacy",
    "memcpy",
    "fixed4",
    "fixed8",
    "fixed16",
    "gather64",
    "gather128",
    "wide",
    "generic",
];

fn policy_from_env() -> KernelPolicy {
    match mpicd_obs::config::env_choice("MPICD_PLAN_KERNEL", POLICY_CHOICES, "auto") {
        "auto" => KernelPolicy::Auto,
        "legacy" => KernelPolicy::Legacy,
        name => KernelPolicy::Force(Kernel::parse(name).expect("choice list names kernels")),
    }
}

/// The process-wide kernel-selection policy (`MPICD_PLAN_KERNEL` unless
/// overridden programmatically).
pub fn kernel_policy() -> KernelPolicy {
    if let Some(p) = decode_policy(POLICY.load(Ordering::Relaxed)) {
        return p;
    }
    let p = policy_from_env();
    POLICY.store(encode_policy(p), Ordering::Relaxed);
    p
}

/// Override the kernel-selection policy for this process (takes
/// precedence over `MPICD_PLAN_KERNEL`). Plans already tuned keep their
/// cached choices; the policy only controls how future executions pick.
///
/// ```
/// use mpicd_datatype::{plan, Kernel, KernelPolicy};
/// plan::set_kernel_policy(KernelPolicy::Force(Kernel::Gather128));
/// assert_eq!(plan::kernel_policy(), KernelPolicy::Force(Kernel::Gather128));
/// plan::set_kernel_policy(KernelPolicy::Auto);
/// ```
pub fn set_kernel_policy(p: KernelPolicy) {
    POLICY.store(encode_policy(p), Ordering::Relaxed);
}

/// Whether the per-plan autotuner is enabled (`MPICD_PLAN_TUNE`, default
/// on, unless overridden via [`set_tuning`]). When off, every op uses its
/// static [`Kernel::for_block`] choice.
pub fn tuning_enabled() -> bool {
    match TUNING.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = mpicd_obs::config::env_toggle("MPICD_PLAN_TUNE", true);
            TUNING.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Enable/disable the autotuner for this process (takes precedence over
/// `MPICD_PLAN_TUNE`).
pub fn set_tuning(on: bool) {
    TUNING.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Number of tuner size classes per op (see [`size_class`]).
const SIZE_CLASSES: usize = 4;

/// Bucket a per-call byte volume into a tuner size class: the kernel that
/// wins on a 4 KiB fragment is not necessarily the winner on a 16 MiB
/// stream, so choices are cached per (op, class).
fn size_class(bytes: usize) -> usize {
    if bytes < (16 << 10) {
        0
    } else if bytes < (256 << 10) {
        1
    } else if bytes < (4 << 20) {
        2
    } else {
        3
    }
}

/// Minimum bytes one call must move through an op before the tuner races
/// candidates on it: below this, timing noise beats any kernel delta and
/// the static choice is used (without caching a decision).
const RACE_MIN_BYTES: usize = 64 * 1024;

/// Per-op tuned-kernel slots, one per size class. `0` = undecided,
/// `k + 1` = kernel with index `k` won the race. Lives inside the cached
/// plan, so every user of the structural-signature cache shares the
/// decision.
#[derive(Debug, Default)]
struct TuneBank {
    slots: [AtomicU8; SIZE_CLASSES],
}

impl TuneBank {
    fn get(&self, class: usize) -> Option<Kernel> {
        let v = self.slots[class].load(Ordering::Relaxed);
        Kernel::from_index(v.checked_sub(1)? as usize)
    }

    fn set(&self, class: usize, k: Kernel) {
        self.slots[class].store(k.index() as u8 + 1, Ordering::Relaxed);
    }
}

/// Per-run dispatch context, resolved once per `run()` call.
#[derive(Clone, Copy)]
struct Dispatch {
    policy: KernelPolicy,
    tune: bool,
}

/// Outcome of kernel selection for one op call.
#[derive(Clone, Copy)]
enum Choice {
    /// Execute with this kernel.
    Use(Kernel),
    /// Undecided: race these candidates, cache under this size class.
    Race(&'static [Kernel], usize),
}

/// Select the kernel for one op call. `block` is the pair length for
/// `Pair` ops (`pair == true`), the block length otherwise; `bytes` is
/// what this call will move through the op.
fn choose(
    ctx: Dispatch,
    bank: &TuneBank,
    static_k: Kernel,
    block: usize,
    pair: bool,
    bytes: usize,
) -> Choice {
    match ctx.policy {
        KernelPolicy::Legacy => Choice::Use(if pair {
            Kernel::Generic
        } else {
            Kernel::legacy_for_block(block)
        }),
        KernelPolicy::Force(k) => {
            let legal = if pair {
                matches!(k, Kernel::Wide | Kernel::Generic)
            } else {
                k.legal_for_block(block)
            };
            Choice::Use(if legal { k } else { static_k })
        }
        KernelPolicy::Auto => {
            if !ctx.tune {
                return Choice::Use(static_k);
            }
            let class = size_class(bytes);
            if let Some(k) = bank.get(class) {
                return Choice::Use(k);
            }
            let cands = if pair {
                PAIR_CANDIDATES
            } else {
                Kernel::candidates(block)
            };
            if bytes >= RACE_MIN_BYTES && cands.len() >= 2 {
                Choice::Race(cands, class)
            } else {
                Choice::Use(static_k)
            }
        }
    }
}

/// A challenger must beat the static kernel's ns/byte by this margin to
/// overturn it — a sub-margin win on one fragment is indistinguishable
/// from timing noise, and a wrong switch is sticky.
const RACE_SWITCH_MARGIN: f64 = 0.9;

/// Race candidate kernels over disjoint leading chunks of one op call.
/// Each chunk is real work — no byte is copied twice — and `exec` is
/// called as `exec(kernel, byte_offset, byte_budget) -> bytes_moved` with
/// `byte_offset`/`byte_budget` both multiples of `unit`. Returns the
/// winner (by ns/byte), the bytes already moved, and whether the race
/// actually measured anything (a call too small to feed every candidate a
/// meaningful share falls straight back to the static choice).
fn race(
    cands: &[Kernel],
    static_k: Kernel,
    unit: usize,
    bytes: usize,
    mut exec: impl FnMut(Kernel, usize, usize) -> usize,
) -> (Kernel, usize, bool) {
    let units = bytes / unit;
    if units < cands.len() {
        return (static_k, 0, false);
    }
    let share = (units / cands.len()) * unit;
    let mut done = 0usize;
    let mut best = (f64::INFINITY, static_k);
    let mut static_score = f64::INFINITY;
    for &k in cands {
        if done >= bytes {
            break;
        }
        let budget = share.min(bytes - done);
        let t0 = Instant::now();
        let n = exec(k, done, budget);
        let dt = t0.elapsed().as_nanos() as f64;
        if n == 0 {
            break;
        }
        let score = dt / n as f64;
        if k == static_k {
            static_score = score;
        }
        if score < best.0 {
            best = (score, k);
        }
        done += n;
    }
    let winner = if best.1 == static_k || best.0 < static_score * RACE_SWITCH_MARGIN {
        best.1
    } else {
        static_k
    };
    (winner, done, true)
}

/// Record a race outcome: cache the winner and — when the race actually
/// measured candidates — bump the `plan.tune.*` counters (`kept` when
/// the static mapping already had it right, `switched` when the race
/// overturned it).
fn finish_race(bank: &TuneBank, class: usize, winner: Kernel, static_k: Kernel, measured: bool) {
    bank.set(class, winner);
    if !measured {
        return;
    }
    let c = counters();
    c.tune_races.inc();
    if winner == static_k {
        c.tune_kept.inc();
    } else {
        c.tune_switched.inc();
    }
}

// ---- plan representation ---------------------------------------------------

/// One strided-copy operation of a compiled plan, relative to the element
/// base address. Ops appear in pack order; their packed lengths sum to the
/// type's size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanOp {
    /// A single contiguous run of `len` bytes at memory offset `mem`.
    Contig {
        /// Byte offset from the element base.
        mem: isize,
        /// Run length in bytes.
        len: usize,
    },
    /// `count` blocks of `block` bytes, block `i` at `mem + i * stride`.
    Strided {
        /// Byte offset of block 0 from the element base.
        mem: isize,
        /// Distance between consecutive block starts, in bytes.
        stride: isize,
        /// Bytes per block.
        block: usize,
        /// Number of blocks.
        count: usize,
        /// Copy kernel selected for the block length.
        kernel: Kernel,
    },
    /// `count` interleaved pairs of two runs (`block_a` then `block_b`
    /// bytes) repeating at a constant period — the array-of-struct layout
    /// whose runs alternate between two lengths, fused into one op.
    Pair {
        /// Byte offset of pair 0's first run from the element base.
        mem: isize,
        /// Offset of the second run within a pair, relative to the first.
        delta: isize,
        /// Distance between consecutive pair starts, in bytes.
        stride: isize,
        /// Bytes in the first run of each pair.
        block_a: usize,
        /// Bytes in the second run of each pair.
        block_b: usize,
        /// Number of pairs.
        count: usize,
        /// Copy kernel selected for the fused pair.
        kernel: Kernel,
    },
    /// `rows` repetitions of a strided block array — the doubly-nested
    /// loop shape of the NAS/MILC/WRF face exchanges.
    Nest2 {
        /// Byte offset of row 0, block 0 from the element base.
        mem: isize,
        /// Distance between consecutive rows, in bytes.
        row_stride: isize,
        /// Number of rows.
        rows: usize,
        /// Distance between consecutive blocks within a row, in bytes.
        col_stride: isize,
        /// Blocks per row.
        cols: usize,
        /// Bytes per block.
        block: usize,
        /// Copy kernel selected for the block length.
        kernel: Kernel,
    },
}

impl PlanOp {
    /// Packed bytes this op produces.
    pub fn packed_len(&self) -> usize {
        match *self {
            PlanOp::Contig { len, .. } => len,
            PlanOp::Strided { block, count, .. } => block * count,
            PlanOp::Pair {
                block_a,
                block_b,
                count,
                ..
            } => (block_a + block_b) * count,
            PlanOp::Nest2 {
                rows, cols, block, ..
            } => rows * cols * block,
        }
    }

    /// The copy kernel this op executes with (statically; the autotuner
    /// may pick a different one at run time).
    pub fn kernel(&self) -> Kernel {
        match *self {
            PlanOp::Contig { .. } => Kernel::Memcpy,
            PlanOp::Strided { kernel, .. }
            | PlanOp::Pair { kernel, .. }
            | PlanOp::Nest2 { kernel, .. } => kernel,
        }
    }
}

/// A compiled pack plan: the canonical op list for one element, plus the
/// placement facts needed to execute over `count` consecutive elements,
/// plus the autotuner's cached kernel choices.
///
/// Byte-for-byte, a plan's output is identical to the interpreted engine's
/// (asserted by the workspace property tests) under every kernel policy;
/// only the loop structure and copy kernels differ.
#[derive(Debug)]
pub struct PackPlan {
    ops: Vec<PlanOp>,
    /// `prefix[i]` = packed bytes preceding op `i` within one element.
    prefix: Vec<usize>,
    /// Per-op tuned-kernel slots (see [`TuneBank`]).
    tune: Vec<TuneBank>,
    /// Packed bytes per element.
    size: usize,
    /// Element-to-element spacing in memory.
    extent: usize,
}

impl PackPlan {
    /// Compile a plan from a merged block list (see
    /// [`crate::Committed::blocks`]): coalesce adjacent runs, recognize
    /// 1-D strided groups, fuse alternating two-length runs, recognize
    /// 2-D nests, and select copy kernels.
    pub fn compile(blocks: &[(isize, usize)], size: usize, extent: usize) -> Self {
        let _sp = mpicd_obs::span!("dt.plan_compile", "datatype", size);
        // Pass 0: re-coalesce defensively (inputs from `Committed::new` are
        // already merged; raw callers may not be).
        let mut runs: Vec<(isize, usize)> = Vec::with_capacity(blocks.len());
        for &(off, len) in blocks {
            if len == 0 {
                continue;
            }
            match runs.last_mut() {
                Some((lo, ll)) if *lo + *ll as isize == off => *ll += len,
                _ => runs.push((off, len)),
            }
        }

        // Pass 1: group equal-length, constant-stride run sequences into
        // `Strided` ops; everything else stays `Contig`.
        let mut ops: Vec<PlanOp> = Vec::new();
        let mut i = 0usize;
        while i < runs.len() {
            let (mem, block) = runs[i];
            let mut n = 1usize;
            if i + 1 < runs.len() && runs[i + 1].1 == block {
                let stride = runs[i + 1].0 - mem;
                while i + n < runs.len()
                    && runs[i + n].1 == block
                    && runs[i + n].0 - runs[i + n - 1].0 == stride
                {
                    n += 1;
                }
                if n >= 2 {
                    ops.push(PlanOp::Strided {
                        mem,
                        stride,
                        block,
                        count: n,
                        kernel: Kernel::for_block(block),
                    });
                    i += n;
                    continue;
                }
            }
            ops.push(PlanOp::Contig { mem, len: block });
            i += n;
        }

        // Pass 1.5: fuse alternating two-length contiguous runs at a
        // constant period into `Pair` ops — the array-of-struct layout
        // (e.g. `{3×i32, f64}` with padding) whose unequal runs pass 1's
        // equal-length grouping cannot touch.
        let contig = |ops: &[PlanOp], j: usize| -> Option<(isize, usize)> {
            match ops.get(j) {
                Some(&PlanOp::Contig { mem, len }) => Some((mem, len)),
                _ => None,
            }
        };
        let mut fused: Vec<PlanOp> = Vec::with_capacity(ops.len());
        let mut i = 0usize;
        while i < ops.len() {
            if let (Some((m0, a)), Some((m1, b)), Some((m2, a2)), Some((m3, b2))) = (
                contig(&ops, i),
                contig(&ops, i + 1),
                contig(&ops, i + 2),
                contig(&ops, i + 3),
            ) {
                let delta = m1 - m0;
                let stride = m2 - m0;
                if a2 == a && b2 == b && m3 - m2 == delta && stride != 0 {
                    let mut pairs = 2usize;
                    while let (Some((ma, la)), Some((mb, lb))) =
                        (contig(&ops, i + 2 * pairs), contig(&ops, i + 2 * pairs + 1))
                    {
                        if la == a
                            && lb == b
                            && ma - m0 == stride * pairs as isize
                            && mb - ma == delta
                        {
                            pairs += 1;
                        } else {
                            break;
                        }
                    }
                    fused.push(PlanOp::Pair {
                        mem: m0,
                        delta,
                        stride,
                        block_a: a,
                        block_b: b,
                        count: pairs,
                        kernel: Kernel::Wide,
                    });
                    i += 2 * pairs;
                    continue;
                }
            }
            fused.push(ops[i].clone());
            i += 1;
        }
        let ops = fused;

        // Pass 2: fold repeated identical `Strided` ops at a constant row
        // stride into `Nest2` — the doubly-nested loop of a face exchange.
        let mut folded: Vec<PlanOp> = Vec::new();
        let mut i = 0usize;
        while i < ops.len() {
            if let PlanOp::Strided {
                mem,
                stride,
                block,
                count,
                kernel,
            } = ops[i]
            {
                let same = |op: &PlanOp| {
                    matches!(*op, PlanOp::Strided { stride: s, block: b, count: c, .. }
                        if s == stride && b == block && c == count)
                };
                let mut rows = 1usize;
                if i + 1 < ops.len() && same(&ops[i + 1]) {
                    let row_stride = strided_mem(&ops[i + 1]) - mem;
                    while i + rows < ops.len()
                        && same(&ops[i + rows])
                        && strided_mem(&ops[i + rows]) - strided_mem(&ops[i + rows - 1])
                            == row_stride
                    {
                        rows += 1;
                    }
                    if rows >= 2 {
                        folded.push(PlanOp::Nest2 {
                            mem,
                            row_stride,
                            rows,
                            col_stride: stride,
                            cols: count,
                            block,
                            kernel,
                        });
                        i += rows;
                        continue;
                    }
                }
            }
            folded.push(ops[i].clone());
            i += 1;
        }

        let mut prefix = Vec::with_capacity(folded.len());
        let mut acc = 0usize;
        for op in &folded {
            prefix.push(acc);
            acc += op.packed_len();
        }
        debug_assert_eq!(acc, size, "plan covers exactly the packed size");
        let tune = folded.iter().map(|_| TuneBank::default()).collect();
        Self {
            ops: folded,
            prefix,
            tune,
            size,
            extent,
        }
    }

    /// The canonical op list for one element, in pack order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Number of ops per element (the interpreted engine executes
    /// [`crate::Committed::block_count`] runs instead).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Packed bytes per element.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Produce packed bytes `[packed_off, packed_off + dst.len())` of the
    /// stream for `count` elements based at `base`; returns bytes written.
    ///
    /// # Safety
    /// `base` must be valid for reads over every typemap block of all
    /// `count` elements.
    pub unsafe fn pack_segment(
        &self,
        base: *const u8,
        count: usize,
        packed_off: usize,
        dst: &mut [u8],
    ) -> usize {
        self.run::<true>(
            base as *mut u8,
            count,
            packed_off,
            dst.as_mut_ptr(),
            dst.len(),
        )
    }

    /// Consume packed bytes `[packed_off, packed_off + src.len())`,
    /// scattering them into `count` elements based at `base`.
    ///
    /// # Safety
    /// `base` must be valid for writes over every typemap block of all
    /// `count` elements.
    pub unsafe fn unpack_segment(
        &self,
        base: *mut u8,
        count: usize,
        packed_off: usize,
        src: &[u8],
    ) -> usize {
        self.run::<false>(base, count, packed_off, src.as_ptr() as *mut u8, src.len())
    }

    /// Shared resumable executor. `PACK` selects copy direction
    /// (memory → buffer or buffer → memory); the buffer is never read when
    /// packing nor written when unpacking.
    unsafe fn run<const PACK: bool>(
        &self,
        base: *mut u8,
        count: usize,
        packed_off: usize,
        mut buf: *mut u8,
        buf_len: usize,
    ) -> usize {
        if self.size == 0 || count == 0 {
            return 0;
        }
        let total = self.size * count;
        if packed_off >= total {
            return 0;
        }
        let ctx = Dispatch {
            policy: kernel_policy(),
            tune: tuning_enabled(),
        };
        let goal = buf_len.min(total - packed_off);
        let mut remaining = goal;
        let mut tally = [0u64; KERNELS];

        let mut elem = packed_off / self.size;
        let mut within = packed_off % self.size;
        // Locate the entry op once; the walk is sequential afterwards.
        let mut oi = match self.prefix.binary_search(&within) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        while remaining > 0 && elem < count {
            let elem_base = base.add(elem * self.extent);
            while remaining > 0 && oi < self.ops.len() {
                let skip = within - self.prefix[oi];
                let op = &self.ops[oi];
                let n = exec_op::<PACK>(
                    op,
                    &self.tune[oi],
                    ctx,
                    elem_base,
                    skip,
                    buf,
                    remaining,
                    &mut tally,
                );
                buf = buf.add(n);
                remaining -= n;
                within += n;
                if within == self.prefix[oi] + op.packed_len() {
                    oi += 1;
                }
            }
            if oi == self.ops.len() {
                elem += 1;
                within = 0;
                oi = 0;
            }
        }
        flush_tally(&tally);
        goal - remaining
    }
}

/// `mem` of a `Strided` op (helper for the `Nest2` fold).
fn strided_mem(op: &PlanOp) -> isize {
    match *op {
        PlanOp::Strided { mem, .. } => mem,
        _ => unreachable!("caller matched Strided"),
    }
}

// ---- copy kernels ----------------------------------------------------------

/// Strides at or above this issue software prefetch in the wide-word
/// kernels (short strides are already covered by hardware prefetchers).
const PF_MIN_STRIDE: usize = 128;

/// Prefetch distance, in blocks, for the wide-word kernels.
const PF_AHEAD: isize = 16;

/// Best-effort software prefetch of the cache line holding `p`.
#[inline(always)]
#[allow(unused_variables)]
fn prefetch(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it never faults, any address is fine.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p.cast())
    };
}

/// Direction-parametric byte copy between memory and the packed buffer.
#[inline(always)]
unsafe fn copy<const PACK: bool>(mem: *mut u8, buf: *mut u8, n: usize) {
    if PACK {
        std::ptr::copy_nonoverlapping(mem as *const u8, buf, n);
    } else {
        std::ptr::copy_nonoverlapping(buf as *const u8, mem, n);
    }
}

/// Chunked wide copy of one block: unaligned `u128`/`u64`/`u32`/`u16`
/// pieces with overlapping tails, so e.g. a 12-byte block is two
/// overlapping 8-byte moves instead of a byte loop. Source and
/// destination never overlap (user memory vs. the packed buffer).
#[inline(always)]
unsafe fn copy_wide<const PACK: bool>(mem: *mut u8, buf: *mut u8, n: usize) {
    let (src, dst): (*const u8, *mut u8) = if PACK {
        (mem as *const u8, buf)
    } else {
        (buf as *const u8, mem)
    };
    if n >= 16 {
        let mut off = 0usize;
        while off + 16 <= n {
            (dst.add(off) as *mut u128)
                .write_unaligned((src.add(off) as *const u128).read_unaligned());
            off += 16;
        }
        if off < n {
            let off = n - 16;
            (dst.add(off) as *mut u128)
                .write_unaligned((src.add(off) as *const u128).read_unaligned());
        }
    } else if n >= 8 {
        let hi = n - 8;
        let a = (src as *const u64).read_unaligned();
        let b = (src.add(hi) as *const u64).read_unaligned();
        (dst as *mut u64).write_unaligned(a);
        (dst.add(hi) as *mut u64).write_unaligned(b);
    } else if n >= 4 {
        let hi = n - 4;
        let a = (src as *const u32).read_unaligned();
        let b = (src.add(hi) as *const u32).read_unaligned();
        (dst as *mut u32).write_unaligned(a);
        (dst.add(hi) as *mut u32).write_unaligned(b);
    } else if n >= 2 {
        let hi = n - 2;
        let a = (src as *const u16).read_unaligned();
        let b = (src.add(hi) as *const u16).read_unaligned();
        (dst as *mut u16).write_unaligned(a);
        (dst.add(hi) as *mut u16).write_unaligned(b);
    } else if n == 1 {
        *dst = *src;
    }
}

/// Fixed-block strided copy: the specialized kernel. With `N` a compile
/// time constant the body is a single `N`-byte load/store per block.
#[inline(always)]
unsafe fn strided_fixed<const N: usize, const PACK: bool>(
    mut mem: *mut u8,
    stride: isize,
    blocks: usize,
    mut buf: *mut u8,
) {
    for _ in 0..blocks {
        copy::<PACK>(mem, buf, N);
        mem = mem.offset(stride);
        buf = buf.add(N);
    }
}

/// Wide-word gather/scatter: `W / B` blocks of `B` bytes share one
/// `W`-byte word of the packed stream — fewer, wider packed-side accesses
/// — with software prefetch down long strides. Remainder blocks (fewer
/// than a full word) move individually; packed-stream chunk boundaries
/// need no alignment because partial blocks never reach this kernel.
#[inline(always)]
unsafe fn strided_gather<const B: usize, const W: usize, const PACK: bool>(
    mut mem: *mut u8,
    stride: isize,
    blocks: usize,
    mut buf: *mut u8,
) {
    let lanes = W / B;
    let pf = stride.unsigned_abs() >= PF_MIN_STRIDE;
    for _ in 0..blocks / lanes {
        let mut word = [0u8; W];
        if PACK {
            for l in 0..lanes {
                if pf {
                    prefetch(mem.wrapping_offset(stride * PF_AHEAD));
                }
                std::ptr::copy_nonoverlapping(mem as *const u8, word.as_mut_ptr().add(l * B), B);
                mem = mem.offset(stride);
            }
            (buf as *mut [u8; W]).write(word);
        } else {
            word = (buf as *const [u8; W]).read();
            for l in 0..lanes {
                if pf {
                    prefetch(mem.wrapping_offset(stride * PF_AHEAD));
                }
                std::ptr::copy_nonoverlapping(word.as_ptr().add(l * B), mem, B);
                mem = mem.offset(stride);
            }
        }
        buf = buf.add(W);
    }
    for _ in 0..blocks % lanes {
        copy::<PACK>(mem, buf, B);
        mem = mem.offset(stride);
        buf = buf.add(B);
    }
}

/// Arbitrary-block strided copy through [`copy_wide`], with software
/// prefetch down long strides.
#[inline(always)]
unsafe fn strided_wide<const PACK: bool>(
    mut mem: *mut u8,
    stride: isize,
    block: usize,
    blocks: usize,
    mut buf: *mut u8,
) {
    let pf = stride.unsigned_abs() >= PF_MIN_STRIDE;
    for _ in 0..blocks {
        if pf {
            prefetch(mem.wrapping_offset(stride * PF_AHEAD));
        }
        copy_wide::<PACK>(mem, buf, block);
        mem = mem.offset(stride);
        buf = buf.add(block);
    }
}

/// Variable-block strided copy: the generic fallback kernel.
#[inline(always)]
unsafe fn strided_generic<const PACK: bool>(
    mut mem: *mut u8,
    stride: isize,
    block: usize,
    blocks: usize,
    mut buf: *mut u8,
) {
    for _ in 0..blocks {
        copy::<PACK>(mem, buf, block);
        mem = mem.offset(stride);
        buf = buf.add(block);
    }
}

/// Execute (part of) one strided block array: skip `skip` packed bytes in,
/// move at most `want` bytes, return bytes moved. Partial head/tail blocks
/// go through the generic copy; whole blocks through the selected kernel.
// Hot-path kernel dispatch: the flat argument list keeps the call free
// of a params-struct build in the per-op loop.
#[allow(clippy::too_many_arguments)]
unsafe fn strided_part<const PACK: bool>(
    mem0: *mut u8,
    stride: isize,
    block: usize,
    count: usize,
    kernel: Kernel,
    skip: usize,
    want: usize,
    mut buf: *mut u8,
    tally: &mut [u64; KERNELS],
) -> usize {
    let avail = block * count - skip;
    let want = want.min(avail);
    let mut done = 0usize;
    let mut bi = skip / block;
    let brem = skip % block;
    // Head: finish a partially consumed block.
    if brem != 0 {
        let n = (block - brem).min(want);
        copy::<PACK>(mem0.offset(bi as isize * stride + brem as isize), buf, n);
        tally[Kernel::Generic.index()] += n as u64;
        done += n;
        buf = buf.add(n);
        if brem + n == block {
            bi += 1;
        }
    }
    // Body: whole blocks through the specialized kernel.
    let full = (want - done) / block;
    if full > 0 {
        let mem = mem0.offset(bi as isize * stride);
        match kernel {
            Kernel::Fixed4 => strided_fixed::<4, PACK>(mem, stride, full, buf),
            Kernel::Fixed8 => strided_fixed::<8, PACK>(mem, stride, full, buf),
            Kernel::Fixed16 => strided_fixed::<16, PACK>(mem, stride, full, buf),
            Kernel::Gather64 => match block {
                1 => strided_gather::<1, 8, PACK>(mem, stride, full, buf),
                2 => strided_gather::<2, 8, PACK>(mem, stride, full, buf),
                4 => strided_gather::<4, 8, PACK>(mem, stride, full, buf),
                8 => strided_gather::<8, 8, PACK>(mem, stride, full, buf),
                _ => strided_generic::<PACK>(mem, stride, block, full, buf),
            },
            Kernel::Gather128 => match block {
                1 => strided_gather::<1, 16, PACK>(mem, stride, full, buf),
                2 => strided_gather::<2, 16, PACK>(mem, stride, full, buf),
                4 => strided_gather::<4, 16, PACK>(mem, stride, full, buf),
                8 => strided_gather::<8, 16, PACK>(mem, stride, full, buf),
                16 => strided_gather::<16, 16, PACK>(mem, stride, full, buf),
                _ => strided_generic::<PACK>(mem, stride, block, full, buf),
            },
            Kernel::Wide => strided_wide::<PACK>(mem, stride, block, full, buf),
            Kernel::Memcpy | Kernel::Generic => {
                strided_generic::<PACK>(mem, stride, block, full, buf)
            }
        }
        tally[kernel.index()] += (full * block) as u64;
        done += full * block;
        buf = buf.add(full * block);
        bi += full;
    }
    // Tail: start of the next block.
    if done < want {
        let n = want - done;
        copy::<PACK>(mem0.offset(bi as isize * stride), buf, n);
        tally[Kernel::Generic.index()] += n as u64;
        done += n;
    }
    done
}

/// Copy packed bytes `[from, from + len)` of one pair (the `a` run
/// followed by the `b` run) — the byte-accurate partial-pair path.
/// Caller guarantees `from + len <= block_a + block_b`.
unsafe fn pair_slice<const PACK: bool>(
    pbase: *mut u8,
    delta: isize,
    block_a: usize,
    block_b: usize,
    mut from: usize,
    mut len: usize,
    mut buf: *mut u8,
) {
    debug_assert!(from + len <= block_a + block_b);
    if from < block_a {
        let n = (block_a - from).min(len);
        copy::<PACK>(pbase.add(from), buf, n);
        buf = buf.add(n);
        from += n;
        len -= n;
    }
    if len > 0 {
        copy::<PACK>(pbase.offset(delta).add(from - block_a), buf, len);
    }
}

/// Execute (part of) one fused two-run `Pair` op: skip `skip` packed
/// bytes in, move at most `want` bytes, return bytes moved. Partial
/// head/tail pairs are byte-accurate; whole pairs run the fused kernel.
#[allow(clippy::too_many_arguments)]
unsafe fn pair_part<const PACK: bool>(
    mem0: *mut u8,
    delta: isize,
    stride: isize,
    block_a: usize,
    block_b: usize,
    count: usize,
    kernel: Kernel,
    skip: usize,
    want: usize,
    mut buf: *mut u8,
    tally: &mut [u64; KERNELS],
) -> usize {
    let pair_len = block_a + block_b;
    let avail = pair_len * count - skip;
    let want = want.min(avail);
    let mut done = 0usize;
    let mut pi = skip / pair_len;
    let prem = skip % pair_len;
    // Head: finish a partially consumed pair.
    if prem != 0 {
        let n = (pair_len - prem).min(want);
        pair_slice::<PACK>(
            mem0.offset(pi as isize * stride),
            delta,
            block_a,
            block_b,
            prem,
            n,
            buf,
        );
        tally[Kernel::Generic.index()] += n as u64;
        done += n;
        buf = buf.add(n);
        if prem + n < pair_len {
            return done;
        }
        pi += 1;
    }
    // Body: whole pairs through the fused kernel.
    let full = (want - done) / pair_len;
    if full > 0 {
        let mut mem = mem0.offset(pi as isize * stride);
        let pf = stride.unsigned_abs() >= PF_MIN_STRIDE;
        let wide = matches!(kernel, Kernel::Wide);
        for _ in 0..full {
            if pf {
                prefetch(mem.wrapping_offset(stride * 8));
            }
            if wide {
                copy_wide::<PACK>(mem, buf, block_a);
                copy_wide::<PACK>(mem.offset(delta), buf.add(block_a), block_b);
            } else {
                copy::<PACK>(mem, buf, block_a);
                copy::<PACK>(mem.offset(delta), buf.add(block_a), block_b);
            }
            mem = mem.offset(stride);
            buf = buf.add(pair_len);
        }
        let ki = if wide { Kernel::Wide } else { Kernel::Generic };
        tally[ki.index()] += (full * pair_len) as u64;
        done += full * pair_len;
        pi += full;
    }
    // Tail: start of the next pair.
    if done < want {
        let n = want - done;
        pair_slice::<PACK>(
            mem0.offset(pi as isize * stride),
            delta,
            block_a,
            block_b,
            0,
            n,
            buf,
        );
        tally[Kernel::Generic.index()] += n as u64;
        done += n;
    }
    done
}

/// Execute `nrows` whole rows of a `Nest2` op with kernel `k`, returning
/// the bytes moved (`nrows * cols * block`). The wide-word kernels run a
/// dedicated row loop — single dispatch, next-row prefetch, none of the
/// per-row partial-block bookkeeping — which is where fine-grained nests
/// like LAMMPS (6 blocks of 8 bytes per row) recover their loop overhead.
/// The fixed/generic kernels keep the historical per-row path.
#[allow(clippy::too_many_arguments)]
unsafe fn nest2_rows<const PACK: bool>(
    k: Kernel,
    mem0: *mut u8,
    row_stride: isize,
    nrows: usize,
    col_stride: isize,
    cols: usize,
    block: usize,
    mut buf: *mut u8,
    tally: &mut [u64; KERNELS],
) -> usize {
    let row_len = cols * block;
    match k {
        Kernel::Gather64 | Kernel::Gather128 => {
            debug_assert!(k.legal_for_block(block));
            let f: unsafe fn(*mut u8, isize, usize, *mut u8) = match (k, block) {
                (Kernel::Gather64, 1) => strided_gather::<1, 8, PACK>,
                (Kernel::Gather64, 2) => strided_gather::<2, 8, PACK>,
                (Kernel::Gather64, 4) => strided_gather::<4, 8, PACK>,
                (Kernel::Gather64, _) => strided_gather::<8, 8, PACK>,
                (Kernel::Gather128, 1) => strided_gather::<1, 16, PACK>,
                (Kernel::Gather128, 2) => strided_gather::<2, 16, PACK>,
                (Kernel::Gather128, 4) => strided_gather::<4, 16, PACK>,
                (Kernel::Gather128, 8) => strided_gather::<8, 16, PACK>,
                _ => strided_gather::<16, 16, PACK>,
            };
            let mut mem = mem0;
            for _ in 0..nrows {
                prefetch(mem.wrapping_offset(row_stride));
                f(mem, col_stride, cols, buf);
                mem = mem.offset(row_stride);
                buf = buf.add(row_len);
            }
            tally[k.index()] += (nrows * row_len) as u64;
        }
        Kernel::Wide => {
            let mut mem = mem0;
            for _ in 0..nrows {
                prefetch(mem.wrapping_offset(row_stride));
                strided_wide::<PACK>(mem, col_stride, block, cols, buf);
                mem = mem.offset(row_stride);
                buf = buf.add(row_len);
            }
            tally[Kernel::Wide.index()] += (nrows * row_len) as u64;
        }
        _ => {
            let mut mem = mem0;
            for _ in 0..nrows {
                strided_part::<PACK>(mem, col_stride, block, cols, k, 0, row_len, buf, tally);
                mem = mem.offset(row_stride);
                buf = buf.add(row_len);
            }
        }
    }
    nrows * row_len
}

/// Execute (part of) one op at `skip` packed bytes in; returns bytes moved
/// (`> 0` whenever `want > 0` and the op has bytes past `skip`).
#[allow(clippy::too_many_arguments)]
unsafe fn exec_op<const PACK: bool>(
    op: &PlanOp,
    bank: &TuneBank,
    ctx: Dispatch,
    elem_base: *mut u8,
    skip: usize,
    buf: *mut u8,
    want: usize,
    tally: &mut [u64; KERNELS],
) -> usize {
    match *op {
        PlanOp::Contig { mem, len } => {
            let n = (len - skip).min(want);
            copy::<PACK>(elem_base.offset(mem + skip as isize), buf, n);
            tally[Kernel::Memcpy.index()] += n as u64;
            n
        }
        PlanOp::Strided {
            mem,
            stride,
            block,
            count,
            kernel,
        } => {
            let mem0 = elem_base.offset(mem);
            let bytes = want.min(block * count - skip);
            match choose(ctx, bank, kernel, block, false, bytes) {
                Choice::Race(cands, class) if skip.is_multiple_of(block) => {
                    let (winner, mut done, measured) =
                        race(cands, kernel, block, bytes, |k, off, budget| {
                            strided_part::<PACK>(
                                mem0,
                                stride,
                                block,
                                count,
                                k,
                                skip + off,
                                budget,
                                buf.add(off),
                                tally,
                            )
                        });
                    finish_race(bank, class, winner, kernel, measured);
                    if done < bytes {
                        done += strided_part::<PACK>(
                            mem0,
                            stride,
                            block,
                            count,
                            winner,
                            skip + done,
                            bytes - done,
                            buf.add(done),
                            tally,
                        );
                    }
                    done
                }
                Choice::Race(..) => {
                    strided_part::<PACK>(mem0, stride, block, count, kernel, skip, want, buf, tally)
                }
                Choice::Use(k) => {
                    strided_part::<PACK>(mem0, stride, block, count, k, skip, want, buf, tally)
                }
            }
        }
        PlanOp::Pair {
            mem,
            delta,
            stride,
            block_a,
            block_b,
            count,
            kernel,
        } => {
            let mem0 = elem_base.offset(mem);
            let pair_len = block_a + block_b;
            let bytes = want.min(pair_len * count - skip);
            match choose(ctx, bank, kernel, pair_len, true, bytes) {
                Choice::Race(cands, class) if skip.is_multiple_of(pair_len) => {
                    let (winner, mut done, measured) =
                        race(cands, kernel, pair_len, bytes, |k, off, budget| {
                            pair_part::<PACK>(
                                mem0,
                                delta,
                                stride,
                                block_a,
                                block_b,
                                count,
                                k,
                                skip + off,
                                budget,
                                buf.add(off),
                                tally,
                            )
                        });
                    finish_race(bank, class, winner, kernel, measured);
                    if done < bytes {
                        done += pair_part::<PACK>(
                            mem0,
                            delta,
                            stride,
                            block_a,
                            block_b,
                            count,
                            winner,
                            skip + done,
                            bytes - done,
                            buf.add(done),
                            tally,
                        );
                    }
                    done
                }
                Choice::Race(..) => pair_part::<PACK>(
                    mem0, delta, stride, block_a, block_b, count, kernel, skip, want, buf, tally,
                ),
                Choice::Use(k) => pair_part::<PACK>(
                    mem0, delta, stride, block_a, block_b, count, k, skip, want, buf, tally,
                ),
            }
        }
        PlanOp::Nest2 {
            mem,
            row_stride,
            rows,
            col_stride,
            cols,
            block,
            kernel,
        } => {
            let row_len = cols * block;
            let bytes = want.min(rows * row_len - skip);
            let mut row = skip / row_len;
            let rskip = skip % row_len;
            let mut done = 0usize;
            let choice = choose(ctx, bank, kernel, block, false, bytes);
            let mut k = match choice {
                Choice::Use(k) => k,
                Choice::Race(..) => kernel,
            };
            // Head: finish a partially consumed row.
            if rskip != 0 {
                let m = elem_base.offset(mem + row as isize * row_stride);
                let n =
                    strided_part::<PACK>(m, col_stride, block, cols, k, rskip, bytes, buf, tally);
                done += n;
                if rskip + n < row_len {
                    return done;
                }
                row += 1;
            }
            // Body: whole rows (racing candidates over row ranges first,
            // if the tuner has no decision for this op yet).
            let mut full = ((bytes - done) / row_len).min(rows - row);
            if let Choice::Race(cands, class) = choice {
                if full > 0 {
                    let r0 = row;
                    let base_done = done;
                    let (winner, raced, measured) =
                        race(cands, kernel, row_len, full * row_len, |kk, off, budget| {
                            nest2_rows::<PACK>(
                                kk,
                                elem_base.offset(mem + (r0 + off / row_len) as isize * row_stride),
                                row_stride,
                                budget / row_len,
                                col_stride,
                                cols,
                                block,
                                buf.add(base_done + off),
                                tally,
                            )
                        });
                    finish_race(bank, class, winner, kernel, measured);
                    k = winner;
                    done += raced;
                    row += raced / row_len;
                    full = ((bytes - done) / row_len).min(rows - row);
                }
            }
            if full > 0 {
                let m = elem_base.offset(mem + row as isize * row_stride);
                done += nest2_rows::<PACK>(
                    k,
                    m,
                    row_stride,
                    full,
                    col_stride,
                    cols,
                    block,
                    buf.add(done),
                    tally,
                );
                row += full;
            }
            // Tail: start of the next row.
            if done < bytes && row < rows {
                let m = elem_base.offset(mem + row as isize * row_stride);
                done += strided_part::<PACK>(
                    m,
                    col_stride,
                    block,
                    cols,
                    k,
                    0,
                    bytes - done,
                    buf.add(done),
                    tally,
                );
            }
            done
        }
    }
}

// ---- observability ---------------------------------------------------------

/// Cached `Arc<Counter>` handles so the hot path pays one relaxed atomic
/// add per kernel per segment, not a registry lookup.
struct PlanCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    kernel_bytes: [Arc<Counter>; KERNELS],
    tune_races: Arc<Counter>,
    tune_kept: Arc<Counter>,
    tune_switched: Arc<Counter>,
}

fn counters() -> &'static PlanCounters {
    static C: OnceLock<PlanCounters> = OnceLock::new();
    C.get_or_init(|| {
        let r = mpicd_obs::global();
        PlanCounters {
            hits: r.counter("plan.cache.hits"),
            misses: r.counter("plan.cache.misses"),
            kernel_bytes: [
                r.counter("plan.kernel.memcpy_bytes"),
                r.counter("plan.kernel.fixed4_bytes"),
                r.counter("plan.kernel.fixed8_bytes"),
                r.counter("plan.kernel.fixed16_bytes"),
                r.counter("plan.kernel.gather64_bytes"),
                r.counter("plan.kernel.gather128_bytes"),
                r.counter("plan.kernel.wide_bytes"),
                r.counter("plan.kernel.generic_bytes"),
            ],
            tune_races: r.counter("plan.tune.races"),
            tune_kept: r.counter("plan.tune.kept"),
            tune_switched: r.counter("plan.tune.switched"),
        }
    })
}

/// Add a segment's per-kernel byte tallies to the global counters.
fn flush_tally(tally: &[u64; KERNELS]) {
    let c = counters();
    for (k, &bytes) in tally.iter().enumerate() {
        if bytes != 0 {
            c.kernel_bytes[k].add(bytes);
        }
    }
}

// ---- process-wide plan cache -----------------------------------------------

/// Runtime knobs, read once from the environment (all validated loudly —
/// see `mpicd_obs::config`).
struct PlanConfig {
    /// `MPICD_PLAN` (default on): compile plans at `commit()` at all.
    enabled: bool,
    /// `MPICD_PLAN_CACHE` (default on): share compiled plans across
    /// commits.
    cache: bool,
    /// `MPICD_PLAN_CACHE_CAP`: max cached plans (insertions stop beyond
    /// it).
    cache_cap: usize,
}

fn config() -> &'static PlanConfig {
    static CFG: OnceLock<PlanConfig> = OnceLock::new();
    CFG.get_or_init(|| PlanConfig {
        enabled: mpicd_obs::config::env_toggle("MPICD_PLAN", true),
        cache: mpicd_obs::config::env_toggle("MPICD_PLAN_CACHE", true),
        cache_cap: mpicd_obs::config::env_bounded("MPICD_PLAN_CACHE_CAP", 1024, 1 << 24) as usize,
    })
}

/// Whether `commit()` compiles plans in this process (`MPICD_PLAN=0`
/// turns the compiler off and every commit runs the interpreted engine).
pub fn planning_enabled() -> bool {
    config().enabled
}

fn cache() -> &'static Mutex<HashMap<StructuralKey, Arc<PackPlan>>> {
    static CACHE: OnceLock<Mutex<HashMap<StructuralKey, Arc<PackPlan>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of plans currently in the process-wide registry.
pub fn cache_len() -> usize {
    cache().lock().len()
}

/// Fetch the compiled plan for `t`, compiling and caching on first sight.
///
/// `blocks`/`size`/`extent` are the already-flattened facts from
/// [`crate::Committed`] (so a cache miss does not re-walk the tree). Two
/// structurally equivalent types — same type map, extent and lower bound,
/// regardless of which constructors described them — share one plan (and
/// with it, the autotuner's kernel decisions).
pub fn lookup_or_compile(
    t: &Datatype,
    blocks: &[(isize, usize)],
    size: usize,
    extent: usize,
) -> Arc<PackPlan> {
    if !config().cache {
        counters().misses.inc();
        return Arc::new(PackPlan::compile(blocks, size, extent));
    }
    let key = structural_key(t);
    if let Some(plan) = cache().lock().get(&key) {
        counters().hits.inc();
        return Arc::clone(plan);
    }
    counters().misses.inc();
    let plan = Arc::new(PackPlan::compile(blocks, size, extent));
    let mut map = cache().lock();
    if map.len() < config().cache_cap {
        map.insert(key, Arc::clone(&plan));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::Primitive;

    fn plan_of(t: &Datatype) -> PackPlan {
        let c = crate::Committed::new(t).unwrap();
        PackPlan::compile(c.blocks(), c.size(), c.extent())
    }

    #[test]
    fn contiguous_compiles_to_one_memcpy_op() {
        let t = Datatype::contiguous(64, Datatype::Predefined(Primitive::Int32));
        let p = plan_of(&t);
        assert_eq!(p.ops(), &[PlanOp::Contig { mem: 0, len: 256 }]);
    }

    #[test]
    fn vector_compiles_to_one_strided_op() {
        // 16 blocks of 2 doubles, stride 4 doubles.
        let t = Datatype::vector(16, 2, 4, Datatype::Predefined(Primitive::Double));
        let p = plan_of(&t);
        assert_eq!(
            p.ops(),
            &[PlanOp::Strided {
                mem: 0,
                stride: 32,
                block: 16,
                count: 16,
                kernel: Kernel::Fixed16,
            }]
        );
    }

    #[test]
    fn nested_hvector_compiles_to_nest2() {
        // rows of strided doubles, repeated at a row stride — 2-D nest.
        let inner = Datatype::hvector(8, 1, 16, Datatype::Predefined(Primitive::Double));
        let t = Datatype::hvector(4, 1, 256, inner);
        let p = plan_of(&t);
        assert_eq!(
            p.ops(),
            &[PlanOp::Nest2 {
                mem: 0,
                row_stride: 256,
                rows: 4,
                col_stride: 16,
                cols: 8,
                block: 8,
                kernel: Kernel::Fixed8,
            }]
        );
    }

    #[test]
    fn irregular_indexed_falls_back_to_contig_ops() {
        let t = Datatype::hindexed(
            vec![(1, 0), (2, 16), (1, 100)],
            Datatype::Predefined(Primitive::Int32),
        );
        let p = plan_of(&t);
        assert_eq!(p.op_count(), 3);
        assert_eq!(p.size(), 16);
    }

    #[test]
    fn block_size_to_kernel_mapping_is_pinned() {
        // The static mapping: fixed kernels for the ubiquitous power-of-two
        // blocks, wide-word kernels for every other small block (the old
        // mapping silently routed 2- and 12-byte blocks — traffic-detector
        // struct fields — to the generic byte loop), memcpy-sized blocks
        // stay generic.
        let expect = [
            (1, Kernel::Gather64),
            (2, Kernel::Gather64),
            (3, Kernel::Wide),
            (4, Kernel::Fixed4),
            (5, Kernel::Wide),
            (6, Kernel::Wide),
            (7, Kernel::Wide),
            (8, Kernel::Fixed8),
            (12, Kernel::Wide),
            (16, Kernel::Fixed16),
            (24, Kernel::Wide),
            (64, Kernel::Wide),
            (65, Kernel::Generic),
            (4096, Kernel::Generic),
        ];
        for (block, kernel) in expect {
            assert_eq!(Kernel::for_block(block), kernel, "block {block}");
        }
        // Every static choice must be legal for its block size.
        for block in 1..=128usize {
            assert!(
                Kernel::for_block(block).legal_for_block(block),
                "block {block}"
            );
            for k in Kernel::candidates(block) {
                assert!(k.legal_for_block(block), "candidate {k:?} for {block}");
            }
        }
    }

    #[test]
    fn alternating_runs_fuse_into_pair_op() {
        // Array-of-struct: {3×i32 (12 B), pad, f64 (8 B), pad} per element,
        // resized to a 32-byte extent — runs alternate 12/8 at a constant
        // period, which pass 1 cannot group (unequal lengths) but pass 1.5
        // fuses into one Pair op.
        let field = Datatype::structure(vec![
            (3, 0, Datatype::Predefined(Primitive::Int32)),
            (1, 16, Datatype::Predefined(Primitive::Double)),
        ]);
        let t = Datatype::contiguous(32, Datatype::resized(0, 32, field));
        let p = plan_of(&t);
        assert_eq!(
            p.ops(),
            &[PlanOp::Pair {
                mem: 0,
                delta: 16,
                stride: 32,
                block_a: 12,
                block_b: 8,
                count: 32,
                kernel: Kernel::Wide,
            }]
        );

        // And the fused op is byte-identical to the interpreted engine,
        // including suspend/resume at every packed offset.
        let c = crate::Committed::new_interpreted(&t).unwrap();
        let span = c.required_span(1);
        let src: Vec<u8> = (0..span).map(|i| (i % 251) as u8).collect();
        let full = c.pack_slice(&src, 1).unwrap();
        for cut in 0..full.len() {
            let mut out = vec![0u8; full.len()];
            unsafe {
                p.pack_segment(src.as_ptr(), 1, cut, &mut out[cut..]);
                p.pack_segment(src.as_ptr(), 1, 0, &mut out[..cut]);
            }
            assert_eq!(out, full, "cut={cut}");
        }
    }

    #[test]
    fn plan_pack_matches_interpreted_pack() {
        let t = Datatype::structure(vec![
            (3, 0, Datatype::Predefined(Primitive::Int32)),
            (1, 16, Datatype::Predefined(Primitive::Double)),
        ]);
        let c = crate::Committed::new_interpreted(&t).unwrap();
        let p = plan_of(&t);
        let src: Vec<u8> = (0..240).map(|i| i as u8).collect();
        let reference = c.pack_slice(&src, 10).unwrap();
        let mut out = vec![0u8; reference.len()];
        let n = unsafe { p.pack_segment(src.as_ptr(), 10, 0, &mut out) };
        assert_eq!(n, out.len());
        assert_eq!(out, reference);
    }

    #[test]
    fn resumable_at_every_offset() {
        // A shape that exercises Contig, Strided and partial blocks.
        let t = Datatype::structure(vec![
            (
                1,
                0,
                Datatype::vector(5, 1, 3, Datatype::Predefined(Primitive::Int32)),
            ),
            (3, 64, Datatype::Predefined(Primitive::Double)),
        ]);
        let c = crate::Committed::new_interpreted(&t).unwrap();
        let p = plan_of(&t);
        let count = 3;
        let span = c.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i % 253) as u8).collect();
        let full = c.pack_slice(&src, count).unwrap();
        for cut in 0..full.len() {
            let mut out = vec![0u8; full.len()];
            unsafe {
                p.pack_segment(src.as_ptr(), count, cut, &mut out[cut..]);
                p.pack_segment(src.as_ptr(), count, 0, &mut out[..cut]);
            }
            assert_eq!(out, full, "cut={cut}");
        }
    }

    #[test]
    fn every_forced_kernel_is_byte_identical() {
        // Byte identity must hold under every kernel policy — forced
        // kernels (legal or not), the legacy mapping, and wide-word
        // suspend/resume at every packed offset. This is the executor-side
        // guarantee that lets the autotuner race candidates on live data.
        let shapes = [
            // Strided 8-byte blocks (gather lanes, mid-word resume).
            Datatype::vector(37, 1, 2, Datatype::Predefined(Primitive::Double)),
            // Strided 2-byte blocks (gather64's deepest lane count).
            Datatype::vector(61, 1, 3, Datatype::Predefined(Primitive::Int16)),
            // Nest2 of 8-byte blocks (row loop + gather).
            Datatype::hvector(
                5,
                1,
                96,
                Datatype::hvector(4, 1, 16, Datatype::Predefined(Primitive::Double)),
            ),
            // 12-byte blocks (wide chunked copy).
            Datatype::vector(23, 3, 5, Datatype::Predefined(Primitive::Int32)),
        ];
        let policies = [
            KernelPolicy::Auto,
            KernelPolicy::Legacy,
            KernelPolicy::Force(Kernel::Fixed8),
            KernelPolicy::Force(Kernel::Gather64),
            KernelPolicy::Force(Kernel::Gather128),
            KernelPolicy::Force(Kernel::Wide),
            KernelPolicy::Force(Kernel::Generic),
        ];
        for t in &shapes {
            let c = crate::Committed::new_interpreted(t).unwrap();
            let p = plan_of(t);
            let count = 2;
            let span = c.required_span(count);
            let src: Vec<u8> = (0..span).map(|i| (i % 241) as u8).collect();
            let full = c.pack_slice(&src, count).unwrap();
            for policy in policies {
                set_kernel_policy(policy);
                let step = (full.len() / 7).max(1);
                for cut in (0..full.len()).step_by(step) {
                    let mut out = vec![0u8; full.len()];
                    unsafe {
                        p.pack_segment(src.as_ptr(), count, cut, &mut out[cut..]);
                        p.pack_segment(src.as_ptr(), count, 0, &mut out[..cut]);
                    }
                    assert_eq!(out, full, "{policy:?} cut={cut}");
                    // And scatter back: unpack must invert pack bytewise.
                    let mut dst = vec![0u8; span];
                    unsafe {
                        p.unpack_segment(dst.as_mut_ptr(), count, cut, &full[cut..]);
                        p.unpack_segment(dst.as_mut_ptr(), count, 0, &full[..cut]);
                    }
                    assert_eq!(
                        p_pack(&p, &dst, count, full.len()),
                        full,
                        "{policy:?} unpack cut={cut}"
                    );
                }
            }
            set_kernel_policy(KernelPolicy::Auto);
        }
    }

    fn p_pack(p: &PackPlan, src: &[u8], count: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let n = unsafe { p.pack_segment(src.as_ptr(), count, 0, &mut out) };
        assert_eq!(n, len);
        out
    }

    #[test]
    fn autotuner_races_once_and_caches_the_winner() {
        set_tuning(true);
        set_kernel_policy(KernelPolicy::Auto);
        // One big strided op (512 KiB packed) — crosses RACE_MIN_BYTES.
        let t = Datatype::vector(65_536, 1, 2, Datatype::Predefined(Primitive::Double));
        let c = crate::Committed::new_interpreted(&t).unwrap();
        let p = plan_of(&t);
        let span = c.required_span(1);
        let src: Vec<u8> = (0..span).map(|i| (i % 239) as u8).collect();
        let reference = c.pack_slice(&src, 1).unwrap();

        let races_before = mpicd_obs::global().snapshot().counter("plan.tune.races");
        assert_eq!(p_pack(&p, &src, 1, reference.len()), reference);
        let races_mid = mpicd_obs::global().snapshot().counter("plan.tune.races");
        assert!(races_mid > races_before, "first large pack races");
        // The decision is cached: repacking must not race again on this op.
        assert_eq!(p_pack(&p, &src, 1, reference.len()), reference);
        let races_after = mpicd_obs::global().snapshot().counter("plan.tune.races");
        assert_eq!(races_mid, races_after, "winner cached in the plan");
    }

    #[test]
    fn cache_hits_on_equivalent_types() {
        // contiguous(4, int) and vector(2,2,2, int) share a type map.
        let a = Datatype::contiguous(4, Datatype::Predefined(Primitive::Int32));
        let b = Datatype::vector(2, 2, 2, Datatype::Predefined(Primitive::Int32));
        let ca = crate::Committed::new(&a).unwrap();
        let before = mpicd_obs::global().snapshot().counter("plan.cache.hits");
        let pa = lookup_or_compile(&a, ca.blocks(), ca.size(), ca.extent());
        let pb = lookup_or_compile(&b, ca.blocks(), ca.size(), ca.extent());
        let after = mpicd_obs::global().snapshot().counter("plan.cache.hits");
        assert!(Arc::ptr_eq(&pa, &pb), "equivalent types share one plan");
        assert!(after > before, "second lookup hit the cache");
    }
}
