//! Commit-time pack-plan compilation.
//!
//! The interpreted engine in [`crate::committed`] walks the merged block
//! list one `(offset, len)` run at a time — every run pays the same loop
//! bookkeeping and a variable-length `memcpy`, no matter how regular the
//! layout is. Real datatype engines recover the regularity instead:
//! TEMPI (Pearson et al., ICS'22) canonicalizes MPI derived datatypes into
//! strided-copy kernels, and Träff et al. show derived-datatype performance
//! hinges on exactly this normalization step.
//!
//! This module does the same at `commit()` time:
//!
//! 1. **Lower** the flattened block list into a short canonical list of
//!    [`PlanOp`]s — contiguous run, 1-D constant-stride block array, or 2-D
//!    nest of block arrays. A million-block NAS face collapses to one op.
//! 2. **Select a copy kernel** per op at compile time: a straight `memcpy`
//!    for contiguous runs, fixed-size copies for the ubiquitous 4/8/16-byte
//!    blocks (a single load/store pair instead of a variable-length copy),
//!    and a generic fallback for everything else.
//! 3. **Cache** compiled plans in a process-wide registry keyed by the
//!    structural type signature ([`crate::equivalence::structural_key`]),
//!    so recommitting an equivalent type — benchmark harnesses and
//!    long-running applications do this constantly — skips compilation.
//!
//! The executor keeps the engine's resumable contract: any byte range of
//! the packed stream can be produced or consumed independently, so plans
//! drop straight into the fabric's fragmented generic-payload path.
//!
//! Observability: `plan.cache.hits` / `plan.cache.misses` count registry
//! lookups and `plan.kernel.*_bytes` attribute every copied byte to the
//! kernel that moved it (see `mpicd-obs`). Knobs: `MPICD_PLAN=0` disables
//! compilation (interpreted engine everywhere), `MPICD_PLAN_CACHE=0`
//! disables only the registry, `MPICD_PLAN_CACHE_CAP` bounds it
//! (default 1024 plans).

// Audited unsafe: compiled-plan kernels over raw memory; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::equivalence::{structural_key, StructuralKey};
use crate::typ::Datatype;
use mpicd_obs::metrics::Counter;
use mpicd_obs::sync::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Copy kernel selected for an op when the plan is compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Unit-stride run: one `memcpy` of the whole op.
    Memcpy,
    /// Strided copy of 4-byte blocks (one `u32` load/store per block).
    Fixed4,
    /// Strided copy of 8-byte blocks (one `u64` load/store per block).
    Fixed8,
    /// Strided copy of 16-byte blocks (one 16-byte load/store per block).
    Fixed16,
    /// Strided copy of arbitrary-length blocks (variable-length copy).
    Generic,
}

impl Kernel {
    /// Kernel for a strided op whose blocks are `block` bytes long.
    fn for_block(block: usize) -> Self {
        match block {
            4 => Kernel::Fixed4,
            8 => Kernel::Fixed8,
            16 => Kernel::Fixed16,
            _ => Kernel::Generic,
        }
    }

    /// Stable index into the per-kernel byte tallies.
    fn index(self) -> usize {
        match self {
            Kernel::Memcpy => 0,
            Kernel::Fixed4 => 1,
            Kernel::Fixed8 => 2,
            Kernel::Fixed16 => 3,
            Kernel::Generic => 4,
        }
    }

    /// Human-readable name (matches the obs counter suffix).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Memcpy => "memcpy",
            Kernel::Fixed4 => "fixed4",
            Kernel::Fixed8 => "fixed8",
            Kernel::Fixed16 => "fixed16",
            Kernel::Generic => "generic",
        }
    }
}

/// Number of distinct [`Kernel`]s (size of the byte tallies).
const KERNELS: usize = 5;

/// One strided-copy operation of a compiled plan, relative to the element
/// base address. Ops appear in pack order; their packed lengths sum to the
/// type's size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanOp {
    /// A single contiguous run of `len` bytes at memory offset `mem`.
    Contig {
        /// Byte offset from the element base.
        mem: isize,
        /// Run length in bytes.
        len: usize,
    },
    /// `count` blocks of `block` bytes, block `i` at `mem + i * stride`.
    Strided {
        /// Byte offset of block 0 from the element base.
        mem: isize,
        /// Distance between consecutive block starts, in bytes.
        stride: isize,
        /// Bytes per block.
        block: usize,
        /// Number of blocks.
        count: usize,
        /// Copy kernel selected for the block length.
        kernel: Kernel,
    },
    /// `rows` repetitions of a strided block array — the doubly-nested
    /// loop shape of the NAS/MILC/WRF face exchanges.
    Nest2 {
        /// Byte offset of row 0, block 0 from the element base.
        mem: isize,
        /// Distance between consecutive rows, in bytes.
        row_stride: isize,
        /// Number of rows.
        rows: usize,
        /// Distance between consecutive blocks within a row, in bytes.
        col_stride: isize,
        /// Blocks per row.
        cols: usize,
        /// Bytes per block.
        block: usize,
        /// Copy kernel selected for the block length.
        kernel: Kernel,
    },
}

impl PlanOp {
    /// Packed bytes this op produces.
    pub fn packed_len(&self) -> usize {
        match *self {
            PlanOp::Contig { len, .. } => len,
            PlanOp::Strided { block, count, .. } => block * count,
            PlanOp::Nest2 {
                rows, cols, block, ..
            } => rows * cols * block,
        }
    }

    /// The copy kernel this op executes with.
    pub fn kernel(&self) -> Kernel {
        match *self {
            PlanOp::Contig { .. } => Kernel::Memcpy,
            PlanOp::Strided { kernel, .. } | PlanOp::Nest2 { kernel, .. } => kernel,
        }
    }
}

/// A compiled pack plan: the canonical op list for one element, plus the
/// placement facts needed to execute over `count` consecutive elements.
///
/// Byte-for-byte, a plan's output is identical to the interpreted engine's
/// (asserted by the workspace property tests); only the loop structure and
/// copy kernels differ.
#[derive(Debug)]
pub struct PackPlan {
    ops: Vec<PlanOp>,
    /// `prefix[i]` = packed bytes preceding op `i` within one element.
    prefix: Vec<usize>,
    /// Packed bytes per element.
    size: usize,
    /// Element-to-element spacing in memory.
    extent: usize,
}

impl PackPlan {
    /// Compile a plan from a merged block list (see
    /// [`crate::Committed::blocks`]): coalesce adjacent runs, recognize
    /// 1-D and 2-D strided groups, and select copy kernels.
    pub fn compile(blocks: &[(isize, usize)], size: usize, extent: usize) -> Self {
        let _sp = mpicd_obs::span!("dt.plan_compile", "datatype", size);
        // Pass 0: re-coalesce defensively (inputs from `Committed::new` are
        // already merged; raw callers may not be).
        let mut runs: Vec<(isize, usize)> = Vec::with_capacity(blocks.len());
        for &(off, len) in blocks {
            if len == 0 {
                continue;
            }
            match runs.last_mut() {
                Some((lo, ll)) if *lo + *ll as isize == off => *ll += len,
                _ => runs.push((off, len)),
            }
        }

        // Pass 1: group equal-length, constant-stride run sequences into
        // `Strided` ops; everything else stays `Contig`.
        let mut ops: Vec<PlanOp> = Vec::new();
        let mut i = 0usize;
        while i < runs.len() {
            let (mem, block) = runs[i];
            let mut n = 1usize;
            if i + 1 < runs.len() && runs[i + 1].1 == block {
                let stride = runs[i + 1].0 - mem;
                while i + n < runs.len()
                    && runs[i + n].1 == block
                    && runs[i + n].0 - runs[i + n - 1].0 == stride
                {
                    n += 1;
                }
                if n >= 2 {
                    ops.push(PlanOp::Strided {
                        mem,
                        stride,
                        block,
                        count: n,
                        kernel: Kernel::for_block(block),
                    });
                    i += n;
                    continue;
                }
            }
            ops.push(PlanOp::Contig { mem, len: block });
            i += n;
        }

        // Pass 2: fold repeated identical `Strided` ops at a constant row
        // stride into `Nest2` — the doubly-nested loop of a face exchange.
        let mut folded: Vec<PlanOp> = Vec::new();
        let mut i = 0usize;
        while i < ops.len() {
            if let PlanOp::Strided {
                mem,
                stride,
                block,
                count,
                kernel,
            } = ops[i]
            {
                let same = |op: &PlanOp| {
                    matches!(*op, PlanOp::Strided { stride: s, block: b, count: c, .. }
                        if s == stride && b == block && c == count)
                };
                let mut rows = 1usize;
                if i + 1 < ops.len() && same(&ops[i + 1]) {
                    let row_stride = strided_mem(&ops[i + 1]) - mem;
                    while i + rows < ops.len()
                        && same(&ops[i + rows])
                        && strided_mem(&ops[i + rows]) - strided_mem(&ops[i + rows - 1])
                            == row_stride
                    {
                        rows += 1;
                    }
                    if rows >= 2 {
                        folded.push(PlanOp::Nest2 {
                            mem,
                            row_stride,
                            rows,
                            col_stride: stride,
                            cols: count,
                            block,
                            kernel,
                        });
                        i += rows;
                        continue;
                    }
                }
            }
            folded.push(ops[i].clone());
            i += 1;
        }

        let mut prefix = Vec::with_capacity(folded.len());
        let mut acc = 0usize;
        for op in &folded {
            prefix.push(acc);
            acc += op.packed_len();
        }
        debug_assert_eq!(acc, size, "plan covers exactly the packed size");
        Self {
            ops: folded,
            prefix,
            size,
            extent,
        }
    }

    /// The canonical op list for one element, in pack order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Number of ops per element (the interpreted engine executes
    /// [`crate::Committed::block_count`] runs instead).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Packed bytes per element.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Produce packed bytes `[packed_off, packed_off + dst.len())` of the
    /// stream for `count` elements based at `base`; returns bytes written.
    ///
    /// # Safety
    /// `base` must be valid for reads over every typemap block of all
    /// `count` elements.
    pub unsafe fn pack_segment(
        &self,
        base: *const u8,
        count: usize,
        packed_off: usize,
        dst: &mut [u8],
    ) -> usize {
        self.run::<true>(
            base as *mut u8,
            count,
            packed_off,
            dst.as_mut_ptr(),
            dst.len(),
        )
    }

    /// Consume packed bytes `[packed_off, packed_off + src.len())`,
    /// scattering them into `count` elements based at `base`.
    ///
    /// # Safety
    /// `base` must be valid for writes over every typemap block of all
    /// `count` elements.
    pub unsafe fn unpack_segment(
        &self,
        base: *mut u8,
        count: usize,
        packed_off: usize,
        src: &[u8],
    ) -> usize {
        self.run::<false>(base, count, packed_off, src.as_ptr() as *mut u8, src.len())
    }

    /// Shared resumable executor. `PACK` selects copy direction
    /// (memory → buffer or buffer → memory); the buffer is never read when
    /// packing nor written when unpacking.
    unsafe fn run<const PACK: bool>(
        &self,
        base: *mut u8,
        count: usize,
        packed_off: usize,
        mut buf: *mut u8,
        buf_len: usize,
    ) -> usize {
        if self.size == 0 || count == 0 {
            return 0;
        }
        let total = self.size * count;
        if packed_off >= total {
            return 0;
        }
        let goal = buf_len.min(total - packed_off);
        let mut remaining = goal;
        let mut tally = [0u64; KERNELS];

        let mut elem = packed_off / self.size;
        let mut within = packed_off % self.size;
        // Locate the entry op once; the walk is sequential afterwards.
        let mut oi = match self.prefix.binary_search(&within) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        while remaining > 0 && elem < count {
            let elem_base = base.add(elem * self.extent);
            while remaining > 0 && oi < self.ops.len() {
                let skip = within - self.prefix[oi];
                let op = &self.ops[oi];
                let n = exec_op::<PACK>(op, elem_base, skip, buf, remaining, &mut tally);
                buf = buf.add(n);
                remaining -= n;
                within += n;
                if within == self.prefix[oi] + op.packed_len() {
                    oi += 1;
                }
            }
            if oi == self.ops.len() {
                elem += 1;
                within = 0;
                oi = 0;
            }
        }
        flush_tally(&tally);
        goal - remaining
    }
}

/// `mem` of a `Strided` op (helper for the `Nest2` fold).
fn strided_mem(op: &PlanOp) -> isize {
    match *op {
        PlanOp::Strided { mem, .. } => mem,
        _ => unreachable!("caller matched Strided"),
    }
}

/// Direction-parametric byte copy between memory and the packed buffer.
#[inline(always)]
unsafe fn copy<const PACK: bool>(mem: *mut u8, buf: *mut u8, n: usize) {
    if PACK {
        std::ptr::copy_nonoverlapping(mem as *const u8, buf, n);
    } else {
        std::ptr::copy_nonoverlapping(buf as *const u8, mem, n);
    }
}

/// Fixed-block strided copy: the specialized kernel. With `N` a compile
/// time constant the body is a single `N`-byte load/store per block.
#[inline(always)]
unsafe fn strided_fixed<const N: usize, const PACK: bool>(
    mut mem: *mut u8,
    stride: isize,
    blocks: usize,
    mut buf: *mut u8,
) {
    for _ in 0..blocks {
        copy::<PACK>(mem, buf, N);
        mem = mem.offset(stride);
        buf = buf.add(N);
    }
}

/// Variable-block strided copy: the generic fallback kernel.
#[inline(always)]
unsafe fn strided_generic<const PACK: bool>(
    mut mem: *mut u8,
    stride: isize,
    block: usize,
    blocks: usize,
    mut buf: *mut u8,
) {
    for _ in 0..blocks {
        copy::<PACK>(mem, buf, block);
        mem = mem.offset(stride);
        buf = buf.add(block);
    }
}

/// Execute (part of) one strided block array: skip `skip` packed bytes in,
/// move at most `want` bytes, return bytes moved. Partial head/tail blocks
/// go through the generic copy; whole blocks through the selected kernel.
// Hot-path kernel dispatch: the flat argument list keeps the call free
// of a params-struct build in the per-op loop.
#[allow(clippy::too_many_arguments)]
unsafe fn strided_part<const PACK: bool>(
    mem0: *mut u8,
    stride: isize,
    block: usize,
    count: usize,
    kernel: Kernel,
    skip: usize,
    want: usize,
    mut buf: *mut u8,
    tally: &mut [u64; KERNELS],
) -> usize {
    let avail = block * count - skip;
    let want = want.min(avail);
    let mut done = 0usize;
    let mut bi = skip / block;
    let brem = skip % block;
    // Head: finish a partially consumed block.
    if brem != 0 {
        let n = (block - brem).min(want);
        copy::<PACK>(mem0.offset(bi as isize * stride + brem as isize), buf, n);
        tally[Kernel::Generic.index()] += n as u64;
        done += n;
        buf = buf.add(n);
        if brem + n == block {
            bi += 1;
        }
    }
    // Body: whole blocks through the specialized kernel.
    let full = (want - done) / block;
    if full > 0 {
        let mem = mem0.offset(bi as isize * stride);
        match kernel {
            Kernel::Fixed4 => strided_fixed::<4, PACK>(mem, stride, full, buf),
            Kernel::Fixed8 => strided_fixed::<8, PACK>(mem, stride, full, buf),
            Kernel::Fixed16 => strided_fixed::<16, PACK>(mem, stride, full, buf),
            _ => strided_generic::<PACK>(mem, stride, block, full, buf),
        }
        tally[kernel.index()] += (full * block) as u64;
        done += full * block;
        buf = buf.add(full * block);
        bi += full;
    }
    // Tail: start of the next block.
    if done < want {
        let n = want - done;
        copy::<PACK>(mem0.offset(bi as isize * stride), buf, n);
        tally[Kernel::Generic.index()] += n as u64;
        done += n;
    }
    done
}

/// Execute (part of) one op at `skip` packed bytes in; returns bytes moved
/// (`> 0` whenever `want > 0` and the op has bytes past `skip`).
unsafe fn exec_op<const PACK: bool>(
    op: &PlanOp,
    elem_base: *mut u8,
    skip: usize,
    buf: *mut u8,
    want: usize,
    tally: &mut [u64; KERNELS],
) -> usize {
    match *op {
        PlanOp::Contig { mem, len } => {
            let n = (len - skip).min(want);
            copy::<PACK>(elem_base.offset(mem + skip as isize), buf, n);
            tally[Kernel::Memcpy.index()] += n as u64;
            n
        }
        PlanOp::Strided {
            mem,
            stride,
            block,
            count,
            kernel,
        } => strided_part::<PACK>(
            elem_base.offset(mem),
            stride,
            block,
            count,
            kernel,
            skip,
            want,
            buf,
            tally,
        ),
        PlanOp::Nest2 {
            mem,
            row_stride,
            rows,
            col_stride,
            cols,
            block,
            kernel,
        } => {
            let row_len = cols * block;
            let mut row = skip / row_len;
            let mut rskip = skip % row_len;
            let mut done = 0usize;
            while done < want && row < rows {
                let m = elem_base.offset(mem + row as isize * row_stride);
                done += strided_part::<PACK>(
                    m,
                    col_stride,
                    block,
                    cols,
                    kernel,
                    rskip,
                    want - done,
                    buf.add(done),
                    tally,
                );
                rskip = 0;
                row += 1;
            }
            done
        }
    }
}

// ---- observability ---------------------------------------------------------

/// Cached `Arc<Counter>` handles so the hot path pays one relaxed atomic
/// add per kernel per segment, not a registry lookup.
struct PlanCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    kernel_bytes: [Arc<Counter>; KERNELS],
}

fn counters() -> &'static PlanCounters {
    static C: OnceLock<PlanCounters> = OnceLock::new();
    C.get_or_init(|| {
        let r = mpicd_obs::global();
        PlanCounters {
            hits: r.counter("plan.cache.hits"),
            misses: r.counter("plan.cache.misses"),
            kernel_bytes: [
                r.counter("plan.kernel.memcpy_bytes"),
                r.counter("plan.kernel.fixed4_bytes"),
                r.counter("plan.kernel.fixed8_bytes"),
                r.counter("plan.kernel.fixed16_bytes"),
                r.counter("plan.kernel.generic_bytes"),
            ],
        }
    })
}

/// Add a segment's per-kernel byte tallies to the global counters.
fn flush_tally(tally: &[u64; KERNELS]) {
    let c = counters();
    for (k, &bytes) in tally.iter().enumerate() {
        if bytes != 0 {
            c.kernel_bytes[k].add(bytes);
        }
    }
}

// ---- process-wide plan cache -----------------------------------------------

/// Runtime knobs, read once from the environment.
struct PlanConfig {
    /// `MPICD_PLAN` != "0": compile plans at `commit()` at all.
    enabled: bool,
    /// `MPICD_PLAN_CACHE` != "0": share compiled plans across commits.
    cache: bool,
    /// `MPICD_PLAN_CACHE_CAP`: max cached plans (insertions stop beyond it).
    cache_cap: usize,
}

fn config() -> &'static PlanConfig {
    static CFG: OnceLock<PlanConfig> = OnceLock::new();
    CFG.get_or_init(|| {
        let off = |var: &str| std::env::var(var).is_ok_and(|v| v == "0");
        PlanConfig {
            enabled: !off("MPICD_PLAN"),
            cache: !off("MPICD_PLAN_CACHE"),
            cache_cap: std::env::var("MPICD_PLAN_CACHE_CAP")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1024),
        }
    })
}

/// Whether `commit()` compiles plans in this process (`MPICD_PLAN=0`
/// turns the compiler off and every commit runs the interpreted engine).
pub fn planning_enabled() -> bool {
    config().enabled
}

fn cache() -> &'static Mutex<HashMap<StructuralKey, Arc<PackPlan>>> {
    static CACHE: OnceLock<Mutex<HashMap<StructuralKey, Arc<PackPlan>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of plans currently in the process-wide registry.
pub fn cache_len() -> usize {
    cache().lock().len()
}

/// Fetch the compiled plan for `t`, compiling and caching on first sight.
///
/// `blocks`/`size`/`extent` are the already-flattened facts from
/// [`crate::Committed`] (so a cache miss does not re-walk the tree). Two
/// structurally equivalent types — same type map, extent and lower bound,
/// regardless of which constructors described them — share one plan.
pub fn lookup_or_compile(
    t: &Datatype,
    blocks: &[(isize, usize)],
    size: usize,
    extent: usize,
) -> Arc<PackPlan> {
    if !config().cache {
        counters().misses.inc();
        return Arc::new(PackPlan::compile(blocks, size, extent));
    }
    let key = structural_key(t);
    if let Some(plan) = cache().lock().get(&key) {
        counters().hits.inc();
        return Arc::clone(plan);
    }
    counters().misses.inc();
    let plan = Arc::new(PackPlan::compile(blocks, size, extent));
    let mut map = cache().lock();
    if map.len() < config().cache_cap {
        map.insert(key, Arc::clone(&plan));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::Primitive;

    fn plan_of(t: &Datatype) -> PackPlan {
        let c = crate::Committed::new(t).unwrap();
        PackPlan::compile(c.blocks(), c.size(), c.extent())
    }

    #[test]
    fn contiguous_compiles_to_one_memcpy_op() {
        let t = Datatype::contiguous(64, Datatype::Predefined(Primitive::Int32));
        let p = plan_of(&t);
        assert_eq!(p.ops(), &[PlanOp::Contig { mem: 0, len: 256 }]);
    }

    #[test]
    fn vector_compiles_to_one_strided_op() {
        // 16 blocks of 2 doubles, stride 4 doubles.
        let t = Datatype::vector(16, 2, 4, Datatype::Predefined(Primitive::Double));
        let p = plan_of(&t);
        assert_eq!(
            p.ops(),
            &[PlanOp::Strided {
                mem: 0,
                stride: 32,
                block: 16,
                count: 16,
                kernel: Kernel::Fixed16,
            }]
        );
    }

    #[test]
    fn nested_hvector_compiles_to_nest2() {
        // rows of strided doubles, repeated at a row stride — 2-D nest.
        let inner = Datatype::hvector(8, 1, 16, Datatype::Predefined(Primitive::Double));
        let t = Datatype::hvector(4, 1, 256, inner);
        let p = plan_of(&t);
        assert_eq!(
            p.ops(),
            &[PlanOp::Nest2 {
                mem: 0,
                row_stride: 256,
                rows: 4,
                col_stride: 16,
                cols: 8,
                block: 8,
                kernel: Kernel::Fixed8,
            }]
        );
    }

    #[test]
    fn irregular_indexed_falls_back_to_contig_ops() {
        let t = Datatype::hindexed(
            vec![(1, 0), (2, 16), (1, 100)],
            Datatype::Predefined(Primitive::Int32),
        );
        let p = plan_of(&t);
        assert_eq!(p.op_count(), 3);
        assert_eq!(p.size(), 16);
    }

    #[test]
    fn plan_pack_matches_interpreted_pack() {
        let t = Datatype::structure(vec![
            (3, 0, Datatype::Predefined(Primitive::Int32)),
            (1, 16, Datatype::Predefined(Primitive::Double)),
        ]);
        let c = crate::Committed::new_interpreted(&t).unwrap();
        let p = plan_of(&t);
        let src: Vec<u8> = (0..240).map(|i| i as u8).collect();
        let reference = c.pack_slice(&src, 10).unwrap();
        let mut out = vec![0u8; reference.len()];
        let n = unsafe { p.pack_segment(src.as_ptr(), 10, 0, &mut out) };
        assert_eq!(n, out.len());
        assert_eq!(out, reference);
    }

    #[test]
    fn resumable_at_every_offset() {
        // A shape that exercises Contig, Strided and partial blocks.
        let t = Datatype::structure(vec![
            (
                1,
                0,
                Datatype::vector(5, 1, 3, Datatype::Predefined(Primitive::Int32)),
            ),
            (3, 64, Datatype::Predefined(Primitive::Double)),
        ]);
        let c = crate::Committed::new_interpreted(&t).unwrap();
        let p = plan_of(&t);
        let count = 3;
        let span = c.required_span(count);
        let src: Vec<u8> = (0..span).map(|i| (i % 253) as u8).collect();
        let full = c.pack_slice(&src, count).unwrap();
        for cut in 0..full.len() {
            let mut out = vec![0u8; full.len()];
            unsafe {
                p.pack_segment(src.as_ptr(), count, cut, &mut out[cut..]);
                p.pack_segment(src.as_ptr(), count, 0, &mut out[..cut]);
            }
            assert_eq!(out, full, "cut={cut}");
        }
    }

    #[test]
    fn cache_hits_on_equivalent_types() {
        // contiguous(4, int) and vector(2,2,2, int) share a type map.
        let a = Datatype::contiguous(4, Datatype::Predefined(Primitive::Int32));
        let b = Datatype::vector(2, 2, 2, Datatype::Predefined(Primitive::Int32));
        let ca = crate::Committed::new(&a).unwrap();
        let before = mpicd_obs::global().snapshot().counter("plan.cache.hits");
        let pa = lookup_or_compile(&a, ca.blocks(), ca.size(), ca.extent());
        let pb = lookup_or_compile(&b, ca.blocks(), ca.size(), ca.extent());
        let after = mpicd_obs::global().snapshot().counter("plan.cache.hits");
        assert!(Arc::ptr_eq(&pa, &pb), "equivalent types share one plan");
        assert!(after > before, "second lookup hit the cache");
    }
}
