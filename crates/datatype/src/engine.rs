//! Stateful pack/unpack adapters over a [`Committed`] type.
//!
//! These own everything a pipelined transport needs to pull packed
//! fragments on demand (or scatter incoming fragments), mirroring how Open
//! MPI's convertor object carries a datatype, a base pointer, and a count
//! through a fragmented send. The higher `mpicd` layer plugs them directly
//! into the fabric's generic-datatype path.

// Audited unsafe: serial pack engine pointer walks; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::committed::Committed;
use std::sync::Arc;

/// A resumable packer: produces arbitrary byte ranges of the packed stream
/// of `count` elements at `base`.
pub struct DatatypePacker {
    committed: Arc<Committed>,
    base: *const u8,
    count: usize,
}

// SAFETY: the creator guarantees (via `new`'s contract) that the buffer is
// valid and immutable for the adapter's lifetime, on whichever thread uses it.
unsafe impl Send for DatatypePacker {}

// SAFETY: `pack_at` only reads — from the committed plan (immutable) and the
// source buffer (immutable per `new`'s contract) — so concurrent calls from
// the fabric's parallel fragment pipeline are safe.
unsafe impl Sync for DatatypePacker {}

impl DatatypePacker {
    /// Create a packer over `count` elements based at `base`.
    ///
    /// # Safety
    /// `base` must remain valid for reads over every typemap block of all
    /// `count` elements for the packer's entire lifetime.
    pub unsafe fn new(committed: Arc<Committed>, base: *const u8, count: usize) -> Self {
        Self {
            committed,
            base,
            count,
        }
    }

    /// Total packed size in bytes.
    pub fn packed_size(&self) -> usize {
        self.committed.size() * self.count
    }

    /// Produce packed bytes starting at `offset`; returns bytes written.
    pub fn pack(&mut self, offset: usize, dst: &mut [u8]) -> usize {
        self.pack_at(offset, dst)
    }

    /// [`Self::pack`] through a shared reference. Packing is stateless per
    /// call (the committed plan addresses any offset directly), so disjoint
    /// fragments may be produced concurrently — this is what lets the
    /// fabric's parallel pipeline drive a typed send from several threads.
    pub fn pack_at(&self, offset: usize, dst: &mut [u8]) -> usize {
        // SAFETY: `new`'s contract.
        unsafe {
            self.committed
                .pack_segment(self.base, self.count, offset, dst)
        }
    }
}

/// A resumable unpacker: scatters arbitrary byte ranges of an incoming
/// packed stream into `count` elements at `base`.
pub struct DatatypeUnpacker {
    committed: Arc<Committed>,
    base: *mut u8,
    count: usize,
}

// SAFETY: see `DatatypePacker`.
unsafe impl Send for DatatypeUnpacker {}

// SAFETY: `unpack_at` writes only the typemap blocks addressed by the byte
// range it is handed; the fabric's parallel pipeline guarantees concurrent
// calls receive disjoint stream ranges, which map to disjoint memory.
unsafe impl Sync for DatatypeUnpacker {}

impl DatatypeUnpacker {
    /// Create an unpacker over `count` elements based at `base`.
    ///
    /// # Safety
    /// `base` must remain valid for writes over every typemap block of all
    /// `count` elements for the unpacker's entire lifetime, with no other
    /// access in between.
    pub unsafe fn new(committed: Arc<Committed>, base: *mut u8, count: usize) -> Self {
        Self {
            committed,
            base,
            count,
        }
    }

    /// Total packed size in bytes.
    pub fn packed_size(&self) -> usize {
        self.committed.size() * self.count
    }

    /// Consume packed bytes whose first byte is stream offset `offset`.
    pub fn unpack(&mut self, offset: usize, src: &[u8]) -> usize {
        self.unpack_at(offset, src)
    }

    /// [`Self::unpack`] through a shared reference, for concurrent
    /// scattering of *disjoint* stream ranges (disjoint packed offsets map
    /// to disjoint typemap blocks in memory).
    pub fn unpack_at(&self, offset: usize, src: &[u8]) -> usize {
        // SAFETY: `new`'s contract plus range disjointness (see `Sync`).
        unsafe {
            self.committed
                .unpack_segment(self.base, self.count, offset, src)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::Primitive;
    use crate::typ::Datatype;

    fn struct_simple() -> Arc<Committed> {
        Arc::new(
            Datatype::structure(vec![
                (3, 0, Datatype::Predefined(Primitive::Int32)),
                (1, 16, Datatype::Predefined(Primitive::Double)),
            ])
            .commit()
            .unwrap(),
        )
    }

    #[test]
    fn packer_unpacker_pipeline() {
        let c = struct_simple();
        let src: Vec<u8> = (0..120).map(|i| i as u8).collect(); // 5 elements
        let mut dst = vec![0u8; 120];
        let mut packer = unsafe { DatatypePacker::new(Arc::clone(&c), src.as_ptr(), 5) };
        let mut unpacker = unsafe { DatatypeUnpacker::new(Arc::clone(&c), dst.as_mut_ptr(), 5) };
        assert_eq!(packer.packed_size(), 100);

        // Simulate a fragmented wire with 17-byte fragments.
        let mut off = 0;
        let mut frag = [0u8; 17];
        loop {
            let n = packer.pack(off, &mut frag);
            if n == 0 {
                break;
            }
            assert_eq!(unpacker.unpack(off, &frag[..n]), n);
            off += n;
        }
        assert_eq!(off, 100);

        // Compare data bytes (the 12..16 gap per element is unspecified).
        for e in 0..5 {
            let b = e * 24;
            assert_eq!(&dst[b..b + 12], &src[b..b + 12]);
            assert_eq!(&dst[b + 16..b + 24], &src[b + 16..b + 24]);
        }
    }

    #[test]
    fn adapters_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<DatatypePacker>();
        assert_send::<DatatypeUnpacker>();
    }
}
