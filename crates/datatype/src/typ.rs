//! Derived datatype constructors and layout rules (MPI 4.1 §5.1).
//!
//! A [`Datatype`] is a tree whose leaves are [`Primitive`] types and whose
//! inner nodes are the standard MPI type constructors. Each type defines:
//!
//! * a **type map** — the ordered sequence of `(primitive, displacement)`
//!   pairs describing which bytes of memory participate, in pack order;
//! * a **size** — the number of data bytes (sum of primitive sizes);
//! * an **extent** — the span from lower to upper bound, including the
//!   struct alignment epsilon, used to place consecutive elements.

use crate::error::{DatatypeError, DatatypeResult};
use crate::primitive::Primitive;
use std::sync::Arc;

/// A (derived) MPI datatype.
#[derive(Debug, Clone)]
pub enum Datatype {
    /// A predefined type.
    Predefined(Primitive),
    /// `MPI_Type_contiguous`: `count` consecutive elements of `child`.
    Contiguous {
        /// Number of consecutive elements.
        count: usize,
        /// Element type.
        child: Arc<Datatype>,
    },
    /// `MPI_Type_vector`: `count` blocks of `blocklength` children, with a
    /// stride of `stride` *child extents* between block starts.
    Vector {
        /// Number of blocks.
        count: usize,
        /// Elements per block.
        blocklength: usize,
        /// Block-start spacing, in child extents.
        stride: isize,
        /// Element type.
        child: Arc<Datatype>,
    },
    /// `MPI_Type_create_hvector`: like `Vector` but the stride is in bytes.
    Hvector {
        /// Number of blocks.
        count: usize,
        /// Elements per block.
        blocklength: usize,
        /// Block-start spacing, in bytes.
        stride_bytes: isize,
        /// Element type.
        child: Arc<Datatype>,
    },
    /// `MPI_Type_indexed`: blocks of `(blocklength, displacement)` where the
    /// displacement is in child extents.
    Indexed {
        /// `(blocklength, displacement-in-child-extents)` per block.
        blocks: Vec<(usize, isize)>,
        /// Element type.
        child: Arc<Datatype>,
    },
    /// `MPI_Type_create_hindexed`: displacements in bytes.
    Hindexed {
        /// `(blocklength, byte displacement)` per block.
        blocks: Vec<(usize, isize)>,
        /// Element type.
        child: Arc<Datatype>,
    },
    /// `MPI_Type_create_struct`: fields of `(blocklength, byte displacement,
    /// field type)`.
    Struct {
        /// `(blocklength, byte displacement, field type)` per field.
        fields: Vec<(usize, isize, Arc<Datatype>)>,
    },
    /// `MPI_Type_create_resized`: override lower bound and extent.
    Resized {
        /// Overridden lower bound, in bytes.
        lb: isize,
        /// Overridden extent, in bytes.
        extent: usize,
        /// The underlying type.
        child: Arc<Datatype>,
    },
}

impl Datatype {
    // ---- constructors ----------------------------------------------------

    /// A predefined type.
    pub fn predefined(p: Primitive) -> Self {
        Self::Predefined(p)
    }

    /// `MPI_Type_contiguous`.
    pub fn contiguous(count: usize, child: Datatype) -> Self {
        Self::Contiguous {
            count,
            child: Arc::new(child),
        }
    }

    /// `MPI_Type_vector` (stride in elements of `child`).
    pub fn vector(count: usize, blocklength: usize, stride: isize, child: Datatype) -> Self {
        Self::Vector {
            count,
            blocklength,
            stride,
            child: Arc::new(child),
        }
    }

    /// `MPI_Type_create_hvector` (stride in bytes).
    pub fn hvector(count: usize, blocklength: usize, stride_bytes: isize, child: Datatype) -> Self {
        Self::Hvector {
            count,
            blocklength,
            stride_bytes,
            child: Arc::new(child),
        }
    }

    /// `MPI_Type_indexed` (displacements in elements of `child`).
    pub fn indexed(blocks: Vec<(usize, isize)>, child: Datatype) -> Self {
        Self::Indexed {
            blocks,
            child: Arc::new(child),
        }
    }

    /// `MPI_Type_create_hindexed` (displacements in bytes).
    pub fn hindexed(blocks: Vec<(usize, isize)>, child: Datatype) -> Self {
        Self::Hindexed {
            blocks,
            child: Arc::new(child),
        }
    }

    /// `MPI_Type_create_indexed_block` (uniform block length, displacements
    /// in elements of `child`).
    pub fn indexed_block(blocklength: usize, displs: Vec<isize>, child: Datatype) -> Self {
        Self::Indexed {
            blocks: displs.into_iter().map(|d| (blocklength, d)).collect(),
            child: Arc::new(child),
        }
    }

    /// `MPI_Type_create_struct`.
    pub fn structure(fields: Vec<(usize, isize, Datatype)>) -> Self {
        Self::Struct {
            fields: fields
                .into_iter()
                .map(|(bl, d, t)| (bl, d, Arc::new(t)))
                .collect(),
        }
    }

    /// `MPI_Type_create_resized`.
    pub fn resized(lb: isize, extent: usize, child: Datatype) -> Self {
        Self::Resized {
            lb,
            extent,
            child: Arc::new(child),
        }
    }

    // ---- layout queries ---------------------------------------------------

    /// Number of data bytes (`MPI_Type_size`).
    pub fn size(&self) -> usize {
        match self {
            Self::Predefined(p) => p.size(),
            Self::Contiguous { count, child } => count * child.size(),
            Self::Vector {
                count,
                blocklength,
                child,
                ..
            }
            | Self::Hvector {
                count,
                blocklength,
                child,
                ..
            } => count * blocklength * child.size(),
            Self::Indexed { blocks, child } | Self::Hindexed { blocks, child } => {
                blocks.iter().map(|(bl, _)| bl * child.size()).sum()
            }
            Self::Struct { fields } => fields.iter().map(|(bl, _, t)| bl * t.size()).sum(),
            Self::Resized { child, .. } => child.size(),
        }
    }

    /// Maximum alignment of any constituent primitive (the struct epsilon).
    pub fn alignment(&self) -> usize {
        match self {
            Self::Predefined(p) => p.alignment(),
            Self::Contiguous { child, .. }
            | Self::Vector { child, .. }
            | Self::Hvector { child, .. }
            | Self::Indexed { child, .. }
            | Self::Hindexed { child, .. }
            | Self::Resized { child, .. } => child.alignment(),
            Self::Struct { fields } => fields
                .iter()
                .map(|(_, _, t)| t.alignment())
                .max()
                .unwrap_or(1),
        }
    }

    /// `(lb, ub)` — lower and upper bound in bytes, before resizing.
    ///
    /// For `Struct`, the upper bound is padded to the type's alignment (the
    /// MPI "epsilon"), matching what a C compiler does for the
    /// corresponding struct — this is what makes `struct-simple` have
    /// extent 24 with a trailing gap-free layout of 20 data bytes.
    pub fn bounds(&self) -> (isize, isize) {
        match self {
            Self::Predefined(p) => (0, p.size() as isize),
            Self::Contiguous { count, child } => {
                let (lb, _) = child.bounds();
                let ext = child.extent() as isize;
                if *count == 0 {
                    (0, 0)
                } else {
                    (lb, lb + ext * *count as isize)
                }
            }
            Self::Vector {
                count,
                blocklength,
                stride,
                child,
            } => span_blocks(
                (0..*count).map(|i| (*blocklength, *stride * i as isize)),
                child,
                child.extent() as isize,
            ),
            Self::Hvector {
                count,
                blocklength,
                stride_bytes,
                child,
            } => span_blocks_bytes(
                (0..*count).map(|i| (*blocklength, *stride_bytes * i as isize)),
                child,
            ),
            Self::Indexed { blocks, child } => {
                span_blocks(blocks.iter().copied(), child, child.extent() as isize)
            }
            Self::Hindexed { blocks, child } => span_blocks_bytes(blocks.iter().copied(), child),
            Self::Struct { fields } => {
                let mut lb = isize::MAX;
                let mut ub = isize::MIN;
                for (bl, displ, t) in fields {
                    if *bl == 0 {
                        continue;
                    }
                    let (clb, _) = t.bounds();
                    let ext = t.extent() as isize;
                    lb = lb.min(displ + clb);
                    ub = ub.max(displ + clb + ext * *bl as isize);
                }
                if lb == isize::MAX {
                    return (0, 0);
                }
                // Alignment epsilon.
                let align = self.alignment() as isize;
                let span = ub - lb;
                let padded = (span + align - 1) / align * align;
                (lb, lb + padded)
            }
            Self::Resized { lb, extent, .. } => (*lb, *lb + *extent as isize),
        }
    }

    /// `MPI_Type_get_extent`'s extent: `ub - lb`.
    pub fn extent(&self) -> usize {
        let (lb, ub) = self.bounds();
        (ub - lb) as usize
    }

    /// Lower bound in bytes.
    pub fn lb(&self) -> isize {
        self.bounds().0
    }

    /// Walk the type map in pack order, emitting `(byte offset, byte len)`
    /// contiguous runs of primitives (not yet merged).
    pub fn walk(&self, base: isize, f: &mut impl FnMut(isize, usize)) {
        match self {
            Self::Predefined(p) => f(base, p.size()),
            Self::Contiguous { count, child } => {
                let ext = child.extent() as isize;
                for i in 0..*count {
                    child.walk(base + ext * i as isize, f);
                }
            }
            Self::Vector {
                count,
                blocklength,
                stride,
                child,
            } => {
                let ext = child.extent() as isize;
                for i in 0..*count {
                    let start = base + *stride * i as isize * ext;
                    for j in 0..*blocklength {
                        child.walk(start + ext * j as isize, f);
                    }
                }
            }
            Self::Hvector {
                count,
                blocklength,
                stride_bytes,
                child,
            } => {
                let ext = child.extent() as isize;
                for i in 0..*count {
                    let start = base + *stride_bytes * i as isize;
                    for j in 0..*blocklength {
                        child.walk(start + ext * j as isize, f);
                    }
                }
            }
            Self::Indexed { blocks, child } => {
                let ext = child.extent() as isize;
                for (bl, displ) in blocks {
                    let start = base + *displ * ext;
                    for j in 0..*bl {
                        child.walk(start + ext * j as isize, f);
                    }
                }
            }
            Self::Hindexed { blocks, child } => {
                let ext = child.extent() as isize;
                for (bl, displ) in blocks {
                    let start = base + *displ;
                    for j in 0..*bl {
                        child.walk(start + ext * j as isize, f);
                    }
                }
            }
            Self::Struct { fields } => {
                for (bl, displ, t) in fields {
                    let ext = t.extent() as isize;
                    for j in 0..*bl {
                        t.walk(base + displ + ext * j as isize, f);
                    }
                }
            }
            Self::Resized { child, .. } => child.walk(base, f),
        }
    }

    /// Walk the type map at *described-block* granularity: one emitted run
    /// per `(primitive, blocklength)` entry of the constructors — the
    /// resolution at which a generalized convertor (Open MPI) interprets a
    /// committed type. Contrast with [`Self::walk`], which emits one run
    /// per primitive.
    pub fn walk_blocks(&self, base: isize, f: &mut impl FnMut(isize, usize)) {
        // A leaf primitive child lets a blocklength collapse into one run.
        fn leaf_size(t: &Datatype) -> Option<usize> {
            match t {
                Datatype::Predefined(p) => Some(p.size()),
                // A resize only collapses when it is dense (lb 0, extent ==
                // size): padding between elements spaces a blocklength run
                // at the child extent, so it must be walked, not collapsed.
                Datatype::Resized { child, .. } => {
                    let sz = leaf_size(child)?;
                    (t.lb() == 0 && t.extent() == sz).then_some(sz)
                }
                _ => None,
            }
        }
        match self {
            Self::Predefined(p) => f(base, p.size()),
            Self::Contiguous { count, child } => {
                if let Some(sz) = leaf_size(child) {
                    if *count > 0 {
                        f(base, count * sz);
                    }
                    return;
                }
                let ext = child.extent() as isize;
                for i in 0..*count {
                    child.walk_blocks(base + ext * i as isize, f);
                }
            }
            Self::Vector {
                count,
                blocklength,
                stride,
                child,
            } => {
                let ext = child.extent() as isize;
                for i in 0..*count {
                    let start = base + *stride * i as isize * ext;
                    if let Some(sz) = leaf_size(child) {
                        if *blocklength > 0 {
                            f(start, blocklength * sz);
                        }
                    } else {
                        for j in 0..*blocklength {
                            child.walk_blocks(start + ext * j as isize, f);
                        }
                    }
                }
            }
            Self::Hvector {
                count,
                blocklength,
                stride_bytes,
                child,
            } => {
                let ext = child.extent() as isize;
                for i in 0..*count {
                    let start = base + *stride_bytes * i as isize;
                    if let Some(sz) = leaf_size(child) {
                        if *blocklength > 0 {
                            f(start, blocklength * sz);
                        }
                    } else {
                        for j in 0..*blocklength {
                            child.walk_blocks(start + ext * j as isize, f);
                        }
                    }
                }
            }
            Self::Indexed { blocks, child } => {
                let ext = child.extent() as isize;
                for (bl, displ) in blocks {
                    let start = base + *displ * ext;
                    if let Some(sz) = leaf_size(child) {
                        if *bl > 0 {
                            f(start, bl * sz);
                        }
                    } else {
                        for j in 0..*bl {
                            child.walk_blocks(start + ext * j as isize, f);
                        }
                    }
                }
            }
            Self::Hindexed { blocks, child } => {
                let ext = child.extent() as isize;
                for (bl, displ) in blocks {
                    let start = base + *displ;
                    if let Some(sz) = leaf_size(child) {
                        if *bl > 0 {
                            f(start, bl * sz);
                        }
                    } else {
                        for j in 0..*bl {
                            child.walk_blocks(start + ext * j as isize, f);
                        }
                    }
                }
            }
            Self::Struct { fields } => {
                for (bl, displ, t) in fields {
                    let start = base + displ;
                    if let Some(sz) = leaf_size(t) {
                        if *bl > 0 {
                            f(start, bl * sz);
                        }
                    } else {
                        let ext = t.extent() as isize;
                        for j in 0..*bl {
                            t.walk_blocks(start + ext * j as isize, f);
                        }
                    }
                }
            }
            Self::Resized { child, .. } => child.walk_blocks(base, f),
        }
    }

    /// Commit the type: flatten, merge adjacent runs, and compile a
    /// strided-kernel pack plan (see [`crate::Committed`] and
    /// [`mod@crate::plan`]). This is what `MPI_Type_commit` maps to.
    ///
    /// ```
    /// use mpicd_datatype::Datatype;
    ///
    /// // A 4×2 column slice of an 8-wide matrix of i32s.
    /// let column = Datatype::vector(4, 2, 8, Datatype::of::<i32>());
    /// let committed = column.commit()?;
    /// assert_eq!(committed.size(), 32);    // packed bytes per element
    /// assert_eq!(committed.extent(), 104); // memory span per element
    ///
    /// // Pack one element out of a matrix of 26 ints (104 bytes).
    /// let matrix: Vec<i32> = (0..26).collect();
    /// let bytes: Vec<u8> = matrix.iter().flat_map(|v| v.to_ne_bytes()).collect();
    /// let packed = committed.pack_slice(&bytes, 1)?;
    /// assert_eq!(&packed[..8], &bytes[..8]);    // row 0: ints 0, 1
    /// assert_eq!(&packed[8..16], &bytes[32..40]); // row 1: ints 8, 9
    /// # Ok::<(), mpicd_datatype::DatatypeError>(())
    /// ```
    pub fn commit(&self) -> DatatypeResult<crate::Committed> {
        let _sp = mpicd_obs::span!("dt.commit", "datatype", self.size());
        crate::Committed::new(self)
    }

    /// Commit without block merging — the generalized-convertor view that
    /// models Open MPI's engine (see [`crate::Committed::new_convertor`]).
    pub fn commit_convertor(&self) -> DatatypeResult<crate::Committed> {
        let _sp = mpicd_obs::span!("dt.commit_convertor", "datatype", self.size());
        crate::Committed::new_convertor(self)
    }

    /// Commit with merging but without pack-plan compilation — the
    /// interpreted engine (see [`crate::Committed::new_interpreted`]),
    /// kept for the interpreted-vs-compiled ablation and equivalence tests.
    pub fn commit_interpreted(&self) -> DatatypeResult<crate::Committed> {
        let _sp = mpicd_obs::span!("dt.commit_interpreted", "datatype", self.size());
        crate::Committed::new_interpreted(self)
    }

    /// Helper: the predefined type for a Rust scalar.
    pub fn of<T: crate::primitive::Scalar>() -> Self {
        Self::Predefined(T::PRIMITIVE)
    }
}

/// Span of element-indexed blocks (displacement unit = `unit` bytes).
fn span_blocks(
    blocks: impl Iterator<Item = (usize, isize)>,
    child: &Datatype,
    unit: isize,
) -> (isize, isize) {
    let ext = child.extent() as isize;
    let (clb, _) = child.bounds();
    let mut lb = isize::MAX;
    let mut ub = isize::MIN;
    for (bl, displ) in blocks {
        if bl == 0 {
            continue;
        }
        let start = displ * unit;
        lb = lb.min(start + clb);
        ub = ub.max(start + clb + ext * bl as isize);
    }
    if lb == isize::MAX {
        (0, 0)
    } else {
        (lb, ub)
    }
}

/// Span of byte-indexed blocks.
fn span_blocks_bytes(
    blocks: impl Iterator<Item = (usize, isize)>,
    child: &Datatype,
) -> (isize, isize) {
    let ext = child.extent() as isize;
    let (clb, _) = child.bounds();
    let mut lb = isize::MAX;
    let mut ub = isize::MIN;
    for (bl, displ) in blocks {
        if bl == 0 {
            continue;
        }
        lb = lb.min(displ + clb);
        ub = ub.max(displ + clb + ext * bl as isize);
    }
    if lb == isize::MAX {
        (0, 0)
    } else {
        (lb, ub)
    }
}

/// Reject constructors whose arguments cannot describe a type.
pub fn validate_vector(count: usize, blocklength: usize, stride: isize) -> DatatypeResult<()> {
    if blocklength > 0 && count > 1 && stride.unsigned_abs() < blocklength {
        return Err(DatatypeError::InvalidArgument(
            "vector stride smaller than blocklength would overlap blocks",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int() -> Datatype {
        Datatype::of::<i32>()
    }
    fn dbl() -> Datatype {
        Datatype::of::<f64>()
    }

    #[test]
    fn predefined_layout() {
        assert_eq!(int().size(), 4);
        assert_eq!(int().extent(), 4);
        assert_eq!(int().lb(), 0);
    }

    #[test]
    fn contiguous_layout() {
        let t = Datatype::contiguous(5, int());
        assert_eq!(t.size(), 20);
        assert_eq!(t.extent(), 20);
    }

    #[test]
    fn vector_layout() {
        // 3 blocks of 2 ints, stride 4 ints: |xx..|xx..|xx|
        let t = Datatype::vector(3, 2, 4, int());
        assert_eq!(t.size(), 24);
        assert_eq!(t.extent(), (2 * 4 + 2) * 4); // last block start 8 elems in, +2 elems
    }

    #[test]
    fn struct_simple_matches_paper_listing7() {
        // struct { i32 a, b, c; f64 d; } — repr(C): gap at bytes 12..16.
        let t = Datatype::structure(vec![(3, 0, int()), (1, 16, dbl())]);
        assert_eq!(t.size(), 20, "20 data bytes");
        assert_eq!(t.extent(), 24, "extent includes the gap + epsilon");
    }

    #[test]
    fn struct_simple_no_gap_matches_paper_listing8() {
        // struct { i32 a, b; f64 c; } — contiguous 16 bytes.
        let t = Datatype::structure(vec![(2, 0, int()), (1, 8, dbl())]);
        assert_eq!(t.size(), 16);
        assert_eq!(t.extent(), 16);
    }

    #[test]
    fn struct_epsilon_padding() {
        // One i32 then one f64 at byte 8 → span 16, already aligned.
        // One f64 then one i32 at byte 8 → span 12, padded to 16.
        let t = Datatype::structure(vec![(1, 0, dbl()), (1, 8, int())]);
        assert_eq!(t.size(), 12);
        assert_eq!(t.extent(), 16, "epsilon pads to f64 alignment");
    }

    #[test]
    fn indexed_layout_with_negative_displacement() {
        let t = Datatype::indexed(vec![(1, -2), (2, 3)], int());
        let (lb, ub) = t.bounds();
        assert_eq!(lb, -8);
        assert_eq!(ub, 20);
        assert_eq!(t.size(), 12);
    }

    #[test]
    fn resized_overrides_extent() {
        let t = Datatype::resized(0, 32, Datatype::contiguous(3, int()));
        assert_eq!(t.extent(), 32);
        assert_eq!(t.size(), 12);
    }

    #[test]
    fn walk_emits_pack_order() {
        let t = Datatype::structure(vec![(3, 0, int()), (1, 16, dbl())]);
        let mut runs = Vec::new();
        t.walk(0, &mut |off, len| runs.push((off, len)));
        assert_eq!(runs, vec![(0, 4), (4, 4), (8, 4), (16, 8)]);
    }

    #[test]
    fn hvector_strides_in_bytes() {
        let t = Datatype::hvector(2, 1, 100, int());
        let mut runs = Vec::new();
        t.walk(0, &mut |off, len| runs.push((off, len)));
        assert_eq!(runs, vec![(0, 4), (100, 4)]);
        assert_eq!(t.extent(), 104);
    }

    #[test]
    fn nested_vector_of_struct() {
        let elem = Datatype::structure(vec![(3, 0, int()), (1, 16, dbl())]);
        let t = Datatype::vector(2, 1, 2, elem);
        // Two struct elements, stride 2 extents (48 bytes) apart.
        let mut runs = Vec::new();
        t.walk(0, &mut |off, len| runs.push((off, len)));
        assert_eq!(
            runs,
            vec![
                (0, 4),
                (4, 4),
                (8, 4),
                (16, 8),
                (48, 4),
                (52, 4),
                (56, 4),
                (64, 8)
            ]
        );
    }

    #[test]
    fn zero_count_types_are_empty() {
        let t = Datatype::contiguous(0, int());
        assert_eq!(t.size(), 0);
        assert_eq!(t.extent(), 0);
    }

    #[test]
    fn validate_vector_rejects_overlap() {
        assert!(validate_vector(4, 3, 2).is_err());
        assert!(validate_vector(4, 3, 3).is_ok());
        assert!(validate_vector(1, 3, 0).is_ok());
    }
}
