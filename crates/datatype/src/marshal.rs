//! Datatype marshalling: serialize a datatype *description* so it can be
//! shipped to another process and reconstructed — the capability studied
//! by Kimpe, Goodell and Ross (EuroMPI'10) and cited by the paper as the
//! mirror image of its own proposal (datatypes *from* memory regions vs.
//! regions *from* datatypes).
//!
//! The format is a compact recursive binary encoding; roundtrips preserve
//! the constructor tree exactly (not just the type map).

use crate::error::{DatatypeError, DatatypeResult};
use crate::primitive::Primitive;
use crate::typ::Datatype;
use mpicd_obs::causal::{CausalContext, CONTEXT_BYTES};

const TAG_PREDEFINED: u8 = 0;
const TAG_CONTIGUOUS: u8 = 1;
const TAG_VECTOR: u8 = 2;
const TAG_HVECTOR: u8 = 3;
const TAG_INDEXED: u8 = 4;
const TAG_HINDEXED: u8 = 5;
const TAG_STRUCT: u8 = 6;
const TAG_RESIZED: u8 = 7;

fn prim_code(p: Primitive) -> u8 {
    match p {
        Primitive::Byte => 0,
        Primitive::Int16 => 1,
        Primitive::Int32 => 2,
        Primitive::Int64 => 3,
        Primitive::Float => 4,
        Primitive::Double => 5,
    }
}

fn prim_from(c: u8) -> Option<Primitive> {
    Some(match c {
        0 => Primitive::Byte,
        1 => Primitive::Int16,
        2 => Primitive::Int32,
        3 => Primitive::Int64,
        4 => Primitive::Float,
        5 => Primitive::Double,
        _ => return None,
    })
}

/// Serialize a datatype description.
pub fn marshal(t: &Datatype) -> Vec<u8> {
    let _sp = mpicd_obs::span!("dt.marshal", "datatype");
    let mut out = Vec::new();
    encode(t, &mut out);
    out
}

/// Leading byte of a context-framed marshalled datatype. Constructor tags
/// occupy 0..=7, so a framed buffer can never be confused with the plain
/// [`marshal`] encoding.
pub const CONTEXT_MAGIC: u8 = 0xC5;

/// Serialize a datatype description together with the sender's causal
/// context (flight id + Lamport clock + origin rank).
///
/// This is the cross-process "transfer header": a receiver that unmarshals
/// the description also learns which transfer shipped it and the sender's
/// logical clock at post time, so receive-side flight events can record
/// their causal parent. Costs [`CONTEXT_BYTES`] + 1 bytes over [`marshal`].
pub fn marshal_with_context(t: &Datatype, ctx: CausalContext) -> Vec<u8> {
    let _sp = mpicd_obs::span!("dt.marshal", "datatype");
    let mut out = Vec::with_capacity(1 + CONTEXT_BYTES);
    out.push(CONTEXT_MAGIC);
    out.extend_from_slice(&ctx.encode());
    encode(t, &mut out);
    out
}

/// Reconstruct a datatype description plus the causal context framed by
/// [`marshal_with_context`].
///
/// A plain [`marshal`] buffer (no frame) is accepted and yields the
/// default (empty) context, so readers interoperate with senders that do
/// not stamp causal headers. A signature frame ([`SIG_MAGIC`]) is
/// accepted and skipped; use [`unmarshal_with_header`] to read it.
pub fn unmarshal_with_context(bytes: &[u8]) -> DatatypeResult<(Datatype, CausalContext)> {
    let (t, ctx, _sig) = unmarshal_with_header(bytes)?;
    Ok((t, ctx))
}

/// Leading byte of a structural-signature frame: [`SIG_MAGIC`] followed by
/// the sender's 64-bit structural signature
/// ([`crate::equivalence::signature64`]) in little-endian order. Like
/// [`CONTEXT_MAGIC`], the value sits outside the constructor-tag range
/// 0..=7 so framed and plain buffers are unambiguous.
pub const SIG_MAGIC: u8 = 0xC6;

/// Serialize the full transfer header for a marshalled send: causal
/// context frame (`0xC5`), structural signature frame (`0xC6`), then the
/// datatype description.
///
/// A zero `sig` means "unchecked" (the raw-byte sentinel) and suppresses
/// the signature frame. The receive side recovers all three parts with
/// [`unmarshal_with_header`] and hands the signature to the fabric's
/// `MPICD_TYPECHECK` comparison before unpacking any payload.
pub fn marshal_with_header(t: &Datatype, ctx: CausalContext, sig: u64) -> Vec<u8> {
    let _sp = mpicd_obs::span!("dt.marshal", "datatype");
    let mut out = Vec::with_capacity(2 + CONTEXT_BYTES + 8);
    out.push(CONTEXT_MAGIC);
    out.extend_from_slice(&ctx.encode());
    if sig != 0 {
        out.push(SIG_MAGIC);
        out.extend_from_slice(&sig.to_le_bytes());
    }
    encode(t, &mut out);
    out
}

/// Reconstruct a datatype description plus the optional causal-context and
/// structural-signature frames written by [`marshal_with_header`].
///
/// Both frames are optional and ordered (`0xC5` before `0xC6`); absent
/// frames yield the default context and signature `0` ("unchecked"), so
/// plain [`marshal`] buffers and [`marshal_with_context`] buffers decode
/// unchanged.
pub fn unmarshal_with_header(bytes: &[u8]) -> DatatypeResult<(Datatype, CausalContext, u64)> {
    let mut rest = bytes;
    let mut ctx = CausalContext::default();
    if rest.first() == Some(&CONTEXT_MAGIC) {
        ctx = CausalContext::decode(&rest[1..])
            .ok_or(DatatypeError::InvalidArgument("truncated causal context"))?;
        rest = &rest[1 + CONTEXT_BYTES..];
    }
    let mut sig = 0u64;
    if rest.first() == Some(&SIG_MAGIC) {
        if rest.len() < 1 + 8 {
            return Err(DatatypeError::InvalidArgument("truncated signature frame"));
        }
        sig = u64::from_le_bytes(rest[1..9].try_into().unwrap());
        rest = &rest[9..];
    }
    Ok((unmarshal(rest)?, ctx, sig))
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode(t: &Datatype, out: &mut Vec<u8>) {
    match t {
        Datatype::Predefined(p) => {
            out.push(TAG_PREDEFINED);
            out.push(prim_code(*p));
        }
        Datatype::Contiguous { count, child } => {
            out.push(TAG_CONTIGUOUS);
            put_u64(out, *count as u64);
            encode(child, out);
        }
        Datatype::Vector {
            count,
            blocklength,
            stride,
            child,
        } => {
            out.push(TAG_VECTOR);
            put_u64(out, *count as u64);
            put_u64(out, *blocklength as u64);
            put_i64(out, *stride as i64);
            encode(child, out);
        }
        Datatype::Hvector {
            count,
            blocklength,
            stride_bytes,
            child,
        } => {
            out.push(TAG_HVECTOR);
            put_u64(out, *count as u64);
            put_u64(out, *blocklength as u64);
            put_i64(out, *stride_bytes as i64);
            encode(child, out);
        }
        Datatype::Indexed { blocks, child } | Datatype::Hindexed { blocks, child } => {
            out.push(if matches!(t, Datatype::Indexed { .. }) {
                TAG_INDEXED
            } else {
                TAG_HINDEXED
            });
            put_u64(out, blocks.len() as u64);
            for (bl, d) in blocks {
                put_u64(out, *bl as u64);
                put_i64(out, *d as i64);
            }
            encode(child, out);
        }
        Datatype::Struct { fields } => {
            out.push(TAG_STRUCT);
            put_u64(out, fields.len() as u64);
            for (bl, d, ft) in fields {
                put_u64(out, *bl as u64);
                put_i64(out, *d as i64);
                encode(ft, out);
            }
        }
        Datatype::Resized { lb, extent, child } => {
            out.push(TAG_RESIZED);
            put_i64(out, *lb as i64);
            put_u64(out, *extent as u64);
            encode(child, out);
        }
    }
}

/// Reconstruct a datatype description.
pub fn unmarshal(bytes: &[u8]) -> DatatypeResult<Datatype> {
    let _sp = mpicd_obs::span!("dt.unmarshal", "datatype", bytes.len());
    let mut pos = 0usize;
    let t = decode(bytes, &mut pos, 0)?;
    if pos != bytes.len() {
        return Err(DatatypeError::InvalidArgument(
            "trailing bytes after marshalled datatype",
        ));
    }
    Ok(t)
}

const MAX_DEPTH: usize = 64;

struct Reader;

impl Reader {
    fn u8(bytes: &[u8], pos: &mut usize) -> DatatypeResult<u8> {
        let b = *bytes
            .get(*pos)
            .ok_or(DatatypeError::InvalidArgument("truncated datatype"))?;
        *pos += 1;
        Ok(b)
    }

    fn u64(bytes: &[u8], pos: &mut usize) -> DatatypeResult<u64> {
        if *pos + 8 > bytes.len() {
            return Err(DatatypeError::InvalidArgument("truncated datatype"));
        }
        let v = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().unwrap());
        *pos += 8;
        Ok(v)
    }

    fn i64(bytes: &[u8], pos: &mut usize) -> DatatypeResult<i64> {
        Ok(Self::u64(bytes, pos)? as i64)
    }
}

fn decode(bytes: &[u8], pos: &mut usize, depth: usize) -> DatatypeResult<Datatype> {
    if depth > MAX_DEPTH {
        return Err(DatatypeError::InvalidArgument(
            "marshalled datatype nests too deeply",
        ));
    }
    let tag = Reader::u8(bytes, pos)?;
    Ok(match tag {
        TAG_PREDEFINED => {
            let code = Reader::u8(bytes, pos)?;
            Datatype::Predefined(
                prim_from(code).ok_or(DatatypeError::InvalidArgument("unknown primitive code"))?,
            )
        }
        TAG_CONTIGUOUS => {
            let count = Reader::u64(bytes, pos)? as usize;
            Datatype::contiguous(count, decode(bytes, pos, depth + 1)?)
        }
        TAG_VECTOR => {
            let count = Reader::u64(bytes, pos)? as usize;
            let bl = Reader::u64(bytes, pos)? as usize;
            let stride = Reader::i64(bytes, pos)? as isize;
            Datatype::vector(count, bl, stride, decode(bytes, pos, depth + 1)?)
        }
        TAG_HVECTOR => {
            let count = Reader::u64(bytes, pos)? as usize;
            let bl = Reader::u64(bytes, pos)? as usize;
            let stride = Reader::i64(bytes, pos)? as isize;
            Datatype::hvector(count, bl, stride, decode(bytes, pos, depth + 1)?)
        }
        TAG_INDEXED | TAG_HINDEXED => {
            let n = Reader::u64(bytes, pos)? as usize;
            if n > bytes.len() {
                return Err(DatatypeError::InvalidArgument("block count exceeds input"));
            }
            let mut blocks = Vec::with_capacity(n);
            for _ in 0..n {
                let bl = Reader::u64(bytes, pos)? as usize;
                let d = Reader::i64(bytes, pos)? as isize;
                blocks.push((bl, d));
            }
            let child = decode(bytes, pos, depth + 1)?;
            if tag == TAG_INDEXED {
                Datatype::indexed(blocks, child)
            } else {
                Datatype::hindexed(blocks, child)
            }
        }
        TAG_STRUCT => {
            let n = Reader::u64(bytes, pos)? as usize;
            if n > bytes.len() {
                return Err(DatatypeError::InvalidArgument("field count exceeds input"));
            }
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let bl = Reader::u64(bytes, pos)? as usize;
                let d = Reader::i64(bytes, pos)? as isize;
                let ft = decode(bytes, pos, depth + 1)?;
                fields.push((bl, d, ft));
            }
            Datatype::structure(fields)
        }
        TAG_RESIZED => {
            let lb = Reader::i64(bytes, pos)? as isize;
            let extent = Reader::u64(bytes, pos)? as usize;
            Datatype::resized(lb, extent, decode(bytes, pos, depth + 1)?)
        }
        _ => return Err(DatatypeError::InvalidArgument("unknown datatype tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::equivalent;

    fn sample() -> Datatype {
        Datatype::structure(vec![
            (2, 0, Datatype::vector(3, 2, 4, Datatype::of::<i32>())),
            (
                1,
                128,
                Datatype::hindexed(vec![(1, 0), (2, 24)], Datatype::of::<f64>()),
            ),
            (
                1,
                256,
                Datatype::resized(0, 64, Datatype::contiguous(4, Datatype::of::<i16>())),
            ),
        ])
    }

    #[test]
    fn roundtrip_preserves_tree_semantics() {
        let t = sample();
        let bytes = marshal(&t);
        let back = unmarshal(&bytes).unwrap();
        assert!(equivalent(&t, &back));
        assert_eq!(t.size(), back.size());
        assert_eq!(t.extent(), back.extent());
        // Re-marshalling is byte-identical (canonical encoding).
        assert_eq!(marshal(&back), bytes);
    }

    #[test]
    fn committed_output_matches_after_roundtrip() {
        let t = sample();
        let back = unmarshal(&marshal(&t)).unwrap();
        let c1 = t.commit().unwrap();
        let c2 = back.commit().unwrap();
        let src: Vec<u8> = (0..c1.required_span(2)).map(|i| i as u8).collect();
        assert_eq!(
            c1.pack_slice(&src, 2).unwrap(),
            c2.pack_slice(&src, 2).unwrap()
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = marshal(&sample());
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(unmarshal(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        // Pin the *typed* error, not just `is_err()`: extra bytes after a
        // well-formed description must never be silently ignored, on any
        // of the three decode entry points.
        let mut bytes = marshal(&Datatype::of::<i32>());
        bytes.push(0);
        let expect = |r: DatatypeResult<()>| {
            assert!(
                matches!(
                    r,
                    Err(DatatypeError::InvalidArgument(
                        "trailing bytes after marshalled datatype"
                    ))
                ),
                "want the pinned trailing-bytes error, got {r:?}"
            );
        };
        expect(unmarshal(&bytes).map(|_| ()));
        expect(unmarshal_with_context(&bytes).map(|_| ()));
        expect(unmarshal_with_header(&bytes).map(|_| ()));
        // Same for a framed buffer with garbage after the description.
        let mut framed = marshal_with_header(&Datatype::of::<i32>(), CausalContext::default(), 7);
        framed.push(0xAB);
        expect(unmarshal_with_header(&framed).map(|_| ()));
    }

    #[test]
    fn unknown_tag_detected() {
        assert!(unmarshal(&[0xFF]).is_err());
        assert!(unmarshal(&[TAG_PREDEFINED, 99]).is_err());
    }

    #[test]
    fn context_frame_roundtrips() {
        let t = sample();
        let ctx = CausalContext {
            fid: 0xdead_beef,
            lc: 42,
            origin: 3,
        };
        let bytes = marshal_with_context(&t, ctx);
        assert_eq!(bytes[0], CONTEXT_MAGIC);
        assert_eq!(bytes.len(), marshal(&t).len() + 1 + CONTEXT_BYTES);
        let (back, rctx) = unmarshal_with_context(&bytes).unwrap();
        assert!(equivalent(&t, &back));
        assert_eq!(rctx, ctx);
    }

    #[test]
    fn plain_buffer_yields_empty_context() {
        let t = sample();
        let (back, ctx) = unmarshal_with_context(&marshal(&t)).unwrap();
        assert!(equivalent(&t, &back));
        assert_eq!(ctx, CausalContext::default());
        // The magic byte can never collide with a constructor tag.
        assert!(marshal(&t)[0] < CONTEXT_MAGIC);
    }

    #[test]
    fn truncated_context_frame_detected() {
        let bytes = marshal_with_context(&sample(), CausalContext::default());
        for cut in 1..=CONTEXT_BYTES {
            assert!(unmarshal_with_context(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn header_frame_roundtrips() {
        let t = sample();
        let ctx = CausalContext {
            fid: 7,
            lc: 9,
            origin: 1,
        };
        let sig = crate::equivalence::signature64(&t);
        let bytes = marshal_with_header(&t, ctx, sig);
        assert_eq!(bytes[0], CONTEXT_MAGIC);
        assert_eq!(bytes[1 + CONTEXT_BYTES], SIG_MAGIC);
        let (back, rctx, rsig) = unmarshal_with_header(&bytes).unwrap();
        assert!(equivalent(&t, &back));
        assert_eq!(rctx, ctx);
        assert_eq!(rsig, sig);
        // The legacy entry point skips the signature frame.
        let (back2, rctx2) = unmarshal_with_context(&bytes).unwrap();
        assert!(equivalent(&t, &back2));
        assert_eq!(rctx2, ctx);
    }

    #[test]
    fn zero_signature_suppresses_the_frame() {
        let t = sample();
        let bytes = marshal_with_header(&t, CausalContext::default(), 0);
        assert_eq!(bytes.len(), marshal(&t).len() + 1 + CONTEXT_BYTES);
        let (_, _, sig) = unmarshal_with_header(&bytes).unwrap();
        assert_eq!(sig, 0, "absent frame decodes as the unchecked sentinel");
        // Plain and context-framed buffers also yield signature 0.
        let (_, _, sig) = unmarshal_with_header(&marshal(&t)).unwrap();
        assert_eq!(sig, 0);
    }

    #[test]
    fn truncated_signature_frame_detected() {
        let bytes = marshal_with_header(&sample(), CausalContext::default(), 0x1234);
        let frame_end = 1 + CONTEXT_BYTES + 9;
        for cut in 1 + CONTEXT_BYTES..frame_end {
            assert!(unmarshal_with_header(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn depth_bomb_rejected() {
        // 100 nested contiguous(1, …) wrappers exceed MAX_DEPTH.
        let mut bytes = Vec::new();
        for _ in 0..100 {
            bytes.push(TAG_CONTIGUOUS);
            bytes.extend_from_slice(&1u64.to_le_bytes());
        }
        bytes.push(TAG_PREDEFINED);
        bytes.push(0);
        assert!(unmarshal(&bytes).is_err());
    }
}
