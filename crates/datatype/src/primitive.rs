//! Predefined (basic) MPI datatypes.
//!
//! These are the leaves of every type map: fixed-size machine types with a
//! natural alignment. The alignment participates in the MPI extent rule for
//! `MPI_Type_create_struct` (the "alignment epsilon").

// Audited unsafe: primitive memcpy kernels; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

/// A predefined MPI datatype (the usual C correspondents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// `MPI_BYTE` / `MPI_CHAR` / Rust `u8`/`i8`.
    Byte,
    /// `MPI_INT16_T` / Rust `i16`.
    Int16,
    /// `MPI_INT` (`MPI_INT32_T`) / Rust `i32` — the paper's `i32` fields.
    Int32,
    /// `MPI_INT64_T` / Rust `i64`.
    Int64,
    /// `MPI_FLOAT` / Rust `f32`.
    Float,
    /// `MPI_DOUBLE` / Rust `f64` — the paper's `f64` fields.
    Double,
}

impl Primitive {
    /// Size in bytes.
    pub const fn size(self) -> usize {
        match self {
            Self::Byte => 1,
            Self::Int16 => 2,
            Self::Int32 | Self::Float => 4,
            Self::Int64 | Self::Double => 8,
        }
    }

    /// Natural alignment in bytes (equals size for these types on the
    /// paper's x86-64 testbed).
    pub const fn alignment(self) -> usize {
        self.size()
    }

    /// Canonical name, MPI-style.
    pub const fn name(self) -> &'static str {
        match self {
            Self::Byte => "MPI_BYTE",
            Self::Int16 => "MPI_INT16_T",
            Self::Int32 => "MPI_INT",
            Self::Int64 => "MPI_INT64_T",
            Self::Float => "MPI_FLOAT",
            Self::Double => "MPI_DOUBLE",
        }
    }
}

/// Rust scalar types that map directly onto a [`Primitive`].
///
/// # Safety
/// Implementors must be plain-old-data with no padding and with the exact
/// size/alignment of the named primitive.
pub unsafe trait Scalar: Copy + Send + Sync + 'static {
    /// The corresponding predefined MPI datatype.
    const PRIMITIVE: Primitive;
}

macro_rules! impl_scalar {
    ($($t:ty => $p:ident),* $(,)?) => {
        $(
            // SAFETY: these are the exact machine types the primitives name.
            unsafe impl Scalar for $t {
                const PRIMITIVE: Primitive = Primitive::$p;
            }
        )*
    };
}

impl_scalar! {
    u8 => Byte,
    i8 => Byte,
    i16 => Int16,
    i32 => Int32,
    i64 => Int64,
    f32 => Float,
    f64 => Double,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_rust() {
        assert_eq!(Primitive::Int32.size(), std::mem::size_of::<i32>());
        assert_eq!(Primitive::Double.size(), std::mem::size_of::<f64>());
        assert_eq!(Primitive::Byte.size(), 1);
    }

    #[test]
    fn alignment_matches_rust() {
        assert_eq!(Primitive::Double.alignment(), std::mem::align_of::<f64>());
        assert_eq!(Primitive::Int32.alignment(), std::mem::align_of::<i32>());
    }

    #[test]
    fn scalar_mapping() {
        assert_eq!(<i32 as Scalar>::PRIMITIVE, Primitive::Int32);
        assert_eq!(<f64 as Scalar>::PRIMITIVE, Primitive::Double);
        assert_eq!(<u8 as Scalar>::PRIMITIVE, Primitive::Byte);
    }

    #[test]
    fn names_are_mpi_style() {
        assert_eq!(Primitive::Double.name(), "MPI_DOUBLE");
    }
}
