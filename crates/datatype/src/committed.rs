//! Committed (flattened, optimized) datatypes.
//!
//! `MPI_Type_commit` gives implementations a chance to build an optimized
//! internal description. Ours flattens the type tree into a merged list of
//! `(byte offset, byte length)` blocks in pack order, with a packed-offset
//! prefix table that makes the pack engine *resumable*: any byte range of
//! the packed stream can be produced independently, which is what pipelined
//! fragment protocols need.

// Audited unsafe: pack/unpack over caller-described memory; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::error::{DatatypeError, DatatypeResult};
use crate::plan::{self, PackPlan};
use crate::typ::Datatype;
use std::sync::Arc;

/// A committed datatype: flattened block list plus derived layout facts.
#[derive(Debug, Clone)]
pub struct Committed {
    /// Merged `(offset, len)` runs, in pack (type map) order.
    blocks: Vec<(isize, usize)>,
    /// `prefix[i]` = packed bytes preceding block `i` within one element.
    prefix: Vec<usize>,
    /// Packed bytes per element (`MPI_Type_size`).
    size: usize,
    /// Element-to-element spacing (`MPI_Type_get_extent`).
    extent: usize,
    /// Lower bound.
    lb: isize,
    /// Greatest `offset + len` over all blocks (for bounds checking).
    max_end: isize,
    /// Convertor mode: per-block interpretation overhead is modeled by
    /// routing each block through an uninlined dynamic dispatch, the way a
    /// generalized engine walks its description stack.
    convertor: bool,
    /// Compiled pack plan (see [`mod@crate::plan`]); `None` on the
    /// interpreted and convertor paths.
    plan: Option<Arc<PackPlan>>,
    /// Stable 64-bit structural signature ([`crate::equivalence::key64`] of
    /// the type's structural key), computed once at commit time because the
    /// flattened form does not retain the type tree. Never zero.
    sig64: u64,
}

impl Committed {
    /// Flatten and optimize `t`: adjacent typemap runs are merged, then
    /// the block list is compiled into a strided-kernel pack plan (shared
    /// through the process-wide plan registry; see [`mod@crate::plan`]).
    pub fn new(t: &Datatype) -> DatatypeResult<Self> {
        let mut c = Self::build(t, true)?;
        if plan::planning_enabled() && c.size > 0 {
            c.plan = Some(plan::lookup_or_compile(t, &c.blocks, c.size, c.extent));
        }
        Ok(c)
    }

    /// Flatten and optimize `t` like [`Self::new`], but skip pack-plan
    /// compilation: packing runs the interpreted merged-block engine.
    ///
    /// This is the pre-plan behavior, kept as the middle rung of the
    /// interpreted-vs-compiled ablation (`ablation_pack_plan`) and for
    /// byte-identity property tests.
    pub fn new_interpreted(t: &Datatype) -> DatatypeResult<Self> {
        Self::build(t, true)
    }

    /// Flatten `t` the way a generalized convertor sees it: one block per
    /// *described* `(primitive, blocklength)` entry, no cross-entry
    /// merging, and per-block interpretation overhead on the pack path —
    /// unless the type turns out fully contiguous, which every MPI
    /// implementation special-cases.
    ///
    /// This models Open MPI's datatype engine: long described blocks
    /// (e.g. struct-vec's 2048-int array) still move as one memcpy, but
    /// types made of *small* blocks (the gapped `struct-simple`) pay the
    /// engine's per-entry machinery — the paper's Fig 5 slowness ("the
    /// Open MPI type representation is not able to handle efficiently").
    /// Byte-for-byte output is identical to [`Self::new`].
    pub fn new_convertor(t: &Datatype) -> DatatypeResult<Self> {
        let merged = Self::build(t, true)?;
        if merged.is_contiguous() {
            // Dense types collapse to a single memcpy in real engines too.
            return Ok(merged);
        }
        let mut c = Self::build(t, false)?;
        c.convertor = true;
        Ok(c)
    }

    fn build(t: &Datatype, merge: bool) -> DatatypeResult<Self> {
        let mut blocks: Vec<(isize, usize)> = Vec::new();
        let mut push = |off: isize, len: usize| {
            if len == 0 {
                return;
            }
            match blocks.last_mut() {
                // Merge runs that are adjacent in both memory and pack order.
                Some((last_off, last_len)) if merge && *last_off + *last_len as isize == off => {
                    *last_len += len;
                }
                _ => blocks.push((off, len)),
            }
        };
        if merge {
            t.walk(0, &mut push);
        } else {
            t.walk_blocks(0, &mut push);
        }
        let mut prefix = Vec::with_capacity(blocks.len());
        let mut acc = 0usize;
        for (_, len) in &blocks {
            prefix.push(acc);
            acc += len;
        }
        debug_assert_eq!(acc, t.size(), "flattened size matches MPI_Type_size");
        let max_end = blocks
            .iter()
            .map(|(off, len)| off + *len as isize)
            .max()
            .unwrap_or(0);
        Ok(Self {
            blocks,
            prefix,
            size: acc,
            extent: t.extent(),
            lb: t.lb(),
            max_end,
            convertor: false,
            plan: None,
            sig64: crate::equivalence::signature64(t),
        })
    }

    /// The compiled pack plan, when this commit went through the plan
    /// compiler (convertor and interpreted commits have none).
    pub fn plan(&self) -> Option<&Arc<PackPlan>> {
        self.plan.as_ref()
    }

    /// Packed bytes per element.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Element-to-element spacing in memory.
    pub fn extent(&self) -> usize {
        self.extent
    }

    /// Lower bound in bytes.
    pub fn lb(&self) -> isize {
        self.lb
    }

    /// The stable 64-bit structural signature of the committed type (see
    /// [`crate::equivalence::signature64`]). Identical across the plan,
    /// interpreted and convertor commit paths, and across processes, so
    /// the fabric can compare a sender's token against the posted
    /// receive's under `MPICD_TYPECHECK`.
    pub fn signature64(&self) -> u64 {
        self.sig64
    }

    /// Number of merged blocks per element.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The merged blocks per element, in pack order.
    pub fn blocks(&self) -> &[(isize, usize)] {
        &self.blocks
    }

    /// True when the committed type is a single dense run starting at the
    /// base address whose length equals the extent. For such types an
    /// implementation can skip packing entirely and transfer the bytes
    /// directly — the Fig 6 (`struct-simple-no-gap`) fast path.
    pub fn is_contiguous(&self) -> bool {
        self.size == self.extent
            && self.lb == 0
            && (self.blocks.is_empty() || self.blocks == [(0, self.size)])
    }

    /// Bytes of memory a buffer of `count` elements must provide past the
    /// base address for the safe slice API.
    pub fn required_span(&self, count: usize) -> usize {
        if count == 0 || self.size == 0 {
            return 0;
        }
        (count - 1) * self.extent + self.max_end.max(0) as usize
    }

    /// Flattened `(offset, len)` list for `count` consecutive elements,
    /// merging across element boundaries where possible. This is the
    /// iov/memory-region view of a derived datatype (cf. the MPICH iovec
    /// extraction extensions cited by the paper).
    pub fn flatten_count(&self, count: usize) -> Vec<(isize, usize)> {
        let mut out: Vec<(isize, usize)> = Vec::new();
        for elem in 0..count {
            let shift = (elem * self.extent) as isize;
            for (off, len) in &self.blocks {
                let off = off + shift;
                match out.last_mut() {
                    Some((lo, ll)) if *lo + *ll as isize == off => *ll += len,
                    _ => out.push((off, *len)),
                }
            }
        }
        out
    }

    // ---- resumable raw engine ---------------------------------------------

    /// Produce packed bytes `[packed_off, packed_off + dst.len())` of the
    /// packed stream for `count` elements based at `base`.
    ///
    /// Returns the number of bytes written (less than `dst.len()` only when
    /// the stream ends).
    ///
    /// # Safety
    /// `base` must be valid for reads over every typemap block of all
    /// `count` elements.
    pub unsafe fn pack_segment(
        &self,
        base: *const u8,
        count: usize,
        packed_off: usize,
        dst: &mut [u8],
    ) -> usize {
        if let Some(plan) = &self.plan {
            return plan.pack_segment(base, count, packed_off, dst);
        }
        self.segment_op(count, packed_off, dst.len(), |mem_off, seg_off, n| {
            std::ptr::copy_nonoverlapping(base.offset(mem_off), dst.as_mut_ptr().add(seg_off), n);
        })
    }

    /// Consume packed bytes `[packed_off, packed_off + src.len())`,
    /// scattering them into `count` elements based at `base`.
    ///
    /// # Safety
    /// `base` must be valid for writes over every typemap block of all
    /// `count` elements.
    pub unsafe fn unpack_segment(
        &self,
        base: *mut u8,
        count: usize,
        packed_off: usize,
        src: &[u8],
    ) -> usize {
        if let Some(plan) = &self.plan {
            return plan.unpack_segment(base, count, packed_off, src);
        }
        self.segment_op(count, packed_off, src.len(), |mem_off, seg_off, n| {
            std::ptr::copy_nonoverlapping(src.as_ptr().add(seg_off), base.offset(mem_off), n);
        })
    }

    /// Shared walk for pack/unpack: maps a packed-stream range onto memory
    /// offsets, invoking `op(memory_offset, segment_offset, len)` per run.
    /// Uninlined per-block dispatch emulating the description-stack walk +
    /// indirect memcpy call of a generalized convertor.
    #[inline(never)]
    fn convertor_step(op: &mut dyn FnMut(isize, usize, usize), mem: isize, seg: usize, n: usize) {
        op(mem, seg, n);
    }

    fn segment_op(
        &self,
        count: usize,
        packed_off: usize,
        seg_len: usize,
        mut op: impl FnMut(isize, usize, usize),
    ) -> usize {
        if self.size == 0 || count == 0 {
            return 0;
        }
        let total = self.size * count;
        if packed_off >= total {
            return 0;
        }
        let mut elem = packed_off / self.size;
        let mut within = packed_off % self.size;
        // Locate the entry block once; after that the walk is sequential
        // (real convertors keep a position stack for exactly this reason).
        let mut bi = match self.prefix.binary_search(&within) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let mut done = 0usize;
        while elem < count && done < seg_len {
            let skip = within - self.prefix[bi];
            let (off, len) = self.blocks[bi];
            let avail = len - skip;
            let n = avail.min(seg_len - done);
            let mem_off = (elem * self.extent) as isize + off + skip as isize;
            if self.convertor {
                Self::convertor_step(&mut op, mem_off, done, n);
            } else {
                op(mem_off, done, n);
            }
            done += n;
            within += n;
            if n == avail {
                bi += 1;
            }
            if within == self.size {
                elem += 1;
                within = 0;
                bi = 0;
            }
        }
        done
    }

    // ---- safe slice API -----------------------------------------------------

    /// Validate that `count` elements fit inside `region_len` bytes for the
    /// safe APIs (requires a non-negative lower bound).
    pub fn check_bounds(&self, count: usize, region_len: usize) -> DatatypeResult<()> {
        if self.lb < 0 {
            return Err(DatatypeError::NegativeLowerBound { lb: self.lb });
        }
        let span = self.required_span(count);
        if span > region_len {
            return Err(DatatypeError::OutOfBounds {
                offset: self.max_end,
                len: span,
                region: region_len,
            });
        }
        Ok(())
    }

    /// Pack `count` elements from `src` into a fresh buffer.
    pub fn pack_slice(&self, src: &[u8], count: usize) -> DatatypeResult<Vec<u8>> {
        self.check_bounds(count, src.len())?;
        let mut out = vec![0u8; self.size * count];
        // SAFETY: bounds checked above.
        let n = unsafe { self.pack_segment(src.as_ptr(), count, 0, &mut out) };
        debug_assert_eq!(n, out.len());
        Ok(out)
    }

    /// Unpack a packed stream into `count` elements of `dst`.
    pub fn unpack_slice(&self, packed: &[u8], dst: &mut [u8], count: usize) -> DatatypeResult<()> {
        self.check_bounds(count, dst.len())?;
        let needed = self.size * count;
        if packed.len() < needed {
            return Err(DatatypeError::UnpackUnderflow {
                needed,
                available: packed.len(),
            });
        }
        // SAFETY: bounds checked above.
        let n = unsafe { self.unpack_segment(dst.as_mut_ptr(), count, 0, packed) };
        debug_assert_eq!(n, needed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::Primitive;

    fn int() -> Datatype {
        Datatype::Predefined(Primitive::Int32)
    }
    fn dbl() -> Datatype {
        Datatype::Predefined(Primitive::Double)
    }

    /// The paper's struct-simple: three i32s, a 4-byte gap, one f64.
    fn struct_simple() -> Committed {
        Datatype::structure(vec![(3, 0, int()), (1, 16, dbl())])
            .commit()
            .unwrap()
    }

    #[test]
    fn merge_adjacent_runs() {
        let c = struct_simple();
        assert_eq!(c.blocks(), &[(0, 12), (16, 8)]);
        assert_eq!(c.size(), 20);
        assert_eq!(c.extent(), 24);
        assert!(!c.is_contiguous());
    }

    #[test]
    fn no_gap_struct_is_contiguous() {
        let c = Datatype::structure(vec![(2, 0, int()), (1, 8, dbl())])
            .commit()
            .unwrap();
        assert!(c.is_contiguous());
        assert_eq!(c.blocks(), &[(0, 16)]);
    }

    #[test]
    fn contiguous_of_contiguous_merges_to_one_block() {
        let c = Datatype::contiguous(8, Datatype::contiguous(4, int()))
            .commit()
            .unwrap();
        assert_eq!(c.block_count(), 1);
        assert!(c.is_contiguous());
        assert_eq!(c.size(), 128);
    }

    #[test]
    fn pack_unpack_roundtrip_struct_simple() {
        let c = struct_simple();
        // Two elements, 24 bytes each.
        let mut src = vec![0u8; 48];
        for (i, b) in src.iter_mut().enumerate() {
            *b = i as u8;
        }
        let packed = c.pack_slice(&src, 2).unwrap();
        assert_eq!(packed.len(), 40);
        // Element 0: bytes 0..12 and 16..24.
        assert_eq!(&packed[..12], &src[..12]);
        assert_eq!(&packed[12..20], &src[16..24]);
        // Element 1 starts at extent 24.
        assert_eq!(&packed[20..32], &src[24..36]);
        assert_eq!(&packed[32..40], &src[40..48]);

        let mut dst = vec![0xffu8; 48];
        c.unpack_slice(&packed, &mut dst, 2).unwrap();
        // Data bytes equal; gap bytes untouched.
        assert_eq!(&dst[..12], &src[..12]);
        assert_eq!(&dst[16..24], &src[16..24]);
        assert_eq!(&dst[12..16], &[0xff; 4]);
    }

    #[test]
    fn resumable_segments_agree_with_full_pack() {
        let c = struct_simple();
        let src: Vec<u8> = (0..240).map(|i| i as u8).collect(); // 10 elements
        let full = c.pack_slice(&src, 10).unwrap();
        // Re-produce in odd-sized segments.
        for seg in [1usize, 3, 7, 13, 40, 200] {
            let mut acc = Vec::new();
            let mut off = 0;
            loop {
                let mut buf = vec![0u8; seg];
                let n = unsafe { c.pack_segment(src.as_ptr(), 10, off, &mut buf) };
                if n == 0 {
                    break;
                }
                acc.extend_from_slice(&buf[..n]);
                off += n;
            }
            assert_eq!(acc, full, "segment size {seg}");
        }
    }

    #[test]
    fn resumable_unpack_from_arbitrary_offsets() {
        let c = struct_simple();
        let src: Vec<u8> = (0..48).map(|i| i as u8).collect();
        let packed = c.pack_slice(&src, 2).unwrap();
        let mut dst = vec![0u8; 48];
        // Deliver out of order: second half then first half.
        let mid = 23;
        unsafe {
            c.unpack_segment(dst.as_mut_ptr(), 2, mid, &packed[mid..]);
            c.unpack_segment(dst.as_mut_ptr(), 2, 0, &packed[..mid]);
        }
        let mut roundtrip = vec![0u8; 48];
        c.unpack_slice(&packed, &mut roundtrip, 2).unwrap();
        assert_eq!(dst, roundtrip);
    }

    #[test]
    fn bounds_checking_rejects_short_regions() {
        let c = struct_simple();
        let src = vec![0u8; 47]; // one byte short for 2 elements
        assert!(matches!(
            c.pack_slice(&src, 2),
            Err(DatatypeError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn negative_lb_rejected_by_safe_api() {
        let t = Datatype::indexed(vec![(1, -1), (1, 1)], int());
        let c = t.commit().unwrap();
        assert!(matches!(
            c.pack_slice(&[0u8; 64], 1),
            Err(DatatypeError::NegativeLowerBound { .. })
        ));
    }

    #[test]
    fn unpack_underflow_detected() {
        let c = struct_simple();
        let mut dst = vec![0u8; 24];
        assert!(matches!(
            c.unpack_slice(&[0u8; 10], &mut dst, 1),
            Err(DatatypeError::UnpackUnderflow { .. })
        ));
    }

    #[test]
    fn flatten_count_merges_across_elements() {
        // Contiguous ints: N elements flatten to one run.
        let c = Datatype::contiguous(4, int()).commit().unwrap();
        assert_eq!(c.flatten_count(3), vec![(0, 48)]);
        // Gapped struct: element 0's trailing run (16..24) is memory-adjacent
        // to element 1's leading run (24..36), so those merge; the gaps at
        // 12..16 and 36..40 split the rest.
        let s = struct_simple();
        let flat = s.flatten_count(2);
        assert_eq!(flat, vec![(0, 12), (16, 20), (40, 8)]);
    }

    #[test]
    fn required_span_accounts_for_trailing_gap() {
        let c = struct_simple();
        // 2 elements: (2-1)*24 + 24 = 48.
        assert_eq!(c.required_span(2), 48);
        assert_eq!(c.required_span(0), 0);
    }

    #[test]
    fn empty_type_packs_nothing() {
        let c = Datatype::contiguous(0, int()).commit().unwrap();
        assert_eq!(c.pack_slice(&[], 0).unwrap(), Vec::<u8>::new());
        assert_eq!(c.size(), 0);
    }

    #[test]
    fn convertor_commit_same_bytes_described_blocks() {
        let t = Datatype::structure(vec![(3, 0, int()), (1, 16, dbl())]);
        let merged = t.commit().unwrap();
        let convertor = t.commit_convertor().unwrap();
        assert_eq!(merged.block_count(), 2);
        // Described blocks: (3 × int) and (1 × double) — 2 entries here too,
        // but packing runs through the convertor's per-block machinery.
        assert_eq!(convertor.block_count(), 2);
        let src: Vec<u8> = (0..240).map(|i| i as u8).collect();
        assert_eq!(
            merged.pack_slice(&src, 10).unwrap(),
            convertor.pack_slice(&src, 10).unwrap(),
            "identical packed bytes"
        );
    }

    #[test]
    fn convertor_keeps_described_entries_unmerged() {
        // d (at 16) and data (at 24) are memory-adjacent: the optimized
        // commit merges them, the convertor keeps the described entries.
        let t = Datatype::structure(vec![(3, 0, int()), (1, 16, dbl()), (8, 24, int())]);
        assert_eq!(t.commit().unwrap().block_count(), 2);
        let c = t.commit_convertor().unwrap();
        assert_eq!(c.block_count(), 3, "3 described entries");
        assert_eq!(c.blocks()[2], (24, 32), "the int array is ONE block");
    }

    #[test]
    fn convertor_commit_keeps_contiguous_fast_path() {
        let t = Datatype::structure(vec![(2, 0, int()), (1, 8, dbl())]);
        let c = t.commit_convertor().unwrap();
        assert!(c.is_contiguous());
        assert_eq!(c.block_count(), 1);
    }

    #[test]
    fn signature64_agrees_across_commit_paths() {
        let t = Datatype::structure(vec![(3, 0, int()), (1, 16, dbl())]);
        let plan = t.commit().unwrap();
        let interp = t.commit_interpreted().unwrap();
        let conv = t.commit_convertor().unwrap();
        assert_ne!(plan.signature64(), 0);
        assert_eq!(plan.signature64(), interp.signature64());
        assert_eq!(plan.signature64(), conv.signature64());
        assert_eq!(
            plan.signature64(),
            crate::equivalence::signature64(&t),
            "commit stores the tree's digest verbatim"
        );
    }

    #[test]
    fn vector_pack_matches_manual_gather() {
        // 4 blocks of 2 ints with stride 3 → gather pattern.
        let t = Datatype::vector(4, 2, 3, int());
        let c = t.commit().unwrap();
        let ints: Vec<i32> = (0..12).collect();
        let bytes: &[u8] =
            unsafe { std::slice::from_raw_parts(ints.as_ptr() as *const u8, ints.len() * 4) };
        let packed = c.pack_slice(bytes, 1).unwrap();
        let vals: Vec<i32> = packed
            .chunks_exact(4)
            .map(|ch| i32::from_ne_bytes(ch.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![0, 1, 3, 4, 6, 7, 9, 10]);
    }
}
