//! Datatype engine errors.

use std::fmt;

/// Result alias for datatype operations.
pub type DatatypeResult<T> = Result<T, DatatypeError>;

/// Errors raised while constructing or using derived datatypes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatatypeError {
    /// A typemap block reaches outside the supplied memory region.
    OutOfBounds {
        /// Offending byte offset (relative to the base address).
        offset: isize,
        /// Block length in bytes.
        len: usize,
        /// Size of the supplied region.
        region: usize,
    },
    /// The safe API requires a non-negative lower bound (use the raw API
    /// for types with negative displacements).
    NegativeLowerBound {
        /// The type's lower bound.
        lb: isize,
    },
    /// The destination buffer is too small for the packed representation.
    PackOverflow {
        /// Bytes the packed form needs.
        needed: usize,
        /// Bytes the destination offers.
        available: usize,
    },
    /// The source buffer holds fewer packed bytes than the type expects.
    UnpackUnderflow {
        /// Bytes the type expects.
        needed: usize,
        /// Bytes the source provides.
        available: usize,
    },
    /// A constructor was given inconsistent arguments.
    InvalidArgument(&'static str),
}

impl fmt::Display for DatatypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfBounds {
                offset,
                len,
                region,
            } => write!(
                f,
                "typemap block [{offset}, {offset}+{len}) outside region of {region} bytes"
            ),
            Self::NegativeLowerBound { lb } => {
                write!(f, "type has negative lower bound {lb}; use the raw API")
            }
            Self::PackOverflow { needed, available } => {
                write!(f, "pack needs {needed} bytes, destination has {available}")
            }
            Self::UnpackUnderflow { needed, available } => {
                write!(f, "unpack needs {needed} bytes, source has {available}")
            }
            Self::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for DatatypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_numbers() {
        let e = DatatypeError::PackOverflow {
            needed: 10,
            available: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("4"));
    }
}
