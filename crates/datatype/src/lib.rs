#![deny(missing_docs)]
#![deny(unsafe_code)]
//! # mpicd-datatype — an MPI derived-datatype engine
//!
//! This crate implements the *classic* MPI datatype machinery that the
//! paper's custom serialization API is evaluated against: type maps built
//! from predefined types and displacements (MPI 4.1 §5.1), the standard
//! constructors (`contiguous`, `vector`, `hvector`, `indexed`, `hindexed`,
//! `indexed_block`, `struct`, `resized`), extent/lower-bound rules with
//! alignment padding, and a commit step that flattens a type into an
//! optimized block list used by a resumable pack/unpack engine.
//!
//! It plays the role Open MPI's datatype engine (driven through RSMPI)
//! plays in the paper's figures:
//!
//! * For **contiguous** committed types (e.g. `struct-simple-no-gap`,
//!   Listing 8) the engine detects contiguity and the transport can send
//!   the bytes directly — the fast case of Fig 6.
//! * For **gapped** types (e.g. `struct-simple`, Listing 7, with its 4-byte
//!   hole between `c` and `d`) the engine must walk the type map and copy
//!   block by block — the slow case of Fig 5 ("the Open MPI type
//!   representation is not able to handle efficiently").
//!
//! The pack engine is *resumable*: it can produce any byte range of the
//! packed stream on demand (`pack_segment`), which is how real MPI
//! implementations feed pipelined fragments, and how this engine plugs into
//! the fabric's generic-datatype path.

pub mod committed;
pub mod engine;
pub mod equivalence;
pub mod error;
pub mod marshal;
pub mod plan;
pub mod primitive;
pub mod typ;

pub use committed::Committed;
pub use equivalence::{
    compatible, equivalent, key64, signature, signature64, structural_key, type_map, StructuralKey,
};
pub use error::{DatatypeError, DatatypeResult};
pub use marshal::{
    marshal, marshal_with_context, marshal_with_header, unmarshal, unmarshal_with_context,
    unmarshal_with_header,
};
pub use plan::{Kernel, KernelPolicy, PackPlan, PlanOp};
pub use primitive::Primitive;
pub use typ::Datatype;
