//! Modeled wire-time ledger.
//!
//! Wall-clock time on a loopback fabric captures every CPU cost (packing,
//! copying, allocation) but none of the network costs. The ledger records
//! the modeled wire time of every completed message so benchmark harnesses
//! can combine the two:
//!
//! * latency pingpong (strictly alternating): `total = wall + wire`,
//! * windowed bandwidth test (wire overlaps CPU): `total = max(wall, wire) + α`.
//!
//! Times are stored in femtoseconds-free integer nanoseconds×1024 to keep
//! sub-nanosecond model contributions from rounding to zero on small
//! messages while staying on a single atomic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-point scale: ledger units per nanosecond.
const SCALE: f64 = 1024.0;

/// Accumulates modeled wire time across messages.
///
/// Thread-safe; `snapshot`/`delta` let a harness bracket a measurement
/// region without resetting global state.
#[derive(Debug, Default)]
pub struct WireLedger {
    units: AtomicU64,
    messages: AtomicU64,
}

impl WireLedger {
    /// New ledger at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one message's modeled wire time (nanoseconds).
    pub fn add_ns(&self, ns: f64) {
        debug_assert!(ns >= 0.0, "wire time must be non-negative");
        self.units
            .fetch_add((ns * SCALE).round() as u64, Ordering::Relaxed);
        self.messages.fetch_add(1, Ordering::Relaxed);
    }

    /// Total modeled nanoseconds so far.
    pub fn total_ns(&self) -> f64 {
        self.units.load(Ordering::Relaxed) as f64 / SCALE
    }

    /// Number of messages recorded so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Opaque snapshot for later [`Self::delta_ns`].
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            units: self.units.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
        }
    }

    /// Modeled nanoseconds recorded since `snap`.
    pub fn delta_ns(&self, snap: &LedgerSnapshot) -> f64 {
        (self.units.load(Ordering::Relaxed) - snap.units) as f64 / SCALE
    }

    /// Messages recorded since `snap`.
    pub fn delta_messages(&self, snap: &LedgerSnapshot) -> u64 {
        self.messages.load(Ordering::Relaxed) - snap.messages
    }
}

/// A point-in-time view of a [`WireLedger`].
#[derive(Debug, Clone, Copy)]
pub struct LedgerSnapshot {
    units: u64,
    messages: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let l = WireLedger::new();
        l.add_ns(100.0);
        l.add_ns(50.5);
        assert!((l.total_ns() - 150.5).abs() < 0.01);
        assert_eq!(l.messages(), 2);
    }

    #[test]
    fn subnanosecond_contributions_survive() {
        let l = WireLedger::new();
        for _ in 0..1000 {
            l.add_ns(0.25);
        }
        assert!((l.total_ns() - 250.0).abs() < 1.0);
    }

    #[test]
    fn snapshot_delta() {
        let l = WireLedger::new();
        l.add_ns(10.0);
        let snap = l.snapshot();
        l.add_ns(5.0);
        l.add_ns(5.0);
        assert!((l.delta_ns(&snap) - 10.0).abs() < 0.01);
        assert_eq!(l.delta_messages(&snap), 2);
        assert!((l.total_ns() - 20.0).abs() < 0.01);
    }

    #[test]
    fn concurrent_adds() {
        use std::sync::Arc;
        let l = Arc::new(WireLedger::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        l.add_ns(1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!((l.total_ns() - 4000.0).abs() < 0.5);
        assert_eq!(l.messages(), 4000);
    }
}
