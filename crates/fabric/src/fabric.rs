//! The fabric proper: a world of ranks, tag matching with MPI's
//! non-overtaking order, and the eager/rendezvous protocol split.
//!
//! Protocol rules (modeled on UCX over the paper's 100 Gbps testbed):
//!
//! * **Contiguous payloads ≤ rendezvous threshold** go *eager*: the payload
//!   is copied into a bounce buffer at post time (a real memcpy — this is the
//!   extra copy that penalizes manual packing), the send completes
//!   immediately, and the data is delivered when a matching receive arrives.
//! * **Contiguous payloads above the threshold** use *rendezvous*: the send
//!   stays pending until matched, data moves directly from the source buffer
//!   (one copy), and the modeled wire charges an extra handshake round-trip —
//!   the Fig 7 bandwidth dip at 2^15 bytes.
//! * **Iov and Generic payloads** (the custom-datatype path) always use the
//!   pipelined scatter/gather transfer: no bounce copy, no handshake
//!   surcharge, but per-region and per-fragment wire overheads. This matches
//!   the paper's note that the custom path "uses the UCX iovec API
//!   internally" and is unaffected by the eager/rendezvous switch.

// Audited unsafe: transfer execution over posted raw regions; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::clock::WireLedger;
use crate::config::{bounce_pool_cap, MatchConfig, PipelineConfig, TypecheckMode, WireModel};
use crate::error::{FabricError, FabricResult};
use crate::matching::{Envelope, RecvQueue, Selector, SendQueue, Tag};
use crate::payload::{IovEntry, IovEntryMut, RecvDesc, SendDesc};
use crate::pipeline::{self, PipelinePool};
use crate::request::{ReqState, Request};
use crate::stats::{gauge_shift, FabricMetrics, FabricStats, StatsView};
use crate::transfer::{copy_stream, DstSeg, SrcSeg, TransferScratch};
use mpicd_obs::causal;
use mpicd_obs::flight::{self, EventKind, FlightEvent, Method};
use mpicd_obs::sync::{Condvar, Mutex};
use mpicd_obs::telemetry;
use std::sync::{Arc, OnceLock};

/// A pending (unmatched) send sitting in the unexpected queue.
struct PendingSend {
    source: usize,
    tag: Tag,
    total: usize,
    /// Flight-recorder transfer id allocated at post time (0 = off).
    fid: u64,
    /// Sender's Lamport clock at post time — the causal header that travels
    /// with the transfer so the receive side can merge clocks at match.
    lc: u64,
    /// Sender's 64-bit structural type signature (0 = unchecked raw bytes).
    /// Travels with the in-process transfer the way the `0xC6` marshal
    /// frame travels with out-of-band datatype descriptions.
    sig: u64,
    kind: PendKind,
}

enum PendKind {
    /// Eager: payload already gathered into a bounce buffer; the send
    /// request has already completed.
    Eager { data: Vec<u8> },
    /// Rendezvous / pipelined: the descriptor (and thus the source buffers)
    /// stays referenced until a receive matches.
    Deferred { desc: SendDesc, req: Arc<ReqState> },
}

/// A posted receive waiting for a matching send. The selector lives in the
/// matching engine (it is the queue key), not here.
struct PostedRecv {
    desc: RecvDesc,
    req: Arc<ReqState>,
    /// Flight-recorder id of the receive post (0 = off).
    fid: u64,
    /// Structural signature of the datatype the receive was posted with
    /// (0 = unchecked raw bytes).
    sig: u64,
}

/// A send whose deferred request has completed (cancelled) is dead weight
/// in the unexpected queue; the engine tombstones it when scanned past.
fn send_is_dead(p: &PendingSend) -> bool {
    matches!(&p.kind, PendKind::Deferred { req, .. } if req.is_done())
}

/// A posted receive whose request has completed (cancelled) must never
/// match — its buffers may be gone.
fn recv_is_dead(r: &PostedRecv) -> bool {
    r.req.is_done()
}

struct MatchState {
    /// Unexpected sends, one matching engine per destination rank.
    unexpected: Vec<SendQueue<PendingSend>>,
    /// Posted receives, one matching engine per receiving rank.
    posted: Vec<RecvQueue<PostedRecv>>,
    /// Bounce-buffer freelist (eager protocol) to keep allocator noise out
    /// of latency measurements, like UCX's preregistered eager buffers.
    /// Bounded by `MPICD_BOUNCE_POOL_CAP` (default 64 buffers).
    bounce_pool: Vec<Vec<u8>>,
    /// Recycled serial-engine scratch (staging buffer, out-of-order
    /// fragment buffers). Transfers run with the match lock held, so one
    /// set per fabric suffices.
    xfer_scratch: TransferScratch,
}

struct Inner {
    model: WireModel,
    size: usize,
    ledger: WireLedger,
    stats: FabricStats,
    /// Mirror of the traffic counters into the process-global obs registry,
    /// plus the span-fed phase-time counters.
    metrics: FabricMetrics,
    state: Mutex<MatchState>,
    arrivals: Condvar,
    /// Signature-enforcement mode applied at match time (`MPICD_TYPECHECK`
    /// unless the fabric was built with an explicit [`MatchConfig`]).
    typecheck: TypecheckMode,
    /// Parallel fragment pipeline configuration (env knobs unless the
    /// fabric was built with [`Fabric::with_model_and_pipeline`]).
    pipeline_cfg: PipelineConfig,
    /// The worker pool, spawned lazily on the first eligible transfer and
    /// joined when the fabric drops.
    pipeline: OnceLock<PipelinePool>,
}

/// An in-process world of communicating ranks.
///
/// Cloning is cheap (shared handle). Create per-rank [`Endpoint`]s with
/// [`Fabric::endpoint`].
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<Inner>,
}

impl Fabric {
    /// A world of `size` ranks with the default (100 Gbps IB-like) wire model.
    pub fn new(size: usize) -> Self {
        Self::with_model(size, WireModel::default())
    }

    /// A world of `size` ranks with an explicit wire model. The parallel
    /// fragment pipeline follows the `MPICD_PIPELINE*` environment knobs.
    pub fn with_model(size: usize, model: WireModel) -> Self {
        Self::with_model_and_pipeline(size, model, PipelineConfig::from_env())
    }

    /// A world of `size` ranks with an explicit wire model *and* an
    /// explicit pipeline configuration, ignoring the environment knobs.
    /// Benchmarks and tests use this to sweep thread counts;
    /// [`PipelineConfig::serial`] pins every transfer to the serial engine.
    /// The matching engine follows `MPICD_MATCH_BUCKETS`.
    pub fn with_model_and_pipeline(
        size: usize,
        model: WireModel,
        pipeline: PipelineConfig,
    ) -> Self {
        Self::with_config(size, model, pipeline, MatchConfig::from_env())
    }

    /// The fully-explicit constructor: wire model, pipeline, *and* matching
    /// engine configuration. [`MatchConfig::linear`] reproduces the old
    /// single-queue linear-scan matcher (the `ablation_msgrate` baseline).
    pub fn with_config(
        size: usize,
        model: WireModel,
        pipeline: PipelineConfig,
        matching: MatchConfig,
    ) -> Self {
        assert!(size > 0, "fabric needs at least one rank");
        Self {
            inner: Arc::new(Inner {
                model,
                size,
                ledger: WireLedger::new(),
                stats: FabricStats::default(),
                metrics: FabricMetrics::from_global(),
                state: Mutex::new(MatchState {
                    unexpected: (0..size)
                        .map(|_| SendQueue::new(matching.buckets))
                        .collect(),
                    posted: (0..size)
                        .map(|_| RecvQueue::new(matching.buckets))
                        .collect(),
                    bounce_pool: Vec::new(),
                    xfer_scratch: TransferScratch::default(),
                }),
                arrivals: Condvar::new(),
                typecheck: matching.typecheck,
                pipeline_cfg: pipeline,
                pipeline: OnceLock::new(),
            }),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// The wire model in effect.
    pub fn model(&self) -> &WireModel {
        &self.inner.model
    }

    /// The parallel-pipeline configuration in effect.
    pub fn pipeline_config(&self) -> PipelineConfig {
        self.inner.pipeline_cfg
    }

    /// The modeled wire-time ledger.
    pub fn ledger(&self) -> &WireLedger {
        &self.inner.ledger
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> StatsView {
        self.inner.stats.view()
    }

    /// Endpoint for `rank`.
    pub fn endpoint(&self, rank: usize) -> FabricResult<Endpoint> {
        if rank >= self.inner.size {
            return Err(FabricError::InvalidRank {
                rank,
                world: self.inner.size,
            });
        }
        Ok(Endpoint {
            inner: Arc::clone(&self.inner),
            rank,
        })
    }

    /// Endpoints for every rank, in rank order.
    pub fn endpoints(&self) -> Vec<Endpoint> {
        (0..self.inner.size)
            .map(|r| self.endpoint(r).expect("rank in range"))
            .collect()
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Fail any requests still pending so waiters on other threads wake.
        let state = self.state.get_mut();
        for q in &state.unexpected {
            for p in q.iter_live() {
                if let PendKind::Deferred { req, .. } = &p.kind {
                    if !req.is_done() && p.fid != 0 {
                        flight::record(
                            FlightEvent::new(EventKind::Error, p.fid)
                                .aux(FabricError::ShutDown.flight_code()),
                        );
                    }
                    req.complete(Err(FabricError::ShutDown));
                }
            }
        }
        for q in &state.posted {
            for r in q.iter_live() {
                if !r.req.is_done() && r.fid != 0 {
                    flight::record(
                        FlightEvent::new(EventKind::Error, r.fid)
                            .aux(FabricError::ShutDown.flight_code()),
                    );
                }
                r.req.complete(Err(FabricError::ShutDown));
            }
        }
    }
}

/// A single rank's interface to the fabric (UCP endpoint + worker in one).
#[derive(Clone)]
pub struct Endpoint {
    inner: Arc<Inner>,
    rank: usize,
}

impl Endpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// The wire model in effect.
    pub fn model(&self) -> &WireModel {
        &self.inner.model
    }

    /// The fabric's modeled wire-time ledger.
    pub fn ledger(&self) -> &WireLedger {
        &self.inner.ledger
    }

    /// Snapshot of the fabric's traffic counters.
    pub fn stats(&self) -> StatsView {
        self.inner.stats.view()
    }

    /// Post a nonblocking send.
    ///
    /// # Safety
    /// Every memory region referenced by `desc` must stay valid, and must
    /// not be mutated, until the returned request completes. Pack callbacks
    /// must not re-enter the fabric.
    ///
    /// # Example
    ///
    /// A callback-packed stream (the generic-datatype path — the entry
    /// point a committed datatype's pack engine plugs into, fragment by
    /// fragment) received into a contiguous buffer:
    ///
    /// ```
    /// use mpicd_fabric::{Fabric, IovEntryMut, RecvDesc, SendDesc};
    ///
    /// let fabric = Fabric::new(2);
    /// let (a, b) = (fabric.endpoint(0)?, fabric.endpoint(1)?);
    ///
    /// let data: Vec<u8> = (0..=255).collect();
    /// let src = data.clone();
    /// let packer = move |offset: usize, dst: &mut [u8]| {
    ///     let n = dst.len().min(src.len() - offset);
    ///     dst[..n].copy_from_slice(&src[offset..offset + n]);
    ///     Ok(n)
    /// };
    /// // SAFETY: everything the descriptors reference outlives the waits.
    /// let send = unsafe {
    ///     a.post_send(
    ///         SendDesc::Generic {
    ///             packer: Box::new(packer),
    ///             packed_size: data.len(),
    ///             regions: Vec::new(),
    ///             inorder: true,
    ///         },
    ///         1,
    ///         7,
    ///     )?
    /// };
    /// let mut buf = vec![0u8; 256];
    /// // SAFETY: `buf` lives until the wait below.
    /// let recv =
    ///     unsafe { b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)), 0, 7)? };
    /// recv.wait()?;
    /// send.wait()?;
    /// assert_eq!(buf, data);
    /// # Ok::<(), mpicd_fabric::FabricError>(())
    /// ```
    pub unsafe fn post_send(&self, desc: SendDesc, dest: usize, tag: Tag) -> FabricResult<Request> {
        // SAFETY: same contract as post_send_sig; 0 = unchecked raw bytes.
        unsafe { self.post_send_sig(desc, dest, tag, 0) }
    }

    /// [`Self::post_send`] with the sender's 64-bit structural type
    /// signature attached. The signature travels with the pending send
    /// (the in-process analogue of the `0xC6` marshal frame) and is
    /// compared against the posted receive's signature at match time under
    /// `MPICD_TYPECHECK`. `0` means "unchecked" and never mismatches.
    ///
    /// # Safety
    /// Same contract as [`Self::post_send`].
    pub unsafe fn post_send_sig(
        &self,
        desc: SendDesc,
        dest: usize,
        tag: Tag,
        sig: u64,
    ) -> FabricResult<Request> {
        if dest >= self.inner.size {
            return Err(FabricError::InvalidRank {
                rank: dest,
                world: self.inner.size,
            });
        }
        let total = desc.total_bytes();
        // Flight: allocate the send-side transfer id (the canonical id every
        // lifecycle event of this transfer is keyed by), tick this rank's
        // Lamport clock, and log the post. The clock value is the causal
        // header that travels with the transfer.
        let fid = flight::next_id();
        let lc = if fid != 0 {
            causal::tick(self.rank as i32)
        } else {
            0
        };
        if fid != 0 {
            let method = match &desc {
                SendDesc::Contig(_) if self.inner.model.is_rendezvous(total) => Method::Rendezvous,
                SendDesc::Contig(_) => Method::Eager,
                _ => Method::Pipelined,
            };
            flight::record(
                FlightEvent::new(EventKind::PostSend, fid)
                    .ranks(self.rank as i32, dest as i32)
                    .tag(tag)
                    .bytes(total as u64)
                    .method(method)
                    .lc(lc),
            );
        }
        let mut state = self.inner.state.lock();

        // Try to match the earliest eligible posted receive: O(1) through
        // the (source, tag) bucket, merged by post order with the wildcard
        // sideline. Cancelled posts on the way are drained lazily.
        let mut drained = 0;
        let qb = state.posted[dest].counts();
        let hit = state.posted[dest].take_match(self.rank, tag, recv_is_dead, &mut drained);
        self.inner
            .note_queue_shift(qb, state.posted[dest].counts(), false);
        self.inner.note_drained(drained);
        if let Some((recv, wildcard)) = hit {
            self.inner.note_match(wildcard);
            let outcome = self.inner.run_matched_transfer(
                self.rank,
                dest,
                tag,
                SendSide::Direct(desc),
                recv.desc,
                &mut state,
                fid,
                recv.fid,
                lc,
                sig,
                recv.sig,
            );
            recv.req.complete(outcome.clone());
            return Ok(match outcome {
                Ok(env) => Request::ready(env).with_flight(fid),
                // The sender's data went out even if the receiver
                // truncated or rejected the type — same contract as the
                // unexpected-path match sites, so which side arrived first
                // stays unobservable.
                Err(FabricError::Truncated { .. } | FabricError::TypeMismatch { .. }) => {
                    Request::ready(Envelope {
                        source: self.rank,
                        tag,
                        bytes: total,
                    })
                    .with_flight(fid)
                }
                Err(e) => {
                    let st = ReqState::new();
                    st.complete(Err(e));
                    Request::new(st).with_flight(fid)
                }
            });
        }

        // No receive yet: eager-copy small contiguous payloads, defer the rest.
        match desc {
            SendDesc::Contig(entry) if total <= self.inner.model.rndv_threshold => {
                let mut bounce = state.bounce_pool.pop().unwrap_or_default();
                self.inner
                    .metrics
                    .g_bounce_pool
                    .set(state.bounce_pool.len() as u64);
                bounce.clear();
                {
                    // The eager bounce copy — the extra memcpy the custom
                    // datatype path exists to avoid. Counted always; traced
                    // as a span when tracing is on.
                    let _sp = mpicd_obs::trace::span("bounce_copy", "fabric", total as u64);
                    // SAFETY: caller guarantees the region is live (post contract).
                    bounce.extend_from_slice(unsafe { entry.as_slice() });
                }
                self.inner.metrics.copy_bytes.add(total as u64);
                let qb = state.unexpected[dest].counts();
                state.unexpected[dest].push(
                    self.rank,
                    tag,
                    PendingSend {
                        source: self.rank,
                        tag,
                        total,
                        fid,
                        lc,
                        sig,
                        kind: PendKind::Eager { data: bounce },
                    },
                );
                self.inner
                    .note_queue_shift(qb, state.unexpected[dest].counts(), true);
                self.inner.stats.record_unexpected();
                self.inner.metrics.unexpected.inc();
                self.inner.arrivals.notify_all();
                Ok(Request::ready(Envelope {
                    source: self.rank,
                    tag,
                    bytes: total,
                })
                .with_flight(fid))
            }
            desc => {
                let req = ReqState::new();
                let qb = state.unexpected[dest].counts();
                state.unexpected[dest].push(
                    self.rank,
                    tag,
                    PendingSend {
                        source: self.rank,
                        tag,
                        total,
                        fid,
                        lc,
                        sig,
                        kind: PendKind::Deferred {
                            desc,
                            req: Arc::clone(&req),
                        },
                    },
                );
                self.inner
                    .note_queue_shift(qb, state.unexpected[dest].counts(), true);
                self.inner.stats.record_unexpected();
                self.inner.metrics.unexpected.inc();
                self.inner.arrivals.notify_all();
                Ok(Request::new(req).with_flight(fid))
            }
        }
    }

    /// Post a nonblocking receive. `source` may be [`crate::ANY_SOURCE`] and
    /// `tag` may be [`crate::ANY_TAG`].
    ///
    /// # Safety
    /// Every memory region referenced by `desc` must stay valid and
    /// exclusively available to the fabric until the returned request
    /// completes. Unpack callbacks must not re-enter the fabric.
    pub unsafe fn post_recv(&self, desc: RecvDesc, source: i32, tag: Tag) -> FabricResult<Request> {
        // SAFETY: same contract as post_recv_sig; 0 = unchecked raw bytes.
        unsafe { self.post_recv_sig(desc, source, tag, 0) }
    }

    /// [`Self::post_recv`] with the structural signature of the datatype
    /// the receive is posted with. Compared against the matched sender's
    /// signature under `MPICD_TYPECHECK`; `0` means "unchecked".
    ///
    /// # Safety
    /// Same contract as [`Self::post_recv`].
    pub unsafe fn post_recv_sig(
        &self,
        desc: RecvDesc,
        source: i32,
        tag: Tag,
        sig: u64,
    ) -> FabricResult<Request> {
        let sel = Selector::new(source, tag);
        // Flight: the receive post gets its own id; the match event on the
        // send-side id carries this id in `aux`, joining the two timelines.
        let rfid = flight::next_id();
        if rfid != 0 {
            flight::record(
                FlightEvent::new(EventKind::PostRecv, rfid)
                    .ranks(source, self.rank as i32)
                    .tag(tag)
                    .bytes(desc.capacity() as u64)
                    .lc(causal::tick(self.rank as i32)),
            );
        }
        let mut state = self.inner.state.lock();

        // Try to match the earliest unexpected send, lazily draining
        // cancelled deferred sends scanned past (their buffers may be gone).
        let mut drained = 0;
        let qb = state.unexpected[self.rank].counts();
        let hit = state.unexpected[self.rank].take(sel, send_is_dead, &mut drained);
        self.inner
            .note_queue_shift(qb, state.unexpected[self.rank].counts(), true);
        self.inner.note_drained(drained);
        if let Some((pending, wildcard)) = hit {
            self.inner.note_match(wildcard);
            let (send_side, send_req) = match pending.kind {
                PendKind::Eager { data } => (SendSide::Bounce { data }, None),
                PendKind::Deferred { desc, req } => (SendSide::Direct(desc), Some(req)),
            };
            let outcome = self.inner.run_matched_transfer(
                pending.source,
                self.rank,
                pending.tag,
                send_side,
                desc,
                &mut state,
                pending.fid,
                rfid,
                pending.lc,
                pending.sig,
                sig,
            );
            if let Some(req) = send_req {
                req.complete(match &outcome {
                    // The sender's data went out even if the receiver
                    // truncated or rejected the type; only callback
                    // failures abort the send too.
                    Ok(env) => Ok(*env),
                    Err(FabricError::Truncated { .. } | FabricError::TypeMismatch { .. }) => {
                        Ok(Envelope {
                            source: pending.source,
                            tag: pending.tag,
                            bytes: pending.total,
                        })
                    }
                    Err(e) => Err(e.clone()),
                });
            }
            let req = ReqState::new();
            req.complete(outcome);
            return Ok(Request::new(req).with_flight(rfid));
        }

        let req = ReqState::new();
        let qb = state.posted[self.rank].counts();
        state.posted[self.rank].push(
            sel,
            PostedRecv {
                desc,
                req: Arc::clone(&req),
                fid: rfid,
                sig,
            },
        );
        self.inner
            .note_queue_shift(qb, state.posted[self.rank].counts(), false);
        Ok(Request::new(req).with_flight(rfid))
    }

    /// Nonblocking probe: envelope of the earliest matching unexpected send,
    /// through the engine's ordered view (the same entry a receive posted
    /// now would match).
    pub fn iprobe(&self, source: i32, tag: Tag) -> Option<Envelope> {
        let sel = Selector::new(source, tag);
        let mut state = self.inner.state.lock();
        let mut drained = 0;
        let qb = state.unexpected[self.rank].counts();
        let env = state.unexpected[self.rank]
            .peek(sel, send_is_dead, &mut drained)
            .map(|(source, tag, p)| Envelope {
                source,
                tag,
                bytes: p.total,
            });
        self.inner
            .note_queue_shift(qb, state.unexpected[self.rank].counts(), true);
        self.inner.note_drained(drained);
        env
    }

    /// Blocking probe: wait until a matching send arrives (like `MPI_Probe`).
    pub fn probe(&self, source: i32, tag: Tag) -> Envelope {
        let sel = Selector::new(source, tag);
        let mut state = self.inner.state.lock();
        loop {
            let mut drained = 0;
            let qb = state.unexpected[self.rank].counts();
            let env = state.unexpected[self.rank]
                .peek(sel, send_is_dead, &mut drained)
                .map(|(source, tag, p)| Envelope {
                    source,
                    tag,
                    bytes: p.total,
                });
            self.inner
                .note_queue_shift(qb, state.unexpected[self.rank].counts(), true);
            self.inner.note_drained(drained);
            if let Some(env) = env {
                return env;
            }
            state = self.inner.arrivals.wait(state);
        }
    }

    /// Matched probe (`MPI_Improbe`): atomically *removes* the earliest
    /// matching unexpected send and returns it as a [`Message`] that only
    /// [`Endpoint::post_mrecv`] can consume. This closes the probe→receive
    /// race that forces multithreaded mpi4py-style code to lock around
    /// plain probe + receive (paper §II-C).
    pub fn improbe(&self, source: i32, tag: Tag) -> Option<(Envelope, Message)> {
        let sel = Selector::new(source, tag);
        let mut state = self.inner.state.lock();
        let mut drained = 0;
        let qb = state.unexpected[self.rank].counts();
        let hit = state.unexpected[self.rank].take(sel, send_is_dead, &mut drained);
        self.inner
            .note_queue_shift(qb, state.unexpected[self.rank].counts(), true);
        self.inner.note_drained(drained);
        let (pending, wildcard) = hit?;
        self.inner.note_match(wildcard);
        let env = Envelope {
            source: pending.source,
            tag: pending.tag,
            bytes: pending.total,
        };
        Some((
            env,
            Message {
                pending: Some(pending),
            },
        ))
    }

    /// Blocking matched probe (`MPI_Mprobe`): take-or-wait under one lock
    /// hold per attempt, so an arrival between the check and the wait
    /// cannot be missed.
    pub fn mprobe(&self, source: i32, tag: Tag) -> (Envelope, Message) {
        let sel = Selector::new(source, tag);
        let mut state = self.inner.state.lock();
        loop {
            let mut drained = 0;
            let qb = state.unexpected[self.rank].counts();
            let hit = state.unexpected[self.rank].take(sel, send_is_dead, &mut drained);
            self.inner
                .note_queue_shift(qb, state.unexpected[self.rank].counts(), true);
            self.inner.note_drained(drained);
            if let Some((pending, wildcard)) = hit {
                self.inner.note_match(wildcard);
                let env = Envelope {
                    source: pending.source,
                    tag: pending.tag,
                    bytes: pending.total,
                };
                return (
                    env,
                    Message {
                        pending: Some(pending),
                    },
                );
            }
            state = self.inner.arrivals.wait(state);
        }
    }

    /// Receive a message previously matched by [`Self::improbe`] /
    /// [`Self::mprobe`] (`MPI_Mrecv`).
    ///
    /// # Safety
    /// Same buffer contract as [`Self::post_recv`].
    pub unsafe fn post_mrecv(&self, desc: RecvDesc, msg: Message) -> FabricResult<Request> {
        // SAFETY: same contract as post_mrecv_sig; 0 = unchecked raw bytes.
        unsafe { self.post_mrecv_sig(desc, msg, 0) }
    }

    /// [`Self::post_mrecv`] with the structural signature of the datatype
    /// the receive is posted with (see [`Self::post_recv_sig`]). The
    /// sender's signature rode along on the probed message.
    ///
    /// # Safety
    /// Same buffer contract as [`Self::post_recv`].
    pub unsafe fn post_mrecv_sig(
        &self,
        desc: RecvDesc,
        msg: Message,
        sig: u64,
    ) -> FabricResult<Request> {
        // Flight: the matched receive is posted here, so the PostRecv event
        // is logged here (the probe that detached the message has no buffer).
        let rfid = flight::next_id();
        if rfid != 0 {
            flight::record(
                FlightEvent::new(EventKind::PostRecv, rfid)
                    .ranks(
                        msg.pending.as_ref().map_or(-1, |p| p.source as i32),
                        self.rank as i32,
                    )
                    .tag(msg.pending.as_ref().map_or(0, |p| p.tag))
                    .bytes(desc.capacity() as u64)
                    .lc(causal::tick(self.rank as i32)),
            );
        }
        let mut state = self.inner.state.lock();
        let pending = msg.take();
        let (send_side, send_req) = match pending.kind {
            PendKind::Eager { data } => (SendSide::Bounce { data }, None),
            PendKind::Deferred { desc, req } => (SendSide::Direct(desc), Some(req)),
        };
        let outcome = self.inner.run_matched_transfer(
            pending.source,
            self.rank,
            pending.tag,
            send_side,
            desc,
            &mut state,
            pending.fid,
            rfid,
            pending.lc,
            pending.sig,
            sig,
        );
        if let Some(req) = send_req {
            req.complete(match &outcome {
                Ok(env) => Ok(*env),
                Err(FabricError::Truncated { .. } | FabricError::TypeMismatch { .. }) => {
                    Ok(Envelope {
                        source: pending.source,
                        tag: pending.tag,
                        bytes: pending.total,
                    })
                }
                Err(e) => Err(e.clone()),
            });
        }
        let req = ReqState::new();
        req.complete(outcome);
        Ok(Request::new(req).with_flight(rfid))
    }

    /// Blocking convenience send of a byte slice.
    pub fn send_bytes(&self, data: &[u8], dest: usize, tag: Tag) -> FabricResult<()> {
        // SAFETY: we wait before returning, so `data` outlives the operation.
        let req =
            unsafe { self.post_send(SendDesc::Contig(IovEntry::from_slice(data)), dest, tag)? };
        req.wait().map(|_| ())
    }

    /// Blocking convenience receive into a byte slice. Returns the envelope.
    pub fn recv_bytes(&self, buf: &mut [u8], source: i32, tag: Tag) -> FabricResult<Envelope> {
        // SAFETY: we wait before returning, so `buf` outlives the operation.
        let req =
            unsafe { self.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(buf)), source, tag)? };
        req.wait()
    }
}

/// A message detached from the unexpected queue by a matched probe; can
/// only be consumed by [`Endpoint::post_mrecv`]. Dropping it without
/// receiving fails the sender's request (the message is gone).
pub struct Message {
    pending: Option<PendingSend>,
}

impl Message {
    fn take(mut self) -> PendingSend {
        self.pending.take().expect("message not yet consumed")
    }
}

impl Drop for Message {
    fn drop(&mut self) {
        if let Some(PendingSend {
            fid,
            kind: PendKind::Deferred { req, .. },
            ..
        }) = &self.pending
        {
            if !req.is_done() && *fid != 0 {
                flight::record(
                    FlightEvent::new(EventKind::Error, *fid)
                        .aux(FabricError::Cancelled.flight_code()),
                );
            }
            req.complete(Err(FabricError::Cancelled));
        }
    }
}

impl std::fmt::Debug for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.pending {
            Some(p) => write!(f, "Message(from {} tag {} {} B)", p.source, p.tag, p.total),
            None => write!(f, "Message(consumed)"),
        }
    }
}

/// What the transfer engine reads from.
enum SendSide {
    Bounce { data: Vec<u8> },
    Direct(SendDesc),
}

impl Inner {
    /// Record one send/recv pairing (exact path or wildcard sideline) in
    /// the per-fabric stats, the global registry, and telemetry.
    fn note_match(&self, wildcard: bool) {
        self.stats.record_match(wildcard);
        self.metrics.record_match(wildcard);
    }

    /// Record `n` lazily-drained dead queue entries.
    fn note_drained(&self, n: u64) {
        if n > 0 {
            self.stats.record_drained(n);
            self.metrics.record_drained(n);
        }
    }

    /// Refresh the matching-depth gauges from one queue's `counts()`
    /// before/after an operation. O(1) per call: only the touched queue's
    /// occupancy shift is applied — never a sum over all per-rank queues,
    /// which would turn every post into an O(world) walk.
    fn note_queue_shift(&self, before: (usize, usize), after: (usize, usize), unexpected: bool) {
        gauge_shift(&self.metrics.g_match_live, before.0, after.0);
        gauge_shift(&self.metrics.g_match_tombstones, before.1, after.1);
        if unexpected {
            gauge_shift(&self.metrics.g_unexpected, before.0, after.0);
        }
    }

    /// Execute a matched transfer. Called with the match lock held; user
    /// callbacks therefore must not re-enter the fabric (documented on the
    /// post functions), the same rule UCX imposes inside progress callbacks.
    // One argument per matched-transfer ingredient; a params struct
    // would be built and destructured at the single call site.
    #[allow(clippy::too_many_arguments)]
    fn run_matched_transfer(
        &self,
        source: usize,
        dest: usize,
        tag: Tag,
        send: SendSide,
        mut recv: RecvDesc,
        state: &mut MatchState,
        send_fid: u64,
        recv_fid: u64,
        send_lc: u64,
        send_sig: u64,
        recv_sig: u64,
    ) -> FabricResult<Envelope> {
        let (total, send_regions, rendezvous) = match &send {
            SendSide::Bounce { data } => (data.len(), 1, false),
            SendSide::Direct(desc) => {
                let t = desc.total_bytes();
                let rndv = matches!(desc, SendDesc::Contig(_)) && self.model.is_rendezvous(t);
                (t, desc.region_count(), rndv)
            }
        };

        // Flight: every lifecycle event of the matched transfer is keyed by
        // the send-side id; the match event's `aux` carries the receive-post
        // id so an analyzer can join both timelines.
        let method = match &send {
            SendSide::Bounce { .. } => Method::Eager,
            SendSide::Direct(SendDesc::Contig(_)) if rendezvous => Method::Rendezvous,
            SendSide::Direct(SendDesc::Contig(_)) => Method::Eager,
            SendSide::Direct(_) => Method::Pipelined,
        };
        let flight_on = send_fid != 0 && flight::enabled();
        // Causal merge: the receive rank observes the sender's clock carried
        // in the transfer header. The Match event is the cross-rank
        // happens-before edge — `parent` names the sender-side clock value.
        let mlc = if flight_on {
            causal::observe(dest as i32, send_lc)
        } else {
            0
        };

        // The synthetic wire span starts at match time; its duration is the
        // modeled wire time, recorded below once the transfer size is final.
        let match_start_ns = if mpicd_obs::enabled() || flight_on || telemetry::enabled() {
            mpicd_obs::now_ns()
        } else {
            0
        };
        if flight_on {
            flight::record(
                FlightEvent::new(EventKind::Match, send_fid)
                    .at(match_start_ns)
                    .ranks(source as i32, dest as i32)
                    .tag(tag)
                    .bytes(total as u64)
                    .method(method)
                    .aux(recv_fid)
                    .lc(mlc)
                    .parent(send_lc),
            );
        }
        // Every error exit funnels through here so a failing transfer always
        // leaves a terminal Error event (and, when armed, a black-box dump).
        let fail = |e: FabricError| {
            if flight_on {
                flight::record(
                    FlightEvent::new(EventKind::Error, send_fid)
                        .ranks(source as i32, dest as i32)
                        .tag(tag)
                        .bytes(total as u64)
                        .method(method)
                        .aux(e.flight_code())
                        .lc(causal::tick(dest as i32))
                        .parent(send_lc),
                );
            }
            e
        };

        // Cross-rank signature check: both sides declared a structural
        // signature (0 = unchecked raw bytes) and they disagree, so the
        // receiver would unpack the sender's bytes through the wrong type
        // map. Checked before the capacity test — a type error is
        // semantically prior to a length error.
        if send_sig != 0 && recv_sig != 0 && send_sig != recv_sig {
            match self.typecheck {
                TypecheckMode::Off => {}
                TypecheckMode::Warn => {
                    self.stats.record_type_mismatch();
                    self.metrics.type_mismatch.inc();
                    eprintln!(
                        "mpicd: datatype signature mismatch {source}->{dest} tag {tag}: \
                         sender {send_sig:#018x}, receiver {recv_sig:#018x} \
                         (MPICD_TYPECHECK=warn; proceeding)"
                    );
                }
                TypecheckMode::Enforce => {
                    self.stats.record_type_mismatch();
                    self.metrics.type_mismatch.inc();
                    return Err(fail(FabricError::TypeMismatch {
                        sent: send_sig,
                        expected: recv_sig,
                    }));
                }
            }
        }

        if total > recv.capacity() {
            return Err(fail(FabricError::Truncated {
                received: total,
                capacity: recv.capacity(),
            }));
        }

        let inorder = match &send {
            SendSide::Direct(SendDesc::Generic { inorder, .. }) => *inorder,
            _ => false,
        };
        let allow_ooo = self.model.out_of_order_fragments && !inorder;
        let regions = send_regions.max(recv.region_count());

        // Build segment lists and stream the bytes.
        let result = {
            let mut src_segs: Vec<SrcSeg<'_>> = Vec::new();
            let mut send = send;
            match &mut send {
                SendSide::Bounce { data } => {
                    src_segs.push(SrcSeg::Mem(IovEntry::from_slice(data)));
                }
                SendSide::Direct(desc) => match desc {
                    SendDesc::Contig(e) => src_segs.push(SrcSeg::Mem(*e)),
                    SendDesc::Iov(v) => src_segs.extend(v.iter().map(|e| SrcSeg::Mem(*e))),
                    SendDesc::Generic {
                        packer,
                        packed_size,
                        regions,
                        ..
                    } => {
                        src_segs.push(SrcSeg::Packer {
                            packer: packer.as_mut(),
                            len: *packed_size,
                        });
                        src_segs.extend(regions.iter().map(|e| SrcSeg::Mem(*e)));
                    }
                },
            }

            let mut dst_segs: Vec<DstSeg<'_>> = Vec::new();
            match &mut recv {
                RecvDesc::Contig(e) => dst_segs.push(DstSeg::Mem(*e)),
                RecvDesc::Iov(v) => dst_segs.extend(v.iter().map(|e| DstSeg::Mem(*e))),
                RecvDesc::Generic {
                    unpacker,
                    packed_size,
                    regions,
                } => {
                    dst_segs.push(DstSeg::Unpacker {
                        unpacker: unpacker.as_mut(),
                        len: *packed_size,
                    });
                    dst_segs.extend(regions.iter().map(|e| DstSeg::Mem(*e)));
                }
            }

            // Dispatch seam: eligible transfers go through the parallel
            // fragment pipeline, everything else through the serial engine.
            // Eligibility: pipeline enabled, the sender did not demand
            // in-order callback delivery, the payload splits into at least
            // two fragments, and every callback segment is random-access.
            let mut parallel: Option<FabricResult<usize>> = None;
            if self.pipeline_cfg.enabled && !inorder && total > self.model.frag_size {
                if let Some((ps, pd)) = pipeline::parallel_view(&src_segs, &dst_segs) {
                    let pool = self
                        .pipeline
                        .get_or_init(|| PipelinePool::spawn(self.pipeline_cfg, &self.metrics));
                    self.stats.record_pipelined();
                    parallel = Some(pipeline::run_parallel(
                        pool,
                        self.model.frag_size,
                        ps,
                        pd,
                        &self.metrics,
                        send_fid,
                        mlc,
                    ));
                }
            }
            let r = match parallel {
                Some(r) => r,
                None => copy_stream(
                    &self.model,
                    &mut src_segs,
                    &mut dst_segs,
                    allow_ooo,
                    &self.metrics,
                    &mut state.xfer_scratch,
                    send_fid,
                    mlc,
                ),
            };
            drop(src_segs);
            // Recycle the bounce buffer.
            if let SendSide::Bounce { data } = send {
                if state.bounce_pool.len() < bounce_pool_cap() {
                    state.bounce_pool.push(data);
                    self.metrics
                        .g_bounce_pool
                        .set(state.bounce_pool.len() as u64);
                }
            }
            r
        }
        .map_err(&fail)?;
        debug_assert_eq!(result, total, "stream moved every byte");

        // Wire accounting: one message.
        let frags = self.model.fragments(total);
        let wire_ns = self.model.message_time_ns(total, regions, rendezvous);
        self.ledger.add_ns(wire_ns);
        self.stats.record_message(total, rendezvous, frags, regions);
        self.metrics
            .record_message(total, rendezvous, frags, regions, wire_ns);
        // Synthetic span: the wire is modeled, not executed, so its duration
        // is the modeled time anchored at the moment the match ran.
        mpicd_obs::trace::record(
            "wire",
            "fabric",
            match_start_ns,
            wire_ns as u64,
            total as u64,
        );
        if flight_on {
            flight::record(
                FlightEvent::new(EventKind::WireModeled, send_fid)
                    .at(match_start_ns)
                    .dur(wire_ns as u64)
                    .ranks(source as i32, dest as i32)
                    .tag(tag)
                    .bytes(total as u64)
                    .method(method)
                    .lc(mlc)
                    .parent(send_lc),
            );
            flight::record(
                FlightEvent::new(EventKind::Complete, send_fid)
                    .ranks(source as i32, dest as i32)
                    .tag(tag)
                    .bytes(total as u64)
                    .method(method)
                    .lc(causal::tick(dest as i32))
                    .parent(send_lc),
            );
        }
        // Continuous telemetry: match-to-complete wall time of the transfer,
        // fed through the online straggler gate so a transfer beyond the
        // previous window's p99-derived threshold is counted as it happens.
        if match_start_ns != 0 {
            let end_ns = mpicd_obs::now_ns();
            let active_ns = end_ns.saturating_sub(match_start_ns);
            self.metrics.tele_active_ns.record(active_ns);
            self.metrics.record_straggler_check(end_ns, active_ns);
        }

        Ok(Envelope {
            source,
            tag,
            bytes: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{ANY_SOURCE, ANY_TAG};

    #[test]
    fn eager_send_recv_roundtrip() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        a.send_bytes(b"hello fabric", 1, 7).unwrap();
        let mut buf = [0u8; 32];
        let env = b.recv_bytes(&mut buf, 0, 7).unwrap();
        assert_eq!(env.bytes, 12);
        assert_eq!(env.source, 0);
        assert_eq!(&buf[..12], b"hello fabric");
    }

    #[test]
    fn recv_posted_first_nonblocking() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let mut buf = [0u8; 8];
        let recv = unsafe {
            b.post_recv(
                RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)),
                ANY_SOURCE,
                ANY_TAG,
            )
            .unwrap()
        };
        assert!(!recv.is_done());
        a.send_bytes(&[1, 2, 3, 4], 1, 0).unwrap();
        let env = recv.wait().unwrap();
        assert_eq!(env.bytes, 4);
        assert_eq!(&buf[..4], &[1, 2, 3, 4]);
    }

    #[test]
    fn rendezvous_send_defers_until_matched() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let big = vec![0xabu8; 64 * 1024]; // above the 32 KiB threshold
        let send = unsafe {
            a.post_send(SendDesc::Contig(IovEntry::from_slice(&big)), 1, 3)
                .unwrap()
        };
        assert!(!send.is_done(), "rendezvous send pends until matched");
        let mut out = vec![0u8; 64 * 1024];
        b.recv_bytes(&mut out, 0, 3).unwrap();
        assert!(send.is_done());
        assert_eq!(out, big);
        let stats = fabric.stats();
        assert_eq!(stats.rendezvous, 1);
        assert_eq!(stats.eager, 0);
    }

    #[test]
    fn eager_send_completes_immediately() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let small = [5u8; 128];
        let send = unsafe {
            a.post_send(SendDesc::Contig(IovEntry::from_slice(&small)), 1, 0)
                .unwrap()
        };
        assert!(send.is_done(), "eager send buffers and completes");
        let mut out = [0u8; 128];
        fabric
            .endpoint(1)
            .unwrap()
            .recv_bytes(&mut out, 0, 0)
            .unwrap();
        assert_eq!(out, small);
        assert_eq!(fabric.stats().eager, 1);
    }

    #[test]
    fn non_overtaking_order_same_tag() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        a.send_bytes(&[1], 1, 5).unwrap();
        a.send_bytes(&[2], 1, 5).unwrap();
        let mut x = [0u8; 1];
        let mut y = [0u8; 1];
        b.recv_bytes(&mut x, 0, 5).unwrap();
        b.recv_bytes(&mut y, 0, 5).unwrap();
        assert_eq!((x[0], y[0]), (1, 2));
    }

    #[test]
    fn tag_selective_matching() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        a.send_bytes(&[10], 1, 100).unwrap();
        a.send_bytes(&[20], 1, 200).unwrap();
        let mut buf = [0u8; 1];
        b.recv_bytes(&mut buf, 0, 200).unwrap();
        assert_eq!(buf[0], 20);
        b.recv_bytes(&mut buf, 0, 100).unwrap();
        assert_eq!(buf[0], 10);
    }

    #[test]
    fn truncation_errors_receiver_not_sender() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        a.send_bytes(&[0u8; 100], 1, 0).unwrap();
        let mut small = [0u8; 10];
        let err = b.recv_bytes(&mut small, 0, 0).unwrap_err();
        assert!(matches!(err, FabricError::Truncated { .. }));
    }

    #[test]
    fn truncation_errors_receiver_when_recv_posted_first() {
        // Same contract in the opposite arrival order: a pre-posted small
        // receive truncates, but the matched sender still succeeds — which
        // side won the race must be unobservable to the sender.
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let mut small = [0u8; 10];
        let recv = unsafe {
            b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(&mut small)), 0, 0)
                .unwrap()
        };
        a.send_bytes(&[0u8; 100], 1, 0).unwrap();
        let err = recv.wait().unwrap_err();
        assert!(matches!(err, FabricError::Truncated { .. }));
    }

    #[test]
    fn iov_send_to_contig_recv() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let p1 = [1u8, 2];
        let p2 = [3u8, 4, 5];
        let mut out = [0u8; 5];
        let recv = unsafe {
            b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(&mut out)), 0, 0)
                .unwrap()
        };
        let send = unsafe {
            a.post_send(
                SendDesc::Iov(vec![IovEntry::from_slice(&p1), IovEntry::from_slice(&p2)]),
                1,
                0,
            )
            .unwrap()
        };
        send.wait().unwrap();
        recv.wait().unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5]);
        assert_eq!(fabric.stats().regions, 2);
    }

    #[test]
    fn generic_send_with_regions_single_message() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let header = [9u8, 8, 7, 6];
        let body = vec![0x55u8; 1000];
        let mut out_header = [0u8; 4];
        let mut out_body = vec![0u8; 1000];

        struct HeaderUnpack(*mut u8);
        unsafe impl Send for HeaderUnpack {}
        impl crate::payload::FragmentUnpacker for HeaderUnpack {
            fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
                unsafe {
                    std::ptr::copy_nonoverlapping(src.as_ptr(), self.0.add(offset), src.len());
                }
                Ok(())
            }
        }

        let recv = unsafe {
            b.post_recv(
                RecvDesc::Generic {
                    unpacker: Box::new(HeaderUnpack(out_header.as_mut_ptr())),
                    packed_size: 4,
                    regions: vec![IovEntryMut::from_slice(&mut out_body)],
                },
                0,
                1,
            )
            .unwrap()
        };

        let hdr = header;
        let send = unsafe {
            a.post_send(
                SendDesc::Generic {
                    packer: Box::new(move |offset: usize, dst: &mut [u8]| {
                        let n = dst.len().min(4 - offset);
                        dst[..n].copy_from_slice(&hdr[offset..offset + n]);
                        Ok(n)
                    }),
                    packed_size: 4,
                    regions: vec![IovEntry::from_slice(&body)],
                    inorder: true,
                },
                1,
                1,
            )
            .unwrap()
        };
        send.wait().unwrap();
        let env = recv.wait().unwrap();
        assert_eq!(env.bytes, 1004);
        assert_eq!(out_header, header);
        assert_eq!(out_body, body);
        // The whole thing was ONE message — the paper's key property.
        assert_eq!(fabric.stats().messages, 1);
    }

    #[test]
    fn probe_reports_envelope() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        assert!(b.iprobe(ANY_SOURCE, ANY_TAG).is_none());
        a.send_bytes(&[0u8; 42], 1, 9).unwrap();
        let env = b.iprobe(ANY_SOURCE, ANY_TAG).unwrap();
        assert_eq!(env.bytes, 42);
        assert_eq!(env.tag, 9);
        assert_eq!(env.source, 0);
        // Probing does not consume the message.
        let mut buf = [0u8; 42];
        b.recv_bytes(&mut buf, 0, 9).unwrap();
    }

    #[test]
    fn blocking_probe_from_other_thread() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let t = std::thread::spawn(move || b.probe(ANY_SOURCE, ANY_TAG));
        std::thread::sleep(std::time::Duration::from_millis(20));
        a.send_bytes(&[1, 2, 3], 1, 4).unwrap();
        let env = t.join().unwrap();
        assert_eq!(env.bytes, 3);
    }

    #[test]
    fn threaded_pingpong() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let t = std::thread::spawn(move || {
            let mut buf = vec![0u8; 1024];
            for _ in 0..100 {
                b.recv_bytes(&mut buf, 0, 0).unwrap();
                b.send_bytes(&buf, 0, 1).unwrap();
            }
        });
        let msg = vec![7u8; 1024];
        let mut echo = vec![0u8; 1024];
        for _ in 0..100 {
            a.send_bytes(&msg, 1, 0).unwrap();
            a.recv_bytes(&mut echo, 1, 1).unwrap();
        }
        t.join().unwrap();
        assert_eq!(echo, msg);
        assert_eq!(fabric.stats().messages, 200);
    }

    #[test]
    fn invalid_rank_rejected() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        assert!(matches!(
            a.send_bytes(&[1], 5, 0),
            Err(FabricError::InvalidRank { rank: 5, world: 2 })
        ));
        assert!(fabric.endpoint(2).is_err());
    }

    #[test]
    fn wire_ledger_accumulates_per_message() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let snap = fabric.ledger().snapshot();
        a.send_bytes(&[0u8; 1024], 1, 0).unwrap();
        let mut buf = [0u8; 1024];
        b.recv_bytes(&mut buf, 0, 0).unwrap();
        let expected = fabric.model().message_time_ns(1024, 1, false);
        assert!((fabric.ledger().delta_ns(&snap) - expected).abs() < 0.01);
        assert_eq!(fabric.ledger().delta_messages(&snap), 1);
    }

    #[test]
    fn many_completed_recvs_ahead_of_match_drain_amortized() {
        // Regression (the old `remove(idx)` sweep): thousands of cancelled
        // receives queued ahead of the live one were shifted out one at a
        // time inside the match loop. The engine drains them lazily —
        // each dead entry is visited once, counted once, and the match
        // still lands on the live post.
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        const DEAD: usize = 5000;
        let mut bufs = vec![[0u8; 4]; DEAD];
        for buf in &mut bufs {
            let r = unsafe {
                b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(buf)), 0, 0)
                    .unwrap()
            };
            r.cancel();
        }
        let mut live = [0u8; 4];
        let r = unsafe {
            b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(&mut live)), 0, 0)
                .unwrap()
        };
        a.send_bytes(&[9, 9, 9, 9], 1, 0).unwrap();
        r.wait().unwrap();
        assert_eq!(live, [9, 9, 9, 9]);
        let stats = fabric.stats();
        assert_eq!(
            stats.match_drained, DEAD as u64,
            "each dead post drained once"
        );
        assert_eq!(stats.match_exact, 1);
        // The drained entries are gone: a second exchange drains nothing new.
        let r2 = unsafe {
            b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(&mut live)), 0, 0)
                .unwrap()
        };
        a.send_bytes(&[7, 7, 7, 7], 1, 0).unwrap();
        r2.wait().unwrap();
        assert_eq!(fabric.stats().match_drained, DEAD as u64);
    }

    #[test]
    fn improbe_consumes_earliest_match() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        a.send_bytes(&[1], 1, 5).unwrap();
        a.send_bytes(&[2, 2], 1, 9).unwrap();
        a.send_bytes(&[3, 3, 3], 1, 5).unwrap();
        // Wildcard matched probe takes the earliest arrival (tag 5, 1 byte).
        let (env, msg) = b.improbe(ANY_SOURCE, ANY_TAG).unwrap();
        assert_eq!((env.tag, env.bytes), (5, 1));
        let mut buf = [0u8; 4];
        unsafe { b.post_mrecv(RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)), msg) }
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(buf[0], 1);
        // Exact matched probe skips the tag-9 message and takes the
        // earliest tag-5 one.
        let (env, msg) = b.improbe(0, 5).unwrap();
        assert_eq!((env.tag, env.bytes), (5, 3));
        unsafe { b.post_mrecv(RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)), msg) }
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(&buf[..3], &[3, 3, 3]);
        assert!(b.improbe(0, 5).is_none(), "tag 5 drained");
        assert!(b.iprobe(0, 9).is_some(), "tag 9 still queued");
    }

    #[test]
    fn probe_skips_cancelled_deferred_send() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        // A rendezvous send stays deferred; cancelling it makes it dead.
        let big = vec![1u8; 64 * 1024];
        let dead = unsafe {
            a.post_send(SendDesc::Contig(IovEntry::from_slice(&big)), 1, 4)
                .unwrap()
        };
        dead.cancel();
        a.send_bytes(&[42], 1, 4).unwrap();
        // Every probe flavor must report the live eager send, not the corpse.
        let env = b.iprobe(ANY_SOURCE, 4).unwrap();
        assert_eq!(env.bytes, 1);
        let env = b.probe(0, ANY_TAG);
        assert_eq!(env.bytes, 1);
        let (env, msg) = b.improbe(0, 4).unwrap();
        assert_eq!(env.bytes, 1);
        let mut buf = [0u8; 1];
        unsafe { b.post_mrecv(RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)), msg) }
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(buf[0], 42);
        assert!(fabric.stats().match_drained >= 1);
    }

    #[test]
    fn wildcard_recv_preserves_cross_tag_arrival_order() {
        // Sends with different tags land in different hash buckets; a
        // wildcard receive must still see them in arrival order (the
        // sideline merge).
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        for (i, tag) in [900, 3, 77, 12].into_iter().enumerate() {
            a.send_bytes(&[i as u8], 1, tag).unwrap();
        }
        for want in 0..4u8 {
            let mut buf = [0u8; 1];
            b.recv_bytes(&mut buf, ANY_SOURCE, ANY_TAG).unwrap();
            assert_eq!(buf[0], want);
        }
        let stats = fabric.stats();
        assert_eq!(stats.match_wildcard, 4);
        assert_eq!(stats.match_exact, 0);
    }

    #[test]
    fn wildcard_posted_before_exact_wins_the_race() {
        // Posted-receive side of the seq merge: an ANY_SOURCE post made
        // *before* an exact post must match first (MPI post order), even
        // though the exact post sits in the O(1) bucket.
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let mut wild = [0u8; 1];
        let rw = unsafe {
            b.post_recv(
                RecvDesc::Contig(IovEntryMut::from_slice(&mut wild)),
                ANY_SOURCE,
                6,
            )
            .unwrap()
        };
        let mut exact = [0u8; 1];
        let re = unsafe {
            b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(&mut exact)), 0, 6)
                .unwrap()
        };
        a.send_bytes(&[1], 1, 6).unwrap();
        a.send_bytes(&[2], 1, 6).unwrap();
        rw.wait().unwrap();
        re.wait().unwrap();
        assert_eq!((wild[0], exact[0]), (1, 2));
        let stats = fabric.stats();
        assert_eq!(stats.match_wildcard, 1);
        assert_eq!(stats.match_exact, 1);
    }

    #[test]
    fn linear_config_is_functionally_identical() {
        // MatchConfig::linear (one bucket) must behave exactly like the
        // default engine — it is the ablation baseline.
        let fabric = Fabric::with_config(
            2,
            WireModel::default(),
            PipelineConfig::serial(),
            MatchConfig::linear(),
        );
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        a.send_bytes(&[1], 1, 5).unwrap();
        a.send_bytes(&[2], 1, 5).unwrap();
        let mut x = [0u8; 1];
        let mut y = [0u8; 1];
        b.recv_bytes(&mut x, 0, 5).unwrap();
        b.recv_bytes(&mut y, ANY_SOURCE, ANY_TAG).unwrap();
        assert_eq!((x[0], y[0]), (1, 2));
    }

    #[test]
    fn cancelled_recv_is_skipped() {
        let fabric = Fabric::new(2);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let mut buf1 = [0u8; 4];
        let r1 = unsafe {
            b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(&mut buf1)), 0, 0)
                .unwrap()
        };
        r1.cancel();
        let mut buf2 = [0u8; 4];
        let r2 = unsafe {
            b.post_recv(RecvDesc::Contig(IovEntryMut::from_slice(&mut buf2)), 0, 0)
                .unwrap()
        };
        a.send_bytes(&[1, 2, 3, 4], 1, 0).unwrap();
        r2.wait().unwrap();
        assert_eq!(buf2, [1, 2, 3, 4]);
        assert_eq!(buf1, [0; 4], "cancelled receive got no data");
    }

    fn typecheck_fabric(mode: TypecheckMode) -> Fabric {
        Fabric::with_config(
            2,
            WireModel::default(),
            PipelineConfig::serial(),
            MatchConfig::default().with_typecheck(mode),
        )
    }

    #[test]
    fn typecheck_enforce_fails_mismatched_pair_posted_first() {
        let fabric = typecheck_fabric(TypecheckMode::Enforce);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let mut buf = [0u8; 8];
        // Receive posted first: the check fires inside post_send_sig.
        let r = unsafe {
            b.post_recv_sig(
                RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)),
                0,
                0,
                0xB,
            )
            .unwrap()
        };
        let data = [1u8; 8];
        let s = unsafe {
            a.post_send_sig(SendDesc::Contig(IovEntry::from_slice(&data)), 1, 0, 0xA)
                .unwrap()
        };
        assert_eq!(
            r.wait(),
            Err(FabricError::TypeMismatch {
                sent: 0xA,
                expected: 0xB
            })
        );
        // The sender's bytes went out; like Truncated, the send completes.
        assert_eq!(s.wait().unwrap().bytes, 8);
        assert_eq!(fabric.stats().type_mismatch, 1);
        assert_eq!(buf, [0u8; 8], "rejected receive got no data");
    }

    #[test]
    fn typecheck_enforce_fails_mismatched_pair_unexpected() {
        let fabric = typecheck_fabric(TypecheckMode::Enforce);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        // Send lands on the unexpected queue; the check fires in
        // post_recv_sig with the signature that rode along on PendingSend.
        let data = [2u8; 8];
        let s = unsafe {
            a.post_send_sig(SendDesc::Contig(IovEntry::from_slice(&data)), 1, 0, 0xA)
                .unwrap()
        };
        s.wait().unwrap();
        let mut buf = [0u8; 8];
        let r = unsafe {
            b.post_recv_sig(
                RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)),
                0,
                0,
                0xB,
            )
            .unwrap()
        };
        assert_eq!(
            r.wait(),
            Err(FabricError::TypeMismatch {
                sent: 0xA,
                expected: 0xB
            })
        );
        assert_eq!(fabric.stats().type_mismatch, 1);
    }

    #[test]
    fn typecheck_enforce_fails_mismatched_mrecv() {
        let fabric = typecheck_fabric(TypecheckMode::Enforce);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let data = [3u8; 4];
        unsafe {
            a.post_send_sig(SendDesc::Contig(IovEntry::from_slice(&data)), 1, 0, 0xA)
                .unwrap()
        }
        .wait()
        .unwrap();
        let (_env, msg) = b.improbe(0, 0).unwrap();
        let mut buf = [0u8; 4];
        let r = unsafe {
            b.post_mrecv_sig(
                RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)),
                msg,
                0xB,
            )
            .unwrap()
        };
        assert_eq!(
            r.wait(),
            Err(FabricError::TypeMismatch {
                sent: 0xA,
                expected: 0xB
            })
        );
        assert_eq!(fabric.stats().type_mismatch, 1);
    }

    #[test]
    fn typecheck_warn_counts_and_proceeds() {
        // Warn is the static default MatchConfig.
        let fabric = Fabric::with_config(
            2,
            WireModel::default(),
            PipelineConfig::serial(),
            MatchConfig::default(),
        );
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let data = [4u8; 4];
        unsafe {
            a.post_send_sig(SendDesc::Contig(IovEntry::from_slice(&data)), 1, 0, 0xA)
                .unwrap()
        }
        .wait()
        .unwrap();
        let mut buf = [0u8; 4];
        let env = unsafe {
            b.post_recv_sig(
                RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)),
                0,
                0,
                0xB,
            )
            .unwrap()
        }
        .wait()
        .unwrap();
        assert_eq!(env.bytes, 4);
        assert_eq!(buf, data, "warn mode still delivers the bytes");
        assert_eq!(fabric.stats().type_mismatch, 1, "but the mismatch counts");
    }

    #[test]
    fn typecheck_off_is_silent() {
        let fabric = typecheck_fabric(TypecheckMode::Off);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let data = [5u8; 4];
        unsafe {
            a.post_send_sig(SendDesc::Contig(IovEntry::from_slice(&data)), 1, 0, 0xA)
                .unwrap()
        }
        .wait()
        .unwrap();
        let mut buf = [0u8; 4];
        unsafe {
            b.post_recv_sig(
                RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)),
                0,
                0,
                0xB,
            )
            .unwrap()
        }
        .wait()
        .unwrap();
        assert_eq!(buf, data);
        assert_eq!(fabric.stats().type_mismatch, 0, "off mode never counts");
    }

    #[test]
    fn typecheck_zero_signature_is_unchecked() {
        // A raw-bytes side (sig 0) never trips the check, even in enforce:
        // send_bytes/recv_bytes interop with typed peers stays legal.
        let fabric = typecheck_fabric(TypecheckMode::Enforce);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let data = [6u8; 4];
        unsafe {
            a.post_send_sig(SendDesc::Contig(IovEntry::from_slice(&data)), 1, 0, 0xA)
                .unwrap()
        }
        .wait()
        .unwrap();
        let mut buf = [0u8; 4];
        b.recv_bytes(&mut buf, 0, 0).unwrap();
        assert_eq!(buf, data);
        assert_eq!(fabric.stats().type_mismatch, 0);
    }

    #[test]
    fn typecheck_matching_signatures_pass_enforce() {
        let fabric = typecheck_fabric(TypecheckMode::Enforce);
        let a = fabric.endpoint(0).unwrap();
        let b = fabric.endpoint(1).unwrap();
        let data = [7u8; 4];
        unsafe {
            a.post_send_sig(SendDesc::Contig(IovEntry::from_slice(&data)), 1, 0, 0xA)
                .unwrap()
        }
        .wait()
        .unwrap();
        let mut buf = [0u8; 4];
        unsafe {
            b.post_recv_sig(
                RecvDesc::Contig(IovEntryMut::from_slice(&mut buf)),
                0,
                0,
                0xA,
            )
            .unwrap()
        }
        .wait()
        .unwrap();
        assert_eq!(buf, data);
        assert_eq!(fabric.stats().type_mismatch, 0);
    }
}
