//! Wire cost model for the simulated interconnect.
//!
//! The defaults approximate the paper's testbed: two nodes connected by
//! ConnectX-5 InfiniBand configured for 100 Gbps, driven through UCX 1.12.
//! Only the *shape* of results depends on these constants (who wins, where
//! crossovers fall); absolute values are not a reproduction target.

/// Parameters of the modeled network wire.
///
/// Each completed message adds modeled time to the fabric's
/// [`WireLedger`](crate::clock::WireLedger):
///
/// ```text
/// wire(msg) = latency_ns
///           + bytes / bandwidth_bytes_per_ns
///           + regions  * per_region_overhead_ns
///           + fragments * per_fragment_overhead_ns
///           + (2 * latency_ns   if rendezvous handshake was required)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// One-way base latency `α` in nanoseconds (default 1300 ns — small-message
    /// MPI latency on the paper's IB testbed is a couple of microseconds).
    pub latency_ns: f64,
    /// Link bandwidth `β` in bytes per nanosecond (default 12.5 = 100 Gbps).
    pub bandwidth_bytes_per_ns: f64,
    /// Fixed cost `γ` charged per scatter/gather (iov) entry beyond the
    /// first. Models NIC descriptor setup; makes many small regions slower
    /// than one packed buffer, as observed for NAS_LU_y / NAS_MG_x in Fig 10.
    pub per_region_overhead_ns: f64,
    /// Fixed cost `δ` charged per pipeline fragment beyond the first.
    pub per_fragment_overhead_ns: f64,
    /// Messages whose contiguous payload exceeds this many bytes switch from
    /// the eager protocol (bounce-buffer copy at post time) to rendezvous
    /// (handshake plus zero-copy transfer at match time). UCX on the paper's
    /// testbed switches at 32 KiB (the Fig 7 manual-pack dip at 2^15 bytes).
    pub rndv_threshold: usize,
    /// Pipeline fragment size for rendezvous transfers and for
    /// generic-datatype (callback) packing. UCX uses 64 KiB fragments.
    pub frag_size: usize,
    /// Deliver generic-datatype fragments to the unpack callback in a
    /// deterministic non-monotonic offset order. Models transports that
    /// complete fragments out of order; senders that set the paper's
    /// `inorder` flag suppress this (the engine then forces in-order
    /// delivery regardless of this setting).
    pub out_of_order_fragments: bool,
}

impl Default for WireModel {
    fn default() -> Self {
        Self {
            latency_ns: 1300.0,
            bandwidth_bytes_per_ns: 12.5,
            per_region_overhead_ns: 200.0,
            per_fragment_overhead_ns: 150.0,
            rndv_threshold: 32 * 1024,
            frag_size: 64 * 1024,
            out_of_order_fragments: false,
        }
    }
}

impl WireModel {
    /// The paper's testbed: ConnectX-5 InfiniBand at 100 Gbps through
    /// UCX 1.12 (this is [`Default::default`], spelled out).
    pub fn infiniband_100g() -> Self {
        Self::default()
    }

    /// A next-generation 200 Gbps link: half the per-byte cost, slightly
    /// lower base latency, same protocol structure. For what-if sweeps.
    pub fn infiniband_200g() -> Self {
        Self {
            latency_ns: 1000.0,
            bandwidth_bytes_per_ns: 25.0,
            per_region_overhead_ns: 150.0,
            per_fragment_overhead_ns: 100.0,
            rndv_threshold: 64 * 1024,
            frag_size: 64 * 1024,
            out_of_order_fragments: false,
        }
    }

    /// Commodity 10 GbE with kernel networking: high latency, modest
    /// bandwidth, expensive scatter/gather — the regime where packing beats
    /// regions almost everywhere.
    pub fn ethernet_10g() -> Self {
        Self {
            latency_ns: 15_000.0,
            bandwidth_bytes_per_ns: 1.25,
            per_region_overhead_ns: 1_000.0,
            per_fragment_overhead_ns: 500.0,
            rndv_threshold: 64 * 1024,
            frag_size: 64 * 1024,
            out_of_order_fragments: false,
        }
    }

    /// A model with zero modeled cost — useful in unit tests that assert on
    /// data movement only.
    pub fn zero_cost() -> Self {
        Self {
            latency_ns: 0.0,
            bandwidth_bytes_per_ns: f64::INFINITY,
            per_region_overhead_ns: 0.0,
            per_fragment_overhead_ns: 0.0,
            rndv_threshold: 32 * 1024,
            frag_size: 64 * 1024,
            out_of_order_fragments: false,
        }
    }

    /// Serial wire time of transferring `bytes` payload bytes.
    pub fn byte_time_ns(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_ns
    }

    /// Whether a contiguous payload of `bytes` uses the rendezvous protocol.
    pub fn is_rendezvous(&self, bytes: usize) -> bool {
        bytes > self.rndv_threshold
    }

    /// Number of pipeline fragments a transfer of `bytes` is split into.
    pub fn fragments(&self, bytes: usize) -> usize {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.frag_size)
        }
    }

    /// Full modeled wire time of one message.
    ///
    /// `regions` counts scatter/gather entries (0 or 1 both mean "a single
    /// contiguous payload"); `rendezvous` selects the handshake surcharge.
    pub fn message_time_ns(&self, bytes: usize, regions: usize, rendezvous: bool) -> f64 {
        let frags = self.fragments(bytes);
        let mut t = self.latency_ns + self.byte_time_ns(bytes);
        t += regions.saturating_sub(1) as f64 * self.per_region_overhead_ns;
        t += frags.saturating_sub(1) as f64 * self.per_fragment_overhead_ns;
        if rendezvous {
            t += 2.0 * self.latency_ns;
        }
        t
    }
}

/// Configuration of the parallel fragment pipeline (the `pipeline` module
/// in the crate sources).
///
/// Environment knobs, read once per process by [`PipelineConfig::from_env`]:
///
/// * `MPICD_PIPELINE` — `0` disables the parallel engine entirely (the
///   serial `copy_stream` runs for every transfer, exactly as before the
///   pipeline existed). Default: enabled.
/// * `MPICD_PIPELINE_THREADS` — total worker concurrency, including the
///   posting thread. Default: `min(4, available_parallelism)`.
/// * `MPICD_PIPELINE_DEPTH` — bound on the ring of pooled per-fragment
///   scratch buffers (only packer→unpacker fragments need staging).
///   Default: `2 × threads`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Whether eligible transfers may use the parallel engine at all.
    pub enabled: bool,
    /// Total fragment-working threads, counting the thread that posted the
    /// transfer (which always participates). `1` means the parallel engine
    /// runs but spawns no workers.
    pub threads: usize,
    /// Maximum pooled scratch buffers checked out at once.
    pub depth: usize,
}

impl PipelineConfig {
    /// The process-wide default, from the `MPICD_PIPELINE*` environment
    /// knobs (read once and cached, like the `MPICD_PLAN*` family).
    pub fn from_env() -> Self {
        static CFG: std::sync::OnceLock<PipelineConfig> = std::sync::OnceLock::new();
        *CFG.get_or_init(|| {
            let off = |k: &str| std::env::var(k).is_ok_and(|v| v == "0");
            let num = |k: &str| {
                std::env::var(k)
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
            };
            let threads = num("MPICD_PIPELINE_THREADS").unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(4)
            });
            PipelineConfig {
                enabled: !off("MPICD_PIPELINE"),
                threads,
                depth: num("MPICD_PIPELINE_DEPTH").unwrap_or(2 * threads),
            }
        })
    }

    /// A configuration that never uses the parallel engine — today's serial
    /// `copy_stream` for every transfer.
    pub fn serial() -> Self {
        Self {
            enabled: false,
            threads: 1,
            depth: 1,
        }
    }

    /// An explicit parallel configuration (mostly for benchmarks and tests
    /// that sweep thread counts without touching the environment).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        Self {
            enabled: true,
            threads,
            depth: 2 * threads,
        }
    }
}

/// How the fabric reacts when a sender's structural type signature
/// disagrees with the posted receive's (DESIGN.md §6i).
///
/// The comparison only fires when *both* sides carry a nonzero signature;
/// raw byte transfers (signature `0`, the "unchecked" sentinel) never
/// mismatch. Knob: `MPICD_TYPECHECK=off|warn|enforce`, default `warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TypecheckMode {
    /// Skip the comparison entirely (zero cost, pre-PR-10 behavior).
    Off,
    /// Compare, count `fabric.type_mismatch`, log one line on stderr, and
    /// proceed with the transfer (the default: observability without
    /// changing program behavior).
    #[default]
    Warn,
    /// Compare and fail the receive with
    /// [`FabricError::TypeMismatch`](crate::FabricError::TypeMismatch)
    /// before any payload is unpacked. The sender completes normally
    /// (arrival order must stay unobservable, exactly like `Truncated`).
    Enforce,
}

impl TypecheckMode {
    /// The process-wide default from `MPICD_TYPECHECK` (read once and
    /// cached; unrecognized values warn on stderr and fall back to
    /// `warn`).
    pub fn from_env() -> Self {
        static MODE: std::sync::OnceLock<TypecheckMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| {
            match mpicd_obs::config::env_choice(
                "MPICD_TYPECHECK",
                &["off", "warn", "enforce"],
                "warn",
            ) {
                "off" => TypecheckMode::Off,
                "enforce" => TypecheckMode::Enforce,
                _ => TypecheckMode::Warn,
            }
        })
    }
}

/// Configuration of the tag-matching engine (the `matching` module).
///
/// Environment knobs, read once per process by [`MatchConfig::from_env`]:
///
/// * `MPICD_MATCH_BUCKETS` — hash-bucket count of the exact-match
///   `(source, tag)` index in each per-destination queue, rounded up to a
///   power of two and clamped to `1..=65536`. `1` degenerates to the old
///   linear-scan matcher (every envelope shares one bucket). Default: 64.
/// * `MPICD_TYPECHECK` — signature-enforcement mode applied at match time
///   (see [`TypecheckMode`]). Default: `warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchConfig {
    /// Exact-match hash buckets per queue (power of two, `1..=65536`).
    pub buckets: usize,
    /// Structural-signature enforcement mode (programmatic override of the
    /// `MPICD_TYPECHECK` knob, so parallel in-process tests can pin a mode
    /// without racing on the environment).
    pub typecheck: TypecheckMode,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            buckets: 64,
            typecheck: TypecheckMode::default(),
        }
    }
}

impl MatchConfig {
    /// The process-wide default, from `MPICD_MATCH_BUCKETS` and
    /// `MPICD_TYPECHECK` (read once and cached, like the other `MPICD_*`
    /// knob families; garbage values warn on stderr and fall back to the
    /// defaults).
    pub fn from_env() -> Self {
        static CFG: std::sync::OnceLock<MatchConfig> = std::sync::OnceLock::new();
        *CFG.get_or_init(|| MatchConfig {
            buckets: mpicd_obs::config::env_bounded("MPICD_MATCH_BUCKETS", 64, 1 << 16) as usize,
            typecheck: TypecheckMode::from_env(),
        })
    }

    /// The degenerate single-bucket engine: exact matches share one queue
    /// with the wildcard sideline, reproducing the old linear matcher's
    /// scan cost. Benchmarks use this as the comparison baseline.
    pub fn linear() -> Self {
        Self {
            buckets: 1,
            typecheck: TypecheckMode::default(),
        }
    }

    /// An explicit bucket count (benchmarks and tests sweeping the knob
    /// without touching the environment).
    pub fn with_buckets(buckets: usize) -> Self {
        Self {
            buckets: buckets.max(1),
            typecheck: TypecheckMode::default(),
        }
    }

    /// Builder: pin the signature-enforcement mode.
    pub fn with_typecheck(self, typecheck: TypecheckMode) -> Self {
        Self { typecheck, ..self }
    }
}

/// Bound on the eager bounce-buffer freelist (buffer count). A burst of
/// eager sends would otherwise retain peak memory forever. Knob:
/// `MPICD_BOUNCE_POOL_CAP` (read once per process; default 64, `0` disables
/// pooling).
pub(crate) fn bounce_pool_cap() -> usize {
    static CAP: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("MPICD_BOUNCE_POOL_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_config_constructors() {
        let s = PipelineConfig::serial();
        assert!(!s.enabled);
        let p = PipelineConfig::with_threads(4);
        assert!(p.enabled);
        assert_eq!(p.threads, 4);
        assert_eq!(p.depth, 8);
        assert_eq!(PipelineConfig::with_threads(0).threads, 1);
    }

    #[test]
    fn match_config_constructors() {
        assert_eq!(MatchConfig::default().buckets, 64);
        assert_eq!(MatchConfig::linear().buckets, 1);
        assert_eq!(MatchConfig::with_buckets(0).buckets, 1);
        assert_eq!(MatchConfig::with_buckets(256).buckets, 256);
        // Every constructor defaults the typecheck mode to warn; the
        // builder overrides it without touching the bucket count.
        assert_eq!(MatchConfig::default().typecheck, TypecheckMode::Warn);
        assert_eq!(MatchConfig::linear().typecheck, TypecheckMode::Warn);
        let c = MatchConfig::with_buckets(256).with_typecheck(TypecheckMode::Enforce);
        assert_eq!(c.buckets, 256);
        assert_eq!(c.typecheck, TypecheckMode::Enforce);
    }

    #[test]
    fn default_matches_testbed() {
        let m = WireModel::default();
        assert_eq!(m.rndv_threshold, 32 * 1024);
        // 100 Gbps == 12.5 bytes/ns.
        assert!((m.bandwidth_bytes_per_ns - 12.5).abs() < 1e-9);
    }

    #[test]
    fn byte_time_scales_linearly() {
        let m = WireModel::default();
        let t1 = m.byte_time_ns(1 << 20);
        let t2 = m.byte_time_ns(1 << 21);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rendezvous_switch_is_strictly_above_threshold() {
        let m = WireModel::default();
        assert!(!m.is_rendezvous(32 * 1024));
        assert!(m.is_rendezvous(32 * 1024 + 1));
    }

    #[test]
    fn fragment_count() {
        let m = WireModel::default();
        assert_eq!(m.fragments(0), 1);
        assert_eq!(m.fragments(1), 1);
        assert_eq!(m.fragments(64 * 1024), 1);
        assert_eq!(m.fragments(64 * 1024 + 1), 2);
        assert_eq!(m.fragments(256 * 1024), 4);
    }

    #[test]
    fn handshake_surcharge_applied_only_for_rendezvous() {
        let m = WireModel::default();
        let eager = m.message_time_ns(1024, 1, false);
        let rndv = m.message_time_ns(1024, 1, true);
        assert!((rndv - eager - 2.0 * m.latency_ns).abs() < 1e-9);
    }

    #[test]
    fn region_overhead_charged_beyond_first() {
        let m = WireModel::default();
        let one = m.message_time_ns(4096, 1, false);
        let four = m.message_time_ns(4096, 4, false);
        assert!((four - one - 3.0 * m.per_region_overhead_ns).abs() < 1e-9);
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let ib100 = WireModel::infiniband_100g();
        let ib200 = WireModel::infiniband_200g();
        let eth = WireModel::ethernet_10g();
        let t = |m: &WireModel| m.message_time_ns(1 << 20, 4, true);
        assert!(t(&ib200) < t(&ib100));
        assert!(t(&ib100) < t(&eth));
    }

    #[test]
    fn zero_cost_model_is_free() {
        let m = WireModel::zero_cost();
        assert_eq!(m.message_time_ns(1 << 20, 8, true), 0.0);
    }
}
