//! The data-movement engine: pairs a matched send and receive as two byte
//! streams and moves every payload byte for real.
//!
//! The sender's segments (memory regions and/or a callback-produced packed
//! stream) are read in order and scattered into the receiver's segments in
//! order, chunked at the wire model's fragment size. This mirrors how UCX
//! walks iov lists and invokes generic-datatype pack/unpack callbacks per
//! fragment.

// Audited unsafe: serial copy engine over posted raw regions; every unsafe block carries a SAFETY note.
#![allow(unsafe_code)]

use crate::config::WireModel;
use crate::error::{FabricError, FabricResult};
use crate::payload::{FragmentPacker, FragmentUnpacker, IovEntry, IovEntryMut};
use crate::stats::FabricMetrics;
use mpicd_obs::flight::{self, EventKind};
use mpicd_obs::trace::span_acc;

/// A readable segment of the send-side stream.
pub(crate) enum SrcSeg<'a> {
    /// A contiguous memory region (zero-copy source).
    Mem(IovEntry),
    /// A callback-produced packed stream of exactly `len` bytes.
    Packer {
        packer: &'a mut dyn FragmentPacker,
        len: usize,
    },
}

impl SrcSeg<'_> {
    fn len(&self) -> usize {
        match self {
            Self::Mem(e) => e.len,
            Self::Packer { len, .. } => *len,
        }
    }
}

/// A writable segment of the receive-side stream.
pub(crate) enum DstSeg<'a> {
    /// A contiguous memory region (zero-copy destination).
    Mem(IovEntryMut),
    /// A callback-consumed packed stream of exactly `len` bytes.
    Unpacker {
        unpacker: &'a mut dyn FragmentUnpacker,
        len: usize,
    },
}

impl DstSeg<'_> {
    fn len(&self) -> usize {
        match self {
            Self::Mem(e) => e.len,
            Self::Unpacker { len, .. } => *len,
        }
    }
}

/// Per-transfer allocations of [`copy_stream`], recycled across transfers.
///
/// Every matched transfer used to heap-allocate a fresh staging buffer and
/// a fresh out-of-order fragment list; the fabric now keeps one of these in
/// its match state (mirroring the eager bounce-buffer freelist) and hands
/// it to every serial transfer.
#[derive(Default)]
pub(crate) struct TransferScratch {
    /// Packer→unpacker staging buffer (capacity kept across transfers).
    buf: Vec<u8>,
    /// Out-of-order delivery list: (local offset, data). Drained after use;
    /// entries left behind by an error return are reclaimed on reuse.
    ooo: Vec<(usize, Vec<u8>)>,
    /// Freelist of fragment buffers for the `ooo` list.
    spare: Vec<Vec<u8>>,
}

/// Cap on pooled ooo fragment buffers — bounds retained memory to
/// `SPARE_CAP × frag_size` per fabric.
const SPARE_CAP: usize = 64;

impl TransferScratch {
    /// Prepare for a new transfer: recycle anything a previous transfer
    /// (possibly one that errored mid-stream) left behind.
    fn reset(&mut self) {
        while let Some((_, data)) = self.ooo.pop() {
            if self.spare.len() < SPARE_CAP {
                self.spare.push(data);
            }
        }
    }
}

/// Copy `bytes` into a (possibly recycled) fragment buffer.
fn fill_frag_buf(spare: &mut Vec<Vec<u8>>, bytes: &[u8]) -> Vec<u8> {
    let mut b = spare.pop().unwrap_or_default();
    b.clear();
    b.extend_from_slice(bytes);
    b
}

/// Move the full send stream into the receive stream.
///
/// * Fragmentation: no single callback invocation or memcpy spans more than
///   `model.frag_size` bytes, so partial-pack semantics are exercised exactly
///   as on a fragmenting transport.
/// * Out-of-order delivery: when `allow_ooo` is set (wire model enables it
///   *and* the sender did not demand in-order), fragments destined for an
///   unpacker are buffered and delivered in reverse offset order, modeling a
///   transport that completes fragments out of order. Memory-region segments
///   are position-addressed and unaffected.
///
/// Returns the number of bytes moved. The caller has already verified the
/// receive side has sufficient capacity.
///
/// `fid` is the send-side flight-recorder transfer id; pack/unpack callback
/// invocations emit `FragPacked`/`FragUnpacked` events against it (0 = no
/// recording, the cost of one relaxed load per fragment). `lc` is the
/// transfer's merged Lamport clock, stamped on every fragment event so the
/// causal-DAG analyzer can order fragments inside the transfer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn copy_stream(
    model: &WireModel,
    src_segs: &mut [SrcSeg<'_>],
    dst_segs: &mut [DstSeg<'_>],
    allow_ooo: bool,
    metrics: &FabricMetrics,
    scratch: &mut TransferScratch,
    fid: u64,
    lc: u64,
) -> FabricResult<usize> {
    let total: usize = src_segs.iter().map(|s| s.len()).sum();
    let frag = model.frag_size.max(1);

    scratch.reset();

    let (mut si, mut s_off) = (0usize, 0usize);
    let (mut di, mut d_off) = (0usize, 0usize);
    let mut moved = 0usize;

    while moved < total {
        // Advance past exhausted segments.
        while si < src_segs.len() && s_off == src_segs[si].len() {
            si += 1;
            s_off = 0;
        }
        while di < dst_segs.len() && d_off == dst_segs[di].len() {
            di += 1;
            d_off = 0;
        }
        if si >= src_segs.len() || di >= dst_segs.len() {
            break;
        }

        let s_rem = src_segs[si].len() - s_off;
        let d_rem = dst_segs[di].len() - d_off;
        let want = s_rem.min(d_rem).min(frag);
        if want == 0 {
            continue;
        }

        let advanced = match (&mut src_segs[si], &mut dst_segs[di]) {
            (SrcSeg::Mem(s), DstSeg::Mem(d)) => {
                // SAFETY: post contracts guarantee both regions are live and
                // non-overlapping for the duration of the operation.
                unsafe {
                    std::ptr::copy_nonoverlapping(s.ptr.add(s_off), d.ptr.add(d_off), want);
                }
                want
            }
            (SrcSeg::Mem(s), DstSeg::Unpacker { unpacker, .. }) => {
                // SAFETY: as above.
                let bytes = unsafe { std::slice::from_raw_parts(s.ptr.add(s_off), want) };
                if allow_ooo {
                    let b = fill_frag_buf(&mut scratch.spare, bytes);
                    scratch.ooo.push((d_off, b));
                } else {
                    let t0 = flight::clock(fid);
                    {
                        let _sp = span_acc("unpack", "fabric", want as u64, &metrics.unpack_ns);
                        unpacker
                            .unpack(d_off, bytes)
                            .map_err(FabricError::UnpackFailed)?;
                    }
                    flight::record_frag(
                        EventKind::FragUnpacked,
                        fid,
                        t0,
                        want as u64,
                        d_off as u64,
                        lc,
                    );
                }
                want
            }
            (SrcSeg::Packer { packer, .. }, DstSeg::Mem(d)) => {
                // SAFETY: as above; `want` stays within the destination region.
                let dst = unsafe { std::slice::from_raw_parts_mut(d.ptr.add(d_off), want) };
                let t0 = flight::clock(fid);
                let used = {
                    let _sp = span_acc("pack", "fabric", want as u64, &metrics.pack_ns);
                    packer.pack(s_off, dst)
                }
                .map_err(FabricError::PackFailed)?;
                debug_assert!(used <= want, "packer overreported bytes used");
                let used = used.min(want);
                if used == 0 {
                    return Err(FabricError::PackStalled {
                        offset: s_off,
                        remaining: s_rem,
                    });
                }
                flight::record_frag(
                    EventKind::FragPacked,
                    fid,
                    t0,
                    used as u64,
                    s_off as u64,
                    lc,
                );
                used
            }
            (SrcSeg::Packer { packer, .. }, DstSeg::Unpacker { unpacker, .. }) => {
                scratch.buf.resize(want, 0);
                let t0 = flight::clock(fid);
                let used = {
                    let _sp = span_acc("pack", "fabric", want as u64, &metrics.pack_ns);
                    packer.pack(s_off, &mut scratch.buf[..want])
                }
                .map_err(FabricError::PackFailed)?;
                debug_assert!(used <= want, "packer overreported bytes used");
                let used = used.min(want);
                if used == 0 {
                    return Err(FabricError::PackStalled {
                        offset: s_off,
                        remaining: s_rem,
                    });
                }
                flight::record_frag(
                    EventKind::FragPacked,
                    fid,
                    t0,
                    used as u64,
                    s_off as u64,
                    lc,
                );
                if allow_ooo {
                    let b = fill_frag_buf(&mut scratch.spare, &scratch.buf[..used]);
                    scratch.ooo.push((d_off, b));
                } else {
                    let t1 = flight::clock(fid);
                    {
                        let _sp = span_acc("unpack", "fabric", used as u64, &metrics.unpack_ns);
                        unpacker
                            .unpack(d_off, &scratch.buf[..used])
                            .map_err(FabricError::UnpackFailed)?;
                    }
                    flight::record_frag(
                        EventKind::FragUnpacked,
                        fid,
                        t1,
                        used as u64,
                        d_off as u64,
                        lc,
                    );
                }
                used
            }
        };

        s_off += advanced;
        d_off += advanced;
        moved += advanced;
    }

    // Deliver buffered out-of-order fragments (reverse offset order) to the
    // unpacker segment. At most one unpacker segment exists by construction
    // (the packed stream is always the leading segment). Popping walks the
    // list in reverse; an error return leaves the remainder in `scratch`,
    // where the next transfer's `reset` reclaims the buffers.
    if !scratch.ooo.is_empty() {
        let unpacker = dst_segs
            .iter_mut()
            .find_map(|d| match d {
                DstSeg::Unpacker { unpacker, .. } => Some(unpacker),
                _ => None,
            })
            .expect("ooo fragments imply an unpacker segment");
        while let Some((off, data)) = scratch.ooo.pop() {
            let t0 = flight::clock(fid);
            {
                let _sp = span_acc("unpack", "fabric", data.len() as u64, &metrics.unpack_ns);
                unpacker
                    .unpack(off, &data)
                    .map_err(FabricError::UnpackFailed)?;
            }
            flight::record_frag(
                EventKind::FragUnpacked,
                fid,
                t0,
                data.len() as u64,
                off as u64,
                lc,
            );
            if scratch.spare.len() < SPARE_CAP {
                scratch.spare.push(data);
            }
        }
    }

    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with_frag(frag: usize) -> WireModel {
        WireModel {
            frag_size: frag,
            ..WireModel::zero_cost()
        }
    }

    #[test]
    fn mem_to_mem_across_boundaries() {
        let model = model_with_frag(4);
        let a = [1u8, 2, 3, 4, 5];
        let b = [6u8, 7, 8];
        let mut out1 = [0u8; 2];
        let mut out2 = [0u8; 6];
        let mut src = [
            SrcSeg::Mem(IovEntry::from_slice(&a)),
            SrcSeg::Mem(IovEntry::from_slice(&b)),
        ];
        let mut dst = [
            DstSeg::Mem(IovEntryMut::from_slice(&mut out1)),
            DstSeg::Mem(IovEntryMut::from_slice(&mut out2)),
        ];
        let moved = copy_stream(
            &model,
            &mut src,
            &mut dst,
            false,
            &FabricMetrics::detached(),
            &mut TransferScratch::default(),
            0,
            0,
        )
        .unwrap();
        assert_eq!(moved, 8);
        assert_eq!(out1, [1, 2]);
        assert_eq!(out2, [3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn packer_partial_fill_is_respected() {
        // Packer emits at most 3 bytes per call regardless of fragment size.
        let model = model_with_frag(64);
        let data: Vec<u8> = (0..20u8).collect();
        let src_data = data.clone();
        let mut packer = move |offset: usize, dst: &mut [u8]| {
            let n = dst.len().min(3).min(src_data.len() - offset);
            dst[..n].copy_from_slice(&src_data[offset..offset + n]);
            Ok(n)
        };
        let mut out = vec![0u8; 20];
        let mut src = [SrcSeg::Packer {
            packer: &mut packer,
            len: 20,
        }];
        let mut dst = [DstSeg::Mem(IovEntryMut::from_slice(&mut out))];
        let moved = copy_stream(
            &model,
            &mut src,
            &mut dst,
            false,
            &FabricMetrics::detached(),
            &mut TransferScratch::default(),
            0,
            0,
        )
        .unwrap();
        assert_eq!(moved, 20);
        assert_eq!(out, data);
    }

    #[test]
    fn packer_to_unpacker_roundtrip() {
        let model = model_with_frag(7);
        let data: Vec<u8> = (0..50u8).map(|x| x.wrapping_mul(3)).collect();
        let src_data = data.clone();
        let mut packer = move |offset: usize, dst: &mut [u8]| {
            let n = dst.len().min(src_data.len() - offset);
            dst[..n].copy_from_slice(&src_data[offset..offset + n]);
            Ok(n)
        };
        let mut received = vec![0u8; 50];
        let out = std::sync::Arc::new(mpicd_obs::sync::Mutex::new(vec![0u8; 50]));
        struct U(std::sync::Arc<mpicd_obs::sync::Mutex<Vec<u8>>>);
        impl FragmentUnpacker for U {
            fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
                self.0.lock()[offset..offset + src.len()].copy_from_slice(src);
                Ok(())
            }
        }
        let mut unpacker = U(std::sync::Arc::clone(&out));
        let mut src = [SrcSeg::Packer {
            packer: &mut packer,
            len: 50,
        }];
        let mut dst = [DstSeg::Unpacker {
            unpacker: &mut unpacker,
            len: 50,
        }];
        let moved = copy_stream(
            &model,
            &mut src,
            &mut dst,
            false,
            &FabricMetrics::detached(),
            &mut TransferScratch::default(),
            0,
            0,
        )
        .unwrap();
        assert_eq!(moved, 50);
        received.copy_from_slice(&out.lock());
        assert_eq!(received, data);
    }

    #[test]
    fn out_of_order_delivery_permutes_offsets() {
        let model = model_with_frag(8);
        let data: Vec<u8> = (0..32u8).collect();
        let mut offsets_seen = Vec::new();
        struct U<'a> {
            out: Vec<u8>,
            offsets: &'a mut Vec<usize>,
        }
        impl FragmentUnpacker for U<'_> {
            fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
                self.offsets.push(offset);
                self.out[offset..offset + src.len()].copy_from_slice(src);
                Ok(())
            }
        }
        let mut unpacker = U {
            out: vec![0u8; 32],
            offsets: &mut offsets_seen,
        };
        let mut src = [SrcSeg::Mem(IovEntry::from_slice(&data))];
        let mut dst = [DstSeg::Unpacker {
            unpacker: &mut unpacker,
            len: 32,
        }];
        copy_stream(
            &model,
            &mut src,
            &mut dst,
            true,
            &FabricMetrics::detached(),
            &mut TransferScratch::default(),
            0,
            0,
        )
        .unwrap();
        assert_eq!(unpacker.out, data, "offset-addressed unpack reassembles");
        assert_eq!(offsets_seen, vec![24, 16, 8, 0], "reverse-order delivery");
    }

    #[test]
    fn stalled_packer_errors() {
        let model = model_with_frag(8);
        let mut packer = |_offset: usize, _dst: &mut [u8]| Ok(0usize);
        let mut out = vec![0u8; 16];
        let mut src = [SrcSeg::Packer {
            packer: &mut packer,
            len: 16,
        }];
        let mut dst = [DstSeg::Mem(IovEntryMut::from_slice(&mut out))];
        let err = copy_stream(
            &model,
            &mut src,
            &mut dst,
            false,
            &FabricMetrics::detached(),
            &mut TransferScratch::default(),
            0,
            0,
        )
        .unwrap_err();
        assert!(matches!(err, FabricError::PackStalled { .. }));
    }

    #[test]
    fn failing_unpacker_propagates_code() {
        let model = model_with_frag(8);
        let data = [0u8; 16];
        struct Fail;
        impl FragmentUnpacker for Fail {
            fn unpack(&mut self, _offset: usize, _src: &[u8]) -> Result<(), i32> {
                Err(42)
            }
        }
        let mut unpacker = Fail;
        let mut src = [SrcSeg::Mem(IovEntry::from_slice(&data))];
        let mut dst = [DstSeg::Unpacker {
            unpacker: &mut unpacker,
            len: 16,
        }];
        assert_eq!(
            copy_stream(
                &model,
                &mut src,
                &mut dst,
                false,
                &FabricMetrics::detached(),
                &mut TransferScratch::default(),
                0,
                0
            ),
            Err(FabricError::UnpackFailed(42))
        );
    }

    #[test]
    fn scratch_freelist_recycles_ooo_buffers() {
        let model = model_with_frag(8);
        let data: Vec<u8> = (0..32u8).collect();
        struct U(Vec<u8>);
        impl FragmentUnpacker for U {
            fn unpack(&mut self, offset: usize, src: &[u8]) -> Result<(), i32> {
                self.0[offset..offset + src.len()].copy_from_slice(src);
                Ok(())
            }
        }
        let mut scratch = TransferScratch::default();
        for round in 0..3 {
            let mut unpacker = U(vec![0u8; 32]);
            let mut src = [SrcSeg::Mem(IovEntry::from_slice(&data))];
            let mut dst = [DstSeg::Unpacker {
                unpacker: &mut unpacker,
                len: 32,
            }];
            copy_stream(
                &model,
                &mut src,
                &mut dst,
                true,
                &FabricMetrics::detached(),
                &mut scratch,
                0,
                0,
            )
            .unwrap();
            assert_eq!(unpacker.0, data, "round {round}");
        }
        // 4 ooo fragments per round were pooled and reused, not reallocated.
        assert_eq!(scratch.spare.len(), 4, "fragment buffers returned to pool");
    }

    #[test]
    fn empty_transfer_moves_nothing() {
        let model = model_with_frag(8);
        let mut src: [SrcSeg<'_>; 0] = [];
        let mut dst: [DstSeg<'_>; 0] = [];
        assert_eq!(
            copy_stream(
                &model,
                &mut src,
                &mut dst,
                false,
                &FabricMetrics::detached(),
                &mut TransferScratch::default(),
                0,
                0
            )
            .unwrap(),
            0
        );
    }
}
