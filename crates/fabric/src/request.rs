//! Completion tracking for nonblocking operations.
//!
//! Every posted send/receive returns a [`Request`]. Requests support
//! nonblocking polling (`test`) and blocking waits (`wait`), from any
//! thread. Completion carries the matched [`Envelope`] (source, tag, byte
//! count) or the error that aborted the transfer.

use crate::error::{FabricError, FabricResult};
use crate::matching::Envelope;
use mpicd_obs::sync::{Condvar, Mutex};
use std::sync::Arc;

/// Shared completion state between the fabric and a request handle.
#[derive(Debug)]
pub(crate) struct ReqState {
    slot: Mutex<Option<FabricResult<Envelope>>>,
    cond: Condvar,
}

impl ReqState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    /// Mark complete (idempotent: first outcome wins) and wake waiters.
    pub(crate) fn complete(&self, outcome: FabricResult<Envelope>) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(outcome);
            self.cond.notify_all();
        }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.slot.lock().is_some()
    }
}

/// Handle to a posted nonblocking operation.
///
/// Dropping a request without waiting is allowed (the operation still
/// completes inside the fabric), but the *caller-side buffer contract* of
/// the unsafe post functions requires the buffers to outlive completion, so
/// well-behaved code waits.
#[derive(Debug, Clone)]
pub struct Request {
    state: Arc<ReqState>,
    flight_id: u64,
}

impl Request {
    pub(crate) fn new(state: Arc<ReqState>) -> Self {
        Self {
            state,
            flight_id: 0,
        }
    }

    /// A request that is already complete (used for eager sends, and by
    /// layers that must hand back a request for work done synchronously).
    pub fn ready(envelope: Envelope) -> Self {
        let state = ReqState::new();
        state.complete(Ok(envelope));
        Self {
            state,
            flight_id: 0,
        }
    }

    /// Attach the flight-recorder transfer id this request belongs to.
    pub(crate) fn with_flight(mut self, fid: u64) -> Self {
        self.flight_id = fid;
        self
    }

    /// The flight-recorder transfer id of this operation, or 0 when the
    /// recorder was disabled at post time. Use it to correlate a request
    /// with its lifecycle events in a flight dump.
    pub fn flight_id(&self) -> u64 {
        self.flight_id
    }

    /// Nonblocking completion check; returns the outcome when done.
    pub fn test(&self) -> Option<FabricResult<Envelope>> {
        self.state.slot.lock().clone()
    }

    /// Has the operation finished (successfully or not)?
    pub fn is_done(&self) -> bool {
        self.state.is_done()
    }

    /// Block until completion; returns the envelope or the error.
    pub fn wait(&self) -> FabricResult<Envelope> {
        let mut slot = self.state.slot.lock();
        while slot.is_none() {
            slot = self.state.cond.wait(slot);
        }
        slot.clone().expect("slot populated")
    }

    /// Cancel the request if it has not completed yet.
    ///
    /// Unlike MPI_Cancel this always "succeeds" locally: a later match will
    /// see the request already completed and skip it.
    pub fn cancel(&self) {
        self.state.complete(Err(FabricError::Cancelled));
    }
}

/// Wait for every request; returns the envelopes in order or the first error.
pub fn wait_all(requests: &[Request]) -> FabricResult<Vec<Envelope>> {
    requests.iter().map(|r| r.wait()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(bytes: usize) -> Envelope {
        Envelope {
            source: 0,
            tag: 0,
            bytes,
        }
    }

    #[test]
    fn ready_request_is_done() {
        let r = Request::ready(env(5));
        assert!(r.is_done());
        assert_eq!(r.wait().unwrap().bytes, 5);
        assert_eq!(r.test().unwrap().unwrap().bytes, 5);
    }

    #[test]
    fn flight_id_defaults_to_zero_and_sticks() {
        let r = Request::ready(env(1));
        assert_eq!(r.flight_id(), 0);
        let r = r.with_flight(42);
        assert_eq!(r.flight_id(), 42);
        assert_eq!(r.clone().flight_id(), 42);
    }

    #[test]
    fn completion_wakes_waiter() {
        let state = ReqState::new();
        let r = Request::new(Arc::clone(&state));
        assert!(!r.is_done());
        let t = std::thread::spawn({
            let r = r.clone();
            move || r.wait()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        state.complete(Ok(env(77)));
        assert_eq!(t.join().unwrap().unwrap().bytes, 77);
    }

    #[test]
    fn first_completion_wins() {
        let state = ReqState::new();
        state.complete(Err(FabricError::Cancelled));
        state.complete(Ok(env(1)));
        let r = Request::new(state);
        assert_eq!(r.wait(), Err(FabricError::Cancelled));
    }

    #[test]
    fn cancel_marks_error() {
        let state = ReqState::new();
        let r = Request::new(state);
        r.cancel();
        assert_eq!(r.wait(), Err(FabricError::Cancelled));
    }

    #[test]
    fn wait_all_collects() {
        let rs = vec![Request::ready(env(1)), Request::ready(env(2))];
        let envs = wait_all(&rs).unwrap();
        assert_eq!(envs[0].bytes, 1);
        assert_eq!(envs[1].bytes, 2);
    }
}
