//! MPI-style tag matching: `(source, tag)` selectors with wildcards and
//! non-overtaking order.
//!
//! Messages between a given pair of ranks with matching tags are delivered
//! in the order they were posted (MPI's non-overtaking guarantee); the
//! fabric achieves this by keeping per-destination FIFO queues and always
//! matching the earliest entry.

/// Message tag type (an `int` in MPI).
pub type Tag = i32;

/// Wildcard source selector (like `MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;

/// Wildcard tag selector (like `MPI_ANY_TAG`).
pub const ANY_TAG: Tag = -2;

/// A receive's matching criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selector {
    /// Required source rank, or [`ANY_SOURCE`].
    pub source: i32,
    /// Required tag, or [`ANY_TAG`].
    pub tag: Tag,
}

impl Selector {
    /// Build a selector; negative values select the corresponding wildcard.
    pub fn new(source: i32, tag: Tag) -> Self {
        Self { source, tag }
    }

    /// Does a message from `source` with `tag` match?
    pub fn matches(&self, source: usize, tag: Tag) -> bool {
        (self.source == ANY_SOURCE || self.source == source as i32)
            && (self.tag == ANY_TAG || self.tag == tag)
    }
}

/// Envelope information returned by probes and completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Sending rank.
    pub source: usize,
    /// Message tag.
    pub tag: Tag,
    /// Total payload bytes.
    pub bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        let s = Selector::new(3, 7);
        assert!(s.matches(3, 7));
        assert!(!s.matches(2, 7));
        assert!(!s.matches(3, 8));
    }

    #[test]
    fn any_source() {
        let s = Selector::new(ANY_SOURCE, 7);
        assert!(s.matches(0, 7));
        assert!(s.matches(9, 7));
        assert!(!s.matches(9, 8));
    }

    #[test]
    fn any_tag() {
        let s = Selector::new(1, ANY_TAG);
        assert!(s.matches(1, 0));
        assert!(s.matches(1, i32::MAX));
        assert!(!s.matches(2, 0));
    }

    #[test]
    fn full_wildcard() {
        let s = Selector::new(ANY_SOURCE, ANY_TAG);
        assert!(s.matches(0, 0));
        assert!(s.matches(7, 42));
    }
}
